#!/usr/bin/env sh
# Full local CI gate: formatting, lints, the whole test suite, and the
# raidx-verify static-analysis passes. Run from the repository root.
# Fails fast on the first broken stage.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> trace_dump --smoke (trace/metrics export self-check)"
cargo run --release -p bench --bin trace_dump -- --smoke

echo "==> race-detect --smoke (happens-before race + commutativity audit)"
# Dedicated stage so a race regression names itself in the CI log
# instead of hiding inside the combined verify_all run below.
cargo run --release -p bench --bin verify_all -- --pass race-detect --smoke

echo "==> static-analysis (raidx-analyze parser rules + planted canaries)"
# Dedicated stage for the same reason: a new unacknowledged finding
# should name the offending rule family in the CI log directly.
cargo run --release -p bench --bin verify_all -- --pass static-analysis --smoke

echo "==> reconfig (epoch transitions: stale-epoch admission + reads vs model mid-rebalance)"
# Dedicated stage so a membership/rebalance regression names itself in
# the CI log; the fault-sweep reconfiguration cells also run in the
# combined verify_all stage below.
cargo test -q -p cdd --test reconfig

echo "==> cache (client block-cache edge cases + coherence gate)"
# Dedicated stage so a cache-coherence regression (stale read, missed
# invalidation, broken transparency) names itself in the CI log; the
# full pass also runs in the combined verify_all stage below.
cargo test -q -p cdd --test cache
cargo run --release -p bench --bin verify_all -- --pass cache-coherence --budget 20000

echo "==> perf-smoke (engine work counters vs BENCH_engine.json + profiler transparency)"
# Gates the deterministic work counters only — wall-clock figures in the
# baseline are advisory. An intentional engine change regenerates the
# baseline with `cargo run --release -p bench --bin perf`.
cargo run --release -p bench --bin verify_all -- --pass perf-smoke

echo "==> perf --smoke (harness self-check, outputs under target/)"
# --out keeps the quick run away from the committed baseline.
cargo run --release -p bench --bin perf -- --smoke --out target/perf-smoke

echo "==> verify_all (plan lint, lock order, layout, determinism, model check, linearizability, crash consistency, trace determinism, fault sweep, race detect, static analysis, perf smoke, cache coherence)"
# --budget bounds schedules explored per model-checking scenario and
# --smoke shrinks the fault-injection sweep to its CI subset, so the
# gate stays fast even as scenarios grow.
cargo run --release -p bench --bin verify_all -- --budget 20000 --smoke

echo "ci.sh: all gates passed"
