//! End-to-end integration: the full stack (engine → cluster → CDD →
//! layout → file system → workload) exercised through the umbrella crate.

use raidx_cluster::bench_workloads::{run_andrew, AndrewConfig};
use raidx_cluster::ckpt::{run_striped_checkpoint, verify_checkpoint, CheckpointConfig};
use raidx_cluster::drivers::{BlockStore, CddConfig, IoSystem, NfsConfig, NfsSystem};
use raidx_cluster::fs::{Fs, InodeKind};
use raidx_cluster::hw::ClusterConfig;
use raidx_cluster::layouts::Arch;
use raidx_cluster::sim::Engine;

#[test]
fn andrew_runs_on_every_architecture() {
    for arch in Arch::ALL {
        let mut engine = Engine::new();
        let store =
            IoSystem::new(&mut engine, ClusterConfig::trojans(), arch, CddConfig::default());
        let (mut fs, _) = Fs::format(store, 2048, 0).unwrap();
        let cfg = AndrewConfig { clients: 4, dirs: 2, files_per_dir: 3, ..Default::default() };
        let r = run_andrew(&mut engine, &mut fs, &cfg).unwrap();
        assert!(r.total_secs() > 0.0, "{arch:?}");
        // The tree is complete and consistent afterwards.
        for c in 0..4 {
            let (entries, _) = fs.readdir(0, &format!("/c{c}/d0")).unwrap();
            // 3 sources + 1 object from the Make phase.
            assert_eq!(entries.len(), 4, "{arch:?} client {c}");
        }
    }
}

#[test]
fn andrew_runs_over_nfs() {
    let mut engine = Engine::new();
    let store = NfsSystem::new(&mut engine, ClusterConfig::trojans(), NfsConfig::default());
    let (mut fs, _) = Fs::format(store, 2048, 0).unwrap();
    let cfg = AndrewConfig { clients: 4, dirs: 2, files_per_dir: 3, ..Default::default() };
    let r = run_andrew(&mut engine, &mut fs, &cfg).unwrap();
    assert!(r.total_secs() > 0.0);
}

/// Disk failure in the middle of a filesystem workload: everything
/// written before the failure remains readable; rebuild restores
/// redundancy; a second failure elsewhere is then survivable.
#[test]
fn failure_during_fs_workload_and_double_rebuild() {
    let mut engine = Engine::new();
    let store =
        IoSystem::new(&mut engine, ClusterConfig::trojans(), Arch::RaidX, CddConfig::default());
    let (mut fs, _) = Fs::format(store, 1024, 0).unwrap();
    fs.mkdir(0, "/w").unwrap();
    let payloads: Vec<Vec<u8>> = (0..8)
        .map(|i| (0..50_000 + i * 1111).map(|j| ((i * 31 + j) % 256) as u8).collect())
        .collect();
    for (i, p) in payloads.iter().enumerate() {
        fs.write_file(i % 16, &format!("/w/f{i}"), p).unwrap();
    }

    fs.store_mut().fail_disk(4);
    for (i, p) in payloads.iter().enumerate() {
        let (got, _) = fs.read_file(2, &format!("/w/f{i}")).unwrap();
        assert_eq!(&got, p, "file {i} corrupted under failure");
    }
    fs.store_mut().rebuild_disk(4, 4).unwrap();

    fs.store_mut().fail_disk(11);
    for (i, p) in payloads.iter().enumerate() {
        let (got, _) = fs.read_file(3, &format!("/w/f{i}")).unwrap();
        assert_eq!(&got, p, "file {i} corrupted after second failure");
    }
    let (st, _) = fs.stat(0, "/w").unwrap();
    assert_eq!(st.kind, InodeKind::Dir);
}

/// Checkpoint, fail, restore, checkpoint again — state machine of a
/// long-running job with storage faults.
#[test]
fn checkpoint_failure_checkpoint_cycle() {
    let mut cc = ClusterConfig::trojans_4x3();
    cc.disk.capacity = 1 << 30;
    let mut engine = Engine::new();
    let mut array = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());
    let cfg = CheckpointConfig { processes: 8, stagger_width: 4, rounds: 1, ..Default::default() };
    run_striped_checkpoint(&mut engine, &mut array, &cfg).unwrap();

    array.fail_disk(2);
    for p in 0..8 {
        verify_checkpoint(&mut array, &cfg, p, 0).unwrap();
    }
    array.rebuild_disk(2, 2).unwrap();

    // Second round after recovery (round index 1 via a fresh config so
    // barrier ids do not collide with the first run's).
    let cfg2 = CheckpointConfig { processes: 8, stagger_width: 4, rounds: 1, ..cfg };
    let mut engine2 = Engine::new();
    let mut array2 = IoSystem::new(
        &mut engine2,
        {
            let mut cc = ClusterConfig::trojans_4x3();
            cc.disk.capacity = 1 << 30;
            cc
        },
        Arch::RaidX,
        CddConfig::default(),
    );
    run_striped_checkpoint(&mut engine2, &mut array2, &cfg2).unwrap();
    for p in 0..8 {
        verify_checkpoint(&mut array2, &cfg2, p, 0).unwrap();
    }
}

/// The same byte pattern round-trips across every architecture and both
/// store types under one generic function (the BlockStore abstraction).
#[test]
fn generic_store_roundtrip() {
    fn roundtrip(store: &mut dyn BlockStore) {
        let bs = store.block_size() as usize;
        let data: Vec<u8> = (0..3 * bs).map(|i| (i % 253) as u8).collect();
        store.write(1, 5, &data).unwrap();
        let (got, _) = store.read(2, 5, 3).unwrap();
        assert_eq!(got, data);
    }
    for arch in Arch::ALL {
        let mut engine = Engine::new();
        let mut s =
            IoSystem::new(&mut engine, ClusterConfig::trojans(), arch, CddConfig::default());
        roundtrip(&mut s);
    }
    let mut engine = Engine::new();
    let mut s = NfsSystem::new(&mut engine, ClusterConfig::trojans(), NfsConfig::default());
    roundtrip(&mut s);
}

/// Simulated time composes sensibly across sequential runs on one
/// engine: later workloads start where earlier ones ended.
#[test]
fn engine_time_is_monotone_across_runs() {
    let mut engine = Engine::new();
    let mut store =
        IoSystem::new(&mut engine, ClusterConfig::trojans(), Arch::Raid10, CddConfig::default());
    let bs = store.block_size() as usize;
    let p1 = store.write(0, 0, &vec![1u8; bs]).unwrap();
    engine.spawn_job("w1", p1);
    let r1 = engine.run().unwrap();
    let p2 = store.write(1, 1, &vec![2u8; bs]).unwrap();
    engine.spawn_job("w2", p2);
    let r2 = engine.run().unwrap();
    assert!(r2.end > r1.end);
}
