//! Integration tests asserting the paper's headline claims hold in the
//! reproduction, end to end through the public API.

use raidx_cluster::bench_workloads::{run_parallel_io, IoPattern, ParallelIoConfig};
use raidx_cluster::drivers::{CddConfig, IoSystem, NfsConfig, NfsSystem};
use raidx_cluster::hw::ClusterConfig;
use raidx_cluster::layouts::{Arch, PeakModel};
use raidx_cluster::sim::Engine;

fn bandwidth(arch: Arch, pattern: IoPattern, clients: usize) -> f64 {
    let mut engine = Engine::new();
    let mut store =
        IoSystem::new(&mut engine, ClusterConfig::trojans(), arch, CddConfig::default());
    let cfg = ParallelIoConfig { clients, pattern, repeats: 3, ..Default::default() };
    run_parallel_io(&mut engine, &mut store, &cfg)
        .expect("parallel I/O workload failed")
        .aggregate_mbs
}

fn nfs_bandwidth(pattern: IoPattern, clients: usize) -> f64 {
    let mut engine = Engine::new();
    let mut store = NfsSystem::new(&mut engine, ClusterConfig::trojans(), NfsConfig::default());
    let cfg = ParallelIoConfig { clients, pattern, repeats: 3, ..Default::default() };
    run_parallel_io(&mut engine, &mut store, &cfg)
        .expect("parallel I/O workload failed")
        .aggregate_mbs
}

/// "For small writes, RAID-x achieved ... 3 times higher than RAID-5."
#[test]
fn claim_small_write_factor_over_raid5() {
    let rx = bandwidth(Arch::RaidX, IoPattern::SmallWrite, 16);
    let r5 = bandwidth(Arch::Raid5, IoPattern::SmallWrite, 16);
    let factor = rx / r5;
    assert!(
        (2.0..6.0).contains(&factor),
        "RAID-x/RAID-5 small-write factor {factor:.2} outside the paper's ballpark (~3x)"
    );
}

/// RAID-x is the best of the four architectures for parallel writes at
/// full client load (Figure 5c/5d).
#[test]
fn claim_raidx_wins_parallel_writes_at_scale() {
    for pattern in [IoPattern::LargeWrite, IoPattern::SmallWrite] {
        let rx = bandwidth(Arch::RaidX, pattern, 16);
        let r5 = bandwidth(Arch::Raid5, pattern, 16);
        let r10 = bandwidth(Arch::Raid10, pattern, 16);
        let nfs = nfs_bandwidth(pattern, 16);
        assert!(
            rx > r5 && rx > r10 && rx > nfs,
            "{}: RAID-x {rx:.2} not best (RAID-5 {r5:.2}, RAID-10 {r10:.2}, NFS {nfs:.2})",
            pattern.label()
        );
    }
}

/// NFS saturates on its central server while RAID-x keeps scaling
/// (Table 3's improvement factors).
#[test]
fn claim_improvement_factors() {
    let rx_improve = bandwidth(Arch::RaidX, IoPattern::LargeRead, 16)
        / bandwidth(Arch::RaidX, IoPattern::LargeRead, 1);
    let nfs_improve =
        nfs_bandwidth(IoPattern::LargeRead, 16) / nfs_bandwidth(IoPattern::LargeRead, 1);
    assert!(rx_improve > 4.0, "RAID-x improvement only {rx_improve:.2}x");
    assert!(nfs_improve < 2.5, "NFS 'scaled' {nfs_improve:.2}x — the server should bottleneck");
}

/// The analytic model's large-write improvement over chained
/// declustering approaches two (Section 2).
#[test]
fn claim_analytic_factor_approaches_two() {
    let m = PeakModel::unit(1024);
    let factor = m.large_write_time(Arch::Chained, 4096) / m.large_write_time(Arch::RaidX, 4096);
    assert!(factor > 1.95 && factor < 2.0);
}

/// Small writes behave identically to large reads for NFS but not for
/// RAID-5 — the small-write problem is architecture-specific.
#[test]
fn claim_small_write_problem_is_raid5_specific() {
    let r5_small = bandwidth(Arch::Raid5, IoPattern::SmallWrite, 8);
    let r5_read = bandwidth(Arch::Raid5, IoPattern::SmallRead, 8);
    assert!(
        r5_small < 0.4 * r5_read,
        "RAID-5 small writes ({r5_small:.2}) should collapse vs reads ({r5_read:.2})"
    );
    let rx_small = bandwidth(Arch::RaidX, IoPattern::SmallWrite, 8);
    let rx_read = bandwidth(Arch::RaidX, IoPattern::SmallRead, 8);
    assert!(
        rx_small > 0.5 * rx_read,
        "RAID-x small writes ({rx_small:.2}) should track reads ({rx_read:.2})"
    );
}

/// The whole pipeline is deterministic: identical configurations produce
/// bit-identical results.
#[test]
fn full_experiment_is_deterministic() {
    let a = bandwidth(Arch::RaidX, IoPattern::LargeWrite, 8);
    let b = bandwidth(Arch::RaidX, IoPattern::LargeWrite, 8);
    assert_eq!(a.to_bits(), b.to_bits());
}

/// Reads through the single I/O space hit remote disks directly at the
/// driver level — no central server is involved (serverless claim):
/// every node's NIC moves data, not just one.
#[test]
fn claim_serverless_traffic_distribution() {
    let mut engine = Engine::new();
    let mut store =
        IoSystem::new(&mut engine, ClusterConfig::trojans(), Arch::RaidX, CddConfig::default());
    let cfg = ParallelIoConfig {
        clients: 16,
        pattern: IoPattern::LargeWrite,
        repeats: 2,
        ..Default::default()
    };
    run_parallel_io(&mut engine, &mut store, &cfg).unwrap();
    let active_tx =
        store.cluster.nodes.iter().filter(|n| engine.resource_stats(n.tx).bytes > 0).count();
    assert!(active_tx >= 15, "only {active_tx} nodes transmitted — looks centralized");
    let active_disks =
        store.cluster.disks.iter().filter(|d| engine.resource_stats(d.res).bytes > 0).count();
    assert_eq!(active_disks, 16, "all disks should participate in striped writes");
}

/// NFS by contrast concentrates all traffic on the server node.
#[test]
fn claim_nfs_centralizes_traffic() {
    let mut engine = Engine::new();
    let mut store = NfsSystem::new(&mut engine, ClusterConfig::trojans(), NfsConfig::default());
    let cfg = ParallelIoConfig {
        clients: 8,
        pattern: IoPattern::LargeWrite,
        repeats: 2,
        ..Default::default()
    };
    run_parallel_io(&mut engine, &mut store, &cfg).unwrap();
    let server_rx = engine.resource_stats(store.cluster.nodes[0].rx).bytes;
    let others: u64 = (1..16).map(|n| engine.resource_stats(store.cluster.nodes[n].rx).bytes).sum();
    assert!(server_rx > others, "server rx {server_rx} vs all others {others}");
}
