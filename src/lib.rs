#![warn(missing_docs)]
//! # raidx-cluster — RAID-x: a distributed disk array for I/O-centric
//! cluster computing
//!
//! A full reproduction of *Hwang, Jin & Ho, "RAID-x: A New Distributed
//! Disk Array for I/O-Centric Cluster Computing" (HPDC 2000)* as a Rust
//! workspace: the orthogonal-striping-and-mirroring layout and its
//! baselines ([`layouts`]), the cooperative disk drivers that build a
//! single I/O space ([`drivers`]), a deterministic cluster simulator
//! ([`sim`], [`hw`]), a minimal cluster file system ([`fs`]), the paper's
//! benchmark workloads ([`bench_workloads`]) and striped checkpointing
//! ([`ckpt`]).
//!
//! ## Quick start
//!
//! ```
//! use raidx_cluster::drivers::{CddConfig, IoSystem};
//! use raidx_cluster::hw::ClusterConfig;
//! use raidx_cluster::layouts::Arch;
//! use raidx_cluster::sim::Engine;
//!
//! // Build the 16-node Trojans cluster with a RAID-x single I/O space.
//! let mut engine = Engine::new();
//! let mut array = IoSystem::new(&mut engine, ClusterConfig::trojans(),
//!                               Arch::RaidX, CddConfig::default());
//!
//! // Any node writes anywhere in the single I/O space...
//! let block = vec![7u8; array.block_size() as usize];
//! let plan = array.write(/*client node*/ 3, /*logical block*/ 0, &block).unwrap();
//!
//! // ...and the same request has a simulated cost on the cluster.
//! engine.spawn_job("write", plan);
//! let report = engine.run().unwrap();
//! println!("write took {}", report.foreground_end);
//! ```
//!
//! See `examples/` for runnable scenarios and the `bench` crate for the
//! binaries that regenerate every table and figure of the paper.

/// The discrete-event simulation engine (re-export of `sim-core`).
pub mod sim {
    pub use sim_core::*;
}

/// Hardware models and cluster assembly (re-exports of `sim-disk`,
/// `sim-net` and `cluster`).
pub mod hw {
    pub use cluster::{Cluster, ClusterConfig, DataPlane, DiskError, DiskRef, Node};
    pub use sim_disk::{BusSpec, DiskModel, DiskSpec, ScsiBus};
    pub use sim_net::{transfer_plan, NetPath, NetSpec};
}

/// RAID layouts and the analytic model (re-export of `raidx-core`).
pub mod layouts {
    pub use raidx_core::*;
}

/// Cooperative disk drivers and the single I/O space (re-export of
/// `cdd`), plus the centralized NFS baseline (`nfs-sim`).
pub mod drivers {
    pub use cdd::*;
    pub use nfs_sim::{NfsConfig, NfsSystem};
}

/// The cluster file system (re-export of `cfs`).
pub mod fs {
    pub use cfs::*;
}

/// Benchmark workload generators (re-export of `workloads`).
pub mod bench_workloads {
    pub use workloads::*;
}

/// Striped checkpointing with staggering (re-export of `checkpoint`).
pub mod ckpt {
    pub use checkpoint::*;
}
