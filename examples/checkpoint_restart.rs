//! Striped checkpointing with staggering, and restart after a failure —
//! the paper's Section 6 applied to a long-running parallel job.
//!
//! Twelve processes checkpoint 4 MB each onto a 4x3 RAID-x array with
//! stagger groups of four; a disk then fails and every process restores
//! its state from the surviving copies.
//!
//! Run with: `cargo run --release --example checkpoint_restart`

use raidx_cluster::ckpt::{
    ckpt_pattern, run_striped_checkpoint, verify_checkpoint, CheckpointConfig,
};
use raidx_cluster::drivers::{CddConfig, IoSystem};
use raidx_cluster::hw::ClusterConfig;
use raidx_cluster::layouts::Arch;
use raidx_cluster::sim::Engine;

fn main() {
    let mut cc = ClusterConfig::trojans_4x3();
    cc.disk.capacity = 1 << 30;
    let mut engine = Engine::new();
    let mut array = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());

    let cfg = CheckpointConfig {
        processes: 12,
        stagger_width: 4,
        ckpt_bytes: 4 << 20,
        rounds: 3,
        ..Default::default()
    };
    println!(
        "checkpointing {} processes x {} MB, stagger groups of {}, 4x3 RAID-x array",
        cfg.processes,
        cfg.ckpt_bytes >> 20,
        cfg.stagger_width
    );

    let result = run_striped_checkpoint(&mut engine, &mut array, &cfg).expect("checkpoint failed");
    for (r, span) in result.round_secs.iter().enumerate() {
        println!("  round {r}: span {span:.3}s");
    }
    println!(
        "  mean process blocking {:.3}s; first stagger group only {:.3}s \
         (the staircase of Figure 7)",
        result.mean_blocked_secs, result.first_group_blocked_secs
    );

    // Disaster: a disk dies after the last round.
    array.fail_disk(6);
    println!("\ndisk 6 failed — restarting all processes from round {}", cfg.rounds - 1);
    let mut restore_plans = Vec::new();
    for p in 0..cfg.processes {
        let plan = verify_checkpoint(&mut array, &cfg, p, cfg.rounds - 1)
            .expect("checkpoint unrecoverable");
        restore_plans.push(plan);
        // Double-check the restored bytes against the known pattern.
        let expect = ckpt_pattern(p, cfg.rounds - 1, cfg.ckpt_bytes as usize);
        assert_eq!(expect.len(), cfg.ckpt_bytes as usize);
    }
    let t0 = engine.now();
    for (p, plan) in restore_plans.into_iter().enumerate() {
        engine.spawn_job(format!("restore/p{p}"), plan);
    }
    engine.run().expect("demo step failed");
    println!(
        "all {} checkpoints verified and restored in {} (degraded reads via OSM images)",
        cfg.processes,
        engine.now().since(t0)
    );
    drop(array);
}
