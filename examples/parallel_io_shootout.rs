//! Parallel I/O shoot-out: the Figure 5 experiment in miniature.
//!
//! Compares NFS, RAID-5, RAID-10 and RAID-x aggregate bandwidth for the
//! four access patterns at a chosen client count — the scenario from the
//! paper's introduction: many cluster nodes doing I/O-centric work
//! (data mining, multimedia, collaborative engineering) at once.
//!
//! Run with: `cargo run --release --example parallel_io_shootout [clients]`

use raidx_cluster::bench_workloads::{run_parallel_io, IoPattern, ParallelIoConfig};
use raidx_cluster::drivers::{BlockStore, CddConfig, IoSystem, NfsConfig, NfsSystem};
use raidx_cluster::hw::ClusterConfig;
use raidx_cluster::layouts::Arch;
use raidx_cluster::sim::Engine;

type StoreBuilder = Box<dyn Fn(&mut Engine) -> Box<dyn BlockStore>>;

fn measure(
    build: &dyn Fn(&mut Engine) -> Box<dyn BlockStore>,
    pattern: IoPattern,
    clients: usize,
) -> f64 {
    let mut engine = Engine::new();
    let mut store = build(&mut engine);
    let cfg = ParallelIoConfig { clients, pattern, repeats: 3, ..Default::default() };
    run_parallel_io(&mut engine, &mut store, &cfg).expect("run failed").aggregate_mbs
}

fn main() {
    let clients: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    println!("parallel I/O shoot-out on the Trojans cluster, {clients} clients\n");

    let systems: Vec<(&str, StoreBuilder)> = vec![
        (
            "NFS",
            Box::new(|e: &mut Engine| -> Box<dyn BlockStore> {
                Box::new(NfsSystem::new(e, ClusterConfig::trojans(), NfsConfig::default()))
            }),
        ),
        (
            "RAID-5",
            Box::new(|e: &mut Engine| -> Box<dyn BlockStore> {
                Box::new(IoSystem::new(
                    e,
                    ClusterConfig::trojans(),
                    Arch::Raid5,
                    CddConfig::default(),
                ))
            }),
        ),
        (
            "RAID-10",
            Box::new(|e: &mut Engine| -> Box<dyn BlockStore> {
                Box::new(IoSystem::new(
                    e,
                    ClusterConfig::trojans(),
                    Arch::Raid10,
                    CddConfig::default(),
                ))
            }),
        ),
        (
            "RAID-x",
            Box::new(|e: &mut Engine| -> Box<dyn BlockStore> {
                Box::new(IoSystem::new(
                    e,
                    ClusterConfig::trojans(),
                    Arch::RaidX,
                    CddConfig::default(),
                ))
            }),
        ),
    ];

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "architecture", "large read", "small read", "large write", "small write"
    );
    for (name, build) in &systems {
        print!("{name:<14}");
        for pattern in IoPattern::ALL {
            let mbs = measure(build.as_ref(), pattern, clients);
            print!(" {mbs:>7.2} MB/s");
        }
        println!();
    }
    println!("\n(aggregate foreground bandwidth; RAID-x image flushes drain in the background)");
}
