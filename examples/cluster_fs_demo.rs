//! Cluster file system demo: a shared file tree over the serverless
//! single I/O space, surviving a disk failure mid-workload.
//!
//! Models the paper's motivating scenario of collaborative engineering:
//! several nodes build a shared project tree concurrently, a disk dies,
//! and work continues without a central server.
//!
//! Run with: `cargo run --example cluster_fs_demo`

use raidx_cluster::drivers::{CddConfig, IoSystem};
use raidx_cluster::fs::Fs;
use raidx_cluster::hw::ClusterConfig;
use raidx_cluster::layouts::Arch;
use raidx_cluster::sim::Engine;

fn main() {
    let mut engine = Engine::new();
    let store =
        IoSystem::new(&mut engine, ClusterConfig::trojans(), Arch::RaidX, CddConfig::default());
    let (mut fs, fmt) = Fs::format(store, 4096, 0).expect("format failed");
    engine.spawn_job("mkfs", fmt);

    // Four nodes build a shared project tree concurrently.
    let mut plans = Vec::new();
    plans.push((0, fs.mkdir(0, "/project").expect("demo step failed")));
    for (node, dir) in [(1, "/project/src"), (2, "/project/docs"), (3, "/project/data")] {
        plans.push((node, fs.mkdir(node, dir).expect("demo step failed")));
    }
    for i in 0..12usize {
        let node = 1 + i % 4;
        let path = format!("/project/src/module{i}.rs");
        let body: Vec<u8> = format!("// module {i}\nfn work() {{}}\n")
            .into_bytes()
            .into_iter()
            .cycle()
            .take(4000 + i * 997)
            .collect();
        plans.push((node, fs.write_file(node, &path, &body).expect("demo step failed")));
    }
    for (node, p) in plans {
        engine.spawn_job(format!("node{node}"), p);
    }
    let report = engine.run().expect("demo step failed");
    println!("12 modules + tree built concurrently in {}", report.foreground_end);

    let (entries, _) = fs.readdir(5, "/project/src").expect("demo step failed");
    println!("/project/src holds {} files", entries.len());

    // A disk dies. The tree — metadata and data — stays fully readable.
    fs.store_mut().fail_disk(7);
    println!("\ndisk 7 failed!");
    let (entries, scan) = fs.readdir(6, "/project/src").expect("demo step failed");
    engine.spawn_job("degraded-scan", scan);
    let mut total = 0usize;
    for e in &entries {
        let (body, rp) =
            fs.read_file(6, &format!("/project/src/{}", e.name)).expect("demo step failed");
        total += body.len();
        engine.spawn_job("degraded-read", rp);
    }
    engine.run().expect("demo step failed");
    println!(
        "degraded mode: {} files ({} bytes) read back intact through the OSM images",
        entries.len(),
        total
    );

    // Hot-swap the disk and rebuild.
    let (plan, blocks) = fs.store_mut().rebuild_disk(7, 7).expect("demo step failed");
    engine.spawn_job("rebuild", plan);
    let t0 = engine.now();
    engine.run().expect("demo step failed");
    println!("rebuild restored {blocks} blocks in {}", engine.now().since(t0));

    // Verify a file end-to-end after the rebuild.
    let (body, _) = fs.read_file(2, "/project/src/module3.rs").expect("demo step failed");
    assert!(body.starts_with(b"// module 3"));
    println!("post-rebuild verification passed");
}
