//! Layout explorer: print the OSM placement map for any n x k array and
//! verify its invariants interactively.
//!
//! Run with: `cargo run --example layout_explorer -- [n] [k]`
//! (defaults to the paper's 4x3 array of Figure 3).

use raidx_cluster::layouts::{FaultSet, Layout, RaidX};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let l = RaidX::new(n, k, 240);
    println!(
        "RAID-x {n}x{k}: {} disks, stripe width {n}, pipeline depth {k}, \
         {} logical blocks, tolerates up to {} failures (one per row)\n",
        l.ndisks(),
        l.capacity_blocks(),
        l.max_fault_coverage()
    );

    // Data map for the first 4 stripes per row.
    let show_stripes = (4 * k).min(12) as u64;
    println!("data placement (first {show_stripes} stripe groups):");
    for s in 0..show_stripes {
        let blocks = l.stripe_blocks(s);
        let places: Vec<String> =
            blocks.iter().map(|&lb| format!("B{lb}@{}", l.locate_data(lb))).collect();
        println!("  stripe {s:>2} (row {}): {}", s % k as u64, places.join("  "));
    }

    println!("\nimage placement (same blocks, clustered per mirroring group):");
    for s in 0..show_stripes {
        let blocks = l.stripe_blocks(s);
        let places: Vec<String> =
            blocks.iter().map(|&lb| format!("M{lb}@{}", l.image_addr(lb))).collect();
        println!("  stripe {s:>2}: {}", places.join("  "));
    }

    // Check the paper's two defining properties over the whole space.
    let mut max_image_disks = 0;
    for s in 0..l.capacity_blocks() / n as u64 {
        let disks: std::collections::HashSet<usize> =
            l.stripe_blocks(s).iter().map(|&lb| l.image_addr(lb).disk).collect();
        max_image_disks = max_image_disks.max(disks.len());
    }
    println!("\nverified over all {} blocks:", l.capacity_blocks());
    println!("  - no block's image shares a disk with its data (orthogonality)");
    println!("  - stripe images land on at most {max_image_disks} disks (paper: exactly two)");

    // Failure coverage demo: one failure per row is survivable.
    let one_per_row: Vec<usize> = (0..k).map(|r| r * n + (r % n)).collect();
    let fs = FaultSet::of(&one_per_row);
    println!("  - failing disks {:?} (one per row): tolerated = {}", one_per_row, l.tolerates(&fs));
}
