//! Quickstart: build a RAID-x single I/O space on the Trojans cluster,
//! write and read through it from different nodes, inspect the OSM
//! layout, and see the simulated cost of each operation.
//!
//! Run with: `cargo run --example quickstart`

use raidx_cluster::drivers::{CddConfig, IoSystem};
use raidx_cluster::hw::ClusterConfig;
use raidx_cluster::layouts::Arch;
use raidx_cluster::sim::Engine;

fn main() {
    // 16 Linux PCs, switched Fast Ethernet, one SCSI disk each — the
    // cluster the paper measured.
    let cfg = ClusterConfig::trojans();
    println!(
        "cluster: {} nodes x {} disk(s), {} KB blocks, {:.1} MB/s links",
        cfg.nodes,
        cfg.disks_per_node,
        cfg.block_size >> 10,
        cfg.net.link_rate as f64 / 1e6
    );

    let mut engine = Engine::new();
    let mut array = IoSystem::new(&mut engine, cfg, Arch::RaidX, CddConfig::default());
    println!(
        "single I/O space: {} ({} disks, {} logical blocks)\n",
        array.layout().name(),
        array.layout().ndisks(),
        array.capacity_blocks()
    );

    // Where do the first stripe's blocks and their images live?
    println!("OSM placement of the first stripe group:");
    for lb in 0..array.layout().stripe_width() as u64 {
        let data = array.layout().locate_data(lb);
        let image = array.layout().locate_images(lb)[0];
        println!("  block {lb}: data at {data}, image at {image} (different disks — orthogonal)");
    }

    // Node 3 writes 1 MB; node 9 reads it back. The bytes really move,
    // and the plans carry the simulated cost.
    let bs = array.block_size() as usize;
    let payload: Vec<u8> = (0..32 * bs).map(|i| (i % 251) as u8).collect();
    let write = array.write(3, 0, &payload).expect("write failed");
    engine.spawn_job("node3-writes-1MB", write);
    let report = engine.run().expect("simulation failed");
    println!("\nnode 3 wrote 1 MB in {} (foreground)", report.foreground_end);
    println!("background image flush drained at {}", report.end);

    let t0 = engine.now();
    let (data, read) = array.read(9, 0, 32).expect("read failed");
    assert_eq!(data, payload, "data corrupted in flight!");
    engine.spawn_job("node9-reads-1MB", read);
    engine.run().expect("simulation failed");
    println!("node 9 read it back in {} — bytes verified identical", engine.now().since(t0));

    // Kill a disk: the array keeps serving reads from the images.
    array.fail_disk(5);
    let (data, _) = array.read(1, 0, 32).expect("degraded read failed");
    assert_eq!(data, payload);
    println!("\ndisk 5 failed: all data still readable through OSM images");
    let (_, restored) = array.rebuild_disk(5, 5).expect("rebuild failed");
    println!("rebuilt disk 5 from surviving copies ({restored} blocks restored)");
}
