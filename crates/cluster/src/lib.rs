#![warn(missing_docs)]
//! # cluster — serverless cluster assembly
//!
//! Builds the hardware of a Trojans-class cluster inside a [`sim_core`]
//! engine — per node: one CPU, a full-duplex NIC port pair, a SCSI bus and
//! `k` disks — and provides the **functional data plane** ([`DataPlane`]):
//! in-memory virtual disks that really store bytes, so correctness (parity
//! reconstruction, mirror recovery, rebuild) is tested with actual data, not
//! just timing.
//!
//! Disk numbering follows the paper's Figure 3: global disk `g` is attached
//! to node `g mod nodes`, so `n` consecutive disks form a stripe group that
//! touches every node exactly once, and the `k` disks of one node share its
//! SCSI bus (consecutive stripe groups pipeline on those buses).

//!
//! Membership is not frozen at boot: [`map::ClusterMap`] versions the
//! binding from logical slots (what placement formulas see) to physical
//! disks (what the engine and data plane hold) in epochs, so disks can
//! be added, removed and replaced while the array is live.

pub mod build;
pub mod config;
pub mod map;
pub mod vdisk;

pub use build::{Cluster, DiskRef, Node};
pub use config::ClusterConfig;
pub use map::{ClusterMap, DiskState};
pub use vdisk::{xor_into, DataPlane, DiskError};
