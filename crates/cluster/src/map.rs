//! Epoch-versioned cluster map: the single source of placement truth.
//!
//! The paper's CDD replicates its lock-group table on every node, and the
//! same replicated-table machinery carries membership changes: the array
//! is a fixed set of logical *slots* (the `n` disks every OSM placement
//! formula is written against), and each **epoch** binds every slot to
//! one *physical* disk of the growing hardware roster. Epoch 0 is the
//! identity binding produced by `cluster::build`, so a run that never
//! reconfigures is byte-identical to the pre-epoch code paths.
//!
//! Roster state machine (one physical disk's lifetime):
//!
//! ```text
//!   add_spare            promote(slot, spare)
//!  ──────────▶  Spare ──────────────────────▶  Active { slot }
//!                                                   │
//!                              promote(slot, other) │  (this disk vacates)
//!                                                   ▼
//!                                                Retired
//! ```
//!
//! Every transition appends a new epoch; mappings of past epochs stay
//! readable forever (`phys_at`), which is what lets in-flight reads
//! legally resolve against the epoch they were admitted under while a
//! migration drains.

/// Lifetime state of one physical disk in the roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskState {
    /// Currently bound to a logical slot; serves live placement.
    Active {
        /// The logical slot this disk serves.
        slot: usize,
    },
    /// Registered and formatted but not yet bound to a slot.
    Spare,
    /// Vacated by a later epoch; never rebound (physical ids are not
    /// reused — a re-added disk gets a fresh id).
    Retired,
}

/// The epoch-versioned slot→physical binding plus the disk roster.
///
/// All mutation goes through [`ClusterMap::add_spare`] and
/// [`ClusterMap::promote`]; each appends exactly one epoch, so the epoch
/// counter doubles as the version number of the replicated placement
/// table (the CDD serialises transitions through its lock-group table
/// before committing one here).
#[derive(Debug, Clone)]
pub struct ClusterMap {
    /// Per-physical-disk lifetime state, indexed by physical id.
    states: Vec<DiskState>,
    /// One slot→physical binding per epoch; index = epoch number.
    epochs: Vec<Vec<usize>>,
}

impl ClusterMap {
    /// The boot-time map: `slots` physical disks, each Active on the
    /// identically-numbered slot. This is epoch 0.
    pub fn identity(slots: usize) -> Self {
        assert!(slots > 0, "a cluster map needs at least one slot");
        ClusterMap {
            states: (0..slots).map(|s| DiskState::Active { slot: s }).collect(),
            epochs: vec![(0..slots).collect()],
        }
    }

    /// Number of logical slots (fixed for the array's lifetime).
    pub fn nslots(&self) -> usize {
        self.epochs[0].len()
    }

    /// Number of physical disks ever registered (Active + Spare + Retired).
    pub fn nphys(&self) -> usize {
        self.states.len()
    }

    /// The current epoch number (0 at boot, +1 per transition).
    pub fn epoch(&self) -> u64 {
        (self.epochs.len() - 1) as u64
    }

    /// True while no reconfiguration has ever happened — the fast path
    /// every placement translation takes on a static array.
    pub fn is_identity(&self) -> bool {
        self.epochs.len() == 1
    }

    /// Physical disk bound to `slot` in the current epoch.
    pub fn phys(&self, slot: usize) -> usize {
        self.epochs[self.epochs.len() - 1][slot]
    }

    /// Physical disk bound to `slot` in a specific (possibly past) epoch.
    pub fn phys_at(&self, epoch: u64, slot: usize) -> usize {
        self.epochs[epoch as usize][slot]
    }

    /// Roster state of physical disk `phys`.
    pub fn state(&self, phys: usize) -> DiskState {
        self.states[phys]
    }

    /// The slot `phys` currently serves, if it is Active.
    pub fn slot_of(&self, phys: usize) -> Option<usize> {
        match self.states[phys] {
            DiskState::Active { slot } => Some(slot),
            DiskState::Spare | DiskState::Retired => None,
        }
    }

    /// Register a new physical disk as a Spare. Appends an epoch whose
    /// slot binding is unchanged (the roster itself is versioned), and
    /// returns the new disk's physical id. The caller must have grown
    /// the data plane and the engine's resource set to match.
    pub fn add_spare(&mut self) -> usize {
        let phys = self.states.len();
        self.states.push(DiskState::Spare);
        let cur = self.epochs[self.epochs.len() - 1].clone();
        self.epochs.push(cur);
        phys
    }

    /// Bind `spare` to `slot`, retiring the disk previously bound there.
    /// Appends an epoch and returns its number. Panics if `spare` is not
    /// a Spare — physical ids are never reused, so an Active or Retired
    /// disk can't be promoted.
    pub fn promote(&mut self, slot: usize, spare: usize) -> u64 {
        assert!(slot < self.nslots(), "slot {slot} out of range");
        assert_eq!(self.states[spare], DiskState::Spare, "disk {spare} is not a spare");
        let mut next = self.epochs[self.epochs.len() - 1].clone();
        let old = next[slot];
        next[slot] = spare;
        self.states[old] = DiskState::Retired;
        self.states[spare] = DiskState::Active { slot };
        self.epochs.push(next);
        self.epoch()
    }

    /// Slots whose physical binding differs between two epochs — the
    /// migration set of a transition (sorted, deterministic).
    pub fn changed_slots(&self, from: u64, to: u64) -> Vec<usize> {
        let (a, b) = (&self.epochs[from as usize], &self.epochs[to as usize]);
        (0..self.nslots()).filter(|&s| a[s] != b[s]).collect()
    }

    /// First spare in physical-id order, if any.
    pub fn first_spare(&self) -> Option<usize> {
        self.states.iter().position(|&s| s == DiskState::Spare)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_map_is_epoch_zero_and_transparent() {
        let m = ClusterMap::identity(4);
        assert_eq!(m.epoch(), 0);
        assert!(m.is_identity());
        assert_eq!((m.nslots(), m.nphys()), (4, 4));
        for s in 0..4 {
            assert_eq!(m.phys(s), s);
            assert_eq!(m.slot_of(s), Some(s));
            assert_eq!(m.state(s), DiskState::Active { slot: s });
        }
        assert!(m.changed_slots(0, 0).is_empty());
        assert_eq!(m.first_spare(), None);
    }

    #[test]
    fn add_then_promote_walks_the_roster_state_machine() {
        let mut m = ClusterMap::identity(4);
        let spare = m.add_spare();
        assert_eq!(spare, 4);
        assert_eq!(m.epoch(), 1);
        assert!(!m.is_identity());
        assert_eq!(m.state(4), DiskState::Spare);
        assert_eq!(m.first_spare(), Some(4));
        // Adding a spare does not move any slot.
        assert!(m.changed_slots(0, 1).is_empty());

        let e = m.promote(2, spare);
        assert_eq!(e, 2);
        assert_eq!(m.phys(2), 4);
        assert_eq!(m.state(2), DiskState::Retired);
        assert_eq!(m.state(4), DiskState::Active { slot: 2 });
        assert_eq!(m.slot_of(2), None);
        assert_eq!(m.slot_of(4), Some(2));
        assert_eq!(m.changed_slots(0, 2), vec![2]);
        assert_eq!(m.first_spare(), None);
        // The old epoch's view survives for stale readers.
        assert_eq!(m.phys_at(0, 2), 2);
        assert_eq!(m.phys_at(2, 2), 4);
    }

    #[test]
    #[should_panic(expected = "not a spare")]
    fn retired_disks_cannot_be_promoted() {
        let mut m = ClusterMap::identity(2);
        let spare = m.add_spare();
        m.promote(0, spare);
        m.promote(1, 0); // 0 is Retired now
    }

    #[test]
    fn successive_transitions_accumulate_epochs() {
        let mut m = ClusterMap::identity(3);
        let a = m.add_spare();
        m.promote(0, a);
        let b = m.add_spare();
        m.promote(0, b);
        assert_eq!(m.epoch(), 4);
        assert_eq!(m.phys(0), b);
        assert_eq!(m.state(a), DiskState::Retired);
        assert_eq!(m.changed_slots(0, 4), vec![0]);
        assert_eq!(m.changed_slots(2, 4), vec![0]);
    }
}
