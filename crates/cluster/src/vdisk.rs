//! The functional data plane: in-memory virtual disks.
//!
//! Every RAID engine in this workspace executes requests twice over: once
//! against the timing model (a [`sim_core::Plan`]) and once against this
//! plane, which actually moves bytes. That lets the test-suite verify data
//! integrity through striping, mirroring, parity reconstruction and
//! rebuild — not just timing.

use std::collections::HashMap;

/// Error from a functional disk operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The target disk has failed; its contents are gone.
    Failed {
        /// Failed disk index.
        disk: usize,
    },
    /// Block index beyond the disk's capacity.
    OutOfRange {
        /// Target disk.
        disk: usize,
        /// Requested block.
        block: u64,
        /// Disk capacity in blocks.
        capacity: u64,
    },
    /// Buffer length didn't match the block size.
    BadLength {
        /// Required buffer length (the block size).
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// The disk is transiently offline (power glitch, pulled cable): it
    /// rejects I/O but its contents survive and return on recovery —
    /// the paper's *transient* failure class, distinct from
    /// [`DiskError::Failed`] where the media is gone.
    Offline {
        /// Offline disk index.
        disk: usize,
    },
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Failed { disk } => write!(f, "disk {disk} has failed"),
            DiskError::OutOfRange { disk, block, capacity } => {
                write!(f, "block {block} beyond capacity {capacity} of disk {disk}")
            }
            DiskError::BadLength { expected, got } => {
                write!(f, "buffer of {got} bytes, block size is {expected}")
            }
            DiskError::Offline { disk } => write!(f, "disk {disk} is transiently offline"),
        }
    }
}
impl std::error::Error for DiskError {}

struct SparseDisk {
    blocks: HashMap<u64, Box<[u8]>>,
    failed: bool,
    /// Transient outage: I/O rejected, contents retained.
    offline: bool,
}

/// The in-memory contents of every disk in the single I/O space.
///
/// Blocks never written read back as zeroes (like a freshly formatted
/// drive). Failing a disk drops its contents — recovery code must
/// reconstruct them from redundancy, exactly as on real hardware.
pub struct DataPlane {
    block_size: usize,
    capacity_blocks: u64,
    disks: Vec<SparseDisk>,
    bytes_written: u64,
    bytes_read: u64,
}

impl DataPlane {
    /// A plane of `ndisks` disks of `capacity_blocks` blocks of
    /// `block_size` bytes.
    pub fn new(ndisks: usize, block_size: usize, capacity_blocks: u64) -> Self {
        assert!(block_size > 0 && capacity_blocks > 0);
        DataPlane {
            block_size,
            capacity_blocks,
            disks: (0..ndisks)
                .map(|_| SparseDisk { blocks: HashMap::new(), failed: false, offline: false })
                .collect(),
            bytes_written: 0,
            bytes_read: 0,
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of disks.
    pub fn ndisks(&self) -> usize {
        self.disks.len()
    }

    /// Capacity of each disk in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Total payload bytes written so far (diagnostics).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total payload bytes read so far (diagnostics).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    fn check(&self, disk: usize, block: u64) -> Result<(), DiskError> {
        let d = &self.disks[disk];
        if d.failed {
            return Err(DiskError::Failed { disk });
        }
        if d.offline {
            return Err(DiskError::Offline { disk });
        }
        if block >= self.capacity_blocks {
            return Err(DiskError::OutOfRange { disk, block, capacity: self.capacity_blocks });
        }
        Ok(())
    }

    /// Write one block.
    pub fn write(&mut self, disk: usize, block: u64, data: &[u8]) -> Result<(), DiskError> {
        if data.len() != self.block_size {
            return Err(DiskError::BadLength { expected: self.block_size, got: data.len() });
        }
        self.check(disk, block)?;
        self.disks[disk].blocks.insert(block, data.into());
        self.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Read one block into `out` (zeroes if never written).
    pub fn read(&mut self, disk: usize, block: u64, out: &mut [u8]) -> Result<(), DiskError> {
        if out.len() != self.block_size {
            return Err(DiskError::BadLength { expected: self.block_size, got: out.len() });
        }
        self.check(disk, block)?;
        match self.disks[disk].blocks.get(&block) {
            Some(b) => out.copy_from_slice(b),
            None => out.fill(0),
        }
        self.bytes_read += out.len() as u64;
        Ok(())
    }

    /// Read one block, allocating. Convenience for tests and recovery code.
    pub fn read_owned(&mut self, disk: usize, block: u64) -> Result<Vec<u8>, DiskError> {
        let mut v = vec![0u8; self.block_size];
        self.read(disk, block, &mut v)?;
        Ok(v)
    }

    /// Fail a disk: its contents are irrecoverably lost.
    pub fn fail(&mut self, disk: usize) {
        let d = &mut self.disks[disk];
        d.failed = true;
        d.offline = false;
        d.blocks.clear();
    }

    /// Replace a failed disk with a blank healthy one.
    pub fn replace(&mut self, disk: usize) {
        let d = &mut self.disks[disk];
        d.failed = false;
        d.offline = false;
        d.blocks.clear();
    }

    /// Take a disk transiently offline (`true`) or bring it back
    /// (`false`). Offline disks reject I/O like failed ones, but their
    /// contents are *retained* and readable again after recovery — only
    /// writes that happened during the outage are missing, which is
    /// exactly what the CDD's parked-block resync repairs.
    pub fn set_offline(&mut self, disk: usize, offline: bool) {
        assert!(!self.disks[disk].failed, "a failed disk cannot change offline state");
        self.disks[disk].offline = offline;
    }

    /// True if the disk is transiently offline.
    pub fn is_offline(&self, disk: usize) -> bool {
        self.disks[disk].offline
    }

    /// True if the disk is currently failed.
    pub fn is_failed(&self, disk: usize) -> bool {
        self.disks[disk].failed
    }

    /// Indices of currently failed disks.
    pub fn failed_disks(&self) -> Vec<usize> {
        self.disks.iter().enumerate().filter_map(|(i, d)| d.failed.then_some(i)).collect()
    }

    /// Hot-add a blank healthy disk (same block size and capacity as the
    /// rest of the plane) and return its index. Supports epoch-versioned
    /// membership changes: the new disk joins as a spare and holds no
    /// data until a migration copies blocks onto it.
    pub fn add_disk(&mut self) -> usize {
        self.disks.push(SparseDisk { blocks: HashMap::new(), failed: false, offline: false });
        self.disks.len() - 1
    }

    /// Sorted indices of the blocks that currently hold written data on
    /// `disk`. This is the pending-migration seed when a slot moves off
    /// the disk: only blocks that were ever written need copying. Sorted
    /// so iteration over the sparse store stays deterministic.
    pub fn written_blocks(&self, disk: usize) -> Vec<u64> {
        // det-ok: sorted immediately below before anything observes it.
        let mut v: Vec<u64> = self.disks[disk].blocks.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// XOR `src` into `acc` (parity accumulation). Lengths must match.
pub fn xor_into(acc: &mut [u8], src: &[u8]) {
    assert_eq!(acc.len(), src.len());
    for (a, s) in acc.iter_mut().zip(src) {
        *a ^= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BS: usize = 64;

    fn plane() -> DataPlane {
        DataPlane::new(4, BS, 128)
    }

    fn block(tag: u8) -> Vec<u8> {
        vec![tag; BS]
    }

    #[test]
    fn write_read_roundtrip() {
        let mut p = plane();
        p.write(2, 7, &block(0xAB)).unwrap();
        assert_eq!(p.read_owned(2, 7).unwrap(), block(0xAB));
    }

    #[test]
    fn unwritten_blocks_are_zero() {
        let mut p = plane();
        assert_eq!(p.read_owned(0, 0).unwrap(), block(0));
    }

    #[test]
    fn failure_loses_data_and_rejects_io() {
        let mut p = plane();
        p.write(1, 3, &block(9)).unwrap();
        p.fail(1);
        assert_eq!(p.read(1, 3, &mut block(0)).unwrap_err(), DiskError::Failed { disk: 1 });
        assert_eq!(p.write(1, 3, &block(9)).unwrap_err(), DiskError::Failed { disk: 1 });
        assert_eq!(p.failed_disks(), vec![1]);
        // After replacement the disk is healthy but blank.
        p.replace(1);
        assert_eq!(p.read_owned(1, 3).unwrap(), block(0));
        assert!(p.failed_disks().is_empty());
    }

    #[test]
    fn offline_rejects_io_but_retains_contents() {
        let mut p = plane();
        p.write(2, 5, &block(0x5A)).unwrap();
        p.set_offline(2, true);
        assert!(p.is_offline(2));
        assert!(!p.is_failed(2));
        assert_eq!(p.read(2, 5, &mut block(0)).unwrap_err(), DiskError::Offline { disk: 2 });
        assert_eq!(p.write(2, 5, &block(1)).unwrap_err(), DiskError::Offline { disk: 2 });
        // Recovery: the pre-outage contents are still there.
        p.set_offline(2, false);
        assert_eq!(p.read_owned(2, 5).unwrap(), block(0x5A));
    }

    #[test]
    fn failing_an_offline_disk_escalates_to_permanent() {
        let mut p = plane();
        p.write(1, 0, &block(7)).unwrap();
        p.set_offline(1, true);
        p.fail(1);
        assert!(p.is_failed(1) && !p.is_offline(1));
        assert_eq!(p.read(1, 0, &mut block(0)).unwrap_err(), DiskError::Failed { disk: 1 });
        p.replace(1);
        assert!(!p.is_offline(1));
        assert_eq!(p.read_owned(1, 0).unwrap(), block(0), "replacement disk is blank");
    }

    #[test]
    fn capacity_enforced() {
        let mut p = plane();
        assert!(matches!(
            p.write(0, 128, &block(1)),
            Err(DiskError::OutOfRange { block: 128, .. })
        ));
        assert!(p.write(0, 127, &block(1)).is_ok());
    }

    #[test]
    fn length_enforced() {
        let mut p = plane();
        assert!(matches!(
            p.write(0, 0, &[0u8; 3]),
            Err(DiskError::BadLength { expected: BS, got: 3 })
        ));
        let mut short = [0u8; 3];
        assert!(matches!(p.read(0, 0, &mut short), Err(DiskError::BadLength { .. })));
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = block(0b1010_1010);
        let b = block(0b0110_0110);
        let mut acc = a.clone();
        xor_into(&mut acc, &b);
        xor_into(&mut acc, &b);
        assert_eq!(acc, a);
    }

    #[test]
    fn io_counters_track_payload() {
        let mut p = plane();
        p.write(0, 0, &block(1)).unwrap();
        p.write(0, 1, &block(2)).unwrap();
        p.read_owned(0, 0).unwrap();
        assert_eq!(p.bytes_written(), 2 * BS as u64);
        assert_eq!(p.bytes_read(), BS as u64);
    }
}
