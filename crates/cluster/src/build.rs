//! Instantiating a cluster's resources inside an engine.

use sim_core::{Engine, FixedRate, ResourceId, SplitMix64};
use sim_disk::{DiskModel, ScsiBus};
use sim_net::NetPath;

use crate::config::ClusterConfig;

/// Resource handles for one node.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Host CPU (protocol processing, driver work, benchmark compute).
    pub cpu: ResourceId,
    /// NIC transmit port.
    pub tx: ResourceId,
    /// NIC receive port.
    pub rx: ResourceId,
    /// The node's SCSI bus.
    pub bus: ResourceId,
}

/// Resource handles for one disk of the single I/O space.
#[derive(Debug, Clone, Copy)]
pub struct DiskRef {
    /// The disk's own service resource.
    pub res: ResourceId,
    /// The bus it sits on (its node's bus).
    pub bus: ResourceId,
    /// Owning node index.
    pub node: usize,
}

/// A fully instantiated cluster: every node's CPU/NIC/bus/disk resources
/// registered with an engine, with the paper's global disk numbering
/// (disk `g` lives on node `g mod nodes`, so a stripe of `n` consecutive
/// disks touches every node once — Figure 3).
pub struct Cluster {
    /// The configuration the cluster was built from.
    pub cfg: ClusterConfig,
    /// Per-node handles.
    pub nodes: Vec<Node>,
    /// Per-disk handles, indexed by global disk number.
    pub disks: Vec<DiskRef>,
}

impl Cluster {
    /// Register all resources for `cfg` in `engine`.
    pub fn build(cfg: ClusterConfig, engine: &mut Engine) -> Self {
        cfg.validate();
        let root_rng = SplitMix64::new(cfg.seed);
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for n in 0..cfg.nodes {
            let cpu = engine.add_resource(
                format!("node{n}/cpu"),
                Box::new(FixedRate {
                    per_op: cfg.net.sw_per_message,
                    bytes_per_sec: cfg.net.sw_copy_rate,
                }),
            );
            let tx = engine
                .add_resource(format!("node{n}/tx"), Box::new(FixedRate::rate(cfg.net.link_rate)));
            let rx = engine
                .add_resource(format!("node{n}/rx"), Box::new(FixedRate::rate(cfg.net.link_rate)));
            let bus = engine
                .add_resource(format!("node{n}/scsi"), Box::new(ScsiBus::new(cfg.bus.clone())));
            nodes.push(Node { cpu, tx, rx, bus });
        }
        let total = cfg.total_disks();
        let mut disks = Vec::with_capacity(total);
        for g in 0..total {
            let node = g % cfg.nodes;
            let res = engine.add_resource(
                format!("disk{g}@node{node}"),
                Box::new(DiskModel::new(cfg.disk.clone(), root_rng.substream(g as u64).next_u64())),
            );
            disks.push(DiskRef { res, bus: nodes[node].bus, node });
        }
        Cluster { cfg, nodes, disks }
    }

    /// Hot-add one disk to the single I/O space and return its global
    /// number. The new disk follows the same numbering, bus attachment
    /// and seed-substream rules as boot-time disks, so a disk added at
    /// runtime as global number `g` is indistinguishable from one built
    /// as `g` — runs that reconfigure stay deterministic.
    pub fn add_disk(&mut self, engine: &mut Engine) -> usize {
        let g = self.disks.len();
        let node = g % self.cfg.nodes;
        let root_rng = SplitMix64::new(self.cfg.seed);
        let res = engine.add_resource(
            format!("disk{g}@node{node}"),
            Box::new(DiskModel::new(
                self.cfg.disk.clone(),
                root_rng.substream(g as u64).next_u64(),
            )),
        );
        self.disks.push(DiskRef { res, bus: self.nodes[node].bus, node });
        g
    }

    /// Total disks in the single I/O space.
    pub fn ndisks(&self) -> usize {
        self.disks.len()
    }

    /// Node that physically hosts global disk `disk`.
    pub fn node_of_disk(&self, disk: usize) -> usize {
        self.disks[disk].node
    }

    /// Network path for a message from node `src` to node `dst`
    /// (a local path when they coincide).
    pub fn path(&self, src: usize, dst: usize) -> NetPath {
        if src == dst {
            NetPath::local(self.nodes[src].cpu)
        } else {
            NetPath::remote(
                self.nodes[src].cpu,
                self.nodes[src].tx,
                self.nodes[dst].rx,
                self.nodes[dst].cpu,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::plan::use_res;
    use sim_core::Demand;

    #[test]
    fn global_disk_numbering_round_robins_nodes() {
        let mut e = Engine::new();
        let c = Cluster::build(ClusterConfig::trojans_4x3(), &mut e);
        assert_eq!(c.ndisks(), 12);
        // Figure 3: D0..D3 on nodes 0..3, D4 back on node 0.
        for g in 0..12 {
            assert_eq!(c.node_of_disk(g), g % 4);
        }
        // Disks of one node share that node's bus.
        assert_eq!(c.disks[0].bus, c.disks[4].bus);
        assert_eq!(c.disks[0].bus, c.nodes[0].bus);
        assert_ne!(c.disks[0].bus, c.disks[1].bus);
    }

    #[test]
    fn paths_distinguish_local_and_remote() {
        let mut e = Engine::new();
        let c = Cluster::build(ClusterConfig::shape(2, 1), &mut e);
        assert!(!c.path(0, 0).is_remote());
        assert!(c.path(0, 1).is_remote());
    }

    #[test]
    fn disks_have_distinct_seeds() {
        // Two disks doing the same random access pattern must not produce
        // identical timings (they'd be rotationally locked otherwise).
        let mut e = Engine::new();
        let c = Cluster::build(ClusterConfig::trojans(), &mut e);
        let offs = [0u64, 1 << 30, 5 << 20, 3 << 28];
        for (i, &off) in offs.iter().enumerate() {
            e.spawn_job(
                format!("a{i}"),
                use_res(c.disks[0].res, Demand::DiskRead { offset: off, bytes: 4096 }),
            );
            e.spawn_job(
                format!("b{i}"),
                use_res(c.disks[1].res, Demand::DiskRead { offset: off, bytes: 4096 }),
            );
        }
        e.run().unwrap();
        let a = e.resource_stats(c.disks[0].res).busy;
        let b = e.resource_stats(c.disks[1].res).busy;
        assert_ne!(a, b);
    }

    #[test]
    fn build_is_deterministic() {
        let run = || {
            let mut e = Engine::new();
            let c = Cluster::build(ClusterConfig::trojans(), &mut e);
            e.spawn_job(
                "j",
                use_res(c.disks[3].res, Demand::DiskWrite { offset: 123 << 20, bytes: 65536 }),
            );
            e.run().unwrap().end
        };
        assert_eq!(run(), run());
    }
}
