//! Cluster configuration.

use sim_disk::{BusSpec, DiskSpec};
use sim_net::NetSpec;

/// Full description of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (each node is a client host and a storage host —
    /// the cluster is serverless).
    pub nodes: usize,
    /// Disks attached to each node (the `k` of the paper's n×k arrays).
    pub disks_per_node: usize,
    /// Disk hardware parameters.
    pub disk: DiskSpec,
    /// SCSI bus parameters (one bus per node, shared by its disks).
    pub bus: BusSpec,
    /// Interconnect parameters.
    pub net: NetSpec,
    /// Logical block size of the single I/O space (the paper's stripe
    /// unit; its small accesses are one 32 KB block).
    pub block_size: u64,
    /// Seed for all stochastic components.
    pub seed: u64,
}

impl ClusterConfig {
    /// The Trojans cluster as benchmarked in Figure 5 / Table 3: 16 Linux
    /// PCs on switched Fast Ethernet, one SCSI disk each.
    pub fn trojans() -> Self {
        ClusterConfig {
            nodes: 16,
            disks_per_node: 1,
            disk: DiskSpec::classic_scsi(),
            bus: BusSpec::ultra_scsi(),
            net: NetSpec::fast_ethernet(),
            block_size: 32 << 10,
            seed: 0x5EED_0001,
        }
    }

    /// The 4×3 two-dimensional configuration of Figure 3: 4 nodes with 3
    /// disks each (parallelism 4, pipeline depth 3).
    pub fn trojans_4x3() -> Self {
        ClusterConfig { nodes: 4, disks_per_node: 3, ..Self::trojans() }
    }

    /// An arbitrary n×k shape with Trojans-class hardware.
    pub fn shape(nodes: usize, disks_per_node: usize) -> Self {
        ClusterConfig { nodes, disks_per_node, ..Self::trojans() }
    }

    /// Total number of disks in the single I/O space.
    pub fn total_disks(&self) -> usize {
        self.nodes * self.disks_per_node
    }

    /// Blocks per disk.
    pub fn blocks_per_disk(&self) -> u64 {
        self.disk.capacity / self.block_size
    }

    /// Validate structural invariants; panics with a clear message on a
    /// nonsensical configuration.
    pub fn validate(&self) {
        assert!(self.nodes > 0, "cluster needs at least one node");
        assert!(self.disks_per_node > 0, "nodes need at least one disk");
        assert!(self.block_size > 0, "block size must be nonzero");
        assert!(self.blocks_per_disk() >= 4, "disk capacity must hold at least four blocks");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trojans_matches_paper() {
        let c = ClusterConfig::trojans();
        c.validate();
        assert_eq!(c.nodes, 16);
        assert_eq!(c.total_disks(), 16);
        assert_eq!(c.block_size, 32 << 10);
    }

    #[test]
    fn four_by_three() {
        let c = ClusterConfig::trojans_4x3();
        c.validate();
        assert_eq!(c.total_disks(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ClusterConfig::shape(0, 1).validate();
    }
}
