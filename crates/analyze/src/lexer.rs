//! The shared Rust tokenizer of the static analyzer.
//!
//! One pass over a source file produces two synchronized views:
//!
//! * a [`Token`] stream with 1-based line numbers — identifiers, puncts,
//!   string-literal *contents*, char literals, lifetimes, numbers and doc
//!   comments, with ordinary comments dropped and nothing else blanked —
//!   what the item-level parser and the call/match extractors consume;
//! * per-line [`LineView`]s — the line's code with string/char literal
//!   contents removed and comments stripped, plus the body of a trailing
//!   `//` comment — what the pattern-matching determinism rules and the
//!   acknowledgement scanner consume.
//!
//! The lexer understands the token shapes that break naive line scanners:
//! raw strings (`r#"…"#`, any hash depth, byte variants), nested block
//! comments, multi-line string literals, escaped quotes, and the lifetime
//! vs. char-literal ambiguity (`'a` vs `'a'`).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (includes `_`).
    Ident,
    /// The *content* of a string literal (normal, raw or byte).
    Str,
    /// A char or byte-char literal (content not preserved).
    Char,
    /// A lifetime marker (`'a`), name without the quote.
    Lifetime,
    /// A numeric literal.
    Num,
    /// A single punctuation character.
    Punct,
    /// A doc comment (`///` or `//!`), body preserved.
    DocComment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Identifier text, string content, lifetime name, number text,
    /// single punct character, or doc-comment body.
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: usize,
}

impl Token {
    /// Is this the punct `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Is this the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// One source line split into code and trailing line comment.
#[derive(Debug, Clone, Default)]
pub struct LineView {
    /// The trimmed raw line (for finding snippets).
    pub raw: String,
    /// Code with string/char contents blanked and comments removed.
    pub code: String,
    /// Body of a trailing `//` comment, if any.
    pub comment: Option<String>,
    /// The trailing comment was a doc comment (`///` or `//!`).
    pub doc: bool,
}

/// The full lex of one file.
#[derive(Debug, Clone, Default)]
pub struct FileLex {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Per-line views, index 0 = line 1.
    pub lines: Vec<LineView>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    /// Inside `/* … */` with nesting depth.
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string closed by `"` + this many `#`s.
    RawStr(u8),
}

struct Lexer {
    state: State,
    out: FileLex,
    /// Content of the string literal currently being captured, with the
    /// line it started on.
    str_buf: String,
    str_line: usize,
}

impl Lexer {
    fn push_tok(&mut self, kind: TokKind, text: impl Into<String>, line: usize) {
        self.out.tokens.push(Token { kind, text: text.into(), line });
    }

    fn close_str(&mut self) {
        let text = std::mem::take(&mut self.str_buf);
        let line = self.str_line;
        self.push_tok(TokKind::Str, text, line);
        self.state = State::Code;
    }

    /// Lex one line (no terminator), appending its [`LineView`].
    fn line(&mut self, lineno: usize, line: &str) {
        let b = line.as_bytes();
        let mut view =
            LineView { raw: line.trim().to_string(), code: String::new(), ..Default::default() };
        let mut i = 0;
        while i < b.len() {
            match self.state {
                State::BlockComment(depth) => {
                    if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        self.state =
                            if depth > 1 { State::BlockComment(depth - 1) } else { State::Code };
                        i += 2;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        self.state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                State::Str => {
                    if b[i] == b'\\' {
                        if let Some(&c) = b.get(i + 1) {
                            self.str_buf.push('\\');
                            self.str_buf.push(c as char);
                        }
                        i += 2; // skip the escaped char (or line continuation)
                    } else if b[i] == b'"' {
                        self.close_str();
                        i += 1;
                    } else {
                        self.str_buf.push(b[i] as char);
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    let close = b[i] == b'"'
                        && b[i + 1..].iter().take(hashes as usize).filter(|&&c| c == b'#').count()
                            == hashes as usize;
                    if close {
                        self.close_str();
                        i += 1 + hashes as usize;
                    } else {
                        self.str_buf.push(b[i] as char);
                        i += 1;
                    }
                }
                State::Code => i = self.code_at(lineno, line, i, &mut view),
            }
        }
        if matches!(self.state, State::Str | State::RawStr(_)) {
            // Multi-line string: the content spans lines; keep capturing.
            self.str_buf.push('\n');
        }
        self.out.lines.push(view);
    }

    /// Lex from position `i` of a line in code state; returns the next
    /// position (or the line length when a line comment consumed the rest).
    fn code_at(&mut self, lineno: usize, line: &str, i: usize, view: &mut LineView) -> usize {
        let b = line.as_bytes();
        let prev_ident = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let doc = matches!(b.get(i + 2), Some(&b'/') | Some(&b'!'));
                let body = &line[i + 2..];
                view.comment = Some(body.to_string());
                view.doc = doc;
                if doc {
                    self.push_tok(TokKind::DocComment, body, lineno);
                }
                line.len()
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                self.state = State::BlockComment(1);
                i + 2
            }
            b'"' => {
                self.state = State::Str;
                self.str_buf.clear();
                self.str_line = lineno;
                i + 1
            }
            b'r' | b'b' if !prev_ident => {
                // Raw / byte string starts: `r"`, `r#"`, `br#"`, `b"`.
                let mut j = i + 1;
                if b[i] == b'b' && b.get(j) == Some(&b'r') {
                    j += 1;
                }
                let mut hashes = 0u8;
                while b.get(j + hashes as usize) == Some(&b'#') {
                    hashes += 1;
                }
                let quoted = b.get(j + hashes as usize) == Some(&b'"');
                if quoted && (b[i] == b'r' || j > i + 1) {
                    self.state = State::RawStr(hashes);
                    self.str_buf.clear();
                    self.str_line = lineno;
                    j + hashes as usize + 1
                } else if b[i] == b'b' && b.get(i + 1) == Some(&b'"') {
                    self.state = State::Str;
                    self.str_buf.clear();
                    self.str_line = lineno;
                    i + 2
                } else {
                    self.ident_at(lineno, line, i, view)
                }
            }
            b'\'' if !prev_ident => {
                // Char literal vs lifetime: a literal closes with `'`
                // after one (possibly escaped) char.
                let lit_end = if b.get(i + 1) == Some(&b'\\') {
                    // Closing quote sits after the backslash + escaped
                    // char ('\n', '\'', '\x7f', '\u{…}').
                    b.get(i + 3..)
                        .and_then(|rest| rest.iter().position(|&c| c == b'\''))
                        .map(|p| i + 4 + p)
                } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
                    Some(i + 3)
                } else {
                    None
                };
                match lit_end {
                    Some(end) => {
                        self.push_tok(TokKind::Char, "", lineno);
                        end // literal content blanked from the view too
                    }
                    None => {
                        // Lifetime: quote plus the following identifier.
                        let mut j = i + 1;
                        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                            j += 1;
                        }
                        view.code.push('\'');
                        view.code.push_str(&line[i + 1..j]);
                        self.push_tok(TokKind::Lifetime, &line[i + 1..j], lineno);
                        j.max(i + 1)
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => self.ident_at(lineno, line, i, view),
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'.')
                {
                    // `0..n` range: stop the number before `..`.
                    if b[j] == b'.' && b.get(j + 1) == Some(&b'.') {
                        break;
                    }
                    j += 1;
                }
                view.code.push_str(&line[i..j]);
                self.push_tok(TokKind::Num, &line[i..j], lineno);
                j
            }
            c => {
                view.code.push(c as char);
                if !c.is_ascii_whitespace() {
                    self.push_tok(TokKind::Punct, (c as char).to_string(), lineno);
                }
                i + 1
            }
        }
    }

    fn ident_at(&mut self, lineno: usize, line: &str, i: usize, view: &mut LineView) -> usize {
        let b = line.as_bytes();
        let mut j = i;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        view.code.push_str(&line[i..j]);
        self.push_tok(TokKind::Ident, &line[i..j], lineno);
        j
    }
}

/// Lex a whole file.
pub fn lex(text: &str) -> FileLex {
    let mut lx =
        Lexer { state: State::Code, out: FileLex::default(), str_buf: String::new(), str_line: 0 };
    for (idx, line) in text.lines().enumerate() {
        lx.line(idx + 1, line);
    }
    lx.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(text: &str) -> Vec<String> {
        lex(text).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_become_content_tokens() {
        let fx = lex("call(\"op:{i}\", 2)");
        let strs: Vec<_> = fx.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "op:{i}");
        assert_eq!(strs[0].line, 1);
        // The line view blanks the content.
        assert!(!fx.lines[0].code.contains("op:"), "{}", fx.lines[0].code);
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let fx = lex("let r = r#\"inner \"quoted\" text\"#; tail()");
        let strs: Vec<_> = fx.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs[0].text, "inner \"quoted\" text");
        assert!(idents("let r = r#\"x\"#; tail()").contains(&"tail".to_string()));
    }

    #[test]
    fn nested_block_comments_drop() {
        let src = "a /* one /* two */ still */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let fx = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> = fx.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        let chars = fx.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn multiline_string_is_one_token_at_start_line() {
        let src = "a(\"first\nsecond with Instant::now()\nthird\");\nb()";
        let fx = lex(src);
        let strs: Vec<_> = fx.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].line, 1);
        assert!(strs[0].text.contains("second"));
        // Lines 2 and 3 carry no code from the string interior.
        assert!(fx.lines[1].code.is_empty());
        assert!(idents(src).contains(&"b".to_string()));
    }

    #[test]
    fn doc_comments_are_tokens_line_comments_are_not() {
        let fx = lex("/// docs here\n// plain note\nfn f() {}");
        let docs: Vec<_> = fx.tokens.iter().filter(|t| t.kind == TokKind::DocComment).collect();
        assert_eq!(docs.len(), 1);
        assert!(fx.lines[1].comment.is_some());
        assert!(!fx.lines[1].doc);
    }

    #[test]
    fn byte_strings_and_numbers() {
        let fx = lex("let x = b\"ab\"; let n = 0x1f_u32; let r = 0..10;");
        assert!(fx.tokens.iter().any(|t| t.kind == TokKind::Str && t.text == "ab"));
        assert!(fx.tokens.iter().any(|t| t.kind == TokKind::Num && t.text == "0x1f_u32"));
        // `0..10` lexes as two numbers around a range, not one float.
        assert!(fx.tokens.iter().any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(fx.tokens.iter().any(|t| t.kind == TokKind::Num && t.text == "10"));
    }
}
