//! Rule family 2 — trace-point / fault-trigger conformance.
//!
//! `sim_core::fault::FaultPlan` fires named triggers when the workload
//! announces a trace point via `hit_point`. A trigger whose point name
//! is never announced anywhere in the workspace can never fire — the
//! fault plan silently does nothing, and the test it backs silently
//! stops testing. This rule collects, across the whole file set:
//!
//! * **triggers** — first arguments of non-test `.at_point(…)` calls
//!   and `point:` fields of `FaultTrigger::AtPoint { … }` constructions;
//! * **announcements** — first arguments of `.hit_point(…)` calls
//!   (tests included: a test announcing a point makes it real).
//!
//! Names are resolved from string literals, `format!` calls (matched by
//! the literal prefix before the first `{` placeholder), and `let`
//! bindings to either of those within the same file. A trigger that
//! resolves to a name (or prefix) with no overlapping announcement is a
//! finding; arguments that cannot be resolved statically (plain
//! variables from function parameters) are skipped.

use crate::lexer::{TokKind, Token};
use crate::{Finding, ParsedFile};

/// Stable rule id for this family.
pub const RULE: &str = "fault-trigger";

/// A point name resolved from a call argument.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Name {
    /// A full literal name.
    Exact(String),
    /// A `format!` name matched by its literal prefix.
    Prefix(String),
}

/// Token range of the first argument of the call whose `(` is at `open`
/// (exclusive of the comma/closing paren).
fn first_arg(toks: &[Token], open: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return (open + 1, j);
            }
        } else if depth == 1 && t.is_punct(',') {
            return (open + 1, j);
        }
        j += 1;
    }
    (open + 1, j)
}

/// Resolve an argument token range to a point name, chasing one level
/// of `let` binding backward through the same file's tokens.
fn resolve(toks: &[Token], arg: (usize, usize), depth: u32) -> Option<Name> {
    let slice = &toks[arg.0..arg.1];
    if let Some(pos) = slice.iter().position(|t| t.kind == TokKind::Str) {
        let content = slice[pos].text.clone();
        let fmt = slice[..pos].iter().any(|t| t.is_ident("format"));
        return Some(if fmt {
            Name::Prefix(content.split('{').next().unwrap_or("").to_string())
        } else {
            Name::Exact(content)
        });
    }
    if depth == 0 {
        return None;
    }
    // Bare identifier (skipping `&`, `mut`, trailing `.clone()` etc.):
    // chase `let <ident> = …;` backward in this file.
    let ident = slice.iter().find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))?;
    let name = ident.text.as_str();
    for k in (0..arg.0).rev() {
        if toks[k].is_ident("let")
            && toks.get(k + 1).is_some_and(|t| t.is_ident(name) || t.is_ident("mut"))
        {
            // `let name = …;` or `let mut name = …;`
            let at = if toks[k + 1].is_ident("mut") { k + 2 } else { k + 1 };
            if !toks.get(at).is_some_and(|t| t.is_ident(name)) {
                continue;
            }
            let mut end = at;
            while end < arg.0 && !toks[end].is_punct(';') {
                end += 1;
            }
            return resolve(toks, (at + 1, end), depth - 1);
        }
    }
    None
}

/// A resolved trigger site.
struct Trigger {
    file: String,
    line: usize,
    name: Name,
}

fn collect(files: &[ParsedFile]) -> (Vec<Trigger>, Vec<Name>) {
    let mut triggers = Vec::new();
    let mut announces = Vec::new();
    for pf in files {
        let toks = &pf.lex.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let after_dot = i > 0 && toks[i - 1].is_punct('.');
            let open_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if t.text == "hit_point" && after_dot && open_paren {
                if let Some(name) = resolve(toks, first_arg(toks, i + 1), 1) {
                    announces.push(name);
                }
            } else if t.text == "at_point" && after_dot && open_paren && !pf.in_test(t.line) {
                if let Some(name) = resolve(toks, first_arg(toks, i + 1), 1) {
                    triggers.push(Trigger { file: pf.path.clone(), line: t.line, name });
                }
            } else if t.text == "AtPoint"
                && toks.get(i + 1).is_some_and(|n| n.is_punct('{'))
                && !pf.in_test(t.line)
            {
                // `FaultTrigger::AtPoint { point: …, hit: … }` literal.
                let (b, e) = first_arg(toks, i + 1); // first field range
                let range = if toks[b..e].iter().any(|x| x.is_ident("point")) {
                    Some((b, e))
                } else {
                    // `point` may be the second field.
                    let (b2, e2) = first_arg(toks, e);
                    toks[b2..e2].iter().any(|x| x.is_ident("point")).then_some((b2, e2))
                };
                if let Some(r) = range {
                    if let Some(name) = resolve(toks, r, 1) {
                        triggers.push(Trigger { file: pf.path.clone(), line: t.line, name });
                    }
                }
            }
        }
    }
    (triggers, announces)
}

fn announced(trigger: &Name, announces: &[Name]) -> bool {
    announces.iter().any(|a| match (trigger, a) {
        (Name::Exact(t), Name::Exact(e)) => t == e,
        (Name::Exact(t), Name::Prefix(p)) => t.starts_with(p.as_str()),
        (Name::Prefix(tp), Name::Exact(e)) => e.starts_with(tp.as_str()),
        (Name::Prefix(tp), Name::Prefix(p)) => {
            p.starts_with(tp.as_str()) || tp.starts_with(p.as_str())
        }
    })
}

/// Check every resolved trigger against the workspace's announcements.
pub fn scan(files: &[ParsedFile]) -> Vec<Finding> {
    let (triggers, announces) = collect(files);
    triggers
        .into_iter()
        .filter(|t| !announced(&t.name, &announces))
        .map(|t| {
            let shown = match &t.name {
                Name::Exact(s) => format!("\"{s}\""),
                Name::Prefix(s) => format!("format!(\"{s}…\")"),
            };
            Finding {
                rule: RULE,
                file: t.file,
                line: t.line,
                message: format!("fault trigger point {shown} is never announced via hit_point"),
                acknowledged: false,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn parse_all(files: &[(&str, &str)]) -> Vec<ParsedFile> {
        files.iter().map(|(p, t)| ParsedFile::parse(&SourceFile::new(*p, *t))).collect()
    }

    #[test]
    fn ghost_trigger_is_flagged_matching_one_is_not() {
        let files = parse_all(&[
            (
                "verify/src/sweep.rs",
                "fn f(plan: &mut Plan) {\n    plan.at_point(\"op:3\", 1, fault());\n    \
                 plan.at_point(\"ghost-point\", 1, fault());\n}\n",
            ),
            (
                "workloads/src/script.rs",
                "fn run(inj: &mut Inj, i: u32) {\n    inj.hit_point(&format!(\"op:{i}\"));\n}\n",
            ),
        ]);
        let f = scan(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("ghost-point"), "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn let_bound_format_trigger_resolves_cross_statement() {
        let files = parse_all(&[
            (
                "verify/src/sweep.rs",
                "fn f(plan: &mut Plan, at: u32) {\n    let inject = format!(\"op:{at}\");\n    \
                 plan.at_point(inject, 1, fault());\n}\n",
            ),
            ("workloads/src/script.rs", "fn run(inj: &mut Inj) { inj.hit_point(\"op:7\"); }\n"),
        ]);
        assert!(scan(&files).is_empty(), "{:?}", scan(&files));
    }

    #[test]
    fn test_scope_triggers_and_atpoint_literals() {
        let files = parse_all(&[(
            "sim-core/src/fault.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(p: &mut Plan) { p.at_point(\"unannounced\", 1, f()); }\n}\n\
             fn build() -> FaultTrigger {\n    FaultTrigger::AtPoint { point: \"never\".to_string(), hit: 1 }\n}\n",
        )]);
        let f = scan(&files);
        // The test-module trigger is skipped; the AtPoint literal is not.
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never"), "{f:?}");
    }

    #[test]
    fn unresolvable_variable_args_are_skipped() {
        let files = parse_all(&[(
            "cdd/src/fault.rs",
            "fn fwd(plan: &mut Plan, name: &str) { plan.at_point(name, 1, f()); }\n",
        )]);
        assert!(scan(&files).is_empty());
    }
}
