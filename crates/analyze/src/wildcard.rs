//! Rule family 3 — wildcard arms over safety-critical enums.
//!
//! A `_` (or bare-binding) arm in a match over `cdd::error::IoError`,
//! `sim_core::fault::FaultEvent`, `sim_core::trace::TracePoint` or the
//! cdd `ReadSource` silently swallows every variant added later —
//! exactly the enums where a new fault kind or read path must force
//! every handler to be revisited. This rule bans them: matches are
//! classified as safety-critical when any arm pattern names one of
//! those enums as a path (`IoError::…`), and a critical match may not
//! contain an arm whose whole pre-guard pattern is `_` or a plain
//! binding identifier. Test-scope matches are exempt, and `matches!`
//! macro uses are out of scope (they cannot grow arms).

use crate::lexer::{TokKind, Token};
use crate::matchexpr::find_matches;
use crate::{Finding, ParsedFile};

/// Stable rule id for this family.
pub const RULE: &str = "wildcard-match";

/// Enums whose matches must stay exhaustive variant-by-variant.
const CRITICAL_ENUMS: [&str; 4] = ["IoError", "FaultEvent", "TracePoint", "ReadSource"];

/// The critical enum named by a path in this pattern range, if any.
fn critical_enum(toks: &[Token], range: (usize, usize)) -> Option<&'static str> {
    (range.0..range.1.saturating_sub(1)).find_map(|k| {
        let t = &toks[k];
        let path = toks[k + 1].is_punct(':') && toks.get(k + 2).is_some_and(|n| n.is_punct(':'));
        CRITICAL_ENUMS.iter().find(|&&e| t.is_ident(e) && path).copied()
    })
}

/// Is this whole-arm pattern a wildcard: `_`, `x`, or `mut x`?
fn is_wildcard(toks: &[Token], range: (usize, usize)) -> bool {
    let slice = &toks[range.0..range.1];
    let idents: Vec<&Token> = slice.iter().collect();
    match idents.as_slice() {
        [t] => {
            t.is_ident("_")
                || (t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "true" | "false")
                    && t.text.chars().next().is_some_and(|c| c.is_ascii_lowercase()))
        }
        [m, t] => {
            m.is_ident("mut")
                && is_wildcard(toks, (range.0 + 1, range.1))
                && t.kind == TokKind::Ident
        }
        _ => false,
    }
}

/// Scan one parsed file for wildcard arms in critical matches.
pub fn scan(pf: &ParsedFile) -> Vec<Finding> {
    let toks = &pf.lex.tokens;
    let mut out = Vec::new();
    for m in find_matches(toks) {
        if pf.in_test(m.line) {
            continue;
        }
        let Some(enum_name) = m.arms.iter().find_map(|a| critical_enum(toks, a.pattern)) else {
            continue;
        };
        for arm in &m.arms {
            if is_wildcard(toks, arm.pattern) {
                let shown: String =
                    toks[arm.pattern.0..arm.pattern.1].iter().map(|t| t.text.as_str()).collect();
                out.push(Finding {
                    rule: RULE,
                    file: pf.path.clone(),
                    line: arm.line,
                    message: format!(
                        "wildcard arm `{shown}` in match over safety-critical enum {enum_name} — \
                         spell out the remaining variants"
                    ),
                    acknowledged: false,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn scan_src(src: &str) -> Vec<Finding> {
        scan(&ParsedFile::parse(&SourceFile::new("cdd/src/x.rs", src)))
    }

    #[test]
    fn underscore_and_binding_wildcards_flagged() {
        let src = "\
fn f(e: IoError) -> u32 {
    match e {
        IoError::DataLoss { lb } => lb as u32,
        _ => 0,
    }
}
fn g(e: FaultEvent) -> u32 {
    match e {
        FaultEvent::DiskFail { .. } => 1,
        other => drop_it(other),
    }
}
";
        let f = scan_src(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("IoError"));
        assert!(f[1].message.contains("FaultEvent"));
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn exhaustive_and_noncritical_matches_clean() {
        let src = "\
fn f(e: IoError) -> u32 {
    match e {
        IoError::DataLoss { lb } => lb as u32,
        IoError::Lock(c) => c.len(),
    }
}
fn g(n: u32) -> u32 {
    match n {
        0 => 1,
        _ => 2,
    }
}
";
        assert!(scan_src(src).is_empty(), "{:?}", scan_src(src));
    }

    #[test]
    fn guards_do_not_hide_wildcards_and_tests_are_exempt() {
        let src = "\
fn f(e: ReadSource) -> u32 {
    match e {
        ReadSource::Primary(a) => a,
        x if check(x) => 1,
        _ => 0,
    }
}
#[cfg(test)]
mod tests {
    fn t(e: IoError) -> u32 {
        match e { IoError::DataLoss { .. } => 1, _ => 0 }
    }
}
";
        let f = scan_src(src);
        // The guarded binding arm and the `_` arm both flag; the test
        // module's wildcard does not.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.line < 8));
    }

    #[test]
    fn matches_macro_is_out_of_scope() {
        let src = "fn f(e: ReadSource) -> bool { matches!(e, ReadSource::Image(_)) }\n";
        assert!(scan_src(src).is_empty());
    }
}
