//! Rule family 4 — lock-grant discipline in `crates/cdd`.
//!
//! The dynamic lock-order pass only sees grant/release imbalance when a
//! schedule happens to execute the leaky path. This intra-function
//! check flags the shape statically: any non-test `cdd` function that
//! calls `.acquire(…)` / `.acquire_unchecked(…)` on a lock table must
//! either call `.release(…)` / `.try_release(…)` / `.surrender(…)`
//! somewhere in the same function or hand the grant out (its signature
//! mentions `LockHandle`). For `let`-bound grants the window between
//! the acquire statement and the first release is additionally scanned
//! for early exits (`return` or `?`) that would leak the held grant.
//! Findings on intentional shapes are acknowledged with
//! `lint-ok(lock-discipline): reason`.

use crate::lexer::{TokKind, Token};
use crate::parser::{flatten, ItemKind};
use crate::{Finding, ParsedFile};

/// Stable rule id for this family.
pub const RULE: &str = "lock-discipline";

const ACQUIRES: [&str; 2] = ["acquire", "acquire_unchecked"];
const RELEASES: [&str; 3] = ["release", "try_release", "surrender"];

/// Is `toks[i]` a `.name(` method call for one of `names`?
fn is_call(toks: &[Token], i: usize, names: &[&str]) -> bool {
    toks[i].kind == TokKind::Ident
        && names.iter().any(|n| toks[i].is_ident(n))
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
}

/// Scan one parsed cdd file.
pub fn scan(pf: &ParsedFile) -> Vec<Finding> {
    let toks = &pf.lex.tokens;
    let mut out = Vec::new();
    for item in flatten(&pf.items) {
        if item.kind != ItemKind::Fn || item.cfg_test {
            continue;
        }
        let Some((body_start, body_end)) = item.body else { continue };
        let acquires: Vec<usize> =
            (body_start..body_end).filter(|&k| is_call(toks, k, &ACQUIRES)).collect();
        if acquires.is_empty() {
            continue;
        }
        let first_release = (body_start..body_end).find(|&k| is_call(toks, k, &RELEASES));
        let hands_out =
            (item.sig.0..item.sig.1).any(|k| toks.get(k).is_some_and(|t| t.is_ident("LockHandle")));
        if first_release.is_none() {
            if !hands_out {
                out.push(Finding {
                    rule: RULE,
                    file: pf.path.clone(),
                    line: toks[acquires[0]].line,
                    message: format!(
                        "fn `{}` acquires a lock grant but never releases/surrenders it or \
                         returns a LockHandle",
                        item.name
                    ),
                    acknowledged: false,
                });
            }
            continue;
        }
        // Early-exit window check for let-bound grants: from the end of
        // the acquire statement to the first release, a `return` or `?`
        // leaves the function with the grant still held.
        let release_at = first_release.unwrap_or(body_end);
        for &acq in &acquires {
            if acq >= release_at {
                continue;
            }
            let let_bound = (body_start..acq)
                .rev()
                .take_while(|&k| !toks[k].is_punct(';'))
                .any(|k| toks[k].is_ident("let"));
            if !let_bound {
                continue;
            }
            let mut stmt_end = acq;
            while stmt_end < release_at && !toks[stmt_end].is_punct(';') {
                stmt_end += 1;
            }
            for k in stmt_end..release_at {
                let t = &toks[k];
                if t.is_ident("return") || t.is_punct('?') {
                    out.push(Finding {
                        rule: RULE,
                        file: pf.path.clone(),
                        line: t.line,
                        message: format!(
                            "fn `{}`: early exit between lock acquire (line {}) and release may \
                             leak the grant",
                            item.name, toks[acq].line
                        ),
                        acknowledged: false,
                    });
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn scan_src(src: &str) -> Vec<Finding> {
        scan(&ParsedFile::parse(&SourceFile::new("cdd/src/x.rs", src)))
    }

    #[test]
    fn leak_without_release_is_flagged() {
        let src = "\
fn leaky(&mut self) -> Result<(), IoError> {
    let h = self.locks.acquire(c, lb, n).map_err(IoError::Lock)?;
    do_work(h.id());
    Ok(())
}
";
        let f = scan_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never releases"));
    }

    #[test]
    fn balanced_and_handle_returning_fns_are_clean() {
        let src = "\
fn balanced(&mut self) -> Result<(), IoError> {
    let h = self.locks.acquire(c, lb, n).map_err(IoError::Lock)?;
    do_work(h.id());
    self.locks.release(h);
    Ok(())
}
fn hands_out(&mut self) -> Result<LockHandle, IoError> {
    self.locks.acquire(c, lb, n).map_err(IoError::Lock)
}
";
        assert!(scan_src(src).is_empty(), "{:?}", scan_src(src));
    }

    #[test]
    fn early_return_between_acquire_and_release_is_flagged() {
        let src = "\
fn risky(&mut self) -> Result<(), IoError> {
    let h = self.locks.acquire(c, lb, n).map_err(IoError::Lock)?;
    self.plan_request(lb, n)?;
    self.locks.release(h);
    Ok(())
}
";
        let f = scan_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("early exit"), "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn non_let_bound_match_acquire_with_release_is_clean() {
        // The proto.rs shape: acquire inside a match scrutinee, release
        // in another arm of the same function.
        let src = "\
fn step(&mut self, s: &mut State) {
    match s.table.acquire(t, start, len) {
        Ok(h) => s.held.push(h),
        Err(c) => s.blocked.push(c),
    }
    if let Some(h) = s.held.pop() {
        s.table.try_release(h).ok();
    }
}
";
        assert!(scan_src(src).is_empty(), "{:?}", scan_src(src));
    }
}
