//! Item-level parser over the [`crate::lexer`] token stream.
//!
//! Not a full Rust grammar — just enough structure for whole-workspace
//! lint rules: the item tree (modules, functions, impls, structs, enums,
//! traits, consts) with attributes, visibility, doc-comment presence and
//! line spans; `#[cfg(test)]` scoping at item granularity; and match
//! expressions with their arm patterns. Everything operates on token
//! indices into the file's stream, so rules can re-scan any region.

use crate::lexer::{FileLex, TokKind, Token};

/// What kind of item a parsed node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`
    Mod,
    /// `fn name(…) -> … { … }`
    Fn,
    /// `impl Type { … }` / `impl Trait for Type { … }`
    Impl,
    /// `struct` / `union`
    Struct,
    /// `enum`
    Enum,
    /// `trait`
    Trait,
    /// `const` / `static`
    Const,
    /// `type` alias
    TypeAlias,
    /// `use` / `extern crate`
    Use,
    /// `macro_rules!`
    Macro,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item's kind.
    pub kind: ItemKind,
    /// Declared name (impl blocks: the headline type path; empty when
    /// anonymous).
    pub name: String,
    /// Exactly `pub` (not `pub(crate)`/`pub(super)`).
    pub vis_pub: bool,
    /// Item (or an ancestor) carries `#[cfg(test)]`.
    pub cfg_test: bool,
    /// A `///` doc comment or `#[doc…]` immediately precedes the item.
    pub has_doc: bool,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// 1-based line of the item's last token.
    pub end_line: usize,
    /// Token range of the signature (keyword up to the body brace).
    pub sig: (usize, usize),
    /// Token index range of the `{ … }` body interior, if any.
    pub body: Option<(usize, usize)>,
    /// `impl Trait for Type` (vs an inherent impl).
    pub impl_for_trait: bool,
    /// Child items (modules, impl and trait bodies).
    pub children: Vec<Item>,
}

impl Item {
    /// This item and all descendants, depth-first.
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a Item>) {
        out.push(self);
        for c in &self.children {
            c.walk(out);
        }
    }
}

/// Parse the item tree of a lexed file.
pub fn parse_items(fx: &FileLex) -> Vec<Item> {
    parse_range(&fx.tokens, 0, fx.tokens.len(), false)
}

/// Every item in the tree, flattened depth-first.
pub fn flatten(items: &[Item]) -> Vec<&Item> {
    let mut out = Vec::new();
    for it in items {
        it.walk(&mut out);
    }
    out
}

/// 1-based line ranges covered by `#[cfg(test)]` items.
pub fn test_line_spans(items: &[Item]) -> Vec<(usize, usize)> {
    flatten(items).into_iter().filter(|it| it.cfg_test).map(|it| (it.line, it.end_line)).collect()
}

/// Is `line` inside any of the given spans?
pub fn in_spans(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|&(a, b)| a <= line && line <= b)
}

const ITEM_KEYWORDS: [(&str, ItemKind); 12] = [
    ("mod", ItemKind::Mod),
    ("fn", ItemKind::Fn),
    ("impl", ItemKind::Impl),
    ("struct", ItemKind::Struct),
    ("union", ItemKind::Struct),
    ("enum", ItemKind::Enum),
    ("trait", ItemKind::Trait),
    ("const", ItemKind::Const),
    ("static", ItemKind::Const),
    ("type", ItemKind::TypeAlias),
    ("use", ItemKind::Use),
    ("extern", ItemKind::Use),
];

/// Skip a balanced bracket group starting at the opener `toks[i]`;
/// returns the index just past the closer.
pub(crate) fn skip_group(toks: &[Token], i: usize) -> usize {
    let (open, close) = match toks[i].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return i + 1,
    };
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Does the attribute group `[ … ]` starting at index `i` (the `[`)
/// contain `cfg ( test`, possibly with other predicates?
fn attr_is_cfg_test(toks: &[Token], i: usize, end: usize) -> bool {
    (i..end.saturating_sub(2)).any(|k| {
        toks[k].is_ident("cfg")
            && toks[k + 1].is_punct('(')
            && (k + 2..end).take(8).any(|m| toks.get(m).is_some_and(|t| t.is_ident("test")))
    })
}

fn parse_range(toks: &[Token], start: usize, end: usize, inherited_test: bool) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = start;
    let mut pending_test = false;
    let mut pending_doc = false;
    while i < end {
        let t = &toks[i];
        match t.kind {
            TokKind::DocComment => {
                if !t.text.starts_with('!') {
                    pending_doc = true; // `///`, not the inner `//!`
                }
                i += 1;
            }
            TokKind::Punct if t.is_punct('#') => {
                // Attribute: `#[ … ]` (outer) or `#![ … ]` (inner).
                let inner = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
                let open = if inner { i + 2 } else { i + 1 };
                if toks.get(open).is_some_and(|n| n.is_punct('[')) {
                    let close = skip_group(toks, open);
                    if !inner {
                        pending_test |= attr_is_cfg_test(toks, open, close);
                        pending_doc |= (open..close).any(|k| toks[k].is_ident("doc"));
                    }
                    i = close;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident => {
                let mut j = i;
                let mut vis_pub = false;
                if toks[j].is_ident("pub") {
                    if toks.get(j + 1).is_some_and(|n| n.is_punct('(')) {
                        j = skip_group(toks, j + 1); // pub(crate) etc: not public
                    } else {
                        vis_pub = true;
                        j += 1;
                    }
                }
                // Leading qualifiers before the item keyword.
                while toks
                    .get(j)
                    .is_some_and(|n| ["unsafe", "async", "default"].iter().any(|q| n.is_ident(q)))
                {
                    j += 1;
                }
                let kw = toks.get(j).filter(|n| n.kind == TokKind::Ident).map(|n| n.text.as_str());
                let kind = kw.and_then(|k| {
                    ITEM_KEYWORDS.iter().find(|&&(w, _)| w == k).map(|&(_, knd)| knd)
                });
                // `macro_rules! name { … }`
                let kind = match (kind, kw) {
                    (None, Some("macro_rules")) => Some(ItemKind::Macro),
                    (k, _) => k,
                };
                match kind {
                    Some(kind) if j < end => {
                        let (item, next) = parse_item(
                            toks,
                            j,
                            end,
                            kind,
                            vis_pub,
                            inherited_test || pending_test,
                            pending_doc,
                        );
                        items.push(item);
                        pending_test = false;
                        pending_doc = false;
                        i = next.max(j + 1);
                    }
                    _ => i += 1,
                }
            }
            _ => i += 1,
        }
    }
    items
}

/// Parse one item whose keyword sits at `toks[kw]`; returns the item and
/// the index just past it.
fn parse_item(
    toks: &[Token],
    kw: usize,
    end: usize,
    kind: ItemKind,
    vis_pub: bool,
    cfg_test: bool,
    has_doc: bool,
) -> (Item, usize) {
    let line = toks[kw].line;
    // Name: first ident after the keyword (macro_rules: after the `!`).
    let name = (kw + 1..end.min(kw + 4))
        .find_map(|k| {
            let t = &toks[k];
            (t.kind == TokKind::Ident && !t.is_ident("for")).then(|| t.text.clone())
        })
        .unwrap_or_default();
    // Scan to the body `{` or the terminating `;` at group depth 0.
    let mut depth = 0i32;
    let mut impl_for_trait = false;
    let mut j = kw + 1;
    let mut body: Option<(usize, usize)> = None;
    let mut past = end;
    while j < end {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            j = skip_group(toks, j);
            continue;
        }
        if depth == 0 && kind == ItemKind::Impl && t.is_ident("for") {
            impl_for_trait = true;
        }
        if t.is_punct('<') {
            depth += 1; // generics; `<` in expressions can't start an item sig
        } else if t.is_punct('>') {
            depth = (depth - 1).max(0);
        } else if depth == 0 && t.is_punct(';') && body.is_none() {
            // Bodyless: `use …;`, `const …;`, trait fn decl. Consts may
            // contain `{ … }` block initializers before the `;`.
            past = j + 1;
            break;
        } else if depth == 0 && t.is_punct('{') {
            match kind {
                ItemKind::Const | ItemKind::Use | ItemKind::TypeAlias => {
                    // `const X: T = { … };` — skip the block, keep looking
                    // for the `;`.
                    j = skip_group(toks, j);
                    continue;
                }
                _ => {
                    let close = skip_group(toks, j);
                    body = Some((j + 1, close.saturating_sub(1)));
                    past = close;
                    break;
                }
            }
        }
        j += 1;
    }
    let sig_end = body.map(|(b, _)| b.saturating_sub(1)).unwrap_or(past.saturating_sub(1));
    let children = match (kind, body) {
        (ItemKind::Mod | ItemKind::Impl | ItemKind::Trait, Some((b, e))) => {
            parse_range(toks, b, e, cfg_test)
        }
        _ => Vec::new(),
    };
    let end_line = toks.get(past.saturating_sub(1)).map(|t| t.line).unwrap_or(line);
    (
        Item {
            kind,
            name,
            vis_pub,
            cfg_test,
            has_doc,
            line,
            end_line,
            sig: (kw, sig_end),
            body,
            impl_for_trait,
            children,
        },
        past,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn items_and_test_scopes() {
        let src = "\
pub fn documented() {}
#[cfg(test)]
mod tests {
    fn inner() { helper(); }
}
pub struct After;
";
        let fx = lex(src);
        let items = parse_items(&fx);
        let flat = flatten(&items);
        let names: Vec<_> = flat.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["documented", "tests", "inner", "After"]);
        let spans = test_line_spans(&items);
        assert!(in_spans(&spans, 4), "{spans:?}");
        assert!(!in_spans(&spans, 6), "{spans:?}");
        // Code *after* a test module is still parsed (item granularity).
        assert!(flat.iter().any(|i| i.name == "After" && !i.cfg_test));
    }

    #[test]
    fn impl_kinds_and_doc_detection() {
        let src = "\
/// Docs.
pub struct S;
impl S {
    /// Docs.
    pub fn a(&self) {}
    pub fn undocumented(&self) {}
}
impl std::fmt::Display for S {
    fn fmt(&self) {}
}
";
        let fx = lex(src);
        let flat_owned = parse_items(&fx);
        let flat = flatten(&flat_owned);
        let s = flat.iter().find(|i| i.name == "S" && i.kind == ItemKind::Struct).unwrap();
        assert!(s.has_doc && s.vis_pub);
        let undoc = flat.iter().find(|i| i.name == "undocumented").unwrap();
        assert!(!undoc.has_doc && undoc.vis_pub);
        let imps: Vec<_> = flat.iter().filter(|i| i.kind == ItemKind::Impl).collect();
        assert_eq!(imps.len(), 2);
        assert!(!imps[0].impl_for_trait);
        assert!(imps[1].impl_for_trait);
    }

    #[test]
    fn const_with_block_body_terminates_at_semicolon() {
        let src = "const X: u64 = { 3 + 4 };\npub fn after() {}\n";
        let fx = lex(src);
        let items = parse_items(&fx);
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].name, "after");
    }
}
