//! Rule family 5 — hygiene gates.
//!
//! Three small gates that keep the tree navigable:
//!
//! * `module-size` — production modules stay ≤ 450 lines (the PR-4
//!   cap); the files that predate the cap are grandfathered by exact
//!   path and may not grow new peers;
//! * `no-unwrap` — `unwrap()` / `expect()` outside `#[cfg(test)]` in
//!   the simulation core and the CDD data plane (`sim-core/`, `cdd/`),
//!   where a panic tears down the whole deterministic run; intentional
//!   invariant panics are acknowledged with `lint-ok(no-unwrap):`;
//! * `missing-docs` — publicly reachable `pub` items without a doc
//!   comment (trait-impl members excluded, mirroring rustc's
//!   `missing_docs` reachability rules).

use crate::lexer::TokKind;
use crate::parser::{Item, ItemKind};
use crate::{Finding, ParsedFile};

/// Stable rule id for the module-size gate.
pub const RULE_SIZE: &str = "module-size";
/// Stable rule id for the unwrap/expect gate.
pub const RULE_UNWRAP: &str = "no-unwrap";
/// Stable rule id for the pub-docs gate.
pub const RULE_DOCS: &str = "missing-docs";

/// Production modules may not exceed this many lines.
pub const MODULE_LINE_CAP: usize = 450;

/// Files that predate the cap. Exact workspace-relative paths; nothing
/// may be added here without shrinking something else.
pub const GRANDFATHERED: [&str; 7] = [
    "sim-core/src/hb.rs",
    "sim-core/src/engine.rs",
    "sim-core/src/explore.rs",
    "sim-core/src/trace.rs",
    "sim-core/src/export.rs",
    "sim-core/src/metrics.rs",
    "cfs/src/fs.rs",
];

/// Crates whose non-test code may not `unwrap()`/`expect()`.
const NO_UNWRAP_PREFIXES: [&str; 2] = ["sim-core/", "cdd/"];

fn module_size(pf: &ParsedFile, out: &mut Vec<Finding>) {
    let lines = pf.lex.lines.len();
    if lines > MODULE_LINE_CAP && !GRANDFATHERED.contains(&pf.path.as_str()) {
        out.push(Finding {
            rule: RULE_SIZE,
            file: pf.path.clone(),
            line: 1,
            message: format!(
                "module is {lines} lines (cap {MODULE_LINE_CAP}); split it or shrink it — the \
                 grandfather list is closed"
            ),
            acknowledged: false,
        });
    }
}

fn no_unwrap(pf: &ParsedFile, out: &mut Vec<Finding>) {
    if !NO_UNWRAP_PREFIXES.iter().any(|p| pf.path.starts_with(p)) {
        return;
    }
    let toks = &pf.lex.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        let call = t.kind == TokKind::Ident
            && (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if call && !pf.in_test(t.line) {
            out.push(Finding {
                rule: RULE_UNWRAP,
                file: pf.path.clone(),
                line: t.line,
                message: format!(
                    "`.{}()` outside #[cfg(test)] — return an error or acknowledge the invariant",
                    t.text
                ),
                acknowledged: false,
            });
        }
    }
}

/// Names of `pub` structs/enums/traits declared at reachable positions,
/// so inherent-impl members can inherit their visibility.
fn pub_type_names(items: &[Item], reachable: bool, out: &mut Vec<String>) {
    for it in items {
        let here = reachable && it.vis_pub;
        if here && matches!(it.kind, ItemKind::Struct | ItemKind::Enum | ItemKind::Trait) {
            out.push(it.name.clone());
        }
        if it.kind == ItemKind::Mod {
            pub_type_names(&it.children, here, out);
        }
    }
}

fn missing_docs_walk(
    pf: &ParsedFile,
    items: &[Item],
    reachable: bool,
    pub_types: &[String],
    out: &mut Vec<Finding>,
) {
    for it in items {
        if it.cfg_test {
            continue;
        }
        match it.kind {
            ItemKind::Mod => {
                let here = reachable && it.vis_pub;
                // `pub mod name;` declarations carry their docs as `//!`
                // inside the module file — only inline bodies need docs.
                if it.body.is_some() {
                    flag_if_undocumented(pf, it, reachable, out);
                }
                missing_docs_walk(pf, &it.children, here, pub_types, out);
            }
            ItemKind::Impl => {
                // Trait impls never need docs; inherent impls surface
                // their members iff the self type is pub here.
                if !it.impl_for_trait {
                    let type_pub = pub_types.iter().any(|n| n == &it.name);
                    missing_docs_walk(pf, &it.children, reachable && type_pub, pub_types, out);
                }
            }
            ItemKind::Trait => {
                flag_if_undocumented(pf, it, reachable, out);
                missing_docs_walk(pf, &it.children, reachable && it.vis_pub, pub_types, out);
            }
            ItemKind::Use | ItemKind::Macro => {}
            _ => flag_if_undocumented(pf, it, reachable, out),
        }
    }
}

fn flag_if_undocumented(pf: &ParsedFile, it: &Item, reachable: bool, out: &mut Vec<Finding>) {
    if reachable && it.vis_pub && !it.has_doc && !it.name.is_empty() {
        out.push(Finding {
            rule: RULE_DOCS,
            file: pf.path.clone(),
            line: it.line,
            message: format!("pub {:?} `{}` has no doc comment", it.kind, it.name),
            acknowledged: false,
        });
    }
}

/// Run all three hygiene gates over one parsed file.
pub fn scan(pf: &ParsedFile) -> Vec<Finding> {
    let mut out = Vec::new();
    module_size(pf, &mut out);
    no_unwrap(pf, &mut out);
    let mut pub_types = Vec::new();
    pub_type_names(&pf.items, true, &mut pub_types);
    missing_docs_walk(pf, &pf.items, true, &pub_types, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn scan_path(path: &str, src: &str) -> Vec<Finding> {
        scan(&ParsedFile::parse(&SourceFile::new(path, src)))
    }

    #[test]
    fn oversized_module_flagged_unless_grandfathered() {
        let big = "// filler\n".repeat(MODULE_LINE_CAP + 1);
        let f = scan_path("cdd/src/fresh.rs", &big);
        assert!(f.iter().any(|x| x.rule == RULE_SIZE), "{f:?}");
        let g = scan_path("cfs/src/fs.rs", &big);
        assert!(!g.iter().any(|x| x.rule == RULE_SIZE), "{g:?}");
    }

    #[test]
    fn unwrap_flagged_in_core_crates_only_outside_tests() {
        let src = "\
fn f(v: Option<u32>) -> u32 { v.unwrap() }
#[cfg(test)]
mod tests {
    fn t(v: Option<u32>) -> u32 { v.expect(\"msg\") }
}
";
        let f = scan_path("sim-core/src/x.rs", src);
        assert_eq!(f.iter().filter(|x| x.rule == RULE_UNWRAP).count(), 1, "{f:?}");
        // Outside sim-core/cdd the gate does not apply.
        assert!(scan_path("bench/src/x.rs", src).iter().all(|x| x.rule != RULE_UNWRAP));
    }

    #[test]
    fn missing_docs_on_reachable_pub_items_only() {
        let src = "\
/// Documented.
pub fn fine() {}
pub fn bare() {}
mod private {
    pub fn hidden() {}
}
/// A type.
pub struct S;
impl S {
    pub fn method(&self) {}
}
impl std::fmt::Display for S {
    fn fmt(&self) {}
}
";
        let f = scan_path("cdd/src/x.rs", src);
        let docs: Vec<_> = f.iter().filter(|x| x.rule == RULE_DOCS).collect();
        // `bare` and the undocumented inherent method on pub S; the pub
        // fn inside a private mod and the Display impl member are not
        // reachable surface.
        assert_eq!(docs.len(), 2, "{docs:?}");
        assert!(docs.iter().any(|x| x.message.contains("`bare`")));
        assert!(docs.iter().any(|x| x.message.contains("`method`")));
    }
}
