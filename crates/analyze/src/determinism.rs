//! Rule family 1 — scope-aware nondeterminism hazards.
//!
//! The successor of the old line-oriented `verify::source_scan` pass:
//! the same hazard classes (wall clocks / OS entropy calls, iteration
//! over `HashMap`/`HashSet` bindings) matched against the lexer's
//! per-line code views, but with real scope information from the item
//! parser:
//!
//! * `#[cfg(test)]` is skipped at **item** granularity — a test module
//!   in the middle of a file no longer hides the production code below
//!   it, and a `#[cfg(test)]` helper fn anywhere is exempt;
//! * unordered-map bindings are tracked **per scope** — a `let` binding
//!   is only a hazard source inside its enclosing function, while
//!   struct fields and statics stay file-wide.
//!
//! Acknowledgement syntax is unchanged: a `det-ok:` line comment on the
//! hazard line or the line above suppresses it; a marker covering no
//! hazard is flagged as stale. Doc comments are never acknowledgements.

use crate::parser::{flatten, Item, ItemKind};
use crate::{Finding, ParsedFile};

/// Stable rule id for this family.
pub const RULE: &str = "determinism";

// Built with concat! so the analyzer does not flag its own tables.
const CLOCK_AND_ENTROPY: [&str; 7] = [
    concat!("thread", "_rng"),
    concat!("Instant", "::now"),
    concat!("System", "Time"),
    concat!("rand", "::random"),
    concat!("random", "_state"),
    concat!(".ela", "psed("),
    concat!("UNIX_", "EPOCH"),
];

const UNORDERED_TYPES: [&str; 2] = [concat!("Hash", "Map"), concat!("Hash", "Set")];

const ITER_METHODS: [&str; 7] =
    [".iter()", ".iter_mut()", ".values()", ".values_mut()", ".keys()", ".drain()", ".into_iter()"];

const ACK_MARKER: &str = concat!("det", "-ok");

/// Extract the identifier bound on a line declaring an unordered-map
/// value: `foo: HashMap<…>`, `let foo = HashMap::new()`.
fn declared_ident(line: &str) -> Option<String> {
    let pos = UNORDERED_TYPES.iter().filter_map(|t| line.find(t)).min()?;
    let before = &line[..pos];
    // The ident precedes the nearest `:` or `=` left of the type; a `:`
    // that is half of `::` belongs to the type path, not the binding.
    let b = before.as_bytes();
    let mut sep = None;
    let mut i = b.len();
    while i > 0 {
        i -= 1;
        match b[i] {
            b'=' => {
                sep = Some(i);
                break;
            }
            b':' if i > 0 && b[i - 1] == b':' => i -= 1, // skip `::`
            b':' => {
                sep = Some(i);
                break;
            }
            _ => {}
        }
    }
    let head = before[..sep?].trim_end();
    let ident: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let keyword = matches!(ident.as_str(), "" | "let" | "mut" | "pub" | "crate" | "self" | "fn");
    (!keyword && !ident.chars().next().is_some_and(|c| c.is_numeric())).then_some(ident)
}

fn is_word_boundary(text: &str, start: usize) -> bool {
    // `.` is allowed before: `self.pending.iter()` still iterates the
    // tracked field `pending`.
    start == 0
        || !text[..start].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Does `line` iterate the tracked identifier `ident`?
fn iterates(line: &str, ident: &str) -> bool {
    for m in ITER_METHODS {
        let call = format!("{ident}{m}");
        let mut from = 0;
        while let Some(off) = line[from..].find(&call) {
            let at = from + off;
            if is_word_boundary(line, at) {
                return true;
            }
            from = at + 1;
        }
    }
    // `for x in map` / `for (k, v) in &map` / `in &mut self.map`.
    if let Some(pos) = line.find(" in ") {
        let tail = line[pos + 4..].trim_start_matches(['&', ' ']).trim_start_matches("mut ");
        let end = tail
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
            .unwrap_or(tail.len());
        // Last path segment: `ctx.barriers` iterates `barriers`.
        if tail[..end].split('.').next_back() == Some(ident) && !tail[end..].starts_with('(') {
            return true;
        }
    }
    false
}

/// A binding that names an unordered map, live over a line range.
struct Tracked {
    ident: String,
    span: (usize, usize),
}

/// Innermost non-test function item whose span contains `line`.
fn enclosing_fn(items: &[&Item], line: usize) -> Option<(usize, usize)> {
    items
        .iter()
        .filter(|i| i.kind == ItemKind::Fn && i.line <= line && line <= i.end_line)
        .map(|i| (i.line, i.end_line))
        .min_by_key(|&(a, b)| b - a)
}

/// One hazard before acknowledgement handling.
struct RawHazard {
    line: usize,
    what: String,
    snippet: String,
}

fn raw_hazards(pf: &ParsedFile) -> (Vec<RawHazard>, Vec<usize>) {
    let fns = flatten(&pf.items);
    let mut tracked: Vec<Tracked> = Vec::new();
    let mut found: Vec<RawHazard> = Vec::new();
    let mut acks: Vec<usize> = Vec::new(); // 1-based marker lines
    for (idx, view) in pf.lex.lines.iter().enumerate() {
        let lineno = idx + 1;
        if pf.in_test(lineno) {
            continue;
        }
        if !view.doc {
            if let Some(comment) = view.comment.as_deref() {
                if comment.contains(ACK_MARKER) {
                    acks.push(lineno);
                }
            }
        }
        let line = view.code.as_str();
        if let Some(ident) = declared_ident(line) {
            // `let` bindings live to the end of the enclosing fn;
            // fields / statics / fn params are file-wide.
            let span = if line.trim_start().starts_with("let ") {
                enclosing_fn(&fns, lineno).unwrap_or((lineno, usize::MAX))
            } else {
                (0, usize::MAX)
            };
            if !tracked.iter().any(|t| t.ident == ident && t.span == span) {
                tracked.push(Tracked { ident, span });
            }
        }
        for pat in CLOCK_AND_ENTROPY {
            if line.contains(pat) {
                found.push(RawHazard {
                    line: lineno,
                    what: format!("forbidden call {pat}"),
                    snippet: view.raw.clone(),
                });
            }
        }
        for t in &tracked {
            if t.span.0 <= lineno && lineno <= t.span.1 && iterates(line, &t.ident) {
                found.push(RawHazard {
                    line: lineno,
                    what: format!("unordered iteration of `{}`", t.ident),
                    snippet: view.raw.clone(),
                });
            }
        }
    }
    (found, acks)
}

/// Scan one parsed file, producing acknowledged/unacknowledged findings
/// plus stale-acknowledgement findings.
pub fn scan(pf: &ParsedFile) -> Vec<Finding> {
    let (found, acks) = raw_hazards(pf);
    let mut out = Vec::new();
    for h in &found {
        let acked = acks.iter().any(|&a| a == h.line || a + 1 == h.line);
        out.push(Finding {
            rule: RULE,
            file: pf.path.clone(),
            line: h.line,
            message: format!("{} — {}", h.what, h.snippet),
            acknowledged: acked,
        });
    }
    for &a in &acks {
        if !found.iter().any(|h| h.line == a || h.line == a + 1) {
            out.push(Finding {
                rule: RULE,
                file: pf.path.clone(),
                line: a,
                message: format!("stale {ACK_MARKER} acknowledgement (no hazard in scope)"),
                acknowledged: false,
            });
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

// ---------------------------------------------------------------------
// Compatibility surface for the historical `verify::source_scan` API.
// ---------------------------------------------------------------------

/// One hazardous line (the historical pass-4b report shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// File the hazard is in (as given to the scanner).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was matched.
    pub what: String,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} — {}", self.file, self.line, self.what, self.snippet)
    }
}

/// Scan one file's text, reporting unacknowledged hazards and stale
/// acknowledgements (the historical `source_scan::scan_source_text`).
pub fn scan_source_text(label: &str, text: &str) -> Vec<Hazard> {
    let pf = ParsedFile::parse(&crate::SourceFile::new(label, text));
    let (found, acks) = raw_hazards(&pf);
    let stale: Vec<usize> = acks
        .iter()
        .copied()
        .filter(|&a| !found.iter().any(|h| h.line == a || h.line == a + 1))
        .collect();
    let mut out: Vec<Hazard> = found
        .into_iter()
        .filter(|h| !acks.iter().any(|&a| a == h.line || a + 1 == h.line))
        .map(|h| Hazard { file: label.to_string(), line: h.line, what: h.what, snippet: h.snippet })
        .collect();
    for a in stale {
        out.push(Hazard {
            file: label.to_string(),
            line: a,
            what: format!("stale {ACK_MARKER} acknowledgement (no hazard in scope)"),
            snippet: pf.lex.lines.get(a - 1).map(|v| v.raw.clone()).unwrap_or_default(),
        });
    }
    out.sort_by_key(|h| h.line);
    out
}

/// Recursively scan every production `.rs` file under `root` (the
/// historical `source_scan::scan_dir`).
pub fn scan_dir(root: &std::path::Path) -> std::io::Result<Vec<Hazard>> {
    let mut out = Vec::new();
    for sf in crate::collect_sources(root)? {
        out.extend(scan_source_text(&sf.path, &sf.text));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wall_clock_and_entropy() {
        let src = "fn f() {\n    let t = Instant::now();\n    let r = rng.thread_rng();\n}\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 2, "{h:?}");
        assert_eq!(h[0].line, 2);
    }

    #[test]
    fn flags_hashmap_iteration_through_binding() {
        let src = "\
struct S { pending: HashMap<u64, u32> }
fn f(s: &S) {
    for (k, v) in s.pending.iter() {
        use_it(k, v);
    }
}
";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("pending"));
    }

    #[test]
    fn let_binding_scope_ends_with_its_function() {
        // A `let` HashMap in one fn must not taint an unrelated `seen`
        // in a later fn — the scoping the line scanner could not do.
        let src = "\
fn a() {
    let seen: HashMap<u32, u32> = HashMap::new();
    use_it(seen.len());
}
fn b(seen: &[u32]) {
    for v in seen.iter() {
        show(v);
    }
}
";
        let h = scan_source_text("x.rs", src);
        assert!(h.is_empty(), "{h:?}");
    }

    #[test]
    fn code_after_test_module_is_still_scanned() {
        // The line scanner stopped at the first #[cfg(test)]; item
        // granularity keeps scanning production code after it.
        let src = "\
fn ok() {}
#[cfg(test)]
mod tests {
    fn t() { Instant::now(); }
}
fn late() {
    let t = Instant::now();
    sink(t);
}
";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert_eq!(h[0].line, 7);
    }

    #[test]
    fn cfg_test_fn_mid_file_is_exempt() {
        let src = "\
#[cfg(test)]
fn helper() { Instant::now(); }
fn real() {}
";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn det_ok_ack_and_stale_detection() {
        let acked = "let t = Instant::now(); // det-ok: canary\n";
        assert!(scan_source_text("x.rs", acked).is_empty());
        let stale = "fn f() {\n    // det-ok: nothing here\n    let x = compute();\n}\n";
        let h = scan_source_text("x.rs", stale);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("stale"));
    }

    #[test]
    fn hazards_in_strings_and_comments_are_not_findings() {
        let src = "\
// the stopwatch .elapsed( reading happens in the driver
fn f() {
    let msg = \"call Instant::now() to observe drift\";
    let raw = r#\"SystemTime in a raw \"string\" too\"#;
    emit(msg, raw);
}
";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn scan_reports_acknowledged_findings_too() {
        let pf = crate::ParsedFile::parse(&crate::SourceFile::new(
            "x.rs",
            "let t = Instant::now(); // det-ok: canary\n",
        ));
        let f = scan(&pf);
        assert_eq!(f.len(), 1);
        assert!(f[0].acknowledged);
    }
}
