//! raidx-analyze — parser-based whole-workspace static analysis.
//!
//! Dependency-free lexer + item-level parser over the workspace's Rust
//! sources, plus the rule families run by verify pass 11
//! (`static-analysis`):
//!
//! 1. `determinism` — scope-aware nondeterminism hazards (clock/entropy
//!    calls, unordered HashMap/HashSet iteration tracked through
//!    bindings), with item-granular `#[cfg(test)]` skipping and
//!    `det-ok:` acknowledgements.
//! 2. `fault-trigger` — every named trace-point trigger built for
//!    `sim_core::fault::FaultPlan` must reference a point name actually
//!    announced somewhere in the workspace.
//! 3. `wildcard-match` — `_` / binding-wildcard arms are banned in
//!    matches over safety-critical enums (`IoError`, `FaultEvent`,
//!    `TracePoint`, `ReadSource`).
//! 4. `lock-discipline` — in `crates/cdd`, every function that acquires
//!    a lock-group grant must release/surrender it on all paths or
//!    return the handle.
//! 5. Hygiene gates — `module-size` (≤450-line cap with grandfathered
//!    files), `no-unwrap` (`unwrap`/`expect` outside tests in
//!    sim-core/cdd), `missing-docs` (undocumented `pub` items).
//!
//! Findings are acknowledged in source with a trailing
//! `lint-ok(<rule>): reason` comment on the finding line or the line
//! above (the determinism family keeps its historical `det-ok:`
//! marker). Unused acknowledgements are themselves findings.

pub mod conformance;
pub mod determinism;
pub mod hygiene;
pub mod lexer;
pub mod lockcheck;
pub mod matchexpr;
pub mod parser;
pub mod wildcard;

use std::fs;
use std::io;
use std::path::Path;

/// One static-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family identifier (stable, kebab-case).
    pub rule: &'static str,
    /// Workspace-relative file label.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Suppressed by an in-source acknowledgement comment.
    pub acknowledged: bool,
}

impl Finding {
    /// Render as `rule file:line message`.
    pub fn render(&self) -> String {
        format!("[{}] {}:{} {}", self.rule, self.file, self.line, self.message)
    }
}

/// An in-memory source file handed to [`analyze_files`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative label, e.g. `cdd/src/system.rs`.
    pub path: String,
    /// Full file text.
    pub text: String,
}

impl SourceFile {
    /// Convenience constructor.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        Self { path: path.into(), text: text.into() }
    }
}

/// A lexed + parsed source file, shared across rule families.
pub struct ParsedFile {
    /// Workspace-relative label.
    pub path: String,
    /// Token stream + line views.
    pub lex: lexer::FileLex,
    /// Item tree.
    pub items: Vec<parser::Item>,
    /// 1-based line spans under `#[cfg(test)]`.
    pub test_spans: Vec<(usize, usize)>,
}

impl ParsedFile {
    fn parse(sf: &SourceFile) -> Self {
        let lex = lexer::lex(&sf.text);
        let items = parser::parse_items(&lex);
        let test_spans = parser::test_line_spans(&items);
        Self { path: sf.path.clone(), lex, items, test_spans }
    }

    /// Is `line` inside a `#[cfg(test)]` item?
    pub fn in_test(&self, line: usize) -> bool {
        parser::in_spans(&self.test_spans, line)
    }
}

// The ack marker is assembled from pieces so the analyzer never flags
// its own definition (the same trick the determinism marker uses).
const LINT_OK: &str = concat!("lint", "-ok(");

/// Rules acknowledged by a `lint-ok(<rule>): …` comment covering `line`
/// (the marker suppresses findings on its own line and the next line).
fn acks_covering(pf: &ParsedFile, line: usize) -> Vec<String> {
    let mut out = Vec::new();
    for probe in [line, line.saturating_sub(1)] {
        if probe == 0 {
            continue;
        }
        let Some(view) = pf.lex.lines.get(probe - 1) else { continue };
        if view.doc {
            continue; // doc comments mentioning the marker are not acks
        }
        if let Some(comment) = view.comment.as_deref() {
            let mut rest = comment;
            while let Some(pos) = rest.find(LINT_OK) {
                rest = &rest[pos + LINT_OK.len()..];
                if let Some(close) = rest.find(')') {
                    out.push(rest[..close].trim().to_string());
                    rest = &rest[close..];
                }
            }
        }
    }
    out
}

/// Apply `lint-ok` acknowledgements: mark matching findings, and emit a
/// stale-ack finding for every marker that suppressed nothing.
fn apply_acks(files: &[ParsedFile], findings: &mut Vec<Finding>) {
    for f in findings.iter_mut() {
        if f.acknowledged {
            continue; // the rule's own marker already acknowledged it
        }
        if let Some(pf) = files.iter().find(|p| p.path == f.file) {
            if acks_covering(pf, f.line).iter().any(|r| r == f.rule) {
                f.acknowledged = true;
            }
        }
    }
    // Stale markers: a lint-ok whose (rule, covered lines) matched no
    // finding is itself a defect — it hides nothing and rots.
    let mut stale = Vec::new();
    for pf in files {
        for (idx, view) in pf.lex.lines.iter().enumerate() {
            let line = idx + 1;
            if !view.comment.as_deref().is_some_and(|c| c.contains(LINT_OK)) {
                continue;
            }
            for rule in acks_covering(pf, line) {
                // This marker covers `line` and `line + 1`.
                let used = findings.iter().any(|f| {
                    f.file == pf.path
                        && f.rule == rule
                        && f.acknowledged
                        && (f.line == line || f.line == line + 1)
                });
                if !used {
                    stale.push(Finding {
                        rule: "stale-ack",
                        file: pf.path.clone(),
                        line,
                        message: format!("{LINT_OK}{rule}) acknowledges nothing here"),
                        acknowledged: false,
                    });
                }
            }
        }
    }
    findings.extend(stale);
}

/// Run every rule family over the given in-memory files.
///
/// Cross-file rules (fault-trigger conformance) see exactly this set,
/// so canary tests can plant a trigger with or without its announce
/// site.
pub fn analyze_files(files: &[SourceFile]) -> Vec<Finding> {
    let parsed: Vec<ParsedFile> = files.iter().map(ParsedFile::parse).collect();
    let mut findings = Vec::new();
    for pf in &parsed {
        findings.extend(determinism::scan(pf));
        findings.extend(wildcard::scan(pf));
        findings.extend(hygiene::scan(pf));
        if pf.path.starts_with("cdd/") {
            findings.extend(lockcheck::scan(pf));
        }
    }
    findings.extend(conformance::scan(&parsed));
    apply_acks(&parsed, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Should this directory be descended into? Mirrors the historical
/// source_scan walk: production `src/` trees only.
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | "tests" | "benches" | ".git" | "results")
}

/// Collect every production `.rs` file under `root` (the `crates/`
/// directory), labelled relative to it.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> =
            fs::read_dir(&dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().collect();
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let label =
                    path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
                out.push(SourceFile { path: label, text: fs::read_to_string(&path)? });
            }
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Analyze every production source file under `root` (the workspace's
/// `crates/` directory).
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_files(&collect_sources(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_ok_ack_suppresses_and_stale_ack_flags() {
        // Planted unwrap in a non-test sim-core file, acknowledged.
        let acked = SourceFile::new(
            "sim-core/src/canary.rs",
            "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint-ok(no-unwrap): canary\n}\n",
        );
        let findings = analyze_files(&[acked]);
        let unwraps: Vec<_> = findings.iter().filter(|f| f.rule == "no-unwrap").collect();
        assert_eq!(unwraps.len(), 1);
        assert!(unwraps[0].acknowledged);
        assert!(!findings.iter().any(|f| f.rule == "stale-ack"));

        // A marker that covers nothing is flagged as stale.
        let stale = SourceFile::new(
            "sim-core/src/canary.rs",
            "// lint-ok(no-unwrap): nothing here\npub fn f() {}\n",
        );
        let findings = analyze_files(&[stale]);
        assert!(findings.iter().any(|f| f.rule == "stale-ack" && !f.acknowledged));
    }
}
