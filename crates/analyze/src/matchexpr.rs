//! Match-expression extraction over the [`crate::lexer`] token stream.
//!
//! Split from [`crate::parser`]: finds every `match` expression and its
//! arm patterns (pre-guard token ranges), which is all the
//! wildcard-match rule needs. Scrutinee parsing is safe without type
//! information because Rust forbids struct literals in scrutinee
//! position, so the first top-level `{` always opens the arm block.

use crate::lexer::Token;
use crate::parser::skip_group;

/// One arm of a parsed match expression.
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// Token range of the pattern (before any `if` guard).
    pub pattern: (usize, usize),
    /// 1-based line the pattern starts on.
    pub line: usize,
}

/// One `match` expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: usize,
    /// The arms in source order.
    pub arms: Vec<MatchArm>,
}

/// Extract every `match` expression in the token stream. Nested matches
/// are reported separately (each `match` keyword yields one entry).
pub fn find_matches(toks: &[Token]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("match")
            && !toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'))
        {
            if let Some((expr, _)) = parse_match(toks, i) {
                out.push(expr);
            }
        }
        i += 1;
    }
    out
}

/// Parse the match whose keyword is at `toks[i]`.
fn parse_match(toks: &[Token], i: usize) -> Option<(MatchExpr, usize)> {
    // Scrutinee: scan to the `{` at depth 0. Struct literals are illegal
    // in scrutinee position, so the first top-level `{` opens the arms.
    let mut j = i + 1;
    while j < toks.len() && !toks[j].is_punct('{') {
        if toks[j].is_punct('(') || toks[j].is_punct('[') {
            j = skip_group(toks, j);
        } else {
            j += 1;
        }
    }
    if j >= toks.len() {
        return None;
    }
    let close = skip_group(toks, j) - 1; // index of the final `}`
    let mut arms = Vec::new();
    let mut k = j + 1;
    while k < close {
        // Pattern: up to `=>` at depth 0 (guards included in the scan,
        // excluded from the recorded range).
        let pat_start = k;
        let mut pat_end = k;
        let mut guard = None;
        while k < close {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                k = skip_group(toks, k);
                continue;
            }
            if t.is_ident("if") && guard.is_none() {
                guard = Some(k);
            }
            if t.is_punct('=') && toks.get(k + 1).is_some_and(|n| n.is_punct('>')) {
                pat_end = guard.unwrap_or(k);
                k += 2;
                break;
            }
            k += 1;
        }
        if k >= close && pat_end == pat_start {
            break; // trailing tokens, no arm
        }
        arms.push(MatchArm {
            pattern: (pat_start, pat_end),
            line: toks.get(pat_start).map(|t| t.line).unwrap_or(0),
        });
        // Body: a block (skip it, plus optional `,`) or an expression up
        // to the `,` at depth 0 or the match's closing brace.
        if k < close && toks[k].is_punct('{') {
            k = skip_group(toks, k);
            if k < close && toks[k].is_punct(',') {
                k += 1;
            }
        } else {
            while k < close {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    k = skip_group(toks, k);
                    continue;
                }
                if t.is_punct(',') {
                    k += 1;
                    break;
                }
                k += 1;
            }
        }
    }
    Some((MatchExpr { line: toks[i].line, arms }, close + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn match_arms_parse_with_guards_and_nesting() {
        let src = "\
fn f(x: E) -> u32 {
    match x {
        E::A(v) if v > 3 => v,
        E::B { n } => match n { 0 => 1, other => other },
        _ => 0,
    }
}
";
        let fx = lex(src);
        let ms = find_matches(&fx.tokens);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].arms.len(), 3);
        assert_eq!(ms[1].arms.len(), 2);
        // Guard excluded from the first arm's pattern range.
        let (a, b) = ms[0].arms[0].pattern;
        let pat: Vec<_> = fx.tokens[a..b].iter().map(|t| t.text.as_str()).collect();
        assert!(!pat.contains(&"if"), "{pat:?}");
    }
}
