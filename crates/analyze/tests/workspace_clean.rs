//! The clean-tree gate: the real workspace must carry zero
//! unacknowledged findings (the analyzer's own `tests/` dirs are out of
//! scope by construction).

use std::path::Path;

#[test]
fn workspace_has_no_unacknowledged_findings() {
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir");
    let findings = raidx_analyze::analyze_workspace(crates).expect("scan workspace");
    let open: Vec<_> = findings.iter().filter(|f| !f.acknowledged).collect();
    assert!(
        open.is_empty(),
        "{} unacknowledged findings:\n{}",
        open.len(),
        open.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n")
    );
}
