//! Tokenizer/parser edge cases exercised end-to-end through the public
//! analyzer API: raw strings, nested block comments, lifetimes vs char
//! literals, and multi-line string literals containing hazard patterns
//! must never confuse the rules downstream of the lexer.

use raidx_analyze::lexer::{lex, TokKind};
use raidx_analyze::matchexpr::find_matches;
use raidx_analyze::parser::{flatten, parse_items};
use raidx_analyze::{analyze_files, SourceFile};

fn findings_for(src: &str) -> Vec<String> {
    analyze_files(&[SourceFile::new("sim-core/src/edge.rs", src)])
        .into_iter()
        .filter(|f| !f.acknowledged)
        .map(|f| f.render())
        .collect()
}

#[test]
fn raw_strings_with_hash_depths_hide_hazards_and_acks() {
    // Hazard text and even an ack marker inside raw strings are inert.
    let src = r####"
fn f() -> (&'static str, &'static str) {
    let a = r#"Instant::now() inside raw "text""#;
    let b = r##"SystemTime with // det-ok: not an ack"##;
    (a, b)
}
"####;
    assert_eq!(findings_for(src), Vec::<String>::new());
}

#[test]
fn nested_block_comments_swallow_items_and_hazards() {
    let src = "\
/* outer /* inner Instant::now() */ still comment
   more HashMap iteration text */
fn real() {}
";
    assert_eq!(findings_for(src), Vec::<String>::new());
    let items = parse_items(&lex(src));
    assert_eq!(flatten(&items).len(), 1);
}

#[test]
fn lifetimes_do_not_become_char_literals() {
    // `'a` twice, then real char literals including an escaped quote;
    // the hazard after them must still be found at the right line.
    let src = "\
fn f<'a>(x: &'a str) -> char {
    let q = '\"';
    let e = '\\'';
    let t = Instant::now();
    keep(x, t);
    q
}
";
    let f = findings_for(src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].contains(":4 "), "{f:?}");
    let fx = lex(src);
    assert_eq!(fx.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
    assert_eq!(fx.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
}

#[test]
fn multiline_strings_containing_hazard_patterns_are_inert() {
    let src = "\
fn f() -> String {
    let msg = \"first line
        calls Instant::now() and iterates a HashMap
        for (k, v) in m.iter() — but only as prose\";
    msg.to_string()
}
";
    assert_eq!(findings_for(src), Vec::<String>::new());
}

#[test]
fn multiline_string_then_real_hazard_keeps_line_numbers() {
    let src = "\
fn f() {
    let s = \"spans
lines\";
    let t = Instant::now();
    keep(s, t);
}
";
    let f = findings_for(src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].contains(":4 "), "{f:?}");
}

#[test]
fn byte_and_raw_byte_strings_lex_as_strings() {
    let fx = lex("let a = b\"ab\"; let c = br#\"cd \"e\" f\"#;");
    let strs: Vec<_> =
        fx.tokens.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text.as_str()).collect();
    assert_eq!(strs, vec!["ab", "cd \"e\" f"]);
}

#[test]
fn match_inside_string_is_not_a_match_expression() {
    let src = "fn f() -> &'static str { \"match x { _ => 0 }\" }";
    assert!(find_matches(&lex(src).tokens).is_empty());
}

#[test]
fn cfg_test_attribute_inside_string_does_not_open_a_test_scope() {
    // The attribute text appears only inside a string literal, so the
    // hazard below it is still production code.
    let src = "\
fn f() -> &'static str {
    let s = \"#[cfg(test)] mod tests {\";
    let t = Instant::now();
    keep(t);
    s
}
";
    let f = findings_for(src);
    assert_eq!(f.len(), 1, "{f:?}");
}
