//! Property test: resource utilization stays within [0, 1] under random
//! demand tapes, and the tracer never perturbs simulation results.

use sim_core::check::run_cases;
use sim_core::plan::{par, seq, use_res};
use sim_core::trace::EventLog;
use sim_core::{Demand, Engine, FixedRate, Plan, SimDuration};

fn random_demand(g: &mut sim_core::check::Gen) -> Demand {
    match g.weighted(&[2, 2, 3, 1, 1, 1]) {
        0 => Demand::Busy(SimDuration::from_micros(g.u64_in(1..500))),
        1 => Demand::DiskRead { offset: g.u64_in(0..1 << 20), bytes: g.u64_in(1..256 << 10) },
        2 => Demand::DiskWrite { offset: g.u64_in(0..1 << 20), bytes: g.u64_in(1..256 << 10) },
        3 => Demand::NetXfer { bytes: g.u64_in(1..1 << 20) },
        4 => Demand::BusXfer { bytes: g.u64_in(1..1 << 20) },
        _ => Demand::CpuMsg { bytes: g.u64_in(1..64 << 10) },
    }
}

#[test]
fn utilization_is_a_fraction_under_random_demand_tapes() {
    run_cases("utilization_is_a_fraction", 60, |g| {
        let mut e = Engine::new();
        let n_res = g.usize_in(1..4);
        let rids: Vec<_> = (0..n_res)
            .map(|i| {
                let model: Box<dyn sim_core::ServiceModel> = if g.bool() {
                    Box::new(FixedRate::rate(g.u64_in(1 << 20..64 << 20)))
                } else {
                    Box::new(FixedRate::per_op(SimDuration::from_micros(g.u64_in(0..200))))
                };
                e.add_resource(format!("r{i}"), model)
            })
            .collect();
        let n_jobs = g.usize_in(1..6);
        for j in 0..n_jobs {
            let stages: Vec<Plan> = (0..g.usize_in(1..5))
                .map(|_| {
                    let r = rids[g.usize_in(0..rids.len())];
                    use_res(r, random_demand(g))
                })
                .collect();
            let plan = if g.bool() { seq(stages) } else { par(stages) };
            e.spawn_job(format!("j{j}"), plan);
        }
        let report = e.run().expect("no barriers, cannot deadlock");
        let span = report.end.since(sim_core::SimTime::ZERO);
        for (_, name, stats) in e.resources() {
            let u = stats.utilization(span);
            assert!(
                (0.0..=1.0 + 1e-12).contains(&u),
                "{name}: utilization {u} outside [0,1] over {span}"
            );
        }
        // Zero-span query must stay finite regardless of accumulated busy.
        for (_, _, stats) in e.resources() {
            assert_eq!(stats.utilization(SimDuration::ZERO), 0.0);
        }
    });
}

#[test]
fn tracer_does_not_perturb_results() {
    run_cases("tracer_transparency", 25, |g| {
        let build = |traced: bool, tape: &[u64]| {
            let mut gg = sim_core::check::Gen::from_tape(tape);
            let mut e = Engine::new();
            let r = e.add_resource("d", Box::new(FixedRate::rate(8 << 20)));
            let log = EventLog::new();
            if traced {
                e.set_tracer(Box::new(log.clone()));
            }
            for j in 0..gg.usize_in(1..5) {
                e.spawn_job(format!("j{j}"), use_res(r, random_demand(&mut gg)));
            }
            let rep = e.run().expect("run");
            (rep.end, rep.foreground_end, e.resource_stats(r).clone())
        };
        // Pre-draw a tape so both runs see identical workloads.
        let tape: Vec<u64> = (0..64).map(|_| g.u64()).collect();
        let plain = build(false, &tape);
        let traced = build(true, &tape);
        assert_eq!(plain.0, traced.0, "end time changed by tracer");
        assert_eq!(plain.1, traced.1, "foreground end changed by tracer");
        assert_eq!(plain.2.busy, traced.2.busy, "busy time changed by tracer");
        assert_eq!(plain.2.max_queue, traced.2.max_queue, "max queue changed by tracer");
    });
}
