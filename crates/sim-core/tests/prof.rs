//! Tests for the host profiler and the deterministic engine stats plane:
//! span nesting, counter saturation, sampling accounting, and the
//! profiler-transparency guarantee (a profiled run is result-identical
//! to an unprofiled one).

use sim_core::plan::{par, seq, use_res};
use sim_core::{Demand, Engine, EngineStats, FixedRate, HostProfiler, Phase, SimDuration, SimTime};

fn busy(us: u64) -> Demand {
    Demand::Busy(SimDuration::from_micros(us))
}

/// A small contended workload: several jobs racing on one disk (deep
/// queues force `select_next` scans) plus a second resource for overlap.
fn workload(e: &mut Engine) {
    let d = e.add_resource("disk", Box::new(FixedRate::per_op(SimDuration::from_micros(2))));
    let c = e.add_resource("cpu", Box::new(FixedRate::per_op(SimDuration::ZERO)));
    for i in 0..20u64 {
        e.spawn_job(
            format!("j{i}"),
            seq(vec![
                use_res(c, busy(i % 3 + 1)),
                par(vec![use_res(d, busy(i % 5 + 1)), use_res(d, busy(3))]),
            ]),
        );
    }
}

#[test]
fn stats_count_engine_work() {
    let mut e = Engine::new();
    workload(&mut e);
    e.run().unwrap();
    let s = *e.stats();
    assert!(s.events > 0, "{s:?}");
    assert!(s.heap_pushes >= s.events, "every pop was once pushed: {s:?}");
    assert!(s.heap_peak >= 2, "{s:?}");
    // 20 jobs, each with a 2-way Par: >= 60 tasks.
    assert!(s.tasks_spawned >= 60, "{s:?}");
    assert!(s.task_slot_allocs <= s.tasks_spawned, "{s:?}");
    assert!(s.queue_scan_iters > 0, "contended disk must trigger scans: {s:?}");
    assert_eq!(s.tracer_records, 0, "no tracer installed");

    // A second batch reuses freed slots: spawns grow, allocations don't.
    let allocs_before = s.task_slot_allocs;
    workload(&mut e);
    e.run().unwrap();
    let s2 = *e.stats();
    assert!(s2.tasks_spawned >= 2 * s.tasks_spawned - 1, "{s2:?}");
    assert_eq!(s2.task_slot_allocs, allocs_before, "free-list reuse must not allocate: {s2:?}");
}

#[test]
fn stats_saturate_instead_of_wrapping() {
    let mut s = EngineStats { events: u64::MAX - 1, ..EngineStats::default() };
    s.on_event();
    s.on_event();
    s.on_event();
    assert_eq!(s.events, u64::MAX);

    let mut s = EngineStats { queue_scan_iters: u64::MAX - 3, ..EngineStats::default() };
    s.on_queue_scan(100);
    assert_eq!(s.queue_scan_iters, u64::MAX);

    let mut s = EngineStats { tracer_records: u64::MAX, ..EngineStats::default() };
    s.on_tracer_records(7);
    assert_eq!(s.tracer_records, u64::MAX);

    let mut s =
        EngineStats { tasks_spawned: u64::MAX, task_slot_allocs: u64::MAX, ..Default::default() };
    s.on_task_spawn(true);
    assert_eq!((s.tasks_spawned, s.task_slot_allocs), (u64::MAX, u64::MAX));
}

#[test]
fn spans_nest_and_attribute_self_time() {
    let mut p = HostProfiler::new(); // sample every event
    p.event_begin();
    assert!(p.sampling());
    p.enter(Phase::TaskMgmt);
    p.enter(Phase::Tracer);
    p.exit();
    p.exit();
    p.enter(Phase::QueueScan);
    p.exit();
    p.event_end();
    let r = p.report();
    assert_eq!(r.events_total, 1);
    assert_eq!(r.events_sampled, 1);
    assert_eq!(r.span_overflows, 0);
    let get = |name: &str| r.phases.iter().find(|p| p.phase == name).unwrap().clone();
    let (dispatch, taskmgmt, tracer, scan) =
        (get("dispatch"), get("task-mgmt"), get("tracer"), get("queue-scan"));
    assert_eq!(dispatch.entries, 1);
    assert_eq!(taskmgmt.entries, 1);
    assert_eq!(tracer.entries, 1);
    assert_eq!(scan.entries, 1);
    // Parents contain their children: wall(dispatch) >= wall(task-mgmt)
    // + wall(queue-scan) >= wall(tracer); self excludes child time.
    assert!(dispatch.wall_ns >= taskmgmt.wall_ns + scan.wall_ns, "{r:?}");
    assert!(taskmgmt.wall_ns >= tracer.wall_ns, "{r:?}");
    assert!(dispatch.self_ns <= dispatch.wall_ns, "{r:?}");
    assert!(taskmgmt.self_ns <= taskmgmt.wall_ns, "{r:?}");
    // The report renders and exports without panicking, and the chrome
    // trace is valid JSON.
    assert!(r.render_table().contains("task-mgmt"));
    assert!(sim_core::json_is_valid(&r.chrome_trace_json()), "{}", r.chrome_trace_json());
}

#[test]
fn span_overflow_is_counted_and_balanced() {
    let mut p = HostProfiler::new();
    p.event_begin();
    for _ in 0..20 {
        p.enter(Phase::TaskMgmt); // far beyond the fixed stack depth
    }
    for _ in 0..20 {
        p.exit();
    }
    p.event_end();
    let r = p.report();
    assert!(r.span_overflows > 0, "{r:?}");
    // The next event starts with a clean stack.
    p.event_begin();
    p.enter(Phase::Tracer);
    p.event_end(); // event_end closes what's still open
    let r = p.report();
    assert_eq!(r.events_total, 2);
}

#[test]
fn unsampled_events_record_nothing() {
    let mut p = HostProfiler::sampled(4);
    for _ in 0..13 {
        p.event_begin();
        p.enter(Phase::QueueScan);
        p.exit();
        p.event_end();
    }
    let r = p.report();
    assert_eq!(r.events_total, 13);
    // Countdown starts at 1: events 1, 5, 9, 13 are sampled.
    assert_eq!(r.events_sampled, 4);
    let scan = r.phases.iter().find(|p| p.phase == "queue-scan").unwrap();
    assert_eq!(scan.entries, 4, "only sampled events may record spans");
}

#[test]
fn profiler_is_transparent_to_results_and_stats() {
    let run = |prof: bool| {
        let mut e = Engine::new();
        if prof {
            e.set_profiler(HostProfiler::new());
        }
        workload(&mut e);
        let rep = e.run().unwrap();
        let jobs: Vec<_> = e.jobs().iter().map(|j| (j.start, j.end)).collect();
        (rep.end, rep.foreground_end, jobs, *e.stats())
    };
    let plain = run(false);
    let profiled = run(true);
    assert_eq!(plain, profiled, "profiler must not perturb results");
}

#[test]
fn profiled_engine_run_produces_attribution() {
    let mut e = Engine::new();
    e.set_profiler(HostProfiler::new());
    workload(&mut e);
    e.run().unwrap();
    let events = e.stats().events;
    let p = e.take_profiler().expect("profiler installed");
    let r = p.report();
    assert_eq!(r.events_total, events, "profiler saw every dispatched event");
    assert_eq!(r.events_sampled, events, "sample_every=1 times every event");
    assert!(r.sampled_wall_ns() > 0, "dispatch wall time must accumulate");
    assert_eq!(r.phases.len(), 4);
    // End of run: RunReport end is unaffected by how long the host took.
    assert_eq!(e.now(), SimTime(e.now().0));
}
