//! Edge-case tests of the engine's execution semantics: interactions of
//! Background, Par, Barrier and degenerate plans.

use sim_core::plan::{background, barrier, delay, par, seq, use_res};
use sim_core::{BarrierId, Demand, Engine, FixedRate, SimDuration, SimTime};

fn busy(us: u64) -> Demand {
    Demand::Busy(SimDuration::from_micros(us))
}

#[test]
fn noop_job_completes_instantly() {
    let mut e = Engine::new();
    e.spawn_job("noop", sim_core::Plan::Noop);
    let r = e.run().unwrap();
    assert_eq!(r.end, SimTime::ZERO);
    assert_eq!(e.jobs()[0].latency(), SimDuration::ZERO);
}

#[test]
fn background_inside_par_does_not_gate_the_join() {
    let mut e = Engine::new();
    let r = e.add_resource("r", Box::new(FixedRate::per_op(SimDuration::ZERO)));
    e.spawn_job(
        "j",
        par(vec![use_res(r, busy(10)), background(use_res(r, busy(1000))), use_res(r, busy(10))]),
    );
    let rep = e.run().unwrap();
    // Foreground: two 10us ops serialized = 20us; background continues.
    assert_eq!(e.jobs()[0].latency(), SimDuration::from_micros(20));
    assert_eq!(rep.end, SimTime(1_020_000));
}

#[test]
fn nested_background_drains() {
    let mut e = Engine::new();
    let r = e.add_resource("r", Box::new(FixedRate::per_op(SimDuration::ZERO)));
    // Background spawning more background work.
    e.spawn_job("j", background(seq(vec![use_res(r, busy(5)), background(use_res(r, busy(7)))])));
    let rep = e.run().unwrap();
    assert_eq!(rep.end, SimTime(12_000));
    assert_eq!(e.jobs()[0].latency(), SimDuration::ZERO);
}

#[test]
fn barrier_inside_background_is_rejected() {
    // A detached task parked on a barrier silently alters the barrier's
    // participant accounting (it used to be allowed and was a reliable
    // source of deadlocks); the plan linter now rejects the shape before
    // any event fires.
    let mut e = Engine::new();
    let bid = BarrierId(3);
    e.register_barrier(bid, 2);
    let plan = seq(vec![
        background(seq(vec![delay(SimDuration::from_micros(50)), barrier(bid)])),
        barrier(bid),
    ]);
    let errs = e.validate(&plan).unwrap_err();
    assert!(
        errs.iter().any(|x| matches!(x, sim_core::PlanError::BarrierInBackground { .. })),
        "{errs:?}"
    );
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "structurally invalid plan")]
fn spawning_barrier_inside_background_asserts() {
    let mut e = Engine::new();
    let bid = BarrierId(3);
    e.register_barrier(bid, 2);
    e.spawn_job("fg", seq(vec![background(barrier(bid)), barrier(bid)]));
}

#[test]
fn par_with_single_child_behaves_like_the_child() {
    let mut e = Engine::new();
    let r = e.add_resource("r", Box::new(FixedRate::per_op(SimDuration::ZERO)));
    e.spawn_job("j", par(vec![use_res(r, busy(42))]));
    let rep = e.run().unwrap();
    assert_eq!(rep.end, SimTime(42_000));
}

#[test]
fn deep_nesting_survives() {
    let mut e = Engine::new();
    let r = e.add_resource("r", Box::new(FixedRate::per_op(SimDuration::ZERO)));
    // 64 levels of alternating seq/par around a single leaf.
    let mut plan = use_res(r, busy(1));
    for i in 0..64 {
        plan = if i % 2 == 0 { seq(vec![plan]) } else { par(vec![plan]) };
    }
    e.spawn_job("deep", plan);
    let rep = e.run().unwrap();
    assert_eq!(rep.end, SimTime(1_000));
}

#[test]
fn wide_fanout_is_linear_not_quadratic() {
    let mut e = Engine::new();
    let rs: Vec<_> = (0..64)
        .map(|i| e.add_resource(format!("r{i}"), Box::new(FixedRate::per_op(SimDuration::ZERO))))
        .collect();
    // 4096 parallel leaves spread over 64 resources.
    e.spawn_job("wide", par((0..4096).map(|i| use_res(rs[i % 64], busy(1))).collect()));
    let rep = e.run().unwrap();
    // 64 ops per resource, 1us each, all resources in parallel.
    assert_eq!(rep.end, SimTime(64_000));
}

#[test]
fn two_engines_are_independent() {
    let mut a = Engine::new();
    let mut b = Engine::new();
    let ra = a.add_resource("r", Box::new(FixedRate::per_op(SimDuration::ZERO)));
    let rb = b.add_resource("r", Box::new(FixedRate::per_op(SimDuration::ZERO)));
    a.spawn_job("a", use_res(ra, busy(10)));
    b.spawn_job("b", use_res(rb, busy(20)));
    assert_eq!(a.run().unwrap().end, SimTime(10_000));
    assert_eq!(b.run().unwrap().end, SimTime(20_000));
}

#[test]
fn sequential_runs_accumulate_time_and_stats() {
    let mut e = Engine::new();
    let r = e.add_resource("r", Box::new(FixedRate::per_op(SimDuration::ZERO)));
    e.spawn_job("first", use_res(r, busy(10)));
    e.run().unwrap();
    let busy_after_first = e.resource_stats(r).busy;
    e.spawn_job("second", use_res(r, busy(10)));
    let rep = e.run().unwrap();
    assert_eq!(rep.end, SimTime(20_000));
    assert_eq!(e.resource_stats(r).busy, busy_after_first * 2);
    assert_eq!(e.resource_stats(r).ops, 2);
}

#[test]
#[should_panic(expected = "cannot start a job in the past")]
fn spawning_in_the_past_panics() {
    let mut e = Engine::new();
    e.spawn_job("x", delay(SimDuration::from_micros(5)));
    e.run().unwrap();
    e.spawn_job_at("late", SimTime::ZERO, sim_core::Plan::Noop);
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "structurally invalid plan")]
fn unregistered_barrier_rejected_at_spawn() {
    let mut e = Engine::new();
    e.spawn_job("x", barrier(BarrierId(99)));
}

#[test]
fn unregistered_barrier_fails_validation() {
    let e = Engine::new();
    let errs = e.validate(&barrier(BarrierId(99))).unwrap_err();
    assert!(
        errs.iter()
            .any(|x| matches!(x, sim_core::PlanError::UnregisteredBarrier { id: BarrierId(99) })),
        "{errs:?}"
    );
}

#[test]
fn zero_duration_uses_preserve_order() {
    let mut e = Engine::new();
    let r = e.add_resource("r", Box::new(FixedRate::per_op(SimDuration::ZERO)));
    let a = e.spawn_job("a", use_res(r, Demand::Busy(SimDuration::ZERO)));
    let b = e.spawn_job("b", use_res(r, Demand::Busy(SimDuration::ZERO)));
    e.run().unwrap();
    let end = |j: sim_core::JobId| e.jobs()[j.index()].end.unwrap();
    // Both complete at t=0; FIFO still serves a before b (same timestamp,
    // insertion-ordered events).
    assert_eq!(end(a), SimTime::ZERO);
    assert_eq!(end(b), SimTime::ZERO);
}
