//! Deterministic tracing: structured engine events behind a zero-cost hook.
//!
//! The engine owns an optional boxed [`Tracer`] (see
//! [`Engine::set_tracer`](crate::Engine::set_tracer)); with no tracer
//! installed every emission site is a single `Option` branch on the hot
//! path, so existing benches are untouched. With a tracer installed the
//! engine reports every job/task transition, resource
//! acquire→service→release step and barrier wait **at simulated time** —
//! wall clocks never appear in trace records, which is what makes traces
//! reproducible bit-for-bit across same-seed runs (the
//! `trace-determinism` verify pass enforces exactly that).
//!
//! Two implementations ship here:
//!
//! * [`NoopTracer`] — discards everything (the explicit form of the
//!   default behaviour).
//! * [`EventLog`] — records an owned [`TimedEvent`] stream behind a
//!   cloneable handle, so callers keep a handle, install a clone in the
//!   engine, run, and read the events back afterwards.

use std::sync::{Arc, Mutex};

use crate::demand::Demand;
use crate::engine::{JobId, TaskId};
use crate::plan::BarrierId;
use crate::resource::ResourceId;
use crate::time::{SimDuration, SimTime};

/// Classification of a [`Demand`] carried inside owned trace events
/// (the demand itself stays with the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DemandKind {
    /// Fixed busy time (CPU work, firmware overhead).
    Busy,
    /// Disk read.
    DiskRead,
    /// Disk write.
    DiskWrite,
    /// Network port transfer.
    Net,
    /// I/O bus transfer.
    Bus,
    /// CPU protocol work for a message.
    CpuMsg,
}

impl DemandKind {
    /// Short stable label, used by exporters and fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            DemandKind::Busy => "busy",
            DemandKind::DiskRead => "disk_read",
            DemandKind::DiskWrite => "disk_write",
            DemandKind::Net => "net",
            DemandKind::Bus => "bus",
            DemandKind::CpuMsg => "cpu_msg",
        }
    }
}

impl From<&Demand> for DemandKind {
    fn from(d: &Demand) -> Self {
        match d {
            Demand::Busy(_) => DemandKind::Busy,
            Demand::DiskRead { .. } => DemandKind::DiskRead,
            Demand::DiskWrite { .. } => DemandKind::DiskWrite,
            Demand::NetXfer { .. } => DemandKind::Net,
            Demand::BusXfer { .. } => DemandKind::Bus,
            Demand::CpuMsg { .. } => DemandKind::CpuMsg,
        }
    }
}

/// What an [`TracePoint::Access`] trace point did to its cell range.
///
/// `Acquire`/`Release` are synchronization accesses (lock-group grant
/// and surrender); `Read`/`Write` are data accesses. The
/// happens-before analyzer ([`crate::hb`]) derives lock edges from the
/// former and checks the latter for races and lock coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// A data read of the cell range.
    Read,
    /// A data write of the cell range.
    Write,
    /// A lock-group grant covering the cell range.
    Acquire,
    /// A lock-group release of the cell range.
    Release,
}

impl AccessKind {
    /// Short stable label, used by exporters and fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Acquire => "acquire",
            AccessKind::Release => "release",
        }
    }
}

/// One engine event as seen by a [`Tracer`], borrowing engine state.
///
/// The lifetime keeps the hot path allocation-free: a tracer that wants
/// to retain events converts to the owned [`TraceEvent`] form (see
/// [`TraceEvent::from_point`]).
#[derive(Debug, Clone, Copy)]
pub enum TracePoint<'a> {
    /// A foreground job was spawned; it becomes runnable at the stamped
    /// time (which may be later than the spawn call).
    JobSpawned {
        /// The new job.
        job: JobId,
        /// Caller-supplied job label.
        label: &'a str,
    },
    /// A foreground job's plan completed.
    JobFinished {
        /// The finished job.
        job: JobId,
    },
    /// A task (plan instance) was created.
    TaskSpawned {
        /// The new task.
        task: TaskId,
        /// Parent task for `Par` children.
        parent: Option<TaskId>,
        /// True for detached (`Background`) tasks.
        detached: bool,
    },
    /// A task completed.
    TaskFinished {
        /// The finished task.
        task: TaskId,
        /// True for detached (`Background`) tasks.
        detached: bool,
    },
    /// A demand arrived at a resource (it may start service immediately;
    /// if so a `ServiceStarted` point follows at the same time).
    Enqueued {
        /// The resource.
        res: ResourceId,
        /// The requesting task.
        task: TaskId,
        /// The demand presented.
        demand: &'a Demand,
        /// Queue depth after arrival (queued + in service).
        depth: usize,
        /// True if the requesting task is detached.
        detached: bool,
    },
    /// A demand entered service on a resource.
    ServiceStarted {
        /// The resource.
        res: ResourceId,
        /// The task being served.
        task: TaskId,
        /// The demand in service.
        demand: &'a Demand,
        /// Time spent queued before service began.
        waited: SimDuration,
        /// Simulated time at which service will complete.
        done_at: SimTime,
        /// True if the served task is detached.
        detached: bool,
    },
    /// A demand completed service and released the resource.
    ServiceFinished {
        /// The resource.
        res: ResourceId,
        /// The task that was served.
        task: TaskId,
        /// The completed demand.
        demand: &'a Demand,
        /// True if the served task is detached.
        detached: bool,
    },
    /// A task parked on a barrier that is not yet full.
    BarrierWaited {
        /// The barrier.
        barrier: BarrierId,
        /// The parked task.
        task: TaskId,
    },
    /// A barrier filled and released its waiters.
    BarrierOpened {
        /// The barrier.
        barrier: BarrierId,
        /// The arriving task that filled the barrier (it falls through
        /// without parking; the waiters were announced by
        /// [`TracePoint::BarrierWaited`]).
        task: TaskId,
        /// Completed cycle count after this opening.
        cycle: u64,
        /// Tasks released (waiters plus the arriving task).
        released: usize,
    },
    /// A protocol-level cell access — emitted outside the engine by
    /// instrumented subsystems (the CDD lock/write path, the OSM image
    /// queue) through a shared tracer, and consumed by the
    /// happens-before analyzer ([`crate::hb`]). `task` is an *actor*
    /// id in the analyzer's namespace (an engine task index or a
    /// protocol actor such as a client node); `cell` is a namespaced
    /// cell id covering `len` consecutive cells.
    Access {
        /// Acting thread of control (engine task index or protocol actor).
        task: u32,
        /// First cell touched (namespaced; see `sim_core::hb` helpers).
        cell: u64,
        /// Number of consecutive cells touched.
        len: u64,
        /// What the access did.
        kind: AccessKind,
    },
}

/// Observer of engine events. Implementations must not consult wall
/// clocks or other nondeterminism sources: a tracer runs *inside* the
/// simulation loop and its outputs are covered by the determinism
/// audits.
pub trait Tracer: Send {
    /// Record one engine event stamped with the simulated time `at`.
    fn record(&mut self, at: SimTime, point: TracePoint<'_>);
}

/// A tracer that discards every event (the explicit form of the engine's
/// default behaviour; useful for measuring tracer overhead).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn record(&mut self, _at: SimTime, _point: TracePoint<'_>) {}
}

/// Owned form of a [`TracePoint`]: demands are reduced to
/// ([`DemandKind`], bytes, offset) and labels are cloned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// See [`TracePoint::JobSpawned`].
    JobSpawned {
        /// The new job.
        job: u32,
        /// Caller-supplied job label.
        label: String,
    },
    /// See [`TracePoint::JobFinished`].
    JobFinished {
        /// The finished job.
        job: u32,
    },
    /// See [`TracePoint::TaskSpawned`].
    TaskSpawned {
        /// The new task.
        task: u32,
        /// Parent task for `Par` children.
        parent: Option<u32>,
        /// True for detached tasks.
        detached: bool,
    },
    /// See [`TracePoint::TaskFinished`].
    TaskFinished {
        /// The finished task.
        task: u32,
        /// True for detached tasks.
        detached: bool,
    },
    /// See [`TracePoint::Enqueued`].
    Enqueued {
        /// The resource index.
        res: u32,
        /// The requesting task.
        task: u32,
        /// Demand classification.
        kind: DemandKind,
        /// Demand payload bytes.
        bytes: u64,
        /// Queue depth after arrival.
        depth: usize,
        /// True if the requesting task is detached.
        detached: bool,
    },
    /// See [`TracePoint::ServiceStarted`].
    ServiceStarted {
        /// The resource index.
        res: u32,
        /// The task being served.
        task: u32,
        /// Demand classification.
        kind: DemandKind,
        /// Demand payload bytes.
        bytes: u64,
        /// Nanoseconds spent queued before service.
        waited_ns: u64,
        /// Simulated completion time of the service, in nanoseconds.
        done_at_ns: u64,
        /// True if the served task is detached.
        detached: bool,
    },
    /// See [`TracePoint::ServiceFinished`].
    ServiceFinished {
        /// The resource index.
        res: u32,
        /// The task that was served.
        task: u32,
        /// Demand classification.
        kind: DemandKind,
        /// Demand payload bytes.
        bytes: u64,
        /// True if the served task is detached.
        detached: bool,
    },
    /// See [`TracePoint::BarrierWaited`].
    BarrierWaited {
        /// The barrier id.
        barrier: u32,
        /// The parked task.
        task: u32,
    },
    /// See [`TracePoint::BarrierOpened`].
    BarrierOpened {
        /// The barrier id.
        barrier: u32,
        /// The arriving task that filled the barrier.
        task: u32,
        /// Completed cycle count after this opening.
        cycle: u64,
        /// Tasks released.
        released: usize,
    },
    /// See [`TracePoint::Access`].
    Access {
        /// Acting thread of control (engine task index or protocol actor).
        task: u32,
        /// First cell touched (namespaced; see `sim_core::hb` helpers).
        cell: u64,
        /// Number of consecutive cells touched.
        len: u64,
        /// What the access did.
        kind: AccessKind,
    },
}

impl TraceEvent {
    /// Convert a borrowed [`TracePoint`] into the owned form.
    pub fn from_point(point: TracePoint<'_>) -> TraceEvent {
        match point {
            TracePoint::JobSpawned { job, label } => {
                TraceEvent::JobSpawned { job: job.index() as u32, label: label.to_string() }
            }
            TracePoint::JobFinished { job } => TraceEvent::JobFinished { job: job.index() as u32 },
            TracePoint::TaskSpawned { task, parent, detached } => TraceEvent::TaskSpawned {
                task: task.index() as u32,
                parent: parent.map(|p| p.index() as u32),
                detached,
            },
            TracePoint::TaskFinished { task, detached } => {
                TraceEvent::TaskFinished { task: task.index() as u32, detached }
            }
            TracePoint::Enqueued { res, task, demand, depth, detached } => TraceEvent::Enqueued {
                res: res.index() as u32,
                task: task.index() as u32,
                kind: demand.into(),
                bytes: demand.bytes(),
                depth,
                detached,
            },
            TracePoint::ServiceStarted { res, task, demand, waited, done_at, detached } => {
                TraceEvent::ServiceStarted {
                    res: res.index() as u32,
                    task: task.index() as u32,
                    kind: demand.into(),
                    bytes: demand.bytes(),
                    waited_ns: waited.as_nanos(),
                    done_at_ns: done_at.as_nanos(),
                    detached,
                }
            }
            TracePoint::ServiceFinished { res, task, demand, detached } => {
                TraceEvent::ServiceFinished {
                    res: res.index() as u32,
                    task: task.index() as u32,
                    kind: demand.into(),
                    bytes: demand.bytes(),
                    detached,
                }
            }
            TracePoint::BarrierWaited { barrier, task } => {
                TraceEvent::BarrierWaited { barrier: barrier.0, task: task.index() as u32 }
            }
            TracePoint::BarrierOpened { barrier, task, cycle, released } => {
                TraceEvent::BarrierOpened {
                    barrier: barrier.0,
                    task: task.index() as u32,
                    cycle,
                    released,
                }
            }
            TracePoint::Access { task, cell, len, kind } => {
                TraceEvent::Access { task, cell, len, kind }
            }
        }
    }
}

/// A [`TraceEvent`] stamped with the simulated time it occurred.
/// Events recorded at the same instant keep emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// A recording tracer behind a cloneable handle.
///
/// Clone the log, hand one clone to the engine via
/// [`Engine::set_tracer`](crate::Engine::set_tracer), keep the other,
/// and read [`EventLog::events`] after the run. The shared buffer is a
/// mutex only so the handle stays `Send`; the engine is single-threaded,
/// so the lock is never contended.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<TimedEvent>>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all recorded events, in emission order.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.events.lock().expect("event log poisoned").clone() // lint-ok(no-unwrap): single-threaded sim: the event-log mutex cannot poison
    }

    /// Take all recorded events, leaving the log empty.
    pub fn take(&self) -> Vec<TimedEvent> {
        std::mem::take(&mut *self.events.lock().expect("event log poisoned")) // lint-ok(no-unwrap): single-threaded sim: the event-log mutex cannot poison
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event log poisoned").len() // lint-ok(no-unwrap): single-threaded sim: the event-log mutex cannot poison
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Tracer for EventLog {
    fn record(&mut self, at: SimTime, point: TracePoint<'_>) {
        self.events
            .lock()
            .expect("event log poisoned") // lint-ok(no-unwrap): single-threaded sim: the event-log mutex cannot poison
            .push(TimedEvent { at, event: TraceEvent::from_point(point) });
    }
}

/// Render one timed event as a stable single-line text form. The
/// `trace-determinism` verify pass fingerprints these lines; the format
/// only needs to be stable within a build, not across versions.
pub fn render_event(ev: &TimedEvent) -> String {
    format!("{} {:?}", ev.at.as_nanos(), ev.event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::plan::{background, barrier, par, seq, use_res};
    use crate::resource::FixedRate;
    use crate::BarrierId;

    fn busy(us: u64) -> Demand {
        Demand::Busy(SimDuration::from_micros(us))
    }

    #[test]
    fn event_log_records_job_and_service_lifecycle() {
        let mut e = Engine::new();
        let r = e.add_resource("disk0", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        let log = EventLog::new();
        e.set_tracer(Box::new(log.clone()));
        e.spawn_job("w", seq(vec![use_res(r, busy(10)), use_res(r, busy(20))]));
        e.run().unwrap();
        let evs = log.events();
        assert!(!evs.is_empty());
        let spawned =
            evs.iter().filter(|t| matches!(t.event, TraceEvent::JobSpawned { .. })).count();
        let finished =
            evs.iter().filter(|t| matches!(t.event, TraceEvent::JobFinished { .. })).count();
        assert_eq!((spawned, finished), (1, 1));
        let starts: Vec<_> =
            evs.iter().filter(|t| matches!(t.event, TraceEvent::ServiceStarted { .. })).collect();
        let ends =
            evs.iter().filter(|t| matches!(t.event, TraceEvent::ServiceFinished { .. })).count();
        assert_eq!((starts.len(), ends), (2, 2));
        // Second service starts when the first ends, at simulated 10us.
        assert_eq!(starts[1].at, SimTime(10_000));
    }

    #[test]
    fn enqueue_depth_counts_queued_and_in_service() {
        let mut e = Engine::new();
        let r = e.add_resource("d", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        let log = EventLog::new();
        e.set_tracer(Box::new(log.clone()));
        e.spawn_job("j", par(vec![use_res(r, busy(10)), use_res(r, busy(10))]));
        e.run().unwrap();
        let depths: Vec<usize> = log
            .events()
            .iter()
            .filter_map(|t| match t.event {
                TraceEvent::Enqueued { depth, .. } => Some(depth),
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![1, 2]);
    }

    #[test]
    fn detached_flag_marks_background_service() {
        let mut e = Engine::new();
        let r = e.add_resource("d", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        let log = EventLog::new();
        e.set_tracer(Box::new(log.clone()));
        e.spawn_job(
            "j",
            seq(vec![
                use_res(r, Demand::DiskWrite { offset: 0, bytes: 4096 }),
                background(use_res(r, Demand::DiskWrite { offset: 4096, bytes: 4096 })),
            ]),
        );
        e.run().unwrap();
        let flags: Vec<bool> = log
            .events()
            .iter()
            .filter_map(|t| match t.event {
                TraceEvent::ServiceFinished { kind: DemandKind::DiskWrite, detached, .. } => {
                    Some(detached)
                }
                _ => None,
            })
            .collect();
        assert_eq!(flags, vec![false, true]);
    }

    #[test]
    fn barrier_events_count_waiters_and_cycles() {
        let mut e = Engine::new();
        let bid = BarrierId(3);
        e.register_barrier(bid, 2);
        let log = EventLog::new();
        e.set_tracer(Box::new(log.clone()));
        for _ in 0..2 {
            e.spawn_job("c", barrier(bid));
        }
        e.run().unwrap();
        let evs = log.events();
        let waited =
            evs.iter().filter(|t| matches!(t.event, TraceEvent::BarrierWaited { .. })).count();
        let opened: Vec<_> = evs
            .iter()
            .filter_map(|t| match t.event {
                TraceEvent::BarrierOpened { cycle, released, .. } => Some((cycle, released)),
                _ => None,
            })
            .collect();
        assert_eq!(waited, 1);
        assert_eq!(opened, vec![(1, 2)]);
    }

    #[test]
    fn clear_tracer_returns_and_stops_recording() {
        let mut e = Engine::new();
        let r = e.add_resource("d", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        let log = EventLog::new();
        e.set_tracer(Box::new(log.clone()));
        e.spawn_job("j", use_res(r, busy(1)));
        e.run().unwrap();
        let n = log.len();
        assert!(n > 0);
        assert!(e.clear_tracer().is_some());
        e.spawn_job("j2", use_res(r, busy(1)));
        e.run().unwrap();
        assert_eq!(log.len(), n, "no events after the tracer was removed");
    }

    #[test]
    fn render_event_is_stable_within_a_run() {
        let ev = TimedEvent { at: SimTime(42), event: TraceEvent::JobFinished { job: 7 } };
        assert_eq!(render_event(&ev), render_event(&ev.clone()));
        assert!(render_event(&ev).starts_with("42 "));
    }
}
