//! Exporters: Chrome trace-event JSON (Perfetto-loadable) and CSV/JSON
//! metrics snapshots.
//!
//! Every timestamp written here is **simulated** time (the Chrome format
//! wants microseconds, so nanosecond stamps are divided by 1000 with
//! three decimals kept — exact for the integer clock). Wall clocks are
//! banned from this module: the `source-scan` determinism pass greps for
//! them, and the `trace-determinism` pass double-runs workloads to prove
//! exports are byte-identical.
//!
//! Track layout of the Chrome trace:
//!
//! * `pid 0` ("resources") — one thread track per registered resource
//!   (disk, NIC port, bus, CPU), carrying a complete (`"X"`) slice per
//!   service interval, counter (`"C"`) samples of that resource's queue
//!   depth, and instant (`"i"`) marks for barrier openings.
//! * `pid 1` ("jobs") — one thread track per foreground job, with a
//!   single slice spanning spawn→finish.
//! * `pid 0` counter `osm.flush_backlog_bytes` — the OSM background
//!   mirror-flush backlog over time.
//!
//! Open traces at <https://ui.perfetto.dev> ("Open trace file") or
//! `chrome://tracing`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;
use crate::trace::{TimedEvent, TraceEvent};

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> String {
    // Chrome trace timestamps are microseconds; keep nanosecond precision
    // as three decimals.
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render a recorded event stream as Chrome trace-event JSON.
///
/// `res_names[i]` names resource index `i`. The output is a complete
/// JSON object loadable by Perfetto; see the module docs for the track
/// layout.
pub fn chrome_trace_json(events: &[TimedEvent], res_names: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"resources\"}}"
            .to_string(),
        &mut out,
    );
    push(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"jobs\"}}"
            .to_string(),
        &mut out,
    );
    for (i, name) in res_names.iter().enumerate() {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ),
            &mut out,
        );
    }

    // Job spans need both endpoints; collect first.
    let mut job_spawn: BTreeMap<u32, (u64, String)> = BTreeMap::new();
    let mut job_end: BTreeMap<u32, u64> = BTreeMap::new();
    // Queue depth per resource, recomputed while walking.
    let mut depth: Vec<i64> = vec![0; res_names.len()];
    let mut backlog: i128 = 0;

    for te in events {
        let t = te.at.as_nanos();
        match &te.event {
            TraceEvent::JobSpawned { job, label } => {
                job_spawn.insert(*job, (t, label.clone()));
            }
            TraceEvent::JobFinished { job } => {
                job_end.insert(*job, t);
            }
            TraceEvent::ServiceStarted {
                res,
                task,
                kind,
                bytes,
                waited_ns,
                done_at_ns,
                detached,
            } => {
                let dur = done_at_ns.saturating_sub(t);
                push(
                    format!(
                        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{res},\"ts\":{},\"dur\":{},\
                         \"name\":\"{} {}B\",\"args\":{{\"task\":{task},\"wait_ns\":{waited_ns},\
                         \"background\":{detached}}}}}",
                        us(t),
                        us(dur),
                        kind.label(),
                        bytes,
                    ),
                    &mut out,
                );
            }
            TraceEvent::Enqueued { res, kind, bytes, detached, .. } => {
                let r = *res as usize;
                if r < depth.len() {
                    depth[r] += 1;
                    push(
                        format!(
                            "{{\"ph\":\"C\",\"pid\":0,\"tid\":{res},\"ts\":{},\
                             \"name\":\"queue {}\",\"args\":{{\"depth\":{}}}}}",
                            us(t),
                            json_escape(&res_names[r]),
                            depth[r],
                        ),
                        &mut out,
                    );
                }
                if *detached && *kind == crate::trace::DemandKind::DiskWrite {
                    backlog += i128::from(*bytes);
                    push(
                        format!(
                            "{{\"ph\":\"C\",\"pid\":0,\"ts\":{},\
                             \"name\":\"osm.flush_backlog_bytes\",\"args\":{{\"bytes\":{backlog}}}}}",
                            us(t),
                        ),
                        &mut out,
                    );
                }
            }
            TraceEvent::ServiceFinished { res, kind, bytes, detached, .. } => {
                let r = *res as usize;
                if r < depth.len() {
                    depth[r] -= 1;
                    push(
                        format!(
                            "{{\"ph\":\"C\",\"pid\":0,\"tid\":{res},\"ts\":{},\
                             \"name\":\"queue {}\",\"args\":{{\"depth\":{}}}}}",
                            us(t),
                            json_escape(&res_names[r]),
                            depth[r],
                        ),
                        &mut out,
                    );
                }
                if *detached && *kind == crate::trace::DemandKind::DiskWrite {
                    backlog -= i128::from(*bytes);
                    push(
                        format!(
                            "{{\"ph\":\"C\",\"pid\":0,\"ts\":{},\
                             \"name\":\"osm.flush_backlog_bytes\",\"args\":{{\"bytes\":{backlog}}}}}",
                            us(t),
                        ),
                        &mut out,
                    );
                }
            }
            TraceEvent::BarrierOpened { barrier, cycle, released, .. } => {
                push(
                    format!(
                        "{{\"ph\":\"i\",\"pid\":0,\"ts\":{},\"s\":\"p\",\
                         \"name\":\"barrier {barrier} cycle {cycle} ({released} released)\"}}",
                        us(t),
                    ),
                    &mut out,
                );
            }
            _ => {}
        }
    }

    for (job, (start, label)) in &job_spawn {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{job},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(label)
            ),
            &mut out,
        );
        if let Some(end) = job_end.get(job) {
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{job},\"ts\":{},\"dur\":{},\
                     \"name\":\"{}\"}}",
                    us(*start),
                    us(end.saturating_sub(*start)),
                    json_escape(label),
                ),
                &mut out,
            );
        }
    }

    out.push_str("\n]}\n");
    out
}

/// Render every gauge series of a registry as CSV:
/// `series,t_ns,value` rows in name then time order.
pub fn metrics_csv(reg: &MetricsRegistry) -> String {
    let mut out = String::from("series,t_ns,value\n");
    for (name, series) in reg.gauges() {
        for &(t, v) in series.points() {
            let _ = writeln!(out, "{name},{t},{v}");
        }
    }
    out
}

/// Render the per-resource utilization timelines as CSV:
/// `resource,window_end_ns,utilization` rows, one per tick window. Only
/// gauges named `{resource}.utilization` are included.
pub fn utilization_csv(reg: &MetricsRegistry) -> String {
    let mut out = String::from("resource,window_end_ns,utilization\n");
    for (name, series) in reg.gauges() {
        if let Some(res) = name.strip_suffix(".utilization") {
            for &(t, v) in series.points() {
                let _ = writeln!(out, "{res},{t},{v:.6}");
            }
        }
    }
    out
}

/// Render a registry snapshot as a JSON object: counters verbatim,
/// histograms as summary objects (count/min/max/mean/p50/p95/p99) and
/// gauges as last/max values (full series belong in the CSV export).
pub fn metrics_json(reg: &MetricsRegistry) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (name, v) in reg.counters() {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {v}", json_escape(name));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let mut first = true;
    for (name, h) in reg.histograms() {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            json_escape(name),
            h.count(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            h.mean().unwrap_or(0.0),
            h.percentile(50.0).unwrap_or(0),
            h.percentile(95.0).unwrap_or(0),
            h.percentile(99.0).unwrap_or(0),
        );
    }
    out.push_str("\n  },\n  \"gauges\": {");
    let mut first = true;
    for (name, series) in reg.gauges() {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{\"points\": {}, \"last\": {}, \"max\": {}}}",
            json_escape(name),
            series.points().len(),
            series.last().unwrap_or(0.0),
            series.max_value().unwrap_or(0.0),
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Minimal structural JSON validity check (objects, arrays, strings,
/// numbers, literals). Used by `trace_dump --smoke` to assert emitted
/// trace files parse without pulling in a JSON dependency.
pub fn json_is_valid(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize, depth: usize) -> bool {
        if depth > 256 {
            return false;
        }
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return true;
                }
                loop {
                    skip_ws(b, i);
                    if !string(b, i) {
                        return false;
                    }
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return false;
                    }
                    *i += 1;
                    if !value(b, i, depth + 1) {
                        return false;
                    }
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return true;
                }
                loop {
                    if !value(b, i, depth + 1) {
                        return false;
                    }
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(_) => number(b, i),
            None => false,
        }
    }
    fn string(b: &[u8], i: &mut usize) -> bool {
        if b.get(*i) != Some(&b'"') {
            return false;
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return true;
                }
                b'\\' => *i += 2,
                _ => *i += 1,
            }
        }
        false
    }
    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> bool {
        if b.len() - *i >= lit.len() && &b[*i..*i + lit.len()] == lit {
            *i += lit.len();
            true
        } else {
            false
        }
    }
    fn number(b: &[u8], i: &mut usize) -> bool {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        let digits = |b: &[u8], i: &mut usize| {
            let s = *i;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
            *i > s
        };
        if !digits(b, i) {
            *i = start;
            return false;
        }
        if b.get(*i) == Some(&b'.') {
            *i += 1;
            if !digits(b, i) {
                return false;
            }
        }
        if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
            *i += 1;
            if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
                *i += 1;
            }
            if !digits(b, i) {
                return false;
            }
        }
        true
    }
    if !value(b, &mut i, 0) {
        return false;
    }
    skip_ws(b, &mut i);
    i == b.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::plan::{background, seq, use_res};
    use crate::resource::FixedRate;
    use crate::time::SimDuration;
    use crate::trace::EventLog;
    use crate::Demand;

    fn traced_run() -> (Vec<TimedEvent>, Vec<String>) {
        let mut e = Engine::new();
        let d = e.add_resource("disk0@node0", Box::new(FixedRate::rate(10 << 20)));
        let log = EventLog::new();
        e.set_tracer(Box::new(log.clone()));
        e.spawn_job(
            "client0/write",
            seq(vec![
                use_res(d, Demand::DiskWrite { offset: 0, bytes: 64 << 10 }),
                background(use_res(d, Demand::DiskWrite { offset: 64 << 10, bytes: 64 << 10 })),
            ]),
        );
        e.run().unwrap();
        let names = e.resources().map(|(_, n, _)| n.to_string()).collect();
        (log.events(), names)
    }

    #[test]
    fn chrome_trace_is_valid_json_with_tracks_and_counters() {
        let (events, names) = traced_run();
        let json = chrome_trace_json(&events, &names);
        assert!(json_is_valid(&json), "invalid JSON:\n{json}");
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("disk0@node0"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("osm.flush_backlog_bytes"));
        assert!(json.contains("client0/write"));
    }

    #[test]
    fn csv_and_json_snapshots_round_trip() {
        let (events, names) = traced_run();
        let reg = MetricsRegistry::from_events(&events, &names, SimDuration::from_millis(1));
        let csv = metrics_csv(&reg);
        assert!(csv.starts_with("series,t_ns,value\n"));
        assert!(csv.contains("disk0@node0.queue_depth"));
        let ucsv = utilization_csv(&reg);
        assert!(ucsv.contains("disk0@node0,"));
        let json = metrics_json(&reg);
        assert!(json_is_valid(&json), "invalid JSON:\n{json}");
        assert!(json.contains("job_latency_ns"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for good in
            ["{}", "[]", "null", "-1.5e3", "{\"a\": [1, 2, {\"b\": \"x\\\"y\"}], \"c\": false}"]
        {
            assert!(json_is_valid(good), "{good}");
        }
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "1.2.3", "{\"a\":1} extra", "\"unterminated"] {
            assert!(!json_is_valid(bad), "{bad}");
        }
    }
}
