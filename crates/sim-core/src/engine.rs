//! The discrete-event engine.
//!
//! The engine owns resources, tasks, barriers and the event heap. It is
//! fully deterministic: event ties are broken by insertion order, service
//! models are invoked in simulated-time order, and no wall-clock or OS
//! entropy is consulted anywhere.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::demand::Demand;
use crate::plan::{BarrierId, Plan};
use crate::prof::{EngineStats, HostProfiler, Phase};
use crate::resource::{Pending, ResourceId, ResourceSlot, ResourceStats, ServiceModel};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TracePoint, Tracer};
use crate::validate::{lint_jobs, lint_plan, PlanContext, PlanError, Strictness};

/// Opaque handle to a spawned foreground job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(pub(crate) u32);

impl JobId {
    /// Index of this job in [`Engine::jobs`] (spawn order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a task (an executing plan instance). Internal granularity:
/// every `Par` child is its own task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// Index of this task's slot in the engine's task table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Completion record for a foreground job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Caller-supplied label (e.g. `"client-3/large-read"`).
    pub label: String,
    /// Simulated time the job became runnable.
    pub start: SimTime,
    /// Simulated completion time of the job's foreground plan
    /// (`None` until it finishes).
    pub end: Option<SimTime>,
}

impl JobRecord {
    /// Foreground latency of the job; panics if the job has not finished.
    /// Prefer [`JobRecord::try_latency`] anywhere an unfinished job can be
    /// observed (deadlocked runs, mid-run inspection, partial drains).
    pub fn latency(&self) -> SimDuration {
        self.try_latency().expect("job not finished") // lint-ok(no-unwrap): caller contract: latency() is only for finished jobs
    }

    /// Foreground latency of the job, or `None` if it has not finished.
    pub fn try_latency(&self) -> Option<SimDuration> {
        Some(self.end?.since(self.start))
    }
}

#[derive(Debug, PartialEq, Eq)]
enum EventKind {
    Resume(TaskId),
    ResourceDone(ResourceId),
    StartJob(TaskId),
}

#[derive(Debug, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

enum Frame {
    Seq(std::vec::IntoIter<Plan>),
}

struct Task {
    frames: Vec<Frame>,
    parent: Option<TaskId>,
    /// Outstanding `Par` children; the task resumes when this hits zero.
    join_remaining: usize,
    /// Set on the root task of a foreground job.
    job: Option<JobId>,
    /// Detached (`Background`) tasks don't gate job completion but do gate
    /// `run()` returning.
    detached: bool,
}

struct BarrierState {
    needed: usize,
    waiting: Vec<TaskId>,
    /// Number of completed barrier cycles (diagnostics).
    cycles: u64,
}

/// Error returned by [`Engine::run`] when simulation cannot make progress.
#[derive(Debug)]
pub struct DeadlockError {
    /// Simulated time at which the event heap drained.
    pub at: SimTime,
    /// Human-readable description of what is still waiting.
    pub detail: String,
}

impl std::fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation deadlocked at {}: {}", self.at, self.detail)
    }
}
impl std::error::Error for DeadlockError {}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Time the last event (foreground or background) completed.
    pub end: SimTime,
    /// Time the last *foreground* job completed (background flushes may
    /// continue past this; the gap is exactly the overhead OSM hides).
    pub foreground_end: SimTime,
}

/// The discrete-event simulation engine. See the crate docs for the model.
pub struct Engine {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    resources: Vec<ResourceSlot>,
    tasks: Vec<Option<Task>>,
    free_tasks: Vec<u32>,
    barriers: HashMap<BarrierId, BarrierState>,
    jobs: Vec<JobRecord>,
    live_foreground: usize,
    live_total: usize,
    foreground_end: SimTime,
    /// Optional observer of engine events; `None` keeps every emission
    /// site a single branch (the zero-cost-when-disabled guarantee).
    tracer: Option<Box<dyn Tracer>>,
    /// Deterministic lifetime work counters (always on — plain integer
    /// bumps on paths that already touch the counted structures).
    stats: EngineStats,
    /// Optional host wall-clock profiler; same zero-cost-when-disabled
    /// `Option<Box<...>>` pattern as the tracer. Host time observed here
    /// never feeds back into simulated time.
    prof: Option<Box<HostProfiler>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// A fresh engine at t = 0 with no resources.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            resources: Vec::new(),
            tasks: Vec::new(),
            free_tasks: Vec::new(),
            barriers: HashMap::new(),
            jobs: Vec::new(),
            live_foreground: 0,
            live_total: 0,
            foreground_end: SimTime::ZERO,
            tracer: None,
            stats: EngineStats::default(),
            prof: None,
        }
    }

    /// Install a [`Tracer`] that observes every engine event from now on
    /// (replacing any previous one). See [`crate::trace`] for the event
    /// model; [`crate::trace::EventLog`] is the stock recorder.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Remove and return the installed tracer, restoring no-op tracing.
    pub fn clear_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// Deterministic lifetime work counters: events dispatched, heap
    /// pushes and peak population, task spawns and slot allocations,
    /// queue-scan iterations, tracer dispatches. Always collected (no
    /// profiler needed), identical across hosts for the same workload.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Install a [`HostProfiler`] that attributes host wall time to
    /// engine phases from now on (replacing any previous one). Wall time
    /// observed by the profiler is advisory and can never influence
    /// simulated time or results.
    pub fn set_profiler(&mut self, prof: HostProfiler) {
        self.prof = Some(Box::new(prof));
    }

    /// Remove and return the installed profiler (its report snapshots
    /// the attribution accumulated so far).
    pub fn take_profiler(&mut self) -> Option<Box<HostProfiler>> {
        self.prof.take()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register a resource with a service model; returns its handle.
    pub fn add_resource(
        &mut self,
        name: impl Into<String>,
        model: Box<dyn ServiceModel>,
    ) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources")); // lint-ok(no-unwrap): u32 resource-id space is a sim capacity invariant
        self.resources.push(ResourceSlot::new(name.into(), model));
        id
    }

    /// Declare a cyclic barrier with `participants` members. All
    /// participants must be declared before any task waits on it.
    pub fn register_barrier(&mut self, id: BarrierId, participants: usize) {
        assert!(participants > 0, "barrier needs at least one participant");
        let prev = self
            .barriers
            .insert(id, BarrierState { needed: participants, waiting: Vec::new(), cycles: 0 });
        assert!(prev.is_none(), "barrier {id:?} registered twice");
    }

    /// The validation context implied by this engine's registered
    /// resources and barriers.
    pub fn plan_context(&self) -> PlanContext {
        PlanContext {
            resources: self.resources.len(),
            // det-ok: collected into another map, order cannot be observed.
            barriers: self.barriers.iter().map(|(&id, b)| (id, b.needed)).collect(),
        }
    }

    /// Statically validate a plan against this engine: rejects unknown
    /// resources, unregistered barriers, barriers inside `Background`
    /// subtrees, empty `Seq`/`Par` combinators and zero-byte transfer
    /// demands. Returns every defect found, not just the first.
    pub fn validate(&self, plan: &Plan) -> Result<(), Vec<PlanError>> {
        let errs = lint_plan(plan, &self.plan_context(), Strictness::Strict);
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Validate a whole job set before spawning: every plan individually
    /// (strict) plus cross-job barrier participant accounting — the class
    /// of defect that silently deadlocks [`Engine::run`].
    pub fn validate_jobs(&self, plans: &[Plan]) -> Result<(), Vec<PlanError>> {
        let errs = lint_jobs(plans, &self.plan_context());
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Spawn a foreground job whose plan becomes runnable immediately.
    pub fn spawn_job(&mut self, label: impl Into<String>, plan: Plan) -> JobId {
        self.spawn_job_at(label, self.now, plan)
    }

    /// Spawn a foreground job that becomes runnable at `start` (must not be
    /// in the past).
    ///
    /// Debug builds statically validate the plan's structural soundness
    /// (unknown resources, unregistered barriers, detached barrier
    /// waiters) before accepting it; call [`Engine::validate`] for the
    /// full strict lint.
    pub fn spawn_job_at(&mut self, label: impl Into<String>, start: SimTime, plan: Plan) -> JobId {
        assert!(start >= self.now, "cannot start a job in the past");
        #[cfg(debug_assertions)]
        {
            let errs = lint_plan(&plan, &self.plan_context(), Strictness::Structural);
            assert!(errs.is_empty(), "structurally invalid plan: {errs:?}");
        }
        let job = JobId(u32::try_from(self.jobs.len()).expect("too many jobs")); // lint-ok(no-unwrap): u32 job-id space is a sim capacity invariant
        self.jobs.push(JobRecord { label: label.into(), start, end: None });
        if let Some(tr) = self.tracer.as_mut() {
            let label = self.jobs[job.0 as usize].label.as_str();
            tr.record(start, TracePoint::JobSpawned { job, label });
            self.stats.on_tracer_records(1);
        }
        self.live_foreground += 1;
        let tid = self.new_task(plan, None, Some(job), false);
        self.schedule(start, EventKind::StartJob(tid));
        job
    }

    /// Run until every event is processed and every task (including
    /// background tasks) has completed.
    pub fn run(&mut self) -> Result<RunReport, DeadlockError> {
        while let Some(Reverse(ev)) = self.events.pop() {
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.stats.on_event();
            if let Some(p) = self.prof.as_mut() {
                p.event_begin();
            }
            match ev.kind {
                EventKind::Resume(t) | EventKind::StartJob(t) => self.advance(t),
                EventKind::ResourceDone(r) => self.resource_done(r),
            }
            if let Some(p) = self.prof.as_mut() {
                p.event_end();
            }
        }
        if self.live_total > 0 {
            return Err(DeadlockError { at: self.now, detail: self.diagnose_stall() });
        }
        Ok(RunReport { end: self.now, foreground_end: self.foreground_end })
    }

    /// Run every event scheduled at or before `t`, then advance the clock
    /// to exactly `t` and return it. Remaining events stay queued, and —
    /// unlike [`Engine::run`] — live tasks after the partial drain are not
    /// a deadlock: the caller typically mutates system state (injects a
    /// fault, spawns recovery jobs) and then resumes with `run_until` or a
    /// final [`Engine::run`]. This is the engine hook the fault-injection
    /// layer uses to pause a simulation mid-workload at a scheduled
    /// instant; [`crate::fault::FaultPlan`] supplies the instants.
    pub fn run_until(&mut self, t: SimTime) -> SimTime {
        assert!(t >= self.now, "cannot run into the past");
        while self.events.peek().is_some_and(|Reverse(ev)| ev.time <= t) {
            let Reverse(ev) = self.events.pop().expect("peeked event vanished"); // lint-ok(no-unwrap): peek on the same non-empty heap one line up
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.stats.on_event();
            if let Some(p) = self.prof.as_mut() {
                p.event_begin();
            }
            match ev.kind {
                EventKind::Resume(task) | EventKind::StartJob(task) => self.advance(task),
                EventKind::ResourceDone(r) => self.resource_done(r),
            }
            if let Some(p) = self.prof.as_mut() {
                p.event_end();
            }
        }
        self.now = t;
        self.now
    }

    /// Multiply every *subsequent* service time on `id` by `factor`
    /// (`1` restores nominal speed). Demands already in service keep
    /// their original completion time. Models a degraded-but-alive
    /// component, e.g. a disk stuck in media-retry mode.
    pub fn set_resource_slowdown(&mut self, id: ResourceId, factor: u64) {
        assert!(factor >= 1, "slowdown factor must be >= 1");
        self.resources[id.index()].slowdown = factor;
    }

    /// Current slowdown factor of a resource (`1` = nominal).
    pub fn resource_slowdown(&self, id: ResourceId) -> u64 {
        self.resources[id.index()].slowdown
    }

    /// Records of all spawned jobs, in spawn order.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Statistics for one resource.
    pub fn resource_stats(&self, id: ResourceId) -> &ResourceStats {
        &self.resources[id.index()].stats
    }

    /// Name given to a resource at registration.
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.index()].name
    }

    /// Iterate over `(id, name, stats)` for every resource.
    pub fn resources(&self) -> impl Iterator<Item = (ResourceId, &str, &ResourceStats)> {
        self.resources
            .iter()
            .enumerate()
            .map(|(i, slot)| (ResourceId(i as u32), slot.name.as_str(), &slot.stats))
    }

    /// Number of completed cycles of a registered barrier.
    pub fn barrier_cycles(&self, id: BarrierId) -> u64 {
        self.barriers.get(&id).map_or(0, |b| b.cycles)
    }

    fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
        self.stats.on_heap_push(self.events.len());
    }

    fn new_task(
        &mut self,
        plan: Plan,
        parent: Option<TaskId>,
        job: Option<JobId>,
        detached: bool,
    ) -> TaskId {
        if let Some(p) = self.prof.as_mut() {
            p.enter(Phase::TaskMgmt);
        }
        self.live_total += 1;
        let task = Task {
            frames: vec![Frame::Seq(vec![plan].into_iter())],
            parent,
            join_remaining: 0,
            job,
            detached,
        };
        let tid = if let Some(idx) = self.free_tasks.pop() {
            self.stats.on_task_spawn(false);
            self.tasks[idx as usize] = Some(task);
            TaskId(idx)
        } else {
            self.stats.on_task_spawn(true);
            let idx = u32::try_from(self.tasks.len()).expect("too many tasks"); // lint-ok(no-unwrap): u32 task-id space is a sim capacity invariant
            self.tasks.push(Some(task));
            TaskId(idx)
        };
        if let Some(tr) = self.tracer.as_mut() {
            if let Some(p) = self.prof.as_mut() {
                p.enter(Phase::Tracer);
            }
            tr.record(self.now, TracePoint::TaskSpawned { task: tid, parent, detached });
            self.stats.on_tracer_records(1);
            if let Some(p) = self.prof.as_mut() {
                p.exit();
            }
        }
        if let Some(p) = self.prof.as_mut() {
            p.exit();
        }
        tid
    }

    /// Drive `tid` forward until it suspends or completes.
    fn advance(&mut self, tid: TaskId) {
        let mut task = self.tasks[tid.0 as usize].take().expect("advancing a dead task"); // lint-ok(no-unwrap): scheduler only advances tasks it just dequeued
        loop {
            let next = match task.frames.last_mut() {
                None => {
                    self.finish_task(tid, task);
                    return;
                }
                Some(Frame::Seq(it)) => it.next(),
            };
            match next {
                None => {
                    task.frames.pop();
                }
                Some(Plan::Noop) => {}
                Some(Plan::Delay(d)) => {
                    self.tasks[tid.0 as usize] = Some(task);
                    self.schedule(self.now + d, EventKind::Resume(tid));
                    return;
                }
                Some(Plan::Use { res, demand }) => {
                    self.tasks[tid.0 as usize] = Some(task);
                    self.enqueue(res, tid, demand);
                    return;
                }
                Some(Plan::Seq(v)) => {
                    task.frames.push(Frame::Seq(v.into_iter()));
                }
                Some(Plan::Par(v)) => {
                    if v.is_empty() {
                        continue;
                    }
                    task.join_remaining = v.len();
                    // Children of a detached (background) subtree are
                    // themselves background work.
                    let det = task.detached;
                    self.tasks[tid.0 as usize] = Some(task);
                    for child in v {
                        let ct = self.new_task(child, Some(tid), None, det);
                        self.advance(ct);
                    }
                    return;
                }
                Some(Plan::Background(p)) => {
                    // Spawn detached and keep going; the child is driven from
                    // a fresh event so its resource queueing interleaves
                    // fairly with the parent's continuation.
                    let ct = self.new_task(*p, None, None, true);
                    self.schedule(self.now, EventKind::Resume(ct));
                }
                Some(Plan::Barrier(id)) => {
                    let b = self
                        .barriers
                        .get_mut(&id)
                        .unwrap_or_else(|| panic!("barrier {id:?} not registered"));
                    if b.waiting.len() + 1 == b.needed {
                        b.cycles += 1;
                        let cycle = b.cycles;
                        let waiters = std::mem::take(&mut b.waiting);
                        let released = waiters.len() + 1;
                        for w in waiters {
                            self.schedule(self.now, EventKind::Resume(w));
                        }
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.record(
                                self.now,
                                TracePoint::BarrierOpened {
                                    barrier: id,
                                    task: tid,
                                    cycle,
                                    released,
                                },
                            );
                            self.stats.on_tracer_records(1);
                        }
                        // current task falls through the barrier
                    } else {
                        b.waiting.push(tid);
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.record(
                                self.now,
                                TracePoint::BarrierWaited { barrier: id, task: tid },
                            );
                            self.stats.on_tracer_records(1);
                        }
                        self.tasks[tid.0 as usize] = Some(task);
                        return;
                    }
                }
            }
        }
    }

    fn finish_task(&mut self, tid: TaskId, task: Task) {
        // The TaskMgmt span covers completion bookkeeping only; the
        // parent-join advance below recurses and is attributed to the
        // spans its own work opens.
        if let Some(p) = self.prof.as_mut() {
            p.enter(Phase::TaskMgmt);
        }
        self.live_total -= 1;
        self.free_tasks.push(tid.0);
        if let Some(tr) = self.tracer.as_mut() {
            if let Some(p) = self.prof.as_mut() {
                p.enter(Phase::Tracer);
            }
            tr.record(self.now, TracePoint::TaskFinished { task: tid, detached: task.detached });
            self.stats.on_tracer_records(1);
            if let Some(p) = self.prof.as_mut() {
                p.exit();
            }
        }
        if let Some(job) = task.job {
            self.jobs[job.0 as usize].end = Some(self.now);
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(self.now, TracePoint::JobFinished { job });
                self.stats.on_tracer_records(1);
            }
            self.live_foreground -= 1;
            if self.now > self.foreground_end {
                self.foreground_end = self.now;
            }
        }
        if let Some(p) = self.prof.as_mut() {
            p.exit();
        }
        if let Some(parent) = task.parent {
            let p = self.tasks[parent.0 as usize].as_mut().expect("parent died before child"); // lint-ok(no-unwrap): parent slot outlives children by Par construction
            p.join_remaining -= 1;
            if p.join_remaining == 0 {
                self.advance(parent);
            }
        }
    }

    fn enqueue(&mut self, rid: ResourceId, tid: TaskId, demand: Demand) {
        let now = self.now;
        let detached = self.tasks[tid.0 as usize].as_ref().is_some_and(|t| t.detached);
        let slot = &mut self.resources[rid.index()];
        let pending = Pending { task: tid, demand, enqueued: now };
        let mut start_at = None;
        if slot.current.is_none() {
            let st = slot.model.service_time(&pending.demand, now) * slot.slowdown;
            slot.stats.busy += st;
            slot.stats.ops += 1;
            slot.stats.bytes += pending.demand.bytes();
            start_at = Some(now + st);
        }
        let depth = slot.depth() + 1;
        if depth > slot.stats.max_queue {
            slot.stats.max_queue = depth;
        }
        if let Some(tr) = self.tracer.as_mut() {
            if let Some(p) = self.prof.as_mut() {
                p.enter(Phase::Tracer);
            }
            let demand = &pending.demand;
            tr.record(now, TracePoint::Enqueued { res: rid, task: tid, demand, depth, detached });
            self.stats.on_tracer_records(1);
            if let Some(done_at) = start_at {
                tr.record(
                    now,
                    TracePoint::ServiceStarted {
                        res: rid,
                        task: tid,
                        demand,
                        waited: SimDuration::ZERO,
                        done_at,
                        detached,
                    },
                );
                self.stats.on_tracer_records(1);
            }
            if let Some(p) = self.prof.as_mut() {
                p.exit();
            }
        }
        if start_at.is_some() {
            slot.current = Some(pending);
        } else {
            slot.queue.push_back(pending);
        }
        if let Some(t) = start_at {
            self.schedule(t, EventKind::ResourceDone(rid));
        }
    }

    fn resource_done(&mut self, rid: ResourceId) {
        let now = self.now;
        let slot = &mut self.resources[rid.index()];
        let done = slot.current.take().expect("resource-done with idle resource"); // lint-ok(no-unwrap): resource-done events are only queued for busy slots
        let mut next_done = None;
        let next = if slot.queue.is_empty() {
            None
        } else if slot.queue.len() == 1 {
            slot.queue.pop_front()
        } else {
            // Let the service model pick (FIFO by default; disks may
            // reorder by offset — SSTF/elevator).
            if let Some(p) = self.prof.as_mut() {
                p.enter(Phase::QueueScan);
            }
            self.stats.on_queue_scan(slot.queue.len());
            let demands: Vec<&Demand> = slot.queue.iter().map(|p| &p.demand).collect();
            let idx = slot.model.select_next(&demands);
            debug_assert!(idx < slot.queue.len(), "select_next out of range");
            let picked = slot.queue.remove(idx.min(slot.queue.len() - 1));
            if let Some(p) = self.prof.as_mut() {
                p.exit();
            }
            picked
        };
        if let Some(next) = next {
            let waited = now.since(next.enqueued);
            slot.stats.queue_wait += waited;
            let st = slot.model.service_time(&next.demand, now) * slot.slowdown;
            slot.stats.busy += st;
            slot.stats.ops += 1;
            slot.stats.bytes += next.demand.bytes();
            let done_at = now + st;
            if let Some(tr) = self.tracer.as_mut() {
                if let Some(p) = self.prof.as_mut() {
                    p.enter(Phase::Tracer);
                }
                let d_det = self.tasks[done.task.0 as usize].as_ref().is_some_and(|t| t.detached);
                let n_det = self.tasks[next.task.0 as usize].as_ref().is_some_and(|t| t.detached);
                tr.record(
                    now,
                    TracePoint::ServiceFinished {
                        res: rid,
                        task: done.task,
                        demand: &done.demand,
                        detached: d_det,
                    },
                );
                tr.record(
                    now,
                    TracePoint::ServiceStarted {
                        res: rid,
                        task: next.task,
                        demand: &next.demand,
                        waited,
                        done_at,
                        detached: n_det,
                    },
                );
                self.stats.on_tracer_records(2);
                if let Some(p) = self.prof.as_mut() {
                    p.exit();
                }
            }
            slot.current = Some(next);
            next_done = Some(done_at);
        } else if let Some(tr) = self.tracer.as_mut() {
            if let Some(p) = self.prof.as_mut() {
                p.enter(Phase::Tracer);
            }
            let d_det = self.tasks[done.task.0 as usize].as_ref().is_some_and(|t| t.detached);
            tr.record(
                now,
                TracePoint::ServiceFinished {
                    res: rid,
                    task: done.task,
                    demand: &done.demand,
                    detached: d_det,
                },
            );
            self.stats.on_tracer_records(1);
            if let Some(p) = self.prof.as_mut() {
                p.exit();
            }
        }
        if let Some(t) = next_done {
            self.schedule(t, EventKind::ResourceDone(rid));
        }
        self.advance(done.task);
    }

    fn diagnose_stall(&self) -> String {
        let mut waiting_barrier = 0usize;
        // det-ok: commutative sum, iteration order cannot be observed.
        for b in self.barriers.values() {
            waiting_barrier += b.waiting.len();
        }
        let live = self.tasks.iter().filter(|t| t.is_some()).count();
        let detached = self.tasks.iter().flatten().filter(|t| t.detached).count();
        format!(
            "{live} live tasks ({} foreground jobs unfinished, {detached} detached), \
             {waiting_barrier} parked on barriers (a barrier's participant count probably \
             exceeds the number of jobs that reach it)",
            self.live_foreground
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{background, barrier, delay, par, seq, use_res};
    use crate::resource::FixedRate;

    fn busy(d: u64) -> Demand {
        Demand::Busy(SimDuration::from_micros(d))
    }

    #[test]
    fn empty_run_finishes_at_zero() {
        let mut e = Engine::new();
        let r = e.run().unwrap();
        assert_eq!(r.end, SimTime::ZERO);
    }

    #[test]
    fn seq_adds_durations() {
        let mut e = Engine::new();
        let r = e.add_resource("cpu", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        e.spawn_job("j", seq(vec![use_res(r, busy(10)), use_res(r, busy(20))]));
        let rep = e.run().unwrap();
        assert_eq!(rep.end, SimTime(30_000));
        assert_eq!(e.jobs()[0].latency(), SimDuration::from_micros(30));
        assert_eq!(e.resource_stats(r).ops, 2);
    }

    #[test]
    fn par_on_one_resource_serializes() {
        let mut e = Engine::new();
        let r = e.add_resource("disk", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        e.spawn_job("j", par(vec![use_res(r, busy(10)), use_res(r, busy(10))]));
        let rep = e.run().unwrap();
        assert_eq!(rep.end, SimTime(20_000));
        assert_eq!(e.resource_stats(r).max_queue, 2);
    }

    #[test]
    fn par_on_two_resources_overlaps() {
        let mut e = Engine::new();
        let a = e.add_resource("a", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        let b = e.add_resource("b", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        e.spawn_job("j", par(vec![use_res(a, busy(10)), use_res(b, busy(10))]));
        let rep = e.run().unwrap();
        assert_eq!(rep.end, SimTime(10_000));
    }

    #[test]
    fn fifo_queueing_and_wait_stats() {
        let mut e = Engine::new();
        let r = e.add_resource("disk", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        e.spawn_job("j1", use_res(r, busy(100)));
        e.spawn_job("j2", use_res(r, busy(100)));
        e.run().unwrap();
        // Second job waited the full first service.
        assert_eq!(e.resource_stats(r).queue_wait, SimDuration::from_micros(100));
        assert_eq!(e.jobs()[1].latency(), SimDuration::from_micros(200));
    }

    #[test]
    fn background_does_not_gate_job_but_gates_run() {
        let mut e = Engine::new();
        let r = e.add_resource("disk", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        e.spawn_job("j", seq(vec![use_res(r, busy(10)), background(use_res(r, busy(1000)))]));
        let rep = e.run().unwrap();
        assert_eq!(e.jobs()[0].latency(), SimDuration::from_micros(10));
        assert_eq!(rep.foreground_end, SimTime(10_000));
        assert_eq!(rep.end, SimTime(1_010_000));
    }

    #[test]
    fn background_competes_for_resources() {
        let mut e = Engine::new();
        let r = e.add_resource("disk", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        // Background write issued first occupies the disk; the foreground
        // read then queues behind it.
        e.spawn_job(
            "j",
            seq(vec![
                background(use_res(r, busy(50))),
                delay(SimDuration::from_micros(1)),
                use_res(r, busy(10)),
            ]),
        );
        e.run().unwrap();
        assert_eq!(e.jobs()[0].latency(), SimDuration::from_micros(60));
    }

    #[test]
    fn barrier_synchronizes_jobs() {
        let mut e = Engine::new();
        let bid = BarrierId(7);
        e.register_barrier(bid, 3);
        let r = e.add_resource("cpu", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        for i in 0..3u64 {
            e.spawn_job(
                format!("c{i}"),
                seq(vec![
                    use_res(r, busy(10 * (i + 1))),
                    barrier(bid),
                    delay(SimDuration::from_micros(5)),
                ]),
            );
        }
        e.run().unwrap();
        // cpu serializes: arrivals at 10, 30, 60us; barrier opens at 60us.
        for j in e.jobs() {
            assert_eq!(j.end.unwrap(), SimTime(65_000));
        }
        assert_eq!(e.barrier_cycles(bid), 1);
    }

    #[test]
    fn barrier_is_cyclic() {
        let mut e = Engine::new();
        let bid = BarrierId(0);
        e.register_barrier(bid, 2);
        for _ in 0..2 {
            e.spawn_job(
                "c",
                seq(vec![barrier(bid), delay(SimDuration::from_micros(1)), barrier(bid)]),
            );
        }
        e.run().unwrap();
        assert_eq!(e.barrier_cycles(bid), 2);
    }

    #[test]
    fn unfilled_barrier_deadlocks_with_diagnosis() {
        let mut e = Engine::new();
        let bid = BarrierId(1);
        e.register_barrier(bid, 2);
        e.spawn_job("only", barrier(bid));
        let err = e.run().unwrap_err();
        assert!(err.detail.contains("parked on barriers"), "{}", err.detail);
    }

    #[test]
    fn delayed_job_start() {
        let mut e = Engine::new();
        e.spawn_job_at("late", SimTime(5_000), delay(SimDuration::from_micros(1)));
        let rep = e.run().unwrap();
        assert_eq!(rep.end, SimTime(6_000));
        assert_eq!(e.jobs()[0].start, SimTime(5_000));
        assert_eq!(e.jobs()[0].latency(), SimDuration::from_micros(1));
    }

    #[test]
    fn nested_par_seq_pipeline() {
        // Two chunks flowing through two stages overlap: total = 3 stage times.
        let mut e = Engine::new();
        let s1 = e.add_resource("s1", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        let s2 = e.add_resource("s2", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        let chunk = |_: u32| seq(vec![use_res(s1, busy(10)), use_res(s2, busy(10))]);
        e.spawn_job("xfer", par(vec![chunk(0), chunk(1)]));
        let rep = e.run().unwrap();
        assert_eq!(rep.end, SimTime(30_000));
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let build = || {
            let mut e = Engine::new();
            let r = e.add_resource("d", Box::new(FixedRate::per_op(SimDuration::from_micros(3))));
            for i in 0..50u64 {
                e.spawn_job(
                    format!("j{i}"),
                    par(vec![use_res(r, busy(i % 7 + 1)), use_res(r, busy(i % 3 + 1))]),
                );
            }
            let rep = e.run().unwrap();
            (rep.end, e.resource_stats(r).queue_wait)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn custom_queue_discipline_reorders_service() {
        // A model that always serves the *largest* pending demand first.
        struct LargestFirst;
        impl crate::resource::ServiceModel for LargestFirst {
            fn service_time(&mut self, demand: &Demand, _now: SimTime) -> SimDuration {
                SimDuration::from_micros(demand.bytes().max(1))
            }
            fn select_next(&mut self, pending: &[&Demand]) -> usize {
                pending
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, d)| d.bytes())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
        }
        let mut e = Engine::new();
        let r = e.add_resource("d", Box::new(LargestFirst));
        // Jobs arrive in size order 1, 5, 3 (bytes). The first grabs the
        // resource; afterwards service order must be 5 then 3.
        let j1 = e.spawn_job("a", crate::plan::use_res(r, Demand::NetXfer { bytes: 1 }));
        let j5 = e.spawn_job("b", crate::plan::use_res(r, Demand::NetXfer { bytes: 5 }));
        let j3 = e.spawn_job("c", crate::plan::use_res(r, Demand::NetXfer { bytes: 3 }));
        e.run().unwrap();
        let end = |j: JobId| e.jobs()[j.0 as usize].end.unwrap();
        assert!(end(j1) < end(j5), "first-come starts first");
        assert!(end(j5) < end(j3), "largest pending served before smaller");
    }

    #[test]
    fn run_until_pauses_mid_workload_and_resumes() {
        let mut e = Engine::new();
        let r = e.add_resource("d", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        e.spawn_job("j", seq(vec![use_res(r, busy(10)), use_res(r, busy(10))]));
        // Pause between the two service completions: exactly one op done.
        let at = e.run_until(SimTime(15_000));
        assert_eq!(at, SimTime(15_000));
        assert_eq!(e.now(), SimTime(15_000));
        assert_eq!(e.resource_stats(r).ops, 2); // second already in service
        assert!(e.jobs()[0].end.is_none(), "job must still be in flight");
        // A job spawned at the pause point interleaves with the remainder.
        e.spawn_job("late", use_res(r, busy(5)));
        let rep = e.run().unwrap();
        assert_eq!(rep.end, SimTime(25_000));
        assert_eq!(e.jobs()[0].end, Some(SimTime(20_000)));
    }

    #[test]
    fn run_until_advances_clock_past_all_events() {
        let mut e = Engine::new();
        let r = e.add_resource("d", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        e.spawn_job("j", use_res(r, busy(10)));
        assert_eq!(e.run_until(SimTime(1_000_000)), SimTime(1_000_000));
        assert_eq!(e.jobs()[0].end, Some(SimTime(10_000)));
        let rep = e.run().unwrap();
        assert_eq!(rep.end, SimTime(1_000_000));
    }

    #[test]
    fn resource_slowdown_scales_subsequent_service() {
        let mut e = Engine::new();
        let r = e.add_resource("d", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        assert_eq!(e.resource_slowdown(r), 1);
        e.spawn_job("healthy", use_res(r, busy(10)));
        e.run().unwrap();
        assert_eq!(e.jobs()[0].latency(), SimDuration::from_micros(10));
        e.set_resource_slowdown(r, 4);
        e.spawn_job("degraded", use_res(r, busy(10)));
        e.run().unwrap();
        assert_eq!(e.jobs()[1].latency(), SimDuration::from_micros(40));
        e.set_resource_slowdown(r, 1);
        e.spawn_job("recovered", use_res(r, busy(10)));
        e.run().unwrap();
        assert_eq!(e.jobs()[2].latency(), SimDuration::from_micros(10));
    }

    #[test]
    fn task_slots_are_reused() {
        let mut e = Engine::new();
        let r = e.add_resource("d", Box::new(FixedRate::per_op(SimDuration::ZERO)));
        for _ in 0..1000 {
            e.spawn_job("j", use_res(r, busy(1)));
        }
        e.run().unwrap();
        // Every slot must be back on the free list once the run drains.
        assert_eq!(e.free_tasks.len(), e.tasks.len());
        // Re-running a fresh batch reuses the freed slots instead of growing.
        let before = e.tasks.len();
        for _ in 0..500 {
            e.spawn_job("j2", use_res(r, busy(1)));
        }
        e.run().unwrap();
        assert_eq!(e.tasks.len(), before);
    }
}
