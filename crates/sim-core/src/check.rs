//! Minimal deterministic property-testing harness.
//!
//! A dependency-free stand-in for an external property-testing crate: test
//! cases are driven by the same [`SplitMix64`] generator the simulator uses,
//! seeded from the test name, so every run explores the same cases and a
//! failure report pinpoints the reproducing seed. No shrinking — cases are
//! kept small enough to debug directly.

use crate::rng::SplitMix64;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Per-case random value source handed to the property closure.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// A generator for one case, from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Gen { rng: SplitMix64::new(seed) }
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u64` in `[range.start, range.end)`.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.rng.next_below(range.end - range.start)
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u8` over its full domain.
    pub fn u8(&mut self) -> u8 {
        (self.u64() & 0xFF) as u8
    }

    /// Uniform `u16` over its full domain.
    pub fn u16(&mut self) -> u16 {
        (self.u64() & 0xFFFF) as u16
    }

    /// Coin flip.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Pick an index with the given relative weights (like a weighted
    /// one-of combinator). Returns the chosen index in `0..weights.len()`.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "all weights zero");
        let mut roll = self.rng.next_below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    }

    /// A vector of `len` items drawn by `f`, with `len` uniform in `range`.
    pub fn vec_of<T>(&mut self, range: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.usize_in(range);
        (0..len).map(|_| f(self)).collect()
    }
}

/// FNV-1a hash of the test name: a stable, platform-independent base seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `cases` instances of the property `f`, each with an independent
/// deterministic generator. On failure the panic is re-raised annotated
/// with the case index and seed so it can be replayed with
/// [`run_seed`].
pub fn run_cases(name: &str, cases: u64, mut f: impl FnMut(&mut Gen)) {
    let base = name_seed(name);
    for case in 0..cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut g = Gen::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut g))) {
            eprintln!("property `{name}` failed at case {case}/{cases} (replay: run_seed({name:?}, {seed:#x}))");
            resume_unwind(payload);
        }
    }
}

/// Replay a single failing case of a property by seed.
pub fn run_seed(_name: &str, seed: u64, mut f: impl FnMut(&mut Gen)) {
    let mut g = Gen::new(seed);
    f(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        run_cases("det", 5, |g| a.push(g.u64()));
        let mut b = Vec::new();
        run_cases("det", 5, |g| b.push(g.u64()));
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_respected() {
        run_cases("ranges", 50, |g| {
            assert!((3..9).contains(&g.usize_in(3..9)));
            assert!((100..200).contains(&g.u64_in(100..200)));
        });
    }

    #[test]
    fn weighted_hits_every_arm() {
        let mut seen = [false; 3];
        run_cases("weighted", 200, |g| {
            seen[g.weighted(&[4, 2, 1])] = true;
        });
        assert!(seen.iter().all(|&s| s), "arms hit: {seen:?}");
    }

    #[test]
    fn failure_reports_case() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_cases("always-fails", 3, |_| panic!("boom"));
        }));
        assert!(err.is_err());
    }

    #[test]
    fn vec_of_lengths_in_range() {
        run_cases("vec-of", 40, |g| {
            let v = g.vec_of(1..7, Gen::u8);
            assert!((1..7).contains(&v.len()));
        });
    }
}
