//! Minimal deterministic property-testing harness with counterexample
//! shrinking.
//!
//! A dependency-free stand-in for an external property-testing crate: test
//! cases are driven by the same [`SplitMix64`] generator the simulator uses,
//! seeded from the test name, so every run explores the same cases and a
//! failure report pinpoints the reproducing seed. Every raw draw a [`Gen`]
//! hands out is also recorded on a *tape*; when a case fails, the harness
//! replays the property against shrunk tapes (dropping draws, then lowering
//! their values) and prints the smallest still-failing tape next to the
//! original seed, replayable with [`run_tape`]. The same greedy minimizers
//! ([`shrink_list`], [`shrink_u64s`]) back the model checker's schedule
//! shrinking in [`crate::explore`].

use crate::rng::SplitMix64;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Seed for the generator that continues a replay once a (shrunk) tape is
/// exhausted. Any fixed value works; replays must merely be deterministic.
const TAPE_CONTINUATION_SEED: u64 = 0x7A9E_5EED_0D15_C0DE;

/// Upper bound on oracle invocations per shrink call, so pathological
/// properties cannot stall a failing test indefinitely.
const SHRINK_BUDGET: usize = 2000;

/// Per-case random value source handed to the property closure.
///
/// Draws come from a seeded [`SplitMix64`] (or a replay tape) and every raw
/// value handed out is recorded, so a failing case can be minimized and
/// replayed exactly.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: SplitMix64,
    tape: Vec<u64>,
    pos: usize,
    record: Vec<u64>,
}

impl Gen {
    /// A generator for one case, from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Gen { rng: SplitMix64::new(seed), tape: Vec::new(), pos: 0, record: Vec::new() }
    }

    /// A generator that replays `tape` verbatim, then continues from a
    /// fixed-seed stream if the property draws past the end. Used to replay
    /// (possibly shrunk) counterexamples.
    pub fn from_tape(tape: &[u64]) -> Self {
        Gen {
            rng: SplitMix64::new(TAPE_CONTINUATION_SEED),
            tape: tape.to_vec(),
            pos: 0,
            record: Vec::new(),
        }
    }

    /// Every raw 64-bit value drawn so far, in order.
    pub fn recorded(&self) -> &[u64] {
        &self.record
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        let v = if self.pos < self.tape.len() {
            let v = self.tape[self.pos];
            self.pos += 1;
            v
        } else {
            self.rng.next_u64()
        };
        self.record.push(v);
        v
    }

    /// Uniform in `[0, bound)` from one recorded draw (multiply-shift).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `u64` in `[range.start, range.end)`.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.below(range.end - range.start)
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u8` over its full domain.
    pub fn u8(&mut self) -> u8 {
        (self.u64() & 0xFF) as u8
    }

    /// Uniform `u16` over its full domain.
    pub fn u16(&mut self) -> u16 {
        (self.u64() & 0xFFFF) as u16
    }

    /// Coin flip.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Pick an index with the given relative weights (like a weighted
    /// one-of combinator). Returns the chosen index in `0..weights.len()`.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "all weights zero");
        let mut roll = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    }

    /// A vector of `len` items drawn by `f`, with `len` uniform in `range`.
    pub fn vec_of<T>(&mut self, range: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.usize_in(range);
        (0..len).map(|_| f(self)).collect()
    }
}

/// FNV-1a hash of the test name: a stable, platform-independent base seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Greedily minimize `items` under the failure oracle `still_fails` by
/// deleting contiguous chunks (ddmin-style: halves first, then single
/// elements). The oracle must return `true` when the candidate still
/// reproduces the failure; the returned list is a subsequence of `items`
/// on which it does.
pub fn shrink_list<T: Clone>(items: &[T], mut still_fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur = items.to_vec();
    let mut budget = SHRINK_BUDGET;
    let mut chunk = (cur.len() / 2).max(1);
    while !cur.is_empty() && budget > 0 {
        let mut improved = false;
        let mut i = 0;
        while i + chunk <= cur.len() && budget > 0 {
            let mut cand = Vec::with_capacity(cur.len() - chunk);
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[i + chunk..]);
            budget -= 1;
            if still_fails(&cand) {
                cur = cand;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    cur
}

/// Minimize the *values* of `items` element-wise under `still_fails`:
/// each element is tried at zero, then binary-searched down to the
/// smallest still-failing value. Run after [`shrink_list`] has removed
/// whole elements.
pub fn shrink_u64s(items: &[u64], mut still_fails: impl FnMut(&[u64]) -> bool) -> Vec<u64> {
    let mut cur = items.to_vec();
    let mut budget = SHRINK_BUDGET;
    for i in 0..cur.len() {
        if budget == 0 || cur[i] == 0 {
            continue;
        }
        let mut cand = cur.clone();
        cand[i] = 0;
        budget -= 1;
        if still_fails(&cand) {
            cur = cand;
            continue;
        }
        // 0 passes and cur[i] fails: binary-search the boundary. For a
        // non-monotone oracle this is still sound (the result fails), just
        // not necessarily globally minimal.
        let (mut lo, mut hi) = (0u64, cur[i]);
        while hi - lo > 1 && budget > 0 {
            let mid = lo + (hi - lo) / 2;
            let mut cand = cur.clone();
            cand[i] = mid;
            budget -= 1;
            if still_fails(&cand) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        cur[i] = hi;
    }
    cur
}

/// Minimize a failing draw tape: drop draws first, then lower the
/// surviving values. The result still fails `still_fails`.
pub fn shrink_tape(tape: &[u64], mut still_fails: impl FnMut(&[u64]) -> bool) -> Vec<u64> {
    let cur = shrink_list(tape, &mut still_fails);
    shrink_u64s(&cur, still_fails)
}

fn format_tape(tape: &[u64]) -> String {
    let body = tape.iter().map(|v| format!("{v:#x}")).collect::<Vec<_>>().join(", ");
    format!("&[{body}]")
}

/// Run `cases` instances of the property `f`, each with an independent
/// deterministic generator. On failure the harness shrinks the recorded
/// draw tape to a minimal still-failing counterexample (replayable with
/// [`run_tape`]), prints both it and the reproducing seed, and re-raises
/// the original panic. Properties should be self-contained: the closure is
/// re-invoked many times during shrinking.
pub fn run_cases(name: &str, cases: u64, mut f: impl FnMut(&mut Gen)) {
    let base = name_seed(name);
    for case in 0..cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut g = Gen::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut g))) {
            let original = g.recorded().to_vec();
            // Silence the panic hook while the shrinker replays the
            // property, so hundreds of intermediate panics don't spam the
            // captured test output.
            let prev_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let minimized = shrink_tape(&original, |t| {
                let mut rg = Gen::from_tape(t);
                catch_unwind(AssertUnwindSafe(|| f(&mut rg))).is_err()
            });
            std::panic::set_hook(prev_hook);
            eprintln!(
                "property `{name}` failed at case {case}/{cases} \
                 (replay: run_seed({name:?}, {seed:#x}))"
            );
            eprintln!(
                "  minimized counterexample: {} draws (from {}); \
                 replay: run_tape({name:?}, {})",
                minimized.len(),
                original.len(),
                format_tape(&minimized)
            );
            resume_unwind(payload);
        }
    }
}

/// Replay a single failing case of a property by seed.
pub fn run_seed(_name: &str, seed: u64, mut f: impl FnMut(&mut Gen)) {
    let mut g = Gen::new(seed);
    f(&mut g);
}

/// Replay a property against an explicit draw tape (as printed by a shrunk
/// failure report). Draws beyond the tape continue from a fixed stream.
pub fn run_tape(_name: &str, tape: &[u64], mut f: impl FnMut(&mut Gen)) {
    let mut g = Gen::from_tape(tape);
    f(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        run_cases("det", 5, |g| a.push(g.u64()));
        let mut b = Vec::new();
        run_cases("det", 5, |g| b.push(g.u64()));
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_respected() {
        run_cases("ranges", 50, |g| {
            assert!((3..9).contains(&g.usize_in(3..9)));
            assert!((100..200).contains(&g.u64_in(100..200)));
        });
    }

    #[test]
    fn weighted_hits_every_arm() {
        let mut seen = [false; 3];
        run_cases("weighted", 200, |g| {
            seen[g.weighted(&[4, 2, 1])] = true;
        });
        assert!(seen.iter().all(|&s| s), "arms hit: {seen:?}");
    }

    #[test]
    fn failure_reports_case() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_cases("always-fails", 3, |_| panic!("boom"));
        }));
        assert!(err.is_err());
    }

    #[test]
    fn vec_of_lengths_in_range() {
        run_cases("vec-of", 40, |g| {
            let v = g.vec_of(1..7, Gen::u8);
            assert!((1..7).contains(&v.len()));
        });
    }

    #[test]
    fn tape_replays_recorded_draws_exactly() {
        let mut g = Gen::new(0xABCD);
        let vals: Vec<u64> = (0..8).map(|_| g.u64_in(0..1000)).collect();
        let mut r = Gen::from_tape(g.recorded());
        let replayed: Vec<u64> = (0..8).map(|_| r.u64_in(0..1000)).collect();
        assert_eq!(vals, replayed);
    }

    #[test]
    fn exhausted_tape_continues_deterministically() {
        let mut a = Gen::from_tape(&[1, 2]);
        let mut b = Gen::from_tape(&[1, 2]);
        for _ in 0..10 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn shrink_list_finds_minimal_subset() {
        let items: Vec<u64> = (0..20).collect();
        let min = shrink_list(&items, |c| c.contains(&3) && c.contains(&17));
        assert_eq!(min, vec![3, 17]);
    }

    #[test]
    fn shrink_u64s_lowers_values() {
        let min = shrink_u64s(&[1000, 77], |c| c[0] >= 5);
        assert_eq!(min[0], 5);
        assert_eq!(min[1], 0);
    }

    #[test]
    fn shrink_tape_minimizes_failing_property() {
        // Fails whenever any draw maps into the top half of 0..100. The
        // minimal tape is a single draw, as small as possible while still
        // mapping to >= 50.
        let fails = |t: &[u64]| {
            let mut g = Gen::from_tape(t);
            (0..t.len()).any(|_| g.u64_in(0..100) >= 50)
        };
        let noisy: Vec<u64> = (0..12).map(|i| u64::MAX - i * 1000).collect();
        let min = shrink_tape(&noisy, fails);
        assert_eq!(min.len(), 1, "{min:?}");
        let mut g = Gen::from_tape(&min);
        assert_eq!(g.u64_in(0..100), 50, "not fully lowered: {min:#x?}");
    }

    #[test]
    fn run_tape_reproduces_failure() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_tape("tape", &[u64::MAX], |g| assert!(g.u64_in(0..10) < 9));
        }));
        assert!(err.is_err());
    }

    #[test]
    fn run_cases_still_panics_after_shrinking() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_cases("shrinks", 5, |g| {
                let v = g.u64_in(0..1 << 20);
                assert!(v < 1 << 19, "drew {v}");
            });
        }));
        assert!(err.is_err());
    }
}
