//! Deterministic randomness helpers.
//!
//! Every stochastic component of the simulation (rotational latency, workload
//! file sizes, request jitter) derives its stream from an explicit seed, so a
//! given configuration always reproduces the same run. This module provides a
//! tiny, allocation-free SplitMix64 generator for hot paths plus a helper for
//! deriving independent substreams.

/// SplitMix64: tiny, fast, decent-quality deterministic generator.
///
/// Not cryptographic; used only for simulation noise.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent substream labelled by `salt` (e.g. one per
    /// disk). Streams with different salts are uncorrelated in practice.
    pub fn substream(&self, salt: u64) -> SplitMix64 {
        let mut g = SplitMix64::new(self.state ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        g.next_u64(); // decorrelate from the parent's next output
        g
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)` (float).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn substreams_differ() {
        let root = SplitMix64::new(7);
        let mut s1 = root.substream(1);
        let mut s2 = root.substream(2);
        let same = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(1);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut g = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(g.next_below(13) < 13);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut g = SplitMix64::new(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
