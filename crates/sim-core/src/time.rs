//! Simulated time.
//!
//! All simulation clocks are nanosecond-resolution unsigned integers. Using
//! integers (rather than `f64` seconds) keeps event ordering exact and makes
//! runs bit-for-bit reproducible across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`. Saturates at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from float seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// The time it takes to move `bytes` at `bytes_per_sec`.
    ///
    /// A rate of zero yields a zero duration (infinitely fast), which lets
    /// callers disable a cost component without special-casing.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        if bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        // Round up: a transfer occupies the resource for at least the exact
        // wire time; truncation would let utilization exceed 100%.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(t.since(SimTime(10_000_000)), SimDuration::ZERO);
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 1 byte at 3 bytes/sec: exact time is 333_333_333.33ns -> round up.
        let d = SimDuration::for_bytes(1, 3);
        assert_eq!(d.as_nanos(), 333_333_334);
        // Zero rate means free.
        assert_eq!(SimDuration::for_bytes(1 << 40, 0), SimDuration::ZERO);
        // Sanity: 12.5 MB/s moves 2 MB in 0.16 s.
        let d = SimDuration::for_bytes(2 * 1024 * 1024, 12_500_000);
        assert!((d.as_secs_f64() - 0.16777).abs() < 1e-3);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }
}
