//! Deterministic fault scheduling: the [`FaultPlan`].
//!
//! A fault plan is a script of events to fire *during* engine execution,
//! either at exact simulated times or at named trace points (e.g. "the
//! third time op 7 is issued"). The plan itself is payload-agnostic —
//! `sim-core` knows nothing about disks or NICs — so the storage layer
//! defines its own fault event type and drives the plan through
//! [`Engine::run_until`](crate::Engine::run_until): run up to the next
//! scheduled time, take the due events, apply them to the system under
//! test, continue. Because both triggers are expressed in simulated time
//! and deterministic counters, the same seed and the same plan always
//! produce the same execution — the property the fault-sweep verify pass
//! fingerprints.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// When a scheduled fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTrigger {
    /// At an exact simulated time (fires the first time the clock reaches
    /// it; drive the engine with [`crate::Engine::run_until`] to land on
    /// the exact nanosecond).
    At(SimTime),
    /// On the `hit`-th occurrence (1-based) of a named trace point, as
    /// counted by [`FaultPlan::hit_point`].
    AtPoint {
        /// Trace-point name (e.g. `"op:3"`, `"rebuild-batch"`).
        point: String,
        /// Which occurrence fires the fault (1 = the first hit).
        hit: u64,
    },
}

/// One scheduled fault: a trigger and an opaque payload.
#[derive(Debug, Clone)]
pub struct ScheduledFault<F> {
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What fires (interpreted by the layer that owns the plan).
    pub fault: F,
}

/// A deterministic schedule of fault events.
///
/// Time-triggered events pop in `(time, insertion order)` order via
/// [`FaultPlan::take_due`]; point-triggered events pop when their named
/// point reaches the scheduled hit count via [`FaultPlan::hit_point`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan<F> {
    /// Time-triggered events, kept sorted by `(time, seq)`.
    timed: Vec<(SimTime, u64, F)>,
    /// Point-triggered events.
    pointed: Vec<(String, u64, F)>,
    /// Occurrence counters per point name.
    hits: BTreeMap<String, u64>,
    /// Insertion counter (stable tie-break for equal times).
    seq: u64,
}

impl<F> FaultPlan<F> {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan { timed: Vec::new(), pointed: Vec::new(), hits: BTreeMap::new(), seq: 0 }
    }

    /// Schedule `fault` at simulated time `t`.
    pub fn at(&mut self, t: SimTime, fault: F) -> &mut Self {
        let seq = self.seq;
        self.seq += 1;
        let pos = self.timed.partition_point(|&(ft, fs, _)| (ft, fs) <= (t, seq));
        self.timed.insert(pos, (t, seq, fault));
        self
    }

    /// Schedule `fault` on the `hit`-th occurrence (1-based) of the named
    /// trace point.
    pub fn at_point(&mut self, point: impl Into<String>, hit: u64, fault: F) -> &mut Self {
        assert!(hit >= 1, "point hits are 1-based");
        self.pointed.push((point.into(), hit, fault));
        self
    }

    /// Schedule `fault` via an explicit [`FaultTrigger`].
    pub fn schedule(&mut self, sf: ScheduledFault<F>) -> &mut Self {
        match sf.trigger {
            FaultTrigger::At(t) => self.at(t, sf.fault),
            FaultTrigger::AtPoint { point, hit } => self.at_point(point, hit, sf.fault),
        }
    }

    /// Earliest still-pending time trigger.
    pub fn next_time(&self) -> Option<SimTime> {
        self.timed.first().map(|&(t, _, _)| t)
    }

    /// Pop every time-triggered fault due at or before `now`, in schedule
    /// order.
    pub fn take_due(&mut self, now: SimTime) -> Vec<F> {
        let n = self.timed.partition_point(|&(t, _, _)| t <= now);
        self.timed.drain(..n).map(|(_, _, f)| f).collect()
    }

    /// Record one occurrence of the named trace point and pop every fault
    /// scheduled for exactly this occurrence.
    pub fn hit_point(&mut self, point: &str) -> Vec<F> {
        let count = self.hits.entry(point.to_string()).or_insert(0);
        *count += 1;
        let now = *count;
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.pointed.len() {
            if self.pointed[i].0 == point && self.pointed[i].1 == now {
                let (_, _, f) = self.pointed.remove(i);
                due.push(f);
            } else {
                i += 1;
            }
        }
        due
    }

    /// Number of the named point's occurrences recorded so far.
    pub fn point_hits(&self, point: &str) -> u64 {
        self.hits.get(point).copied().unwrap_or(0)
    }

    /// Still-pending events (timed + pointed).
    pub fn pending(&self) -> usize {
        self.timed.len() + self.pointed.len()
    }

    /// True when every scheduled event has fired.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_faults_pop_in_time_then_insertion_order() {
        let mut p = FaultPlan::new();
        p.at(SimTime(50), "b").at(SimTime(10), "a").at(SimTime(50), "c");
        assert_eq!(p.next_time(), Some(SimTime(10)));
        assert_eq!(p.take_due(SimTime(9)), Vec::<&str>::new());
        assert_eq!(p.take_due(SimTime(10)), vec!["a"]);
        assert_eq!(p.take_due(SimTime(100)), vec!["b", "c"]);
        assert!(p.is_empty());
    }

    #[test]
    fn point_faults_fire_on_scheduled_occurrence() {
        let mut p = FaultPlan::new();
        p.at_point("op", 2, "second").at_point("op", 1, "first").at_point("other", 1, "x");
        assert_eq!(p.hit_point("op"), vec!["first"]);
        assert_eq!(p.hit_point("op"), vec!["second"]);
        assert_eq!(p.hit_point("op"), Vec::<&str>::new());
        assert_eq!(p.point_hits("op"), 3);
        assert_eq!(p.hit_point("other"), vec!["x"]);
        assert!(p.is_empty());
    }

    #[test]
    fn schedule_accepts_explicit_triggers() {
        let mut p = FaultPlan::new();
        p.schedule(ScheduledFault { trigger: FaultTrigger::At(SimTime(7)), fault: 1u32 });
        p.schedule(ScheduledFault {
            trigger: FaultTrigger::AtPoint { point: "p".into(), hit: 1 },
            fault: 2u32,
        });
        assert_eq!(p.pending(), 2);
        assert_eq!(p.take_due(SimTime(7)), vec![1]);
        assert_eq!(p.hit_point("p"), vec![2]);
    }

    #[test]
    fn replaying_the_same_plan_is_deterministic() {
        let build = || {
            let mut p = FaultPlan::new();
            for i in 0..10u64 {
                p.at(SimTime(i % 3), i);
            }
            let mut out = Vec::new();
            out.extend(p.take_due(SimTime(0)));
            out.extend(p.take_due(SimTime(5)));
            out
        };
        assert_eq!(build(), build());
    }
}
