//! Host-side engine profiling: deterministic work counters plus advisory
//! wall-clock phase spans.
//!
//! Two planes, one module:
//!
//! * [`EngineStats`] — always-on, machine-independent work counters
//!   (events popped, heap pushes, queue-scan iterations, task-slot
//!   allocations, tracer calls). They depend only on the simulated
//!   workload, never on the host, so they are *gateable*: verify pass
//!   `perf-smoke` compares them against the committed
//!   `BENCH_engine.json` baseline to catch algorithmic regressions (an
//!   O(n) scan quietly turning O(n²)) without ever trusting a clock.
//! * [`HostProfiler`] — an opt-in, sampled wall-clock profiler over the
//!   engine's dispatch phases, installed with
//!   [`crate::Engine::set_profiler`] using the same `Option<Box<...>>`
//!   pattern as [`crate::trace::Tracer`] (absent = one predictable
//!   branch per hook site). Wall-clock numbers are *advisory* only:
//!   they never feed back into simulated time or results, and this
//!   module is the single sanctioned home for host clocks in
//!   `sim-core` — every `Instant` use below carries a `det-ok`
//!   acknowledgement for the determinism scans.

use std::time::Instant;

/// Deterministic lifetime work counters of one [`crate::Engine`].
///
/// Counters only ever grow (saturating at `u64::MAX`), count *work
/// performed* rather than time spent, and are identical across hosts for
/// the same workload — the property the `perf-smoke` verify pass gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events popped off the heap and dispatched.
    pub events: u64,
    /// Events pushed onto the heap ([`crate::Engine`] `schedule`).
    pub heap_pushes: u64,
    /// Largest event-heap population observed right after a push.
    pub heap_peak: u64,
    /// Tasks spawned (every `Par` child is its own task).
    pub tasks_spawned: u64,
    /// Spawns that had to allocate a fresh task slot (the remainder
    /// reused a free-list slot).
    pub task_slot_allocs: u64,
    /// Pending demands inspected by service-model `select_next` scans.
    pub queue_scan_iters: u64,
    /// Individual `Tracer::record` calls dispatched.
    pub tracer_records: u64,
}

impl EngineStats {
    /// Count one event pop + dispatch.
    pub fn on_event(&mut self) {
        self.events = self.events.saturating_add(1);
    }

    /// Count one heap push; `len_after` is the heap size after it.
    pub fn on_heap_push(&mut self, len_after: usize) {
        self.heap_pushes = self.heap_pushes.saturating_add(1);
        self.heap_peak = self.heap_peak.max(len_after as u64);
    }

    /// Count one task spawn; `fresh_slot` means a new slot was allocated
    /// rather than reused from the free list.
    pub fn on_task_spawn(&mut self, fresh_slot: bool) {
        self.tasks_spawned = self.tasks_spawned.saturating_add(1);
        if fresh_slot {
            self.task_slot_allocs = self.task_slot_allocs.saturating_add(1);
        }
    }

    /// Count one queue scan over `scanned` pending demands.
    pub fn on_queue_scan(&mut self, scanned: usize) {
        self.queue_scan_iters = self.queue_scan_iters.saturating_add(scanned as u64);
    }

    /// Count `n` tracer record dispatches.
    pub fn on_tracer_records(&mut self, n: u64) {
        self.tracer_records = self.tracer_records.saturating_add(n);
    }

    /// Stable `(name, value)` view in declaration order, for reports and
    /// the `BENCH_engine.json` work-counter objects.
    pub fn pairs(&self) -> [(&'static str, u64); 7] {
        [
            ("events", self.events),
            ("heap_pushes", self.heap_pushes),
            ("heap_peak", self.heap_peak),
            ("tasks_spawned", self.tasks_spawned),
            ("task_slot_allocs", self.task_slot_allocs),
            ("queue_scan_iters", self.queue_scan_iters),
            ("tracer_records", self.tracer_records),
        ]
    }
}

/// Engine phases the host profiler attributes wall time to.
///
/// `Dispatch` is the root span covering one sampled event end-to-end;
/// the others nest inside it (and `Tracer` may nest inside `TaskMgmt`),
/// so a phase's *self* time is its wall time minus its children's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Popping one event and driving its consequences to quiescence.
    Dispatch,
    /// Task spawn, slot allocation/reuse and completion bookkeeping.
    TaskMgmt,
    /// Service-model `select_next` scans over a resource's queue.
    QueueScan,
    /// Dispatching `Tracer::record` observations.
    Tracer,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 4] = [Phase::Dispatch, Phase::TaskMgmt, Phase::QueueScan, Phase::Tracer];

    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::TaskMgmt => "task-mgmt",
            Phase::QueueScan => "queue-scan",
            Phase::Tracer => "tracer",
        }
    }
}

const PHASES: usize = 4;
const MAX_DEPTH: usize = 8;

#[derive(Debug, Clone, Copy, Default)]
struct SpanAcc {
    wall_ns: u64,
    child_ns: u64,
    entries: u64,
}

/// Sampled hierarchical wall-clock profiler over the engine hot path.
///
/// Every `sample_every`-th dispatched event is timed (the rest cost one
/// branch per hook), which keeps measured profiler-on overhead small
/// while the phase *ratios* converge quickly. Sampling is driven by a
/// deterministic countdown — which events get sampled depends only on
/// the workload, never on the host.
#[derive(Debug)]
pub struct HostProfiler {
    sample_every: u32,
    countdown: u32,
    active: bool,
    depth: usize,
    /// Nested enters beyond `MAX_DEPTH`, paired with their exits.
    skipped: u32,
    span_overflows: u64,
    stack: [(u8, Instant); MAX_DEPTH],
    acc: [SpanAcc; PHASES],
    events_total: u64,
    events_sampled: u64,
}

/// Sampling period [`HostProfiler::default`] uses: a compromise between
/// attribution resolution and profiler-on overhead (< 5% is the budget).
pub const DEFAULT_SAMPLE_EVERY: u32 = 64;

impl Default for HostProfiler {
    fn default() -> Self {
        Self::sampled(DEFAULT_SAMPLE_EVERY)
    }
}

impl HostProfiler {
    /// A profiler timing every event (maximum resolution, highest
    /// overhead — prefer [`HostProfiler::default`] on hot workloads).
    pub fn new() -> Self {
        Self::sampled(1)
    }

    /// A profiler timing every `every`-th event (`0` is clamped to 1).
    pub fn sampled(every: u32) -> Self {
        let every = every.max(1);
        HostProfiler {
            sample_every: every,
            countdown: 1, // sample the first event, then every `every`-th
            active: false,
            depth: 0,
            skipped: 0,
            span_overflows: 0,
            // det-ok: host-profiler stack seed; never observable by the sim.
            stack: [(0u8, Instant::now()); MAX_DEPTH],
            acc: [SpanAcc::default(); PHASES],
            events_total: 0,
            events_sampled: 0,
        }
    }

    /// Engine hook: one event was popped; decide whether to sample it
    /// and, if so, open the root [`Phase::Dispatch`] span.
    pub fn event_begin(&mut self) {
        self.events_total = self.events_total.saturating_add(1);
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.sample_every;
            self.active = true;
            self.events_sampled = self.events_sampled.saturating_add(1);
            self.enter(Phase::Dispatch);
        } else {
            self.active = false;
        }
    }

    /// Is the event currently being dispatched a sampled one?
    pub fn sampling(&self) -> bool {
        self.active
    }

    /// Engine hook: the popped event's dispatch finished; close every
    /// span the sampled event still has open.
    pub fn event_end(&mut self) {
        if self.active {
            while self.depth > 0 || self.skipped > 0 {
                self.exit();
            }
            self.active = false;
        }
    }

    /// Engine hook: open a phase span (no-op on unsampled events).
    pub fn enter(&mut self, phase: Phase) {
        if !self.active {
            return;
        }
        if self.depth == MAX_DEPTH {
            self.skipped += 1;
            self.span_overflows = self.span_overflows.saturating_add(1);
            return;
        }
        // det-ok: host span timestamp; advisory profiling, not sim time.
        self.stack[self.depth] = (phase as u8, Instant::now());
        self.depth += 1;
    }

    /// Engine hook: close the innermost open span (no-op on unsampled
    /// events), charging its elapsed host time to the phase and to the
    /// parent span's child-time.
    pub fn exit(&mut self) {
        if !self.active {
            return;
        }
        if self.skipped > 0 {
            self.skipped -= 1;
            return;
        }
        if self.depth == 0 {
            return;
        }
        self.depth -= 1;
        let (phase, t0) = self.stack[self.depth];
        // det-ok: host span readout; advisory profiling, not sim time.
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let acc = &mut self.acc[phase as usize];
        acc.wall_ns = acc.wall_ns.saturating_add(ns);
        acc.entries = acc.entries.saturating_add(1);
        if self.depth > 0 {
            let parent = &mut self.acc[self.stack[self.depth - 1].0 as usize];
            parent.child_ns = parent.child_ns.saturating_add(ns);
        }
    }

    /// Snapshot the accumulated attribution.
    pub fn report(&self) -> ProfReport {
        let phases = Phase::ALL
            .iter()
            .map(|&p| {
                let a = self.acc[p as usize];
                PhaseStat {
                    phase: p.label(),
                    wall_ns: a.wall_ns,
                    self_ns: a.wall_ns.saturating_sub(a.child_ns),
                    entries: a.entries,
                }
            })
            .collect();
        ProfReport {
            sample_every: self.sample_every,
            events_total: self.events_total,
            events_sampled: self.events_sampled,
            span_overflows: self.span_overflows,
            phases,
        }
    }
}

/// Wall time attributed to one [`Phase`] across all sampled events.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// [`Phase::label`] of the phase.
    pub phase: &'static str,
    /// Total host wall time inside the phase's spans (includes children).
    pub wall_ns: u64,
    /// Wall time minus time spent in nested child spans.
    pub self_ns: u64,
    /// Number of spans closed for this phase.
    pub entries: u64,
}

/// A [`HostProfiler`] attribution snapshot. All wall-clock figures are
/// advisory (machine-dependent); only the sampling bookkeeping is
/// deterministic.
#[derive(Debug, Clone)]
pub struct ProfReport {
    /// Sampling period the profiler ran with.
    pub sample_every: u32,
    /// Events the engine dispatched while the profiler was installed.
    pub events_total: u64,
    /// Events that were actually timed.
    pub events_sampled: u64,
    /// Span enters dropped because nesting exceeded the fixed stack.
    pub span_overflows: u64,
    /// Per-phase attribution, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseStat>,
}

impl ProfReport {
    /// Total sampled wall time (the root dispatch phase's wall time).
    pub fn sampled_wall_ns(&self) -> u64 {
        self.phases.iter().find(|p| p.phase == "dispatch").map_or(0, |p| p.wall_ns)
    }

    /// Render the attribution as a fixed-width text table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.sampled_wall_ns().max(1);
        let _ = writeln!(
            out,
            "host profile: {} events, {} sampled (every {}), {} span overflows",
            self.events_total, self.events_sampled, self.sample_every, self.span_overflows
        );
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>12} {:>10} {:>7}",
            "phase", "wall us", "self us", "entries", "self %"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<12} {:>12.1} {:>12.1} {:>10} {:>6.1}%",
                p.phase,
                p.wall_ns as f64 / 1e3,
                p.self_ns as f64 / 1e3,
                p.entries,
                100.0 * p.self_ns as f64 / total as f64
            );
        }
        out
    }

    /// Export the attribution as a Perfetto-loadable Chrome trace with a
    /// single `host-profile` track: the dispatch root span plus its
    /// children laid out sequentially by self-time.
    pub fn chrome_trace_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":9,\"name\":\"process_name\",\
             \"args\":{\"name\":\"host-profile\"}},\n",
        );
        out.push_str(
            "{\"ph\":\"M\",\"pid\":9,\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"engine hot path (sampled)\"}}",
        );
        let root_us = self.sampled_wall_ns() as f64 / 1e3;
        let _ = write!(
            out,
            ",\n{{\"ph\":\"X\",\"pid\":9,\"tid\":0,\"ts\":0.0,\"dur\":{root_us:.3},\
             \"name\":\"dispatch\",\"args\":{{\"entries\":{}}}}}",
            self.events_sampled
        );
        let mut cursor = 0.0f64;
        for p in self.phases.iter().filter(|p| p.phase != "dispatch" && p.entries > 0) {
            let dur = p.self_ns as f64 / 1e3;
            let _ = write!(
                out,
                ",\n{{\"ph\":\"X\",\"pid\":9,\"tid\":0,\"ts\":{cursor:.3},\"dur\":{dur:.3},\
                 \"name\":\"{}\",\"args\":{{\"entries\":{},\"wall_us\":{:.3}}}}}",
                p.phase,
                p.entries,
                p.wall_ns as f64 / 1e3
            );
            cursor += dur;
        }
        out.push_str("\n]}\n");
        out
    }
}
