//! Happens-before analysis over trace event streams: a FastTrack-style
//! vector-clock race detector plus a same-timestamp commutativity
//! auditor.
//!
//! The DPOR model checker ([`crate::explore`]) proves ordering
//! properties exhaustively, but only on tiny scenarios. This module
//! scales with the workload instead: it consumes the deterministic
//! [`TimedEvent`] stream of a *full-size* run and checks two classes of
//! property on it.
//!
//! **Happens-before edges** are derived from the lifecycle events the
//! engine already emits plus the protocol-level [`TraceEvent::Access`]
//! points emitted by instrumented subsystems (the CDD lock/write path,
//! the OSM image queue):
//!
//! | edge | source events |
//! |------|---------------|
//! | program order | consecutive events of one actor |
//! | fork | `TaskSpawned { parent: Some(p) }`: p → child |
//! | join | `TaskFinished`: child → parent |
//! | barrier | `BarrierWaited`/`BarrierOpened`: all participants join |
//! | lock | `Access::Release(cells)` → later `Access::Acquire(cells)` |
//!
//! Deliberately **not** edges: resource service chains
//! (`ServiceFinished` → next `ServiceStarted`). Those order events under
//! the *current* scheduler, not by synchronization — treating them as
//! edges would mask exactly the races an engine rewrite (ROADMAP item 1,
//! the indexed event queue) could expose.
//!
//! **Detector classes** (reported as [`HbViolation`]s):
//!
//! * `WriteWrite`/`ReadWrite` — conflicting accesses to an SIOS cell
//!   unordered by happens-before (a protocol data race). Read/write
//!   conflicts are off by default ([`HbOptions::flag_read_write`])
//!   because CDD reads are deliberately lock-free — read/write ordering
//!   is the linearizability pass's property, not a race.
//! * `UncoveredWrite` — a protocol actor's SIOS write not covered by a
//!   live lock-group grant (the single-I/O-space discipline).
//! * `SameTickAccess`/`SameTickService` — two same-timestamp events with
//!   overlapping footprints, unordered by happens-before: a
//!   commutativity violation that would make a batched/indexed event
//!   queue order-sensitive.
//!
//! Image-queue cells ([`image_cell`]) are excluded from the race and
//! coverage detectors by design: cross-client surrender order is
//! legitimately unordered (the queue itself serializes), so only the
//! same-tick auditor watches them.
//!
//! Actors are `u32` ids in two namespaces that cannot collide: engine
//! task indices (slot reuse is handled by treating every `TaskSpawned`
//! as a fresh actor instance) and protocol actors with
//! [`PROTOCOL_ACTOR_BASE`] set ([`client_actor`], [`OSM_ACTOR`]).
//! Cells are `u64` ids namespaced in the top byte ([`sios_cell`],
//! [`image_cell`]).
//!
//! The analyzer is *total*: it accepts arbitrary sub-streams (unknown
//! parents become roots, releases without grants are ignored), which is
//! what makes ddmin shrinking ([`shrink_window`]) sound.

use std::collections::BTreeMap;

use crate::time::SimTime;
use crate::trace::{AccessKind, DemandKind, TimedEvent, TraceEvent};

/// Top-byte shift of the cell-id namespace tag.
const NS_SHIFT: u32 = 56;
/// Cell namespace of SIOS logical blocks (race + coverage checked).
pub const SIOS_NS: u8 = 0;
/// Cell namespace of OSM image-queue surrenders (same-tick checked only).
pub const IMAGE_NS: u8 = 1;

/// A namespaced cell id.
pub fn cell(ns: u8, index: u64) -> u64 {
    debug_assert!(index < 1 << NS_SHIFT, "cell index overflows namespace");
    (u64::from(ns) << NS_SHIFT) | index
}

/// The cell of SIOS logical block `lb`.
pub fn sios_cell(lb: u64) -> u64 {
    cell(SIOS_NS, lb)
}

/// The cell of an OSM image-queue surrender of logical block `lb`.
pub fn image_cell(lb: u64) -> u64 {
    cell(IMAGE_NS, lb)
}

/// Namespace tag of a cell id.
pub fn cell_ns(c: u64) -> u8 {
    (c >> NS_SHIFT) as u8
}

/// Index of a cell id within its namespace.
pub fn cell_index(c: u64) -> u64 {
    c & ((1 << NS_SHIFT) - 1)
}

/// Bit marking protocol actors (client modules, the OSM drain path) —
/// engine task indices never reach it.
pub const PROTOCOL_ACTOR_BASE: u32 = 0x8000_0000;

/// The protocol actor id of client node `client`.
pub fn client_actor(client: usize) -> u32 {
    // lint-ok(no-unwrap): client counts are far below the actor-namespace split
    PROTOCOL_ACTOR_BASE | u32::try_from(client).expect("client id overflows actor namespace")
}

/// The protocol actor performing OSM image drains not attributable to a
/// client op (flush points, disk-failure drains).
pub const OSM_ACTOR: u32 = u32::MAX;

/// Human-readable form of an actor id.
pub fn actor_label(a: u32) -> String {
    if a == OSM_ACTOR {
        "osm".to_string()
    } else if a & PROTOCOL_ACTOR_BASE != 0 {
        format!("client{}", a & !PROTOCOL_ACTOR_BASE)
    } else {
        format!("task{a}")
    }
}

/// Human-readable form of a cell id.
pub fn cell_label(c: u64) -> String {
    match cell_ns(c) {
        SIOS_NS => format!("sios:{}", cell_index(c)),
        IMAGE_NS => format!("img:{}", cell_index(c)),
        ns => format!("ns{ns}:{}", cell_index(c)),
    }
}

/// A dense vector clock. Indices are analyzer-internal actor slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VectorClock(Vec<u64>);

impl VectorClock {
    fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    fn tick(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }

    fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// True when epoch `(actor, counter)` happened before this clock.
    fn covers(&self, actor: usize, counter: u64) -> bool {
        self.get(actor) >= counter
    }
}

/// The detector class a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// Two writes to one cell unordered by happens-before.
    WriteWrite,
    /// A read and a write to one cell unordered by happens-before.
    ReadWrite,
    /// A protocol SIOS write not covered by a live lock-group grant.
    UncoveredWrite,
    /// Two same-timestamp accesses with overlapping cells, unordered.
    SameTickAccess,
    /// Two same-timestamp disk services on one resource.
    SameTickService,
}

impl ViolationKind {
    /// Short stable label, used in renderings and fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::WriteWrite => "write-write race",
            ViolationKind::ReadWrite => "read-write race",
            ViolationKind::UncoveredWrite => "uncovered write",
            ViolationKind::SameTickAccess => "same-tick access overlap",
            ViolationKind::SameTickService => "same-tick service overlap",
        }
    }
}

/// One finding of the happens-before analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbViolation {
    /// Detector class.
    pub kind: ViolationKind,
    /// Representative conflicting cell (for `SameTickService`, the
    /// resource index).
    pub cell: u64,
    /// Raw actor ids of the (earlier, later) conflicting events; equal
    /// for `UncoveredWrite`.
    pub actors: (u32, u32),
    /// Indices of the (earlier, later) conflicting events in the
    /// analyzed stream; equal for `UncoveredWrite`.
    pub events: (usize, usize),
    /// Human-readable description.
    pub detail: String,
}

impl HbViolation {
    /// Stream-position-independent identity of the finding: the class,
    /// the cell and the actors involved. Shrinking preserves this key
    /// while event indices change.
    pub fn key(&self) -> (ViolationKind, u64, u32, u32) {
        (self.kind, self.cell, self.actors.0, self.actors.1)
    }
}

impl std::fmt::Display for HbViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let place = if self.kind == ViolationKind::SameTickService {
            format!("resource {}", self.cell)
        } else {
            cell_label(self.cell)
        };
        write!(
            f,
            "{} on {} between {} (event {}) and {} (event {}): {}",
            self.kind.label(),
            place,
            actor_label(self.actors.0),
            self.events.0,
            actor_label(self.actors.1),
            self.events.1,
            self.detail
        )
    }
}

/// Analyzer policy knobs.
#[derive(Debug, Clone)]
pub struct HbOptions {
    /// Also flag read/write conflicts unordered by happens-before.
    /// Default `false`: CDD reads are deliberately lock-free, and
    /// read/write ordering is the linearizability pass's property.
    pub flag_read_write: bool,
    /// Require every protocol SIOS write to be covered by a live
    /// lock-group grant (default `true`).
    pub require_lock_coverage: bool,
    /// Process at most this many events (budget cap for smoke runs);
    /// [`HbAnalysis::truncated`] reports whether the cap was hit.
    pub max_events: usize,
    /// Stop recording after this many violations (analysis continues).
    pub max_violations: usize,
    /// Only check cells whose in-namespace index is below this bound
    /// (`u64::MAX` = all cells). Smoke runs bound the cell subset so the
    /// per-cell state stays small on huge traces.
    pub cell_limit: u64,
}

impl Default for HbOptions {
    fn default() -> Self {
        HbOptions {
            flag_read_write: false,
            require_lock_coverage: true,
            max_events: usize::MAX,
            max_violations: 64,
            cell_limit: u64::MAX,
        }
    }
}

/// What one [`analyze`] run saw.
#[derive(Debug, Clone)]
pub struct HbAnalysis {
    /// Findings, in stream order (capped at
    /// [`HbOptions::max_violations`]).
    pub violations: Vec<HbViolation>,
    /// Events processed.
    pub events: usize,
    /// `Access` events processed.
    pub accesses: usize,
    /// Actor instances observed (task instances + protocol actors).
    pub actors: usize,
    /// Synchronization edges constructed (fork/join/barrier/lock).
    pub sync_edges: usize,
    /// True when [`HbOptions::max_events`] cut the analysis short.
    pub truncated: bool,
}

impl HbAnalysis {
    /// True when no detector fired.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// FNV-1a fingerprint of the findings and counters — two analyses
    /// of identical streams must agree bit-for-bit (the detector's own
    /// determinism is audited by the `race-detect` verify pass).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for v in &self.violations {
            eat(v.to_string().as_bytes());
            eat(b"\n");
        }
        for n in [self.events as u64, self.accesses as u64, self.actors as u64] {
            eat(&n.to_le_bytes());
        }
        h
    }
}

/// FastTrack-style per-cell state: the last write epoch plus the set of
/// reads since (one epoch per reading actor slot).
#[derive(Debug, Default)]
struct CellState {
    /// `(actor slot, counter, event index)` of the last write.
    last_write: Option<(usize, u64, usize)>,
    /// Reads since the last write: actor slot → `(counter, event index)`.
    reads: BTreeMap<usize, (u64, usize)>,
}

struct ActorState {
    /// Raw actor id as it appeared in the stream.
    id: u32,
    clock: VectorClock,
    /// Parent actor slot (for the join edge at `TaskFinished`).
    parent: Option<usize>,
    /// Live lock-group grants: `(first cell, len)`.
    held: Vec<(u64, u64)>,
}

/// One same-tick footprint already seen at the current timestamp.
struct TickAccess {
    slot: usize,
    cell: u64,
    len: u64,
    write: bool,
    event: usize,
    /// The actor's clock counter at the access (its epoch).
    counter: u64,
}

struct TickService {
    slot: usize,
    res: u32,
    write: bool,
    event: usize,
}

/// Per-access cell iteration cap: protocol accesses are stripe-sized;
/// anything larger is a malformed event, not a workload.
const MAX_ACCESS_CELLS: u64 = 4096;

struct Analyzer {
    opts: HbOptions,
    actors: Vec<ActorState>,
    /// Live engine-task instances: raw task id → actor slot.
    live_tasks: BTreeMap<u32, usize>,
    /// Persistent protocol actors: raw id → actor slot.
    protocol: BTreeMap<u32, usize>,
    /// Parked barrier waiters: barrier id → actor slots.
    barrier_waiters: BTreeMap<u32, Vec<usize>>,
    /// Per-cell race state.
    cells: BTreeMap<u64, CellState>,
    /// Per-cell join of clocks at lock release (the lock edge source).
    release_clocks: BTreeMap<u64, VectorClock>,
    /// Same-tick footprints at `tick_at`.
    tick_at: SimTime,
    tick_accesses: Vec<TickAccess>,
    tick_services: Vec<TickService>,
    out: HbAnalysis,
}

impl Analyzer {
    fn new(opts: HbOptions) -> Self {
        Analyzer {
            opts,
            actors: Vec::new(),
            live_tasks: BTreeMap::new(),
            protocol: BTreeMap::new(),
            barrier_waiters: BTreeMap::new(),
            cells: BTreeMap::new(),
            release_clocks: BTreeMap::new(),
            tick_at: SimTime::ZERO,
            tick_accesses: Vec::new(),
            tick_services: Vec::new(),
            out: HbAnalysis {
                violations: Vec::new(),
                events: 0,
                accesses: 0,
                actors: 0,
                sync_edges: 0,
                truncated: false,
            },
        }
    }

    fn report(&mut self, v: HbViolation) {
        if self.out.violations.len() < self.opts.max_violations {
            self.out.violations.push(v);
        }
    }

    fn new_actor(&mut self, id: u32, parent: Option<usize>) -> usize {
        let slot = self.actors.len();
        let mut clock = match parent {
            Some(p) => self.actors[p].clock.clone(),
            None => VectorClock::default(),
        };
        clock.tick(slot);
        self.actors.push(ActorState { id, clock, parent, held: Vec::new() });
        self.out.actors += 1;
        slot
    }

    /// The actor slot an `Access` event's raw id resolves to: a live
    /// engine task instance if one matches, else a persistent protocol
    /// actor (created on first sight — roots with no fork edge).
    fn resolve_actor(&mut self, id: u32) -> usize {
        if let Some(&slot) = self.live_tasks.get(&id) {
            return slot;
        }
        if let Some(&slot) = self.protocol.get(&id) {
            return slot;
        }
        let slot = self.new_actor(id, None);
        self.protocol.insert(id, slot);
        slot
    }

    /// Truncate an access range to the checkable cell subset.
    fn checked_len(&self, first: u64, len: u64) -> u64 {
        let len = len.min(MAX_ACCESS_CELLS);
        let idx = cell_index(first);
        if idx >= self.opts.cell_limit {
            return 0;
        }
        len.min(self.opts.cell_limit - idx)
    }

    fn flip_tick(&mut self, at: SimTime) {
        if at != self.tick_at {
            self.tick_at = at;
            self.tick_accesses.clear();
            self.tick_services.clear();
        }
    }

    fn on_task_spawned(&mut self, task: u32, parent: Option<u32>) {
        let parent_slot = parent.and_then(|p| self.live_tasks.get(&p).copied());
        if let Some(p) = parent_slot {
            // Fork edge: parent's knowledge flows into the child.
            self.actors[p].clock.tick(p);
            self.out.sync_edges += 1;
        }
        let slot = self.new_actor(task, parent_slot);
        self.live_tasks.insert(task, slot);
    }

    fn on_task_finished(&mut self, task: u32) {
        let Some(slot) = self.live_tasks.remove(&task) else { return };
        if let Some(p) = self.actors[slot].parent {
            // Join edge: the child's final clock flows into the parent.
            let child_clock = self.actors[slot].clock.clone();
            self.actors[p].clock.join(&child_clock);
            self.actors[p].clock.tick(p);
            self.out.sync_edges += 1;
        }
    }

    fn on_barrier_waited(&mut self, barrier: u32, task: u32) {
        if let Some(&slot) = self.live_tasks.get(&task) {
            self.barrier_waiters.entry(barrier).or_default().push(slot);
        }
    }

    fn on_barrier_opened(&mut self, barrier: u32, task: u32) {
        let mut participants = self.barrier_waiters.remove(&barrier).unwrap_or_default();
        if let Some(&slot) = self.live_tasks.get(&task) {
            participants.push(slot);
        }
        if participants.len() < 2 {
            return;
        }
        let mut joined = VectorClock::default();
        for &p in &participants {
            joined.join(&self.actors[p].clock);
        }
        for &p in &participants {
            self.actors[p].clock = joined.clone();
            self.actors[p].clock.tick(p);
            self.out.sync_edges += 1;
        }
    }

    fn on_service_started(
        &mut self,
        at: SimTime,
        res: u32,
        task: u32,
        kind: DemandKind,
        ev: usize,
    ) {
        self.flip_tick(at);
        let write = kind == DemandKind::DiskWrite;
        if !matches!(kind, DemandKind::DiskRead | DemandKind::DiskWrite) {
            return;
        }
        let slot = self.live_tasks.get(&task).copied();
        for prev in &self.tick_services {
            if prev.res == res && Some(prev.slot) != slot && (prev.write || write) {
                let v = HbViolation {
                    kind: ViolationKind::SameTickService,
                    cell: u64::from(res),
                    actors: (self.actors[prev.slot].id, task),
                    events: (prev.event, ev),
                    detail: format!(
                        "two disk services started on resource {res} at {at} — the engine's \
                         same-instant dispatch on one resource is order-sensitive"
                    ),
                };
                self.report(v);
                break;
            }
        }
        if let Some(slot) = slot {
            self.tick_services.push(TickService { slot, res, write, event: ev });
        }
    }

    fn on_access(
        &mut self,
        at: SimTime,
        task: u32,
        first: u64,
        len: u64,
        kind: AccessKind,
        ev: usize,
    ) {
        self.flip_tick(at);
        self.out.accesses += 1;
        let slot = self.resolve_actor(task);
        match kind {
            AccessKind::Acquire => {
                let n = len.min(MAX_ACCESS_CELLS);
                let mut edged = false;
                for i in 0..n {
                    if let Some(rc) = self.release_clocks.get(&(first + i)) {
                        self.actors[slot].clock.join(rc);
                        edged = true;
                    }
                }
                if edged {
                    self.out.sync_edges += 1;
                }
                self.actors[slot].held.push((first, len));
                self.actors[slot].clock.tick(slot);
            }
            AccessKind::Release => {
                let n = len.min(MAX_ACCESS_CELLS);
                let clock = self.actors[slot].clock.clone();
                for i in 0..n {
                    self.release_clocks
                        .entry(first + i)
                        .and_modify(|rc| rc.join(&clock))
                        .or_insert_with(|| clock.clone());
                }
                let held = &mut self.actors[slot].held;
                if let Some(pos) = held.iter().position(|&(c, l)| c == first && l == len) {
                    held.swap_remove(pos);
                }
                self.actors[slot].clock.tick(slot);
            }
            AccessKind::Read => {
                let n = self.checked_len(first, len);
                for i in 0..n {
                    let c = first + i;
                    if cell_ns(c) != SIOS_NS {
                        continue;
                    }
                    self.check_read(slot, c, ev);
                }
                self.record_tick_access(slot, first, len, false, ev);
                self.actors[slot].clock.tick(slot);
            }
            AccessKind::Write => {
                let n = self.checked_len(first, len);
                let mut uncovered: Option<u64> = None;
                for i in 0..n {
                    let c = first + i;
                    if cell_ns(c) != SIOS_NS {
                        continue;
                    }
                    self.check_write(slot, c, ev);
                    if self.opts.require_lock_coverage
                        && self.actors[slot].id & PROTOCOL_ACTOR_BASE != 0
                        && self.actors[slot].id != OSM_ACTOR
                        && uncovered.is_none()
                        && !self.actors[slot].held.iter().any(|&(h0, hl)| c >= h0 && c < h0 + hl)
                    {
                        uncovered = Some(c);
                    }
                }
                if let Some(c) = uncovered {
                    let id = self.actors[slot].id;
                    let v = HbViolation {
                        kind: ViolationKind::UncoveredWrite,
                        cell: c,
                        actors: (id, id),
                        events: (ev, ev),
                        detail: "SIOS write outside any live lock-group grant — the \
                                 consistency module's covered-write discipline is broken"
                            .to_string(),
                    };
                    self.report(v);
                }
                self.record_tick_access(slot, first, len, true, ev);
                self.actors[slot].clock.tick(slot);
            }
        }
    }

    fn check_read(&mut self, slot: usize, c: u64, ev: usize) {
        let mut found: Option<HbViolation> = None;
        if self.opts.flag_read_write {
            if let Some(state) = self.cells.get(&c) {
                if let Some((ws, wc, wev)) = state.last_write {
                    if ws != slot && !self.actors[slot].clock.covers(ws, wc) {
                        found = Some(HbViolation {
                            kind: ViolationKind::ReadWrite,
                            cell: c,
                            actors: (self.actors[ws].id, self.actors[slot].id),
                            events: (wev, ev),
                            detail: "read unordered with a prior write to the same cell"
                                .to_string(),
                        });
                    }
                }
            }
        }
        let counter = self.actors[slot].clock.get(slot);
        self.cells.entry(c).or_default().reads.insert(slot, (counter, ev));
        if let Some(v) = found {
            self.report(v);
        }
    }

    fn check_write(&mut self, slot: usize, c: u64, ev: usize) {
        let my_id = self.actors[slot].id;
        let mut found: Vec<HbViolation> = Vec::new();
        if let Some(state) = self.cells.get(&c) {
            let clock = &self.actors[slot].clock;
            if let Some((ws, wc, wev)) = state.last_write {
                if ws != slot && !clock.covers(ws, wc) {
                    found.push(HbViolation {
                        kind: ViolationKind::WriteWrite,
                        cell: c,
                        actors: (self.actors[ws].id, my_id),
                        events: (wev, ev),
                        detail: "two writes to the same cell unordered by \
                                 fork/join/barrier/lock edges"
                            .to_string(),
                    });
                }
            }
            if self.opts.flag_read_write {
                for (&rs, &(rc, rev)) in &state.reads {
                    if rs != slot && !clock.covers(rs, rc) {
                        found.push(HbViolation {
                            kind: ViolationKind::ReadWrite,
                            cell: c,
                            actors: (self.actors[rs].id, my_id),
                            events: (rev, ev),
                            detail: "write unordered with a prior read of the same cell"
                                .to_string(),
                        });
                    }
                }
            }
        }
        let epoch = self.actors[slot].clock.get(slot);
        let state = self.cells.entry(c).or_default();
        state.last_write = Some((slot, epoch, ev));
        state.reads.clear();
        for v in found {
            self.report(v);
        }
    }

    fn record_tick_access(&mut self, slot: usize, first: u64, len: u64, write: bool, ev: usize) {
        // Commutativity: two same-timestamp accesses with overlapping
        // footprints (≥ one write) from different actors, unordered by
        // happens-before, cannot be dispatched in arbitrary order.
        let my_counter = self.actors[slot].clock.get(slot);
        let my_clock = &self.actors[slot].clock;
        let mut hit: Option<HbViolation> = None;
        for prev in &self.tick_accesses {
            let overlap = first < prev.cell + prev.len && prev.cell < first + len;
            if prev.slot != slot
                && overlap
                && (prev.write || write)
                && !my_clock.covers(prev.slot, prev.counter)
            {
                hit = Some(HbViolation {
                    kind: ViolationKind::SameTickAccess,
                    cell: first.max(prev.cell),
                    actors: (self.actors[prev.slot].id, self.actors[slot].id),
                    events: (prev.event, ev),
                    detail: format!(
                        "overlapping cell footprints touched at the same timestamp {} \
                         with no ordering edge — same-instant dispatch would be \
                         nondeterministic",
                        self.tick_at
                    ),
                });
                break;
            }
        }
        if let Some(v) = hit {
            self.report(v);
        }
        self.tick_accesses.push(TickAccess {
            slot,
            cell: first,
            len,
            write,
            event: ev,
            counter: my_counter,
        });
    }

    fn run(mut self, events: &[TimedEvent]) -> HbAnalysis {
        for (i, te) in events.iter().enumerate() {
            if i >= self.opts.max_events {
                self.out.truncated = true;
                break;
            }
            self.out.events += 1;
            match te.event {
                TraceEvent::TaskSpawned { task, parent, .. } => self.on_task_spawned(task, parent),
                TraceEvent::TaskFinished { task, .. } => self.on_task_finished(task),
                TraceEvent::BarrierWaited { barrier, task } => {
                    self.on_barrier_waited(barrier, task)
                }
                TraceEvent::BarrierOpened { barrier, task, .. } => {
                    self.on_barrier_opened(barrier, task)
                }
                TraceEvent::ServiceStarted { res, task, kind, .. } => {
                    self.on_service_started(te.at, res, task, kind, i)
                }
                TraceEvent::Access { task, cell, len, kind } => {
                    self.on_access(te.at, task, cell, len, kind, i)
                }
                TraceEvent::JobSpawned { .. }
                | TraceEvent::JobFinished { .. }
                | TraceEvent::Enqueued { .. }
                | TraceEvent::ServiceFinished { .. } => {}
            }
        }
        self.out
    }
}

/// Run the happens-before analysis over an event stream.
pub fn analyze(events: &[TimedEvent], opts: &HbOptions) -> HbAnalysis {
    Analyzer::new(opts.clone()).run(events)
}

/// ddmin-style 1-minimal shrinking of the trace window around a finding:
/// repeatedly drop chunks of the stream while re-analysis still yields a
/// violation with the same [`HbViolation::key`]. The analyzer's
/// robustness on arbitrary sub-streams is what makes this sound.
pub fn shrink_window(
    events: &[TimedEvent],
    key: (ViolationKind, u64, u32, u32),
    opts: &HbOptions,
) -> Vec<TimedEvent> {
    let still_fails = |candidate: &[TimedEvent]| {
        analyze(candidate, opts).violations.iter().any(|v| v.key() == key)
    };
    let mut current: Vec<TimedEvent> = events.to_vec();
    if !still_fails(&current) {
        return current;
    }
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, event: TraceEvent) -> TimedEvent {
        TimedEvent { at: SimTime(at), event }
    }

    fn spawned(task: u32, parent: Option<u32>) -> TraceEvent {
        TraceEvent::TaskSpawned { task, parent, detached: false }
    }

    fn finished(task: u32) -> TraceEvent {
        TraceEvent::TaskFinished { task, detached: false }
    }

    fn access(task: u32, cell: u64, len: u64, kind: AccessKind) -> TraceEvent {
        TraceEvent::Access { task, cell, len, kind }
    }

    fn service(res: u32, task: u32, kind: DemandKind) -> TraceEvent {
        TraceEvent::ServiceStarted {
            res,
            task,
            kind,
            bytes: 4096,
            waited_ns: 0,
            done_at_ns: 1,
            detached: false,
        }
    }

    fn kinds(a: &HbAnalysis) -> Vec<ViolationKind> {
        a.violations.iter().map(|v| v.kind).collect()
    }

    #[test]
    fn fork_join_edges_order_task_accesses() {
        let events = vec![
            ev(0, spawned(0, None)),
            ev(1, access(0, sios_cell(5), 1, AccessKind::Write)),
            ev(2, spawned(1, Some(0))),
            ev(3, access(1, sios_cell(5), 1, AccessKind::Write)),
            ev(4, finished(1)),
            ev(5, access(0, sios_cell(5), 1, AccessKind::Write)),
            ev(6, finished(0)),
        ];
        let a = analyze(&events, &HbOptions::default());
        assert!(a.clean(), "fork/join edges must order these writes: {:?}", a.violations);
        assert_eq!(a.actors, 2);
        assert!(a.sync_edges >= 2, "fork and join edges expected");
    }

    #[test]
    fn unrelated_tasks_writing_one_cell_race() {
        let events = vec![
            ev(0, spawned(0, None)),
            ev(0, spawned(1, None)),
            ev(1, access(0, sios_cell(9), 1, AccessKind::Write)),
            ev(2, access(1, sios_cell(9), 1, AccessKind::Write)),
        ];
        let a = analyze(&events, &HbOptions::default());
        assert_eq!(kinds(&a), vec![ViolationKind::WriteWrite]);
        assert_eq!(a.violations[0].cell, sios_cell(9));
    }

    #[test]
    fn barrier_orders_and_skipping_it_races() {
        let barrier = |extra: bool| {
            let mut events = vec![
                ev(0, spawned(0, None)),
                ev(0, spawned(1, None)),
                ev(1, access(0, sios_cell(3), 2, AccessKind::Write)),
            ];
            if extra {
                events.push(ev(2, TraceEvent::BarrierWaited { barrier: 7, task: 0 }));
                events.push(ev(
                    3,
                    TraceEvent::BarrierOpened { barrier: 7, task: 1, cycle: 1, released: 2 },
                ));
            }
            events.push(ev(4, access(1, sios_cell(4), 1, AccessKind::Write)));
            events
        };
        let clean = analyze(&barrier(true), &HbOptions::default());
        assert!(clean.clean(), "barrier must order the writes: {:?}", clean.violations);
        let raced = analyze(&barrier(false), &HbOptions::default());
        assert_eq!(kinds(&raced), vec![ViolationKind::WriteWrite]);
    }

    /// Two protocol clients writing an overlapping range, each under a
    /// lock-group grant: the release→acquire edge orders them. Dropping
    /// the first client's grant breaks both detectors at once.
    fn locked_protocol_stream(drop_first_grant: bool) -> Vec<TimedEvent> {
        let (c0, c1) = (client_actor(0), client_actor(1));
        let mut events = Vec::new();
        if !drop_first_grant {
            events.push(ev(10, access(c0, sios_cell(0), 4, AccessKind::Acquire)));
        }
        events.push(ev(10, access(c0, sios_cell(0), 4, AccessKind::Write)));
        if !drop_first_grant {
            events.push(ev(10, access(c0, sios_cell(0), 4, AccessKind::Release)));
        }
        events.push(ev(11, access(c1, sios_cell(2), 4, AccessKind::Acquire)));
        events.push(ev(11, access(c1, sios_cell(2), 4, AccessKind::Write)));
        events.push(ev(11, access(c1, sios_cell(2), 4, AccessKind::Release)));
        events
    }

    #[test]
    fn lock_edges_order_clients_and_dropped_grant_is_caught() {
        let clean = analyze(&locked_protocol_stream(false), &HbOptions::default());
        assert!(clean.clean(), "lock edges must order the clients: {:?}", clean.violations);
        let raced = analyze(&locked_protocol_stream(true), &HbOptions::default());
        let ks = kinds(&raced);
        assert!(
            ks.contains(&ViolationKind::UncoveredWrite),
            "missing grant must surface as an uncovered write: {ks:?}"
        );
        assert!(
            ks.contains(&ViolationKind::WriteWrite),
            "missing release edge must surface as a write-write race: {ks:?}"
        );
    }

    #[test]
    fn image_cells_are_exempt_from_race_and_coverage() {
        let (c0, c1) = (client_actor(0), client_actor(1));
        let events = vec![
            ev(0, access(c0, image_cell(7), 1, AccessKind::Write)),
            ev(1, access(c1, image_cell(7), 1, AccessKind::Write)),
        ];
        let a = analyze(&events, &HbOptions::default());
        assert!(a.clean(), "image surrender order is legitimately unordered: {:?}", a.violations);
    }

    #[test]
    fn same_tick_overlapping_accesses_flagged() {
        let events = vec![
            ev(5, access(client_actor(0), sios_cell(0), 4, AccessKind::Write)),
            ev(5, access(client_actor(1), sios_cell(3), 2, AccessKind::Write)),
        ];
        let opts = HbOptions { require_lock_coverage: false, ..HbOptions::default() };
        let a = analyze(&events, &opts);
        assert!(kinds(&a).contains(&ViolationKind::SameTickAccess), "{:?}", kinds(&a));
        // Disjoint footprints at one tick commute: no finding.
        let disjoint = vec![
            ev(5, access(client_actor(0), sios_cell(0), 2, AccessKind::Write)),
            ev(5, access(client_actor(1), sios_cell(8), 2, AccessKind::Write)),
        ];
        let b = analyze(&disjoint, &opts);
        assert!(!kinds(&b).contains(&ViolationKind::SameTickAccess));
    }

    #[test]
    fn same_tick_disk_services_on_one_resource_flagged() {
        let events = vec![
            ev(0, spawned(0, None)),
            ev(0, spawned(1, None)),
            ev(9, service(3, 0, DemandKind::DiskWrite)),
            ev(9, service(3, 1, DemandKind::DiskWrite)),
        ];
        let a = analyze(&events, &HbOptions::default());
        assert_eq!(kinds(&a), vec![ViolationKind::SameTickService]);
        // Different resources at one tick are fine.
        let ok = vec![
            ev(0, spawned(0, None)),
            ev(0, spawned(1, None)),
            ev(9, service(3, 0, DemandKind::DiskWrite)),
            ev(9, service(4, 1, DemandKind::DiskWrite)),
        ];
        assert!(analyze(&ok, &HbOptions::default()).clean());
    }

    #[test]
    fn task_slot_reuse_spawns_fresh_actor_instances() {
        let events = vec![
            ev(0, spawned(0, None)),
            ev(1, access(0, sios_cell(1), 1, AccessKind::Write)),
            ev(2, finished(0)),
            ev(3, spawned(0, None)), // engine free-list reuses slot 0
            ev(4, access(0, sios_cell(1), 1, AccessKind::Write)),
        ];
        let a = analyze(&events, &HbOptions::default());
        assert_eq!(a.actors, 2, "slot reuse must not merge instances");
        assert_eq!(kinds(&a), vec![ViolationKind::WriteWrite], "instances are unordered");
    }

    #[test]
    fn shrink_window_reduces_and_preserves_the_finding() {
        // Pad the dropped-grant defect with unrelated locked traffic.
        let mut events = Vec::new();
        for i in 0..20u64 {
            let c = client_actor(3);
            events.push(ev(100 + i, access(c, sios_cell(100 + i), 1, AccessKind::Acquire)));
            events.push(ev(100 + i, access(c, sios_cell(100 + i), 1, AccessKind::Write)));
            events.push(ev(100 + i, access(c, sios_cell(100 + i), 1, AccessKind::Release)));
        }
        events.extend(locked_protocol_stream(true));
        let opts = HbOptions::default();
        let a = analyze(&events, &opts);
        let race = a
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::WriteWrite)
            .expect("planted race");
        let window = shrink_window(&events, race.key(), &opts);
        assert!(window.len() < events.len(), "window must shrink");
        assert!(window.len() >= 2, "a race needs both accesses");
        let again = analyze(&window, &opts);
        assert!(
            again.violations.iter().any(|v| v.key() == race.key()),
            "shrunk window must still exhibit the finding"
        );
    }

    #[test]
    fn analysis_fingerprint_is_deterministic_and_sensitive() {
        let events = locked_protocol_stream(true);
        let a = analyze(&events, &HbOptions::default());
        let b = analyze(&events, &HbOptions::default());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let clean = analyze(&locked_protocol_stream(false), &HbOptions::default());
        assert_ne!(a.fingerprint(), clean.fingerprint());
    }

    #[test]
    fn max_events_budget_truncates() {
        let events = locked_protocol_stream(false);
        let opts = HbOptions { max_events: 2, ..HbOptions::default() };
        let a = analyze(&events, &opts);
        assert!(a.truncated);
        assert_eq!(a.events, 2);
    }

    #[test]
    fn cell_namespacing_round_trips() {
        let c = image_cell(0xABCD);
        assert_eq!(cell_ns(c), IMAGE_NS);
        assert_eq!(cell_index(c), 0xABCD);
        assert_eq!(cell_ns(sios_cell(7)), SIOS_NS);
        assert_eq!(actor_label(client_actor(2)), "client2");
        assert_eq!(actor_label(OSM_ACTOR), "osm");
        assert_eq!(actor_label(17), "task17");
    }
}
