//! Static validation of [`Plan`] DAGs before execution.
//!
//! A malformed plan either deadlocks the engine (a barrier nobody else
//! reaches, a barrier parked inside a detached subtree) or panics deep in
//! the event loop (an unknown resource id). This module rejects those
//! shapes *before* any event fires, with an error that names the offending
//! node. [`Engine::validate`](crate::Engine::validate) checks one plan
//! against the engine's registered resources and barriers;
//! [`Engine::validate_jobs`](crate::Engine::validate_jobs) additionally
//! cross-checks barrier participant counts across a whole job set, which is
//! where the silent-deadlock bugs live.

use crate::demand::Demand;
use crate::plan::{BarrierId, Plan};
use crate::resource::ResourceId;
use std::collections::HashMap;

/// A defect found in a [`Plan`] (or a set of plans) by static validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A `Use` leaf names a resource that was never registered.
    UnknownResource {
        /// The out-of-range id.
        res: ResourceId,
        /// Number of registered resources at validation time.
        registered: usize,
    },
    /// A `Barrier` leaf names a barrier that was never registered; the
    /// task would panic on arrival.
    UnregisteredBarrier {
        /// The unknown barrier.
        id: BarrierId,
    },
    /// A `Barrier` nested inside a `Background` subtree: the detached task
    /// would park on the barrier and count toward its quota, silently
    /// changing (usually deadlocking) the synchronization.
    BarrierInBackground {
        /// The barrier inside the detached subtree.
        id: BarrierId,
    },
    /// An empty `Seq` node — always a plan-construction bug (use
    /// `Plan::Noop` for an intentional no-op).
    EmptySeq,
    /// An empty `Par` node — always a plan-construction bug.
    EmptyPar,
    /// A transfer demand of zero bytes: it completes in zero time yet
    /// occupies a queue slot, which skews utilization statistics.
    ZeroByteUse {
        /// The resource the empty demand targets.
        res: ResourceId,
    },
    /// Across a job set: the number of tasks that concurrently arrive at a
    /// barrier does not match its registered participant count, so the
    /// barrier either never opens (deadlock) or opens early.
    ParticipantMismatch {
        /// The barrier in question.
        id: BarrierId,
        /// Participants declared via `register_barrier`.
        registered: usize,
        /// Concurrent arrivals implied by the job set's plans.
        arriving: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownResource { res, registered } => {
                write!(f, "plan uses unregistered resource {res:?} ({registered} registered)")
            }
            PlanError::UnregisteredBarrier { id } => {
                write!(f, "plan waits on unregistered barrier {id:?}")
            }
            PlanError::BarrierInBackground { id } => {
                write!(f, "barrier {id:?} inside a Background subtree (detached waiter)")
            }
            PlanError::EmptySeq => write!(f, "empty Seq node (use Plan::Noop)"),
            PlanError::EmptyPar => write!(f, "empty Par node (use Plan::Noop)"),
            PlanError::ZeroByteUse { res } => {
                write!(f, "zero-byte transfer demand at resource {res:?}")
            }
            PlanError::ParticipantMismatch { id, registered, arriving } => write!(
                f,
                "barrier {id:?} registered for {registered} participants but {arriving} arrive"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// What a plan is validated against: the registered resources and barriers
/// of the engine that will execute it.
#[derive(Debug, Clone, Default)]
pub struct PlanContext {
    /// Number of registered resources (ids are dense, so a bound suffices).
    pub resources: usize,
    /// Registered barriers and their participant counts.
    pub barriers: HashMap<BarrierId, usize>,
}

/// Severity classes of [`PlanError`], used to pick which checks gate
/// spawning (debug assertions) versus full linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// Only defects that panic or deadlock the engine outright: unknown
    /// resources, unregistered barriers, barriers in background subtrees.
    Structural,
    /// Everything, including hygiene defects (empty combinators,
    /// zero-byte demands).
    Strict,
}

fn demand_is_empty_transfer(d: &Demand) -> bool {
    !matches!(d, Demand::Busy(_)) && d.bytes() == 0
}

/// Walk `plan`, collecting every defect (not just the first).
pub fn lint_plan(plan: &Plan, ctx: &PlanContext, strictness: Strictness) -> Vec<PlanError> {
    let mut errs = Vec::new();
    walk(plan, ctx, strictness, false, &mut errs);
    errs
}

fn walk(
    plan: &Plan,
    ctx: &PlanContext,
    strictness: Strictness,
    in_background: bool,
    errs: &mut Vec<PlanError>,
) {
    match plan {
        Plan::Noop | Plan::Delay(_) => {}
        Plan::Use { res, demand } => {
            if res.index() >= ctx.resources {
                errs.push(PlanError::UnknownResource { res: *res, registered: ctx.resources });
            }
            if strictness == Strictness::Strict && demand_is_empty_transfer(demand) {
                errs.push(PlanError::ZeroByteUse { res: *res });
            }
        }
        Plan::Seq(v) => {
            if v.is_empty() && strictness == Strictness::Strict {
                errs.push(PlanError::EmptySeq);
            }
            for p in v {
                walk(p, ctx, strictness, in_background, errs);
            }
        }
        Plan::Par(v) => {
            if v.is_empty() && strictness == Strictness::Strict {
                errs.push(PlanError::EmptyPar);
            }
            for p in v {
                walk(p, ctx, strictness, in_background, errs);
            }
        }
        Plan::Background(p) => walk(p, ctx, strictness, true, errs),
        Plan::Barrier(id) => {
            if !ctx.barriers.contains_key(id) {
                errs.push(PlanError::UnregisteredBarrier { id: *id });
            }
            if in_background {
                errs.push(PlanError::BarrierInBackground { id: *id });
            }
        }
    }
}

/// Concurrent arrivals this plan contributes to each barrier per cycle:
/// `Par` children arrive together (sum); `Seq` children arrive on
/// successive cycles (max); `Background` subtrees are excluded (they are
/// already an error).
pub fn barrier_arrivals(plan: &Plan, out: &mut HashMap<BarrierId, usize>) {
    fn arrivals(plan: &Plan, acc: &mut HashMap<BarrierId, usize>) {
        match plan {
            Plan::Barrier(id) => {
                *acc.entry(*id).or_insert(0) += 1;
            }
            Plan::Seq(v) => {
                let mut max: HashMap<BarrierId, usize> = HashMap::new();
                for p in v {
                    let mut child = HashMap::new();
                    arrivals(p, &mut child);
                    // det-ok: commutative max-merge, order-insensitive.
                    for (id, n) in child {
                        let e = max.entry(id).or_insert(0);
                        *e = (*e).max(n);
                    }
                }
                // det-ok: commutative addition into the accumulator.
                for (id, n) in max {
                    *acc.entry(id).or_insert(0) += n;
                }
            }
            Plan::Par(v) => {
                for p in v {
                    arrivals(p, acc);
                }
            }
            _ => {}
        }
    }
    let mut acc = HashMap::new();
    arrivals(plan, &mut acc);
    // det-ok: commutative addition into the output map.
    for (id, n) in acc {
        *out.entry(id).or_insert(0) += n;
    }
}

/// Validate a whole job set: every plan individually, plus the cross-job
/// barrier participant accounting.
pub fn lint_jobs(plans: &[Plan], ctx: &PlanContext) -> Vec<PlanError> {
    let mut errs = Vec::new();
    let mut arriving: HashMap<BarrierId, usize> = HashMap::new();
    for p in plans {
        walk(p, ctx, Strictness::Strict, false, &mut errs);
        barrier_arrivals(p, &mut arriving);
    }
    let mut ordered: Vec<(BarrierId, usize)> =
        // det-ok: sorted immediately below so the error list is deterministic.
        ctx.barriers.iter().map(|(&id, &needed)| (id, needed)).collect();
    ordered.sort_by_key(|(id, _)| id.0);
    for (id, needed) in ordered {
        let n = arriving.get(&id).copied().unwrap_or(0);
        if n != needed && n > 0 {
            errs.push(PlanError::ParticipantMismatch { id, registered: needed, arriving: n });
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{background, barrier, par, seq, use_res};
    use crate::time::SimDuration;

    fn ctx() -> PlanContext {
        PlanContext { resources: 2, barriers: [(BarrierId(1), 2)].into_iter().collect() }
    }

    fn disk(res: u32, bytes: u64) -> Plan {
        use_res(ResourceId(res), Demand::DiskWrite { offset: 0, bytes })
    }

    #[test]
    fn clean_plan_passes() {
        let p = seq(vec![disk(0, 64), par(vec![disk(1, 32), barrier(BarrierId(1))])]);
        assert!(lint_plan(&p, &ctx(), Strictness::Strict).is_empty());
    }

    #[test]
    fn unknown_resource_rejected() {
        let p = disk(7, 64);
        let errs = lint_plan(&p, &ctx(), Strictness::Structural);
        assert!(matches!(errs[0], PlanError::UnknownResource { .. }));
    }

    #[test]
    fn unregistered_barrier_rejected() {
        let errs = lint_plan(&barrier(BarrierId(9)), &ctx(), Strictness::Structural);
        assert!(matches!(errs[0], PlanError::UnregisteredBarrier { .. }));
    }

    #[test]
    fn barrier_in_background_rejected() {
        let p = seq(vec![disk(0, 64), background(seq(vec![barrier(BarrierId(1))]))]);
        let errs = lint_plan(&p, &ctx(), Strictness::Structural);
        assert_eq!(errs, vec![PlanError::BarrierInBackground { id: BarrierId(1) }]);
    }

    #[test]
    fn hygiene_only_in_strict() {
        let p = seq(vec![Plan::Seq(Vec::new()), Plan::Par(Vec::new()), disk(0, 0)]);
        assert!(lint_plan(&p, &ctx(), Strictness::Structural).is_empty());
        let errs = lint_plan(&p, &ctx(), Strictness::Strict);
        assert_eq!(errs.len(), 3, "{errs:?}");
    }

    #[test]
    fn busy_demand_is_not_a_zero_byte_transfer() {
        let p = use_res(ResourceId(0), Demand::Busy(SimDuration::from_micros(1)));
        assert!(lint_plan(&p, &ctx(), Strictness::Strict).is_empty());
    }

    #[test]
    fn participant_accounting_seq_vs_par() {
        // Two jobs: one arrives twice sequentially (two cycles, one
        // concurrent arrival), one arrives in two parallel branches.
        let b = BarrierId(1);
        let j0 = seq(vec![barrier(b), disk(0, 8), barrier(b)]);
        let j1 = par(vec![barrier(b), barrier(b)]);
        let mut arr = HashMap::new();
        barrier_arrivals(&j0, &mut arr);
        assert_eq!(arr[&b], 1);
        barrier_arrivals(&j1, &mut arr);
        assert_eq!(arr[&b], 3);
    }

    #[test]
    fn job_set_mismatch_detected() {
        let b = BarrierId(1); // registered for 2
        let plans = vec![barrier(b)]; // only one job arrives
        let errs = lint_jobs(&plans, &ctx());
        assert!(
            errs.iter().any(|e| matches!(
                e,
                PlanError::ParticipantMismatch { registered: 2, arriving: 1, .. }
            )),
            "{errs:?}"
        );
    }

    #[test]
    fn job_set_exact_match_passes() {
        let b = BarrierId(1);
        let plans = vec![barrier(b), seq(vec![disk(0, 4), barrier(b)])];
        assert!(lint_jobs(&plans, &ctx()).is_empty());
    }
}
