//! Simulated resources: FIFO servers with pluggable service-time models.
//!
//! A resource serves one demand at a time; further demands queue in arrival
//! order. Service times come from a [`ServiceModel`], which may keep state
//! (a disk model remembers its head position, so service time depends on
//! history).

use crate::demand::Demand;
use crate::time::{SimDuration, SimTime};

/// Opaque handle to a resource registered with an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// The raw index of this resource inside its engine.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Computes how long a [`Demand`] occupies a resource.
///
/// Models may be stateful: the engine guarantees `service_time` is invoked in
/// simulated-time order (the order demands actually reach the head of the
/// queue), so state such as a disk head position evolves realistically.
pub trait ServiceModel: Send {
    /// Time the resource is busy serving `demand`, starting at `now`.
    fn service_time(&mut self, demand: &Demand, now: SimTime) -> SimDuration;

    /// Queue discipline: index of the pending demand to serve next.
    ///
    /// Called whenever the resource finishes a demand and others wait;
    /// `pending` is in arrival order and never empty. The default is FIFO.
    /// A disk model can override this to implement SSTF or elevator
    /// scheduling over the queued offsets.
    fn select_next(&mut self, pending: &[&Demand]) -> usize {
        let _ = pending;
        0
    }
}

/// A fixed-rate service model: `per_op` setup cost plus `bytes/bytes_per_sec`.
///
/// Suitable for NIC ports, buses, DMA engines and per-message CPU overhead,
/// where cost is affine in the payload size.
#[derive(Debug, Clone)]
pub struct FixedRate {
    /// Setup/overhead charged once per operation.
    pub per_op: SimDuration,
    /// Streaming bandwidth; 0 disables the per-byte component.
    pub bytes_per_sec: u64,
}

impl FixedRate {
    /// A model with only a per-operation cost.
    pub fn per_op(d: SimDuration) -> Self {
        FixedRate { per_op: d, bytes_per_sec: 0 }
    }

    /// A model with only a bandwidth component.
    pub fn rate(bytes_per_sec: u64) -> Self {
        FixedRate { per_op: SimDuration::ZERO, bytes_per_sec }
    }
}

impl ServiceModel for FixedRate {
    fn service_time(&mut self, demand: &Demand, _now: SimTime) -> SimDuration {
        match demand {
            Demand::Busy(d) => *d,
            d => self.per_op + SimDuration::for_bytes(d.bytes(), self.bytes_per_sec),
        }
    }
}

/// Aggregate statistics for one resource over a run.
#[derive(Debug, Clone, Default)]
pub struct ResourceStats {
    /// Total simulated time the resource spent serving demands.
    pub busy: SimDuration,
    /// Number of demands served.
    pub ops: u64,
    /// Total payload bytes across served demands.
    pub bytes: u64,
    /// Sum of time demands spent waiting in queue before service.
    pub queue_wait: SimDuration,
    /// Largest queue length observed (including the demand in service).
    pub max_queue: usize,
}

impl ResourceStats {
    /// Fraction of `span` the resource was busy (0..=1).
    pub fn utilization(&self, span: SimDuration) -> f64 {
        if span.as_nanos() == 0 {
            0.0
        } else {
            self.busy.as_nanos() as f64 / span.as_nanos() as f64
        }
    }

    /// Mean queueing delay per served demand.
    pub fn mean_wait(&self) -> SimDuration {
        match self.queue_wait.as_nanos().checked_div(self.ops) {
            Some(ns) => SimDuration(ns),
            None => SimDuration::ZERO,
        }
    }

    /// Achieved throughput in bytes/sec over `span`.
    pub fn throughput(&self, span: SimDuration) -> f64 {
        if span.as_nanos() == 0 {
            0.0
        } else {
            self.bytes as f64 / span.as_secs_f64()
        }
    }
}

/// A queued demand waiting for (or holding) a resource.
#[derive(Debug)]
pub(crate) struct Pending {
    pub task: crate::engine::TaskId,
    pub demand: Demand,
    pub enqueued: SimTime,
}

/// Internal resource record owned by the engine.
pub(crate) struct ResourceSlot {
    pub name: String,
    pub model: Box<dyn ServiceModel>,
    pub queue: std::collections::VecDeque<Pending>,
    /// Task currently in service, if any.
    pub current: Option<Pending>,
    pub stats: ResourceStats,
    /// Service-time multiplier applied on top of the model (1 = nominal).
    /// Fault injection uses this for "slow but alive" components, so any
    /// [`ServiceModel`] degrades uniformly without knowing about faults.
    pub slowdown: u64,
}

impl ResourceSlot {
    pub fn new(name: String, model: Box<dyn ServiceModel>) -> Self {
        ResourceSlot {
            name,
            model,
            queue: std::collections::VecDeque::new(),
            current: None,
            stats: ResourceStats::default(),
            slowdown: 1,
        }
    }

    /// Queue length including the in-service demand.
    pub fn depth(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_charges_setup_plus_bytes() {
        let mut m = FixedRate { per_op: SimDuration::from_micros(100), bytes_per_sec: 1_000_000 };
        let t = m.service_time(&Demand::NetXfer { bytes: 1_000_000 }, SimTime::ZERO);
        assert_eq!(t, SimDuration::from_micros(100) + SimDuration::from_secs(1));
    }

    #[test]
    fn fixed_rate_busy_passthrough() {
        let mut m = FixedRate::rate(10);
        let t = m.service_time(&Demand::Busy(SimDuration::from_millis(7)), SimTime::ZERO);
        assert_eq!(t, SimDuration::from_millis(7));
    }

    #[test]
    fn utilization_and_wait() {
        let s = ResourceStats {
            busy: SimDuration::from_millis(500),
            ops: 5,
            bytes: 5_000_000,
            queue_wait: SimDuration::from_millis(50),
            max_queue: 3,
        };
        assert!((s.utilization(SimDuration::from_secs(1)) - 0.5).abs() < 1e-12);
        assert_eq!(s.mean_wait(), SimDuration::from_millis(10));
        assert!((s.throughput(SimDuration::from_secs(1)) - 5_000_000.0).abs() < 1e-6);
        assert_eq!(ResourceStats::default().mean_wait(), SimDuration::ZERO);
        assert_eq!(ResourceStats::default().utilization(SimDuration::ZERO), 0.0);
    }
}
