//! Controlled-scheduler interleaving exploration — the substrate of the
//! `raidx-model` checker.
//!
//! A [`Model`] describes a small concurrent program: a fixed set of
//! logical threads advancing one *atomic step* at a time over a shared,
//! cloneable state. The [`Explorer`] enumerates thread interleavings by
//! depth-first search, checking a state invariant after every step,
//! detecting deadlocks (no enabled thread while some are unfinished — the
//! shape a lost wakeup takes), and running an optional leaf check over
//! every completed schedule (e.g. a linearizability audit of the recorded
//! history).
//!
//! **Pruning.** With `sleep_sets` on, the explorer applies the classic
//! sleep-set refinement of partial-order reduction (the non-vector-clock
//! half of DPOR): after a branch on thread `t` is fully explored, sibling
//! branches need not re-interleave steps *independent* of `t`'s step.
//! Independence comes from [`Footprint`]s — the abstract cells a thread's
//! next step reads or writes; steps with disjoint footprints commute.
//! Footprints must be conservative: if two steps could interact through
//! any observable channel (including assertions), their footprints must
//! intersect. Histories recorded for post-hoc checking are exempt — two
//! truly independent steps produce histories equivalent up to reordering
//! of concurrent records, which a correct history checker treats alike.
//!
//! **Counterexamples.** A failure carries the schedule (thread choice
//! sequence) that produced it; with `shrink` on, the explorer minimizes it
//! with [`crate::check::shrink_list`] before reporting. A minimized
//! schedule is replayed as "follow these choices, then continue
//! round-robin" — see [`replay`].

use crate::check::shrink_list;

/// Index of a logical thread inside a [`Model`].
pub type ThreadId = usize;

/// The abstract cells a thread's next step touches, for the independence
/// relation that drives sleep-set pruning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Footprint {
    /// Conservatively dependent with every other step.
    Global,
    /// Touches exactly this (sorted, deduplicated) set of abstract cells.
    Cells(Vec<u64>),
}

impl Footprint {
    /// A cell-set footprint (sorts and deduplicates `cells`).
    pub fn cells(mut cells: Vec<u64>) -> Self {
        cells.sort_unstable();
        cells.dedup();
        Footprint::Cells(cells)
    }

    /// Do the two footprints touch disjoint cells (i.e. commute)?
    pub fn independent(&self, other: &Footprint) -> bool {
        match (self, other) {
            (Footprint::Global, _) | (_, Footprint::Global) => false,
            (Footprint::Cells(a), Footprint::Cells(b)) => {
                // Both sorted: linear disjointness merge.
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => return false,
                    }
                }
                true
            }
        }
    }
}

/// A small concurrent program the explorer can drive.
pub trait Model {
    /// Shared state, cloned at every branch point of the search.
    type State: Clone;

    /// The initial shared state.
    fn init(&self) -> Self::State;

    /// Number of logical threads (at most 64).
    fn threads(&self) -> usize;

    /// Has thread `t` run to completion?
    fn done(&self, s: &Self::State, t: ThreadId) -> bool;

    /// Can thread `t` take a step right now? A thread that is not done
    /// and not enabled is *blocked* (e.g. waiting on a lock grant); if
    /// every unfinished thread blocks, the explorer reports a deadlock.
    fn enabled(&self, s: &Self::State, t: ThreadId) -> bool {
        !self.done(s, t)
    }

    /// Footprint of thread `t`'s next step. Only called when `t` is not
    /// done. Must be conservative (see module docs).
    fn footprint(&self, s: &Self::State, t: ThreadId) -> Footprint;

    /// Execute one atomic step of thread `t`. `Err` fails the schedule
    /// (a step-level assertion, e.g. "write without a covering grant").
    fn step(&self, s: &mut Self::State, t: ThreadId) -> Result<(), String>;

    /// Whole-state invariant, checked after every step.
    fn invariant(&self, _s: &Self::State) -> Result<(), String> {
        Ok(())
    }
}

/// What went wrong on a failing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A step-level assertion inside [`Model::step`] failed.
    Step(String),
    /// The whole-state invariant failed after a step.
    Invariant(String),
    /// No thread was enabled while these threads were still unfinished
    /// (deadlock / lost wakeup).
    Deadlock(Vec<ThreadId>),
    /// The per-schedule leaf check (e.g. linearizability) failed.
    Leaf(String),
    /// The search exceeded `max_depth` — the model does not terminate
    /// within the configured bound.
    Depth,
}

/// A failing schedule and its diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The thread choices from the initial state up to the failure.
    /// After shrinking, replaying these choices and then continuing
    /// round-robin (see [`replay`]) reproduces the failure.
    pub schedule: Vec<ThreadId>,
    /// The diagnosis.
    pub kind: FailureKind,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match &self.kind {
            FailureKind::Step(m) => format!("step assertion: {m}"),
            FailureKind::Invariant(m) => format!("invariant violated: {m}"),
            FailureKind::Deadlock(ts) => format!("deadlock/lost wakeup, blocked threads {ts:?}"),
            FailureKind::Leaf(m) => format!("leaf check failed: {m}"),
            FailureKind::Depth => "depth bound exceeded".to_string(),
        };
        write!(f, "{what} (schedule {:?})", self.schedule)
    }
}

/// Aggregate result of one exploration.
#[derive(Debug, Clone, Default)]
pub struct Exploration {
    /// Complete schedules reaching a leaf (all threads done).
    pub schedules: u64,
    /// Total atomic steps executed.
    pub steps: u64,
    /// Branches skipped by sleep-set pruning.
    pub pruned: u64,
    /// True when the schedule budget ran out before full coverage.
    pub truncated: bool,
    /// The first failure found (minimized when shrinking is on), if any.
    pub failure: Option<Failure>,
}

impl Exploration {
    /// True when exploration finished without finding any defect.
    pub fn clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// Depth-first schedule explorer with sleep-set pruning and schedule
/// shrinking.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Abort with [`FailureKind::Depth`] past this many steps on one path.
    pub max_depth: usize,
    /// Stop exploring (reporting `truncated`) after this many complete
    /// schedules.
    pub max_schedules: u64,
    /// Enable sleep-set pruning.
    pub sleep_sets: bool,
    /// Minimize failing schedules before reporting.
    pub shrink: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer { max_depth: 256, max_schedules: 100_000, sleep_sets: true, shrink: true }
    }
}

impl Explorer {
    /// Explore all interleavings of `m` (within budget), checking step
    /// results and the state invariant.
    pub fn explore<M: Model>(&self, m: &M) -> Exploration {
        self.explore_with(m, |_| Ok(()))
    }

    /// Like [`Explorer::explore`], additionally running `on_leaf` against
    /// the final state of every complete schedule (e.g. a linearizability
    /// check over the recorded history).
    pub fn explore_with<M: Model>(
        &self,
        m: &M,
        mut on_leaf: impl FnMut(&M::State) -> Result<(), String>,
    ) -> Exploration {
        assert!(m.threads() <= 64, "at most 64 threads");
        let mut out = Exploration::default();
        let mut sched = Vec::new();
        let init = m.init();
        self.dfs(m, &init, &mut sched, 0, &mut on_leaf, &mut out);
        if self.shrink {
            if let Some(f) = out.failure.take() {
                out.failure = Some(minimize(m, f, &mut on_leaf, self.max_depth));
            }
        }
        out
    }

    /// Returns false to abort the whole search (failure found or budget
    /// exhausted). `sleep` is a bitmask of sleeping threads.
    fn dfs<M: Model>(
        &self,
        m: &M,
        s: &M::State,
        sched: &mut Vec<ThreadId>,
        sleep: u64,
        on_leaf: &mut impl FnMut(&M::State) -> Result<(), String>,
        out: &mut Exploration,
    ) -> bool {
        let n = m.threads();
        let mut enabled = Vec::new();
        let mut unfinished = Vec::new();
        for t in 0..n {
            if !m.done(s, t) {
                unfinished.push(t);
                if m.enabled(s, t) {
                    enabled.push(t);
                }
            }
        }
        if unfinished.is_empty() {
            out.schedules += 1;
            if let Err(e) = on_leaf(s) {
                out.failure = Some(Failure { schedule: sched.clone(), kind: FailureKind::Leaf(e) });
                return false;
            }
            if out.schedules >= self.max_schedules {
                out.truncated = true;
                return false;
            }
            return true;
        }
        if enabled.is_empty() {
            out.failure =
                Some(Failure { schedule: sched.clone(), kind: FailureKind::Deadlock(unfinished) });
            return false;
        }
        if sched.len() >= self.max_depth {
            out.failure = Some(Failure { schedule: sched.clone(), kind: FailureKind::Depth });
            return false;
        }
        let mut explored: Vec<(ThreadId, Footprint)> = Vec::new();
        for &t in &enabled {
            if (sleep >> t) & 1 == 1 {
                out.pruned += 1;
                continue;
            }
            let fp_t = m.footprint(s, t);
            let mut child = s.clone();
            sched.push(t);
            out.steps += 1;
            if let Err(e) = m.step(&mut child, t) {
                out.failure = Some(Failure { schedule: sched.clone(), kind: FailureKind::Step(e) });
                return false;
            }
            if let Err(e) = m.invariant(&child) {
                out.failure =
                    Some(Failure { schedule: sched.clone(), kind: FailureKind::Invariant(e) });
                return false;
            }
            let mut child_sleep = 0u64;
            if self.sleep_sets {
                // Sleeping threads stay asleep while independent of the
                // step just taken; fully-explored siblings fall asleep on
                // the same condition.
                for x in 0..n {
                    if (sleep >> x) & 1 == 1
                        && !m.done(s, x)
                        && m.footprint(s, x).independent(&fp_t)
                    {
                        child_sleep |= 1 << x;
                    }
                }
                for (x, fp_x) in &explored {
                    if fp_x.independent(&fp_t) {
                        child_sleep |= 1 << x;
                    }
                }
            }
            if !self.dfs(m, &child, sched, child_sleep, on_leaf, out) {
                return false;
            }
            sched.pop();
            explored.push((t, fp_t));
        }
        true
    }
}

/// Replay `schedule` from the initial state: follow the recorded choices
/// while they are valid (skipping entries whose thread is done or
/// blocked), then continue deterministically (lowest enabled thread
/// first) for up to `max_extra` steps. Returns the final state and the
/// failure encountered, if any — including the leaf check on completion.
pub fn replay_with<M: Model>(
    m: &M,
    schedule: &[ThreadId],
    max_extra: usize,
    mut on_leaf: impl FnMut(&M::State) -> Result<(), String>,
) -> (M::State, Option<FailureKind>) {
    let mut s = m.init();
    let n = m.threads();
    let mut extra = 0usize;
    let mut idx = 0usize;
    loop {
        let unfinished: Vec<ThreadId> = (0..n).filter(|&t| !m.done(&s, t)).collect();
        if unfinished.is_empty() {
            let r = on_leaf(&s).err().map(FailureKind::Leaf);
            return (s, r);
        }
        if !unfinished.iter().any(|&t| m.enabled(&s, t)) {
            return (s, Some(FailureKind::Deadlock(unfinished)));
        }
        let choice = loop {
            match schedule.get(idx) {
                Some(&t) => {
                    idx += 1;
                    if t < n && !m.done(&s, t) && m.enabled(&s, t) {
                        break Some(t);
                    }
                    // Invalid entry (shrinking removed context): skip it.
                }
                None => break None,
            }
        };
        let t = match choice {
            Some(t) => t,
            None => {
                if extra >= max_extra {
                    return (s, None);
                }
                extra += 1;
                match (0..n).find(|&t| !m.done(&s, t) && m.enabled(&s, t)) {
                    Some(t) => t,
                    None => return (s, None),
                }
            }
        };
        if let Err(e) = m.step(&mut s, t) {
            return (s, Some(FailureKind::Step(e)));
        }
        if let Err(e) = m.invariant(&s) {
            return (s, Some(FailureKind::Invariant(e)));
        }
    }
}

/// Replay without a leaf check.
pub fn replay<M: Model>(
    m: &M,
    schedule: &[ThreadId],
    max_extra: usize,
) -> (M::State, Option<FailureKind>) {
    replay_with(m, schedule, max_extra, |_| Ok(()))
}

/// Minimize a failing schedule: greedy deletion under the oracle "replay
/// still fails somehow", then re-derive the (possibly different) failure
/// kind from the minimized schedule.
fn minimize<M: Model>(
    m: &M,
    found: Failure,
    on_leaf: &mut impl FnMut(&M::State) -> Result<(), String>,
    max_extra: usize,
) -> Failure {
    let minimal = shrink_list(&found.schedule, |cand| {
        replay_with(m, cand, max_extra, &mut *on_leaf).1.is_some()
    });
    let (_, kind) = replay_with(m, &minimal, max_extra, on_leaf);
    match kind {
        Some(kind) => Failure { schedule: minimal, kind },
        // Shrinking never accepts a non-failing candidate, but guard
        // against a flaky oracle by falling back to the original.
        None => found,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each do load; add; store (non-atomic increment).
    struct RacyCounter {
        atomic: bool,
    }

    #[derive(Clone)]
    struct CounterState {
        value: u64,
        loaded: [Option<u64>; 2],
        pc: [usize; 2],
    }

    impl Model for RacyCounter {
        type State = CounterState;
        fn init(&self) -> CounterState {
            CounterState { value: 0, loaded: [None, None], pc: [0, 0] }
        }
        fn threads(&self) -> usize {
            2
        }
        fn done(&self, s: &CounterState, t: ThreadId) -> bool {
            s.pc[t] >= if self.atomic { 1 } else { 2 }
        }
        fn footprint(&self, _s: &CounterState, _t: ThreadId) -> Footprint {
            Footprint::cells(vec![0])
        }
        fn step(&self, s: &mut CounterState, t: ThreadId) -> Result<(), String> {
            if self.atomic {
                s.value += 1;
            } else if s.pc[t] == 0 {
                s.loaded[t] = Some(s.value);
            } else {
                s.value = s.loaded[t].ok_or("store before load")? + 1;
            }
            s.pc[t] += 1;
            Ok(())
        }
    }

    fn counter_leaf(s: &CounterState) -> Result<(), String> {
        if s.value == 2 {
            Ok(())
        } else {
            Err(format!("lost update: final value {}", s.value))
        }
    }

    #[test]
    fn finds_lost_update() {
        let ex = Explorer::default();
        let r = ex.explore_with(&RacyCounter { atomic: false }, counter_leaf);
        let f = r.failure.expect("race not found");
        assert!(matches!(f.kind, FailureKind::Leaf(_)), "{f}");
        // Minimized: the interleaving load0 load1 store store (4 steps,
        // possibly fewer recorded thanks to round-robin continuation).
        assert!(f.schedule.len() <= 4, "not shrunk: {:?}", f.schedule);
        let (_, kind) = replay_with(&RacyCounter { atomic: false }, &f.schedule, 16, counter_leaf);
        assert!(kind.is_some(), "minimized schedule does not reproduce");
    }

    #[test]
    fn atomic_counter_is_clean() {
        let ex = Explorer::default();
        let r = ex.explore_with(&RacyCounter { atomic: true }, counter_leaf);
        assert!(r.clean(), "{:?}", r.failure);
        assert!(r.schedules >= 1);
    }

    /// Two binary locks; each thread acquires both (pc 0 and 1), then
    /// releases both (pc 2). Thread 0 takes A then B; thread 1 takes B
    /// then A (or A then B when `ordered`) — the classic ABBA deadlock.
    struct TwoLocks {
        ordered: bool,
    }

    #[derive(Clone)]
    struct LockState {
        held: [Option<ThreadId>; 2],
        pc: [usize; 2],
    }

    impl TwoLocks {
        fn wants(&self, t: ThreadId, pc: usize) -> usize {
            match (t, self.ordered) {
                (0, _) | (1, true) => pc, // A then B
                (1, false) => 1 - pc,     // B then A
                _ => unreachable!(),
            }
        }
    }

    impl Model for TwoLocks {
        type State = LockState;
        fn init(&self) -> LockState {
            LockState { held: [None, None], pc: [0, 0] }
        }
        fn threads(&self) -> usize {
            2
        }
        fn done(&self, s: &LockState, t: ThreadId) -> bool {
            s.pc[t] >= 3
        }
        fn enabled(&self, s: &LockState, t: ThreadId) -> bool {
            !self.done(s, t) && (s.pc[t] == 2 || s.held[self.wants(t, s.pc[t])].is_none())
        }
        fn footprint(&self, s: &LockState, t: ThreadId) -> Footprint {
            if s.pc[t] == 2 {
                Footprint::cells(vec![0, 1])
            } else {
                Footprint::cells(vec![self.wants(t, s.pc[t]) as u64])
            }
        }
        fn step(&self, s: &mut LockState, t: ThreadId) -> Result<(), String> {
            if s.pc[t] == 2 {
                for h in s.held.iter_mut() {
                    if *h == Some(t) {
                        *h = None;
                    }
                }
            } else {
                let lock = self.wants(t, s.pc[t]);
                if s.held[lock].is_some() {
                    return Err(format!("lock {lock} granted twice"));
                }
                s.held[lock] = Some(t);
            }
            s.pc[t] += 1;
            Ok(())
        }
    }

    #[test]
    fn finds_abba_deadlock_and_shrinks_it() {
        let ex = Explorer::default();
        let r = ex.explore(&TwoLocks { ordered: false });
        let f = r.failure.expect("deadlock not found");
        assert!(matches!(f.kind, FailureKind::Deadlock(_)), "{f}");
        // Minimal prefix: thread 1 grabs B before the round-robin
        // continuation lets thread 0 run — at most one step per thread.
        assert!(f.schedule.len() <= 2, "not minimized: {:?}", f.schedule);
        let (_, kind) = replay(&TwoLocks { ordered: false }, &f.schedule, 16);
        assert!(matches!(kind, Some(FailureKind::Deadlock(_))), "{kind:?}");
    }

    #[test]
    fn ordered_locking_is_clean() {
        let r = Explorer::default().explore(&TwoLocks { ordered: true });
        assert!(r.clean(), "{:?}", r.failure);
    }

    /// N independent single-step threads touching disjoint cells.
    struct Independent {
        n: usize,
    }

    impl Model for Independent {
        type State = Vec<bool>;
        fn init(&self) -> Vec<bool> {
            vec![false; self.n]
        }
        fn threads(&self) -> usize {
            self.n
        }
        fn done(&self, s: &Vec<bool>, t: ThreadId) -> bool {
            s[t]
        }
        fn footprint(&self, _s: &Vec<bool>, t: ThreadId) -> Footprint {
            Footprint::cells(vec![t as u64])
        }
        fn step(&self, s: &mut Vec<bool>, t: ThreadId) -> Result<(), String> {
            s[t] = true;
            Ok(())
        }
    }

    #[test]
    fn sleep_sets_collapse_independent_interleavings() {
        let full = Explorer { sleep_sets: false, ..Explorer::default() };
        let pruned = Explorer::default();
        let rf = full.explore(&Independent { n: 4 });
        let rp = pruned.explore(&Independent { n: 4 });
        assert_eq!(rf.schedules, 24, "4! interleavings unpruned");
        assert_eq!(rp.schedules, 1, "fully independent -> one schedule");
        assert!(rp.pruned > 0);
        assert!(rf.clean() && rp.clean());
    }

    #[test]
    fn pruning_preserves_verdict_on_racy_model() {
        let full = Explorer { sleep_sets: false, ..Explorer::default() };
        let pruned = Explorer::default();
        let a = full.explore_with(&RacyCounter { atomic: false }, counter_leaf);
        let b = pruned.explore_with(&RacyCounter { atomic: false }, counter_leaf);
        assert_eq!(a.failure.is_some(), b.failure.is_some());
    }

    #[test]
    fn budget_truncates() {
        let ex = Explorer { max_schedules: 3, sleep_sets: false, ..Explorer::default() };
        let r = ex.explore(&Independent { n: 4 });
        assert!(r.truncated);
        assert_eq!(r.schedules, 3);
        assert!(r.clean());
    }

    #[test]
    fn depth_bound_reported() {
        /// A thread that never finishes.
        struct Spin;
        impl Model for Spin {
            type State = u64;
            fn init(&self) -> u64 {
                0
            }
            fn threads(&self) -> usize {
                1
            }
            fn done(&self, _s: &u64, _t: ThreadId) -> bool {
                false
            }
            fn footprint(&self, _s: &u64, _t: ThreadId) -> Footprint {
                Footprint::Global
            }
            fn step(&self, s: &mut u64, _t: ThreadId) -> Result<(), String> {
                *s += 1;
                Ok(())
            }
        }
        let ex = Explorer { max_depth: 10, shrink: false, ..Explorer::default() };
        let r = ex.explore(&Spin);
        assert!(matches!(r.failure, Some(Failure { kind: FailureKind::Depth, .. })));
    }
}
