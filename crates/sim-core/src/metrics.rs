//! Metrics: counters, gauges, sim-time series and fixed-bucket histograms.
//!
//! A [`MetricsRegistry`] is a deterministic bag of named metrics. It can
//! be populated by hand, but the main entry point is
//! [`MetricsRegistry::from_events`], which derives the standard metric
//! set from a recorded [`TimedEvent`](crate::trace::TimedEvent) stream:
//!
//! * `"{resource}.queue_depth"` — step series of queued + in-service
//!   demands per active resource;
//! * `"{resource}.utilization"` — busy fraction per sim-time tick window
//!   for every registered resource (disks, NIC ports, buses, CPUs);
//! * `"osm.flush_backlog_bytes"` — bytes of detached (background) disk
//!   writes accepted but not yet on stable storage: the OSM
//!   mirror-flush backlog over time;
//! * `"job_latency_ns"` — a fixed-bucket histogram of foreground job
//!   latencies (p50/p95/p99 come from here).
//!
//! All timestamps are simulated time; nothing here consults a wall
//! clock, so the same run always yields byte-identical metrics.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};
use crate::trace::{TimedEvent, TraceEvent};

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by a sorted list of inclusive upper bounds plus an
/// implicit overflow bucket; a sample `v` lands in the first bucket whose
/// bound is `>= v`. Percentile queries report the upper bound of the
/// bucket containing the requested rank (the overflow bucket reports the
/// exact maximum seen), so percentiles on bound-aligned distributions are
/// exact.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds (must be
    /// non-empty and strictly increasing).
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Exponential bounds: `first, first*factor, …` (`n` buckets).
    pub fn exponential(first: u64, factor: u64, n: usize) -> Histogram {
        assert!(first > 0 && factor > 1 && n > 0, "degenerate exponential bounds");
        let mut bounds = Vec::with_capacity(n);
        let mut b = first;
        for _ in 0..n {
            bounds.push(b);
            b = b.saturating_mul(factor);
        }
        bounds.dedup();
        Histogram::with_bounds(&bounds)
    }

    /// The stock latency histogram: 1 µs doubling through ~1100 s.
    pub fn latency_default() -> Histogram {
        Histogram::exponential(1_000, 2, 40)
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Mean of all samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// The `p`-th percentile (`0 < p <= 100`), or `None` if the histogram
    /// is empty. Reports the upper bound of the bucket holding the
    /// requested rank; the overflow bucket reports the exact maximum.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() { self.bounds[i] } else { self.max });
            }
        }
        Some(self.max)
    }

    /// Samples that landed past the largest configured bound — the
    /// overflow bucket, where percentiles fall back to the exact maximum.
    /// A nonzero count means the bounds under-cover the distribution.
    pub fn overflow_count(&self) -> u64 {
        self.counts[self.bounds.len()]
    }

    /// `(upper_bound, count)` pairs for every non-overflow bucket plus a
    /// final `(max_seen, count)` overflow entry.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> =
            self.bounds.iter().copied().zip(self.counts.iter().copied()).collect();
        out.push((self.max, self.counts[self.bounds.len()]));
        out
    }
}

/// A time series of `(sim-time ns, value)` samples, in time order.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Append a sample at simulated time `t`.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t.as_nanos(), v));
    }

    /// All samples, in insertion (= time) order.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// The largest value seen, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |m, v| Some(m.map_or(v, |x: f64| x.max(v))))
    }

    /// The value in effect at time `t` under step semantics (the last
    /// sample at or before `t`), if any.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let ns = t.as_nanos();
        let idx = self.points.partition_point(|&(pt, _)| pt <= ns);
        idx.checked_sub(1).map(|i| self.points[i].1)
    }
}

/// A deterministic bag of named counters, gauge series and histograms.
/// Names iterate in lexicographic order, so exports are reproducible.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, TimeSeries>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `by` to the named counter (creating it at zero).
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named counter to an absolute value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// The named counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Mutable access to the named gauge series (creating it empty).
    pub fn gauge_mut(&mut self, name: &str) -> &mut TimeSeries {
        self.gauges.entry(name.to_string()).or_default()
    }

    /// The named gauge series, if present.
    pub fn gauge(&self, name: &str) -> Option<&TimeSeries> {
        self.gauges.get(name)
    }

    /// Mutable access to the named histogram, creating it with the given
    /// bounds if absent.
    pub fn histogram_mut(&mut self, name: &str, default: fn() -> Histogram) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_insert_with(default)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauge series in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Derive the standard metric set from a recorded event stream.
    ///
    /// `res_names[i]` names resource index `i` (as returned by
    /// [`Engine::resources`](crate::Engine::resources)); `tick` is the
    /// window width for utilization sampling (widened automatically if
    /// the run would need more than [`MAX_UTIL_WINDOWS`] windows).
    pub fn from_events(
        events: &[TimedEvent],
        res_names: &[String],
        tick: SimDuration,
    ) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("events", events.len() as u64);

        // Pass 1: bookkeeping shared by every derived metric.
        let mut end_ns = 0u64;
        let mut job_start: BTreeMap<u32, u64> = BTreeMap::new();
        let mut depth: Vec<i64> = vec![0; res_names.len()];
        // Per-resource service intervals for utilization windows.
        let mut service: Vec<Vec<(u64, u64)>> = vec![Vec::new(); res_names.len()];
        let mut backlog: i128 = 0;
        let mut backlog_series = TimeSeries::new();
        let mut jobs_spawned = 0u64;
        let mut jobs_finished = 0u64;
        let mut flush_bytes = 0u64;

        for te in events {
            let t = te.at;
            end_ns = end_ns.max(t.as_nanos());
            match &te.event {
                TraceEvent::JobSpawned { job, .. } => {
                    jobs_spawned += 1;
                    job_start.insert(*job, t.as_nanos());
                }
                TraceEvent::JobFinished { job } => {
                    jobs_finished += 1;
                    if let Some(start) = job_start.get(job) {
                        let lat = t.as_nanos().saturating_sub(*start);
                        reg.histogram_mut("job_latency_ns", Histogram::latency_default).record(lat);
                    }
                }
                TraceEvent::Enqueued { res, kind, bytes, detached, .. } => {
                    let r = *res as usize;
                    if r < depth.len() {
                        depth[r] += 1;
                        reg.gauge_mut(&format!("{}.queue_depth", res_names[r]))
                            .push(t, depth[r] as f64);
                    }
                    if *detached && *kind == crate::trace::DemandKind::DiskWrite {
                        backlog += i128::from(*bytes);
                        backlog_series.push(t, backlog as f64);
                        flush_bytes += *bytes;
                    }
                }
                TraceEvent::ServiceStarted { res, done_at_ns, .. } => {
                    let r = *res as usize;
                    if r < service.len() {
                        service[r].push((t.as_nanos(), *done_at_ns));
                        end_ns = end_ns.max(*done_at_ns);
                    }
                }
                TraceEvent::ServiceFinished { res, kind, bytes, detached, .. } => {
                    let r = *res as usize;
                    if r < depth.len() {
                        depth[r] -= 1;
                        reg.gauge_mut(&format!("{}.queue_depth", res_names[r]))
                            .push(t, depth[r] as f64);
                    }
                    if *detached && *kind == crate::trace::DemandKind::DiskWrite {
                        backlog -= i128::from(*bytes);
                        backlog_series.push(t, backlog as f64);
                    }
                }
                _ => {}
            }
        }
        reg.set_counter("jobs.spawned", jobs_spawned);
        reg.set_counter("jobs.finished", jobs_finished);
        reg.set_counter("osm.flush_bytes", flush_bytes);
        if !backlog_series.points().is_empty() {
            *reg.gauge_mut("osm.flush_backlog_bytes") = backlog_series;
        }

        // Pass 2: utilization windows per resource on the sim-time tick.
        if end_ns > 0 {
            let mut tick_ns = tick.as_nanos().max(1);
            let max_windows = MAX_UTIL_WINDOWS as u64;
            if end_ns.div_ceil(tick_ns) > max_windows {
                tick_ns = end_ns.div_ceil(max_windows);
            }
            let windows = end_ns.div_ceil(tick_ns) as usize;
            for (r, name) in res_names.iter().enumerate() {
                let mut busy = vec![0u64; windows];
                for &(s, e) in &service[r] {
                    let mut w = (s / tick_ns) as usize;
                    let mut cur = s;
                    while cur < e && w < windows {
                        let w_end = ((w as u64 + 1) * tick_ns).min(end_ns);
                        busy[w] += e.min(w_end) - cur;
                        cur = w_end;
                        w += 1;
                    }
                }
                let series = reg.gauge_mut(&format!("{name}.utilization"));
                for (w, b) in busy.iter().enumerate() {
                    let w_start = w as u64 * tick_ns;
                    let w_end = (w_start + tick_ns).min(end_ns);
                    let span = (w_end - w_start).max(1);
                    series.push(SimTime(w_end), *b as f64 / span as f64);
                }
            }
        }
        reg
    }
}

/// Cap on utilization windows per resource; `from_events` widens the
/// tick rather than exceed it.
pub const MAX_UTIL_WINDOWS: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::DemandKind;

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::latency_default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(99.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = Histogram::with_bounds(&[10, 100, 1000]);
        h.record(70);
        for p in [0.1, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(100), "p{p}");
        }
        assert_eq!((h.min(), h.max()), (Some(70), Some(70)));
        assert_eq!(h.mean(), Some(70.0));
    }

    #[test]
    fn bucket_boundary_samples_land_in_their_bucket() {
        let mut h = Histogram::with_bounds(&[10, 20, 30]);
        // A sample exactly on a bound belongs to that bucket (inclusive
        // upper bounds), one past it to the next.
        h.record(10);
        h.record(11);
        assert_eq!(h.buckets()[0], (10, 1));
        assert_eq!(h.buckets()[1], (20, 1));
    }

    #[test]
    fn exact_percentiles_on_known_distribution() {
        // 100 samples, one per bound 1..=100: pN is exactly N.
        let bounds: Vec<u64> = (1..=100).collect();
        let mut h = Histogram::with_bounds(&bounds);
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Some(50));
        assert_eq!(h.percentile(99.0), Some(99));
        assert_eq!(h.percentile(100.0), Some(100));
        assert_eq!(h.percentile(1.0), Some(1));
    }

    #[test]
    fn overflow_bucket_reports_exact_max() {
        let mut h = Histogram::with_bounds(&[10]);
        h.record(5);
        h.record(12345);
        assert_eq!(h.percentile(100.0), Some(12345));
        assert_eq!(h.buckets().last(), Some(&(12345, 1)));
    }

    #[test]
    fn time_series_step_semantics() {
        let mut s = TimeSeries::new();
        assert_eq!(s.value_at(SimTime(5)), None);
        s.push(SimTime(10), 1.0);
        s.push(SimTime(20), 3.0);
        assert_eq!(s.value_at(SimTime(5)), None);
        assert_eq!(s.value_at(SimTime(10)), Some(1.0));
        assert_eq!(s.value_at(SimTime(15)), Some(1.0));
        assert_eq!(s.value_at(SimTime(25)), Some(3.0));
        assert_eq!(s.max_value(), Some(3.0));
    }

    fn ev(at_ns: u64, event: TraceEvent) -> TimedEvent {
        TimedEvent { at: SimTime(at_ns), event }
    }

    #[test]
    fn from_events_builds_backlog_and_latency() {
        let names = vec!["disk0".to_string()];
        let events = vec![
            ev(0, TraceEvent::JobSpawned { job: 0, label: "w".into() }),
            ev(
                0,
                TraceEvent::Enqueued {
                    res: 0,
                    task: 0,
                    kind: DemandKind::DiskWrite,
                    bytes: 4096,
                    depth: 1,
                    detached: true,
                },
            ),
            ev(
                0,
                TraceEvent::ServiceStarted {
                    res: 0,
                    task: 0,
                    kind: DemandKind::DiskWrite,
                    bytes: 4096,
                    waited_ns: 0,
                    done_at_ns: 1_000_000,
                    detached: true,
                },
            ),
            ev(500_000, TraceEvent::JobFinished { job: 0 }),
            ev(
                1_000_000,
                TraceEvent::ServiceFinished {
                    res: 0,
                    task: 0,
                    kind: DemandKind::DiskWrite,
                    bytes: 4096,
                    detached: true,
                },
            ),
        ];
        let reg = MetricsRegistry::from_events(&events, &names, SimDuration::from_millis(1));
        let backlog = reg.gauge("osm.flush_backlog_bytes").expect("backlog series");
        assert_eq!(backlog.max_value(), Some(4096.0));
        assert_eq!(backlog.last(), Some(0.0));
        let lat = reg.histogram("job_latency_ns").expect("latency histogram");
        assert_eq!(lat.count(), 1);
        // Disk busy the whole 1ms run -> utilization 1.0.
        let util = reg.gauge("disk0.utilization").expect("utilization series");
        assert!(util.points().iter().all(|&(_, v)| (0.0..=1.0).contains(&v)));
        assert_eq!(util.last(), Some(1.0));
        assert_eq!(reg.counter("osm.flush_bytes"), Some(4096));
    }
}
