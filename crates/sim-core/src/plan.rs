//! Plans: explicit DAGs of simulated activity.
//!
//! Instead of coroutines, a simulated operation is described up front as a
//! [`Plan`] tree which the engine interprets. This keeps the engine
//! deterministic and lets higher layers (the RAID engines) express structure
//! directly: a full-stripe write is `par(per-disk chains)`, RAID-x's deferred
//! image flush is `background(...)`, and an MPI-style barrier is
//! `barrier(id)`.

use crate::demand::Demand;
use crate::resource::ResourceId;
use crate::time::SimDuration;

/// Identifier for a named cross-job barrier (see [`Engine::register_barrier`](crate::Engine::register_barrier)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierId(pub u32);

/// A tree of simulated activity.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Completes immediately.
    Noop,
    /// Pure passage of simulated time, consuming no resource.
    Delay(SimDuration),
    /// Queue `demand` at `res` and hold it for the model-computed service
    /// time.
    Use {
        /// Target resource.
        res: ResourceId,
        /// Work requested from it.
        demand: Demand,
    },
    /// Children run one after another.
    Seq(Vec<Plan>),
    /// Children run concurrently; the node completes when all do.
    Par(Vec<Plan>),
    /// Child runs detached: the node completes immediately while the child
    /// continues concurrently (RAID-x background image flushes, write-behind
    /// caches). Detached work still occupies resources and is drained before
    /// [`Engine::run`](crate::Engine::run) returns.
    Background(Box<Plan>),
    /// Block until every registered participant of the barrier arrives; the
    /// barrier then resets (cyclic, like `MPI_Barrier`).
    Barrier(BarrierId),
}

impl Plan {
    /// Total bytes demanded from disks by this plan (foreground and
    /// background), useful for sanity-checking workload construction.
    pub fn disk_bytes(&self) -> u64 {
        match self {
            Plan::Use { demand, .. } if (demand.is_disk_read() || demand.is_disk_write()) => {
                demand.bytes()
            }
            Plan::Seq(v) | Plan::Par(v) => v.iter().map(Plan::disk_bytes).sum(),
            Plan::Background(p) => p.disk_bytes(),
            _ => 0,
        }
    }

    /// Number of `Use` leaves in the plan.
    pub fn leaf_count(&self) -> usize {
        match self {
            Plan::Use { .. } => 1,
            Plan::Seq(v) | Plan::Par(v) => v.iter().map(Plan::leaf_count).sum(),
            Plan::Background(p) => p.leaf_count(),
            _ => 0,
        }
    }

    /// Flatten nested empty/singleton combinators (cheap cosmetic
    /// normalization; the engine does not require it).
    pub fn simplify(self) -> Plan {
        match self {
            Plan::Seq(v) => {
                let mut out: Vec<Plan> = Vec::with_capacity(v.len());
                for p in v {
                    match p.simplify() {
                        Plan::Noop => {}
                        Plan::Seq(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => Plan::Noop,
                    1 => out.pop().expect("len checked"), // lint-ok(no-unwrap): arm guarded by the len()==1 match above
                    _ => Plan::Seq(out),
                }
            }
            Plan::Par(v) => {
                let mut out: Vec<Plan> = Vec::with_capacity(v.len());
                for p in v {
                    match p.simplify() {
                        Plan::Noop => {}
                        Plan::Par(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => Plan::Noop,
                    1 => out.pop().expect("len checked"), // lint-ok(no-unwrap): arm guarded by the len()==1 match above
                    _ => Plan::Par(out),
                }
            }
            Plan::Background(p) => match p.simplify() {
                Plan::Noop => Plan::Noop,
                other => Plan::Background(Box::new(other)),
            },
            other => other,
        }
    }
}

/// Sequential composition.
pub fn seq(children: Vec<Plan>) -> Plan {
    Plan::Seq(children)
}

/// Parallel composition (fork/join).
pub fn par(children: Vec<Plan>) -> Plan {
    Plan::Par(children)
}

/// A single resource usage.
pub fn use_res(res: ResourceId, demand: Demand) -> Plan {
    Plan::Use { res, demand }
}

/// Pure delay.
pub fn delay(d: SimDuration) -> Plan {
    Plan::Delay(d)
}

/// Detached (fire-and-forget) child.
pub fn background(p: Plan) -> Plan {
    Plan::Background(Box::new(p))
}

/// Cyclic barrier wait.
pub fn barrier(id: BarrierId) -> Plan {
    Plan::Barrier(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_use(bytes: u64) -> Plan {
        use_res(ResourceId(0), Demand::DiskWrite { offset: 0, bytes })
    }

    #[test]
    fn disk_bytes_sums_recursively() {
        let p = seq(vec![
            disk_use(100),
            par(vec![disk_use(200), background(disk_use(300))]),
            use_res(ResourceId(1), Demand::NetXfer { bytes: 999 }),
        ]);
        assert_eq!(p.disk_bytes(), 600);
        assert_eq!(p.leaf_count(), 4);
    }

    #[test]
    fn simplify_collapses_trivia() {
        let p = seq(vec![
            Plan::Noop,
            seq(vec![disk_use(1), Plan::Noop]),
            par(vec![]),
            background(Plan::Noop),
        ])
        .simplify();
        match p {
            Plan::Use { .. } => {}
            other => panic!("expected single Use, got {other:?}"),
        }
    }

    #[test]
    fn simplify_keeps_structure() {
        let p = par(vec![disk_use(1), disk_use(2)]).simplify();
        assert!(matches!(p, Plan::Par(ref v) if v.len() == 2));
        assert_eq!(p.disk_bytes(), 3);
    }
}
