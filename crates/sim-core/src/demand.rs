//! Service demands: what a plan stage asks of a resource.
//!
//! A [`Demand`] is interpreted by the resource's
//! [`ServiceModel`](crate::ServiceModel); the same demand costs different
//! amounts on different hardware (e.g. a `DiskRead` is cheap if sequential,
//! expensive after a long seek).

use crate::time::SimDuration;

/// A unit of work requested from a simulated resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Demand {
    /// Occupy the resource for a fixed span (generic CPU work, firmware
    /// overhead, etc.).
    Busy(SimDuration),
    /// Read `bytes` from a disk starting at byte `offset` from the start of
    /// the platter address space.
    DiskRead {
        /// Byte offset on the platter.
        offset: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Write `bytes` to a disk starting at byte `offset`.
    DiskWrite {
        /// Byte offset on the platter.
        offset: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Move `bytes` across a network port (NIC tx/rx, switch port).
    NetXfer {
        /// Wire bytes (payload plus headers).
        bytes: u64,
    },
    /// Move `bytes` across an I/O bus (e.g. a shared SCSI bus).
    BusXfer {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// CPU protocol work for a message of `bytes` (syscall + TCP/IP stack +
    /// copies). Distinct from `Busy` so models can charge a per-byte cost.
    CpuMsg {
        /// Message payload size in bytes.
        bytes: u64,
    },
}

impl Demand {
    /// The payload size of this demand in bytes (zero for pure busy time).
    pub fn bytes(&self) -> u64 {
        match *self {
            Demand::Busy(_) => 0,
            Demand::DiskRead { bytes, .. }
            | Demand::DiskWrite { bytes, .. }
            | Demand::NetXfer { bytes }
            | Demand::BusXfer { bytes }
            | Demand::CpuMsg { bytes } => bytes,
        }
    }

    /// True if this demand writes to stable storage.
    pub fn is_disk_write(&self) -> bool {
        matches!(self, Demand::DiskWrite { .. })
    }

    /// True if this demand reads from stable storage.
    pub fn is_disk_read(&self) -> bool {
        matches!(self, Demand::DiskRead { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_accessor() {
        assert_eq!(Demand::Busy(SimDuration::from_micros(3)).bytes(), 0);
        assert_eq!(Demand::DiskRead { offset: 0, bytes: 512 }.bytes(), 512);
        assert_eq!(Demand::NetXfer { bytes: 1500 }.bytes(), 1500);
    }

    #[test]
    fn direction_predicates() {
        let w = Demand::DiskWrite { offset: 4096, bytes: 4096 };
        assert!(w.is_disk_write() && !w.is_disk_read());
        let r = Demand::DiskRead { offset: 0, bytes: 4096 };
        assert!(r.is_disk_read() && !r.is_disk_write());
        assert!(!Demand::NetXfer { bytes: 1 }.is_disk_read());
    }
}
