#![warn(missing_docs)]
//! # sim-core — deterministic discrete-event simulation engine
//!
//! The substrate under the RAID-x reproduction. Hardware components (disks,
//! NIC ports, buses, CPUs) are [`ServiceModel`]s registered as resources with
//! FIFO queues; simulated activities are [`Plan`] DAGs built from
//! sequential/parallel composition, resource usages, delays, detached
//! background work and MPI-style barriers. The [`Engine`] interprets plans in
//! simulated time and collects per-resource utilization and per-job latency
//! statistics.
//!
//! Design properties:
//!
//! * **Deterministic** — integer nanosecond clock, insertion-order tie
//!   breaking, explicitly seeded randomness ([`SplitMix64`]). The same
//!   configuration always yields the same result, which the experiment
//!   harness and the property tests rely on.
//! * **Stateful service models** — a model sees demands in simulated-time
//!   order, so e.g. a disk model can track head position and charge less for
//!   sequential access (the effect RAID-x's clustered image writes exploit).
//! * **Foreground/background split** — [`Plan::Background`] expresses
//!   RAID-x's deferred mirror flushes: it never gates job latency but still
//!   occupies resources, and [`RunReport`] exposes both the foreground and
//!   the drain completion times.
//!
//! ```
//! use sim_core::{Engine, FixedRate, Demand};
//! use sim_core::plan::{par, use_res};
//!
//! let mut e = Engine::new();
//! let disk = e.add_resource("disk0", Box::new(FixedRate::rate(15_000_000)));
//! e.spawn_job("write", par(vec![
//!     use_res(disk, Demand::DiskWrite { offset: 0, bytes: 64 << 10 }),
//!     use_res(disk, Demand::DiskWrite { offset: 64 << 10, bytes: 64 << 10 }),
//! ]));
//! let report = e.run().unwrap();
//! assert!(report.end.as_secs_f64() > 0.0);
//! ```

pub mod check;
pub mod demand;
pub mod engine;
pub mod explore;
pub mod export;
pub mod fault;
pub mod hb;
pub mod metrics;
pub mod plan;
pub mod prof;
pub mod resource;
pub mod rng;
pub mod time;
pub mod trace;
pub mod validate;

pub use demand::Demand;
pub use engine::{DeadlockError, Engine, JobId, JobRecord, RunReport, TaskId};
pub use explore::{Exploration, Explorer, Failure, FailureKind, Footprint, Model, ThreadId};
pub use export::{chrome_trace_json, json_is_valid, metrics_csv, metrics_json, utilization_csv};
pub use fault::{FaultPlan, FaultTrigger, ScheduledFault};
pub use hb::{HbAnalysis, HbOptions, HbViolation, ViolationKind};
pub use metrics::{Histogram, MetricsRegistry, TimeSeries};
pub use plan::{BarrierId, Plan};
pub use prof::{EngineStats, HostProfiler, Phase, PhaseStat, ProfReport};
pub use resource::{FixedRate, ResourceId, ResourceStats, ServiceModel};
pub use rng::SplitMix64;
pub use time::{SimDuration, SimTime};
pub use trace::{
    AccessKind, DemandKind, EventLog, NoopTracer, TimedEvent, TraceEvent, TracePoint, Tracer,
};
pub use validate::{PlanContext, PlanError, Strictness};
