//! The layout abstraction shared by every RAID architecture.
//!
//! A layout is pure address arithmetic: it maps logical blocks of the single
//! I/O space to physical `(disk, block)` addresses for data, mirror images
//! and parity, and answers redundancy questions (where to read from under
//! failures, which fault sets are survivable). The I/O engines in the `cdd`
//! crate turn these answers into network/disk traffic.

use crate::types::{BlockAddr, FaultSet};

/// Where a degraded-mode read gets its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadSource {
    /// The primary copy is available.
    Primary(BlockAddr),
    /// Primary failed; read the mirror image instead.
    Image(BlockAddr),
    /// Parity reconstruction: read every surviving member of the stripe
    /// (data siblings plus the parity block) and XOR them.
    Reconstruct {
        /// Surviving sibling data blocks, as `(logical, physical)` pairs.
        siblings: Vec<(u64, BlockAddr)>,
        /// The stripe's parity block.
        parity: BlockAddr,
    },
    /// No surviving copy — data loss.
    Lost,
}

/// How a layout protects writes; drives the I/O engine's write path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteScheme {
    /// No redundancy (RAID-0).
    None,
    /// Write a mirror copy in the foreground (RAID-10, chained
    /// declustering).
    ForegroundMirror,
    /// Queue the image for a deferred, clustered background flush
    /// (RAID-x orthogonal mirroring).
    BackgroundMirror,
    /// Maintain a parity block (RAID-5): read-modify-write for partial
    /// stripes, single parity computation for full-stripe writes.
    Parity,
}

/// Address arithmetic for one RAID architecture over `ndisks` disks of
/// `blocks_per_disk` blocks.
pub trait Layout: Send + Sync {
    /// Short architecture name (`"RAID-x"`, `"RAID-5"`, ...).
    fn name(&self) -> &'static str;

    /// Total disks in the array.
    fn ndisks(&self) -> usize;

    /// Logical blocks addressable by clients (capacity after redundancy).
    fn capacity_blocks(&self) -> u64;

    /// Number of data blocks per stripe group (the paper's `n`; the unit
    /// of full-stripe parallelism).
    fn stripe_width(&self) -> usize;

    /// The write-path discipline of this architecture.
    fn write_scheme(&self) -> WriteScheme;

    /// Physical location of the primary copy of logical block `lb`.
    fn locate_data(&self, lb: u64) -> BlockAddr;

    /// Locations of all mirror images of `lb` (empty for RAID-0/RAID-5).
    fn locate_images(&self, lb: u64) -> Vec<BlockAddr>;

    /// Location of the parity block protecting `lb` (RAID-5 only).
    fn locate_parity(&self, lb: u64) -> Option<BlockAddr> {
        let _ = lb;
        None
    }

    /// Stripe index and position within the stripe of `lb`.
    fn stripe_of(&self, lb: u64) -> (u64, usize) {
        let n = self.stripe_width() as u64;
        (lb / n, (lb % n) as usize)
    }

    /// The logical blocks of stripe `s`, in position order.
    fn stripe_blocks(&self, s: u64) -> Vec<u64> {
        let n = self.stripe_width() as u64;
        (s * n..(s + 1) * n).filter(|&lb| lb < self.capacity_blocks()).collect()
    }

    /// Where to read `lb` from, given the failed set. Layouts that balance
    /// reads across copies may return an image even with no failures.
    fn read_source(&self, lb: u64, failed: &FaultSet) -> ReadSource;

    /// For `BackgroundMirror` layouts: the identity of the mirroring group
    /// `lb`'s image belongs to and the group's size. The I/O engine's
    /// write-behind buffer accumulates images per group and flushes a
    /// completed group as one long sequential write — the heart of OSM.
    fn image_group_key(&self, lb: u64) -> Option<(u64, usize)> {
        let _ = lb;
        None
    }

    /// True if no data is lost under `failed`.
    fn tolerates(&self, failed: &FaultSet) -> bool;

    /// Upper bound on simultaneous failures that are *always* survivable
    /// regardless of which disks fail (Table 2's "max fault coverage" row
    /// reports the best case; this is the guaranteed one).
    fn guaranteed_fault_tolerance(&self) -> usize {
        if matches!(self.write_scheme(), WriteScheme::None) {
            0
        } else {
            1
        }
    }

    /// Best-case simultaneous failures survivable when placed favourably
    /// (e.g. one per mirror pair for RAID-10, one per row for RAID-x).
    fn max_fault_coverage(&self) -> usize;
}

/// Sanity-check helper used by unit and property tests of every layout:
/// verifies that the first `limit` logical blocks map to distinct physical
/// homes, within capacity, and that no block shares a disk with any of its
/// images.
pub fn check_layout_invariants(layout: &dyn Layout, blocks_per_disk: u64, limit: u64) {
    use std::collections::HashSet;
    let mut seen: HashSet<BlockAddr> = HashSet::new();
    let cap = layout.capacity_blocks().min(limit);
    for lb in 0..cap {
        let d = layout.locate_data(lb);
        assert!(d.disk < layout.ndisks(), "{lb}: disk {} out of range", d.disk);
        assert!(d.block < blocks_per_disk, "{lb}: block {} beyond disk", d.block);
        assert!(seen.insert(d), "{lb}: data address {d} reused");
        for img in layout.locate_images(lb) {
            assert!(img.disk < layout.ndisks());
            assert!(img.block < blocks_per_disk, "{lb}: image block beyond disk");
            assert_ne!(img.disk, d.disk, "{lb}: image shares disk {} with data", d.disk);
            assert!(seen.insert(img), "{lb}: image address {img} reused");
        }
        if let Some(p) = layout.locate_parity(lb) {
            assert!(p.disk < layout.ndisks());
            assert_ne!(p.disk, d.disk, "{lb}: parity shares disk with data");
        }
    }
}
