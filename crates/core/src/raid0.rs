//! RAID-0: pure striping, no redundancy.
//!
//! The baseline the paper calls "full-stripe bandwidth, similar to what a
//! RAID-0 can provide" — RAID-x matches its foreground write bandwidth
//! while adding mirroring.

use crate::layout::{Layout, ReadSource, WriteScheme};
use crate::types::{BlockAddr, FaultSet};

/// Block-striped array over `ndisks` disks.
#[derive(Debug, Clone)]
pub struct Raid0 {
    ndisks: usize,
    blocks_per_disk: u64,
}

impl Raid0 {
    /// A RAID-0 array. Requires at least one disk.
    pub fn new(ndisks: usize, blocks_per_disk: u64) -> Self {
        assert!(ndisks >= 1, "RAID-0 needs at least one disk");
        Raid0 { ndisks, blocks_per_disk }
    }
}

impl Layout for Raid0 {
    fn name(&self) -> &'static str {
        "RAID-0"
    }

    fn ndisks(&self) -> usize {
        self.ndisks
    }

    fn capacity_blocks(&self) -> u64 {
        self.ndisks as u64 * self.blocks_per_disk
    }

    fn stripe_width(&self) -> usize {
        self.ndisks
    }

    fn write_scheme(&self) -> WriteScheme {
        WriteScheme::None
    }

    fn locate_data(&self, lb: u64) -> BlockAddr {
        debug_assert!(lb < self.capacity_blocks());
        BlockAddr::new((lb % self.ndisks as u64) as usize, lb / self.ndisks as u64)
    }

    fn locate_images(&self, _lb: u64) -> Vec<BlockAddr> {
        Vec::new()
    }

    fn read_source(&self, lb: u64, failed: &FaultSet) -> ReadSource {
        let d = self.locate_data(lb);
        if failed.contains(d.disk) {
            ReadSource::Lost
        } else {
            ReadSource::Primary(d)
        }
    }

    fn tolerates(&self, failed: &FaultSet) -> bool {
        failed.is_empty()
    }

    fn max_fault_coverage(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::check_layout_invariants;

    #[test]
    fn round_robin_placement() {
        let l = Raid0::new(4, 100);
        assert_eq!(l.locate_data(0), BlockAddr::new(0, 0));
        assert_eq!(l.locate_data(3), BlockAddr::new(3, 0));
        assert_eq!(l.locate_data(4), BlockAddr::new(0, 1));
        assert_eq!(l.capacity_blocks(), 400);
        assert_eq!(l.stripe_of(5), (1, 1));
    }

    #[test]
    fn invariants_hold() {
        check_layout_invariants(&Raid0::new(7, 50), 50, 350);
    }

    #[test]
    fn any_failure_loses_data() {
        let l = Raid0::new(4, 100);
        assert!(l.tolerates(&FaultSet::none()));
        assert!(!l.tolerates(&FaultSet::of(&[2])));
        assert_eq!(l.read_source(2, &FaultSet::of(&[2])), ReadSource::Lost);
        assert!(matches!(l.read_source(1, &FaultSet::of(&[2])), ReadSource::Primary(_)));
    }
}
