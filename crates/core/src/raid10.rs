//! RAID-10: striped mirroring (mirrored pairs, striped across the pairs).
//!
//! One of the paper's measured baselines. Every write hits the primary and
//! its mirror in the foreground; reads alternate between the two copies for
//! load balance.

use crate::layout::{Layout, ReadSource, WriteScheme};
use crate::types::{BlockAddr, FaultSet};

/// Mirrored-pair array: disks `2i`/`2i+1` form pair `i`; data is striped
/// across pairs.
#[derive(Debug, Clone)]
pub struct Raid10 {
    ndisks: usize,
    blocks_per_disk: u64,
}

impl Raid10 {
    /// A RAID-10 array. Requires an even number of at least two disks.
    pub fn new(ndisks: usize, blocks_per_disk: u64) -> Self {
        assert!(ndisks >= 2 && ndisks.is_multiple_of(2), "RAID-10 needs an even disk count >= 2");
        Raid10 { ndisks, blocks_per_disk }
    }

    fn pairs(&self) -> u64 {
        self.ndisks as u64 / 2
    }

    fn place(&self, lb: u64) -> (usize, usize, u64) {
        let pair = lb % self.pairs();
        let row = lb / self.pairs();
        ((2 * pair) as usize, (2 * pair + 1) as usize, row)
    }
}

impl Layout for Raid10 {
    fn name(&self) -> &'static str {
        "RAID-10"
    }

    fn ndisks(&self) -> usize {
        self.ndisks
    }

    fn capacity_blocks(&self) -> u64 {
        self.pairs() * self.blocks_per_disk
    }

    fn stripe_width(&self) -> usize {
        self.ndisks / 2
    }

    fn write_scheme(&self) -> WriteScheme {
        WriteScheme::ForegroundMirror
    }

    fn locate_data(&self, lb: u64) -> BlockAddr {
        debug_assert!(lb < self.capacity_blocks());
        let (primary, _, row) = self.place(lb);
        BlockAddr::new(primary, row)
    }

    fn locate_images(&self, lb: u64) -> Vec<BlockAddr> {
        let (_, mirror, row) = self.place(lb);
        vec![BlockAddr::new(mirror, row)]
    }

    fn read_source(&self, lb: u64, failed: &FaultSet) -> ReadSource {
        let (primary, mirror, row) = self.place(lb);
        let p_ok = !failed.contains(primary);
        let m_ok = !failed.contains(mirror);
        // Alternate copies by row to spread read load over both spindles.
        let prefer_primary = row % 2 == 0;
        match (p_ok, m_ok) {
            (true, true) if prefer_primary => ReadSource::Primary(BlockAddr::new(primary, row)),
            (true, true) => ReadSource::Image(BlockAddr::new(mirror, row)),
            (true, false) => ReadSource::Primary(BlockAddr::new(primary, row)),
            (false, true) => ReadSource::Image(BlockAddr::new(mirror, row)),
            (false, false) => ReadSource::Lost,
        }
    }

    fn tolerates(&self, failed: &FaultSet) -> bool {
        (0..self.pairs() as usize).all(|i| !(failed.contains(2 * i) && failed.contains(2 * i + 1)))
    }

    fn max_fault_coverage(&self) -> usize {
        self.ndisks / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::check_layout_invariants;

    #[test]
    fn mirrors_are_pairwise() {
        let l = Raid10::new(8, 100);
        for lb in 0..64 {
            let d = l.locate_data(lb);
            let m = l.locate_images(lb)[0];
            assert_eq!(m.disk, d.disk + 1);
            assert_eq!(d.disk % 2, 0);
            assert_eq!(m.block, d.block);
        }
    }

    #[test]
    fn capacity_is_half() {
        let l = Raid10::new(16, 100);
        assert_eq!(l.capacity_blocks(), 800);
        assert_eq!(l.stripe_width(), 8);
    }

    #[test]
    fn invariants_hold() {
        check_layout_invariants(&Raid10::new(6, 64), 64, 192);
    }

    #[test]
    fn reads_alternate_between_copies() {
        let l = Raid10::new(4, 100);
        let none = FaultSet::none();
        let mut primaries = 0;
        let mut images = 0;
        for lb in 0..40 {
            match l.read_source(lb, &none) {
                ReadSource::Primary(_) => primaries += 1,
                ReadSource::Image(_) => images += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(primaries, 20);
        assert_eq!(images, 20);
    }

    #[test]
    fn survives_one_failure_per_pair() {
        let l = Raid10::new(8, 100);
        // One disk from each pair: fine.
        assert!(l.tolerates(&FaultSet::of(&[0, 3, 4, 7])));
        // Both disks of pair 1: data loss.
        assert!(!l.tolerates(&FaultSet::of(&[2, 3])));
        assert_eq!(l.max_fault_coverage(), 4);
    }

    #[test]
    fn degraded_reads_use_surviving_copy() {
        let l = Raid10::new(4, 100);
        // lb 0 lives on pair 0 (disks 0,1).
        assert!(matches!(l.read_source(0, &FaultSet::of(&[0])), ReadSource::Image(_)));
        assert!(matches!(l.read_source(0, &FaultSet::of(&[1])), ReadSource::Primary(_)));
        assert_eq!(l.read_source(0, &FaultSet::of(&[0, 1])), ReadSource::Lost);
    }
}
