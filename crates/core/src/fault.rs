//! Failure analysis and rebuild planning.
//!
//! Pure planning: given a layout, a fault set and the high-water mark of
//! written logical blocks, compute what must be read and written to restore
//! full redundancy onto replacement disks. The `cdd` crate executes these
//! plans against the data plane and the timing model.

use crate::layout::{Layout, ReadSource};
use crate::types::{BlockAddr, FaultSet};

/// One step of a rebuild: reconstruct the contents of `target` (a block on
/// a replaced disk) from `source`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebuildStep {
    /// The physical block being restored.
    pub target: BlockAddr,
    /// Where its bytes come from.
    pub source: RebuildSource,
}

/// Where a rebuild step gets its data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildSource {
    /// Copy a surviving replica (the logical block to re-read via the
    /// layout's degraded path).
    Copy(u64),
    /// XOR of the surviving members of a RAID-5 stripe: `(logical,
    /// physical)` sibling data blocks plus the parity block if the lost
    /// block was data, or just the siblings if the lost block was parity.
    Xor {
        /// Surviving `(logical, physical)` data members of the stripe.
        siblings: Vec<(u64, BlockAddr)>,
        /// Parity block to fold in (None when rebuilding the parity itself).
        parity: Option<BlockAddr>,
    },
}

/// Plan the restoration of every block that lived on `disk` (now replaced
/// with a blank spare), considering only logical blocks below `used`.
///
/// Covers both roles a disk plays: primary data blocks and mirror images /
/// parity blocks hosted for other disks' data.
///
/// Returns `Err(lost)` with the lost logical blocks if some data is
/// unrecoverable under the remaining fault set.
pub fn plan_rebuild(
    layout: &dyn Layout,
    disk: usize,
    remaining_faults: &FaultSet,
    used: u64,
) -> Result<Vec<RebuildStep>, Vec<u64>> {
    let mut steps = Vec::new();
    let mut lost = Vec::new();
    let used = used.min(layout.capacity_blocks());
    for lb in 0..used {
        let data = layout.locate_data(lb);
        // Restore the primary copy if it lived on the replaced disk.
        if data.disk == disk {
            match layout.read_source(lb, &with(remaining_faults, disk)) {
                ReadSource::Primary(_) => unreachable!("primary is on the dead disk"),
                ReadSource::Image(_) => {
                    steps.push(RebuildStep { target: data, source: RebuildSource::Copy(lb) })
                }
                ReadSource::Reconstruct { siblings, parity } => steps.push(RebuildStep {
                    target: data,
                    source: RebuildSource::Xor { siblings, parity: Some(parity) },
                }),
                ReadSource::Lost => lost.push(lb),
            }
        }
        // Restore any image of this block hosted on the replaced disk.
        for img in layout.locate_images(lb) {
            if img.disk == disk {
                if remaining_faults.contains(data.disk) {
                    lost.push(lb);
                } else {
                    steps.push(RebuildStep { target: img, source: RebuildSource::Copy(lb) });
                }
            }
        }
        // Restore a parity block hosted on the replaced disk (once per
        // stripe: only when `lb` is the stripe's first member).
        if let Some(p) = layout.locate_parity(lb) {
            let (s, pos) = layout.stripe_of(lb);
            if p.disk == disk && pos == 0 {
                let mut siblings = Vec::new();
                let mut ok = true;
                for member in layout.stripe_blocks(s) {
                    if member >= used {
                        // Unwritten members read as zero; they still XOR in.
                    }
                    let a = layout.locate_data(member);
                    if remaining_faults.contains(a.disk) {
                        ok = false;
                        break;
                    }
                    siblings.push((member, a));
                }
                if ok {
                    steps.push(RebuildStep {
                        target: p,
                        source: RebuildSource::Xor { siblings, parity: None },
                    });
                } else {
                    lost.push(lb);
                }
            }
        }
    }
    if lost.is_empty() {
        Ok(steps)
    } else {
        lost.sort_unstable();
        lost.dedup();
        Err(lost)
    }
}

fn with(f: &FaultSet, extra: usize) -> FaultSet {
    let mut g = f.clone();
    g.insert(extra);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raid10::Raid10;
    use crate::raid5::Raid5;
    use crate::raidx::RaidX;

    #[test]
    fn raidx_rebuild_covers_data_and_images() {
        let l = RaidX::new(4, 1, 240);
        let used = 48;
        let steps = plan_rebuild(&l, 0, &FaultSet::none(), used).unwrap();
        // Disk 0 held primary data for lbs with data disk 0 and images of
        // some groups; every such block must be restored.
        let mut targets: Vec<BlockAddr> = steps.iter().map(|s| s.target).collect();
        targets.sort();
        targets.dedup();
        assert_eq!(targets.len(), steps.len(), "duplicate targets");
        let expected: usize = (0..used).filter(|&lb| l.locate_data(lb).disk == 0).count()
            + (0..used).filter(|&lb| l.image_addr(lb).disk == 0).count();
        assert_eq!(steps.len(), expected);
        for s in &steps {
            assert_eq!(s.target.disk, 0);
            assert!(matches!(s.source, RebuildSource::Copy(_)));
        }
    }

    #[test]
    fn raid5_rebuild_uses_xor() {
        let l = Raid5::new(4, 100);
        let steps = plan_rebuild(&l, 1, &FaultSet::none(), 30).unwrap();
        assert!(!steps.is_empty());
        assert!(steps.iter().all(|s| matches!(s.source, RebuildSource::Xor { .. })));
        // Data blocks restore with parity in the XOR set; parity blocks
        // without.
        assert!(steps
            .iter()
            .any(|s| matches!(&s.source, RebuildSource::Xor { parity: Some(_), .. })));
        assert!(steps.iter().any(|s| matches!(&s.source, RebuildSource::Xor { parity: None, .. })));
    }

    #[test]
    fn raid10_rebuild_copies_mirror() {
        let l = Raid10::new(4, 100);
        let steps = plan_rebuild(&l, 0, &FaultSet::none(), 20).unwrap();
        assert!(steps.iter().all(|s| matches!(s.source, RebuildSource::Copy(_))));
    }

    #[test]
    fn unrecoverable_when_partner_also_dead() {
        let l = RaidX::new(4, 1, 240);
        // Disk 0's data has images on various disks; failing all other
        // disks in the row guarantees loss.
        let res = plan_rebuild(&l, 0, &FaultSet::of(&[1, 2, 3]), 48);
        let lost = res.unwrap_err();
        assert!(!lost.is_empty());
    }

    #[test]
    fn rebuild_respects_high_water_mark() {
        let l = RaidX::new(4, 1, 240);
        let few = plan_rebuild(&l, 0, &FaultSet::none(), 8).unwrap();
        let many = plan_rebuild(&l, 0, &FaultSet::none(), 80).unwrap();
        assert!(many.len() > few.len());
    }
}
