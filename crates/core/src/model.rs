//! Analytic peak-performance model — the paper's Table 2.
//!
//! Expected performance of the four architectures over `n` disks with
//! per-disk bandwidth `B`, average block-read time `R` and block-write time
//! `W`, for files of `m` blocks. The supplied OCR of the paper garbles
//! several cells; the formulas below are re-derived from the architecture
//! definitions and match every legible cell and every claim in the prose
//! (e.g. "the improvement factor approaches two" for RAID-x vs. chained
//! declustering on large writes, and RAID-x matching RAID-0's full-stripe
//! bandwidth).
//!
//! Conventions: bandwidths are *foreground* (what a client observes —
//! RAID-x's deferred image traffic is excluded there, exactly as the paper
//! counts it) and the `sustained_*` variants include it.

/// Architectures covered by Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Rotating parity.
    Raid5,
    /// Chained declustering.
    Chained,
    /// Striped mirroring.
    Raid10,
    /// Orthogonal striping and mirroring.
    RaidX,
}

impl Arch {
    /// All four, in the paper's column order.
    pub const ALL: [Arch; 4] = [Arch::Raid5, Arch::Chained, Arch::Raid10, Arch::RaidX];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Arch::Raid5 => "RAID-5",
            Arch::Chained => "Chained declustering",
            Arch::Raid10 => "RAID-10",
            Arch::RaidX => "RAID-x",
        }
    }
}

/// Inputs of the model: array size and per-disk block costs.
#[derive(Debug, Clone, Copy)]
pub struct PeakModel {
    /// Number of disks.
    pub n: u64,
    /// Maximum bandwidth per disk (any unit; results share it).
    pub disk_bw: f64,
    /// Average block read time (seconds).
    pub read_time: f64,
    /// Average block write time (seconds).
    pub write_time: f64,
}

impl PeakModel {
    /// Model for `n` disks with unit bandwidth and unit block times
    /// (useful for ratio-only comparisons).
    pub fn unit(n: u64) -> Self {
        PeakModel { n, disk_bw: 1.0, read_time: 1.0, write_time: 1.0 }
    }

    /// Maximum aggregate read bandwidth (large reads).
    ///
    /// RAID-5 delivers `(n-1)B` of *data* (one disk's worth of each stripe
    /// is parity); the mirrored schemes read from all `n` spindles.
    pub fn max_read_bw(&self, a: Arch) -> f64 {
        let n = self.n as f64;
        match a {
            Arch::Raid5 => (n - 1.0) * self.disk_bw,
            Arch::Chained | Arch::Raid10 | Arch::RaidX => n * self.disk_bw,
        }
    }

    /// Maximum aggregate large-write (full-stripe) bandwidth, foreground.
    ///
    /// RAID-5 writes `n` disks to store `n-1` data blocks; the foreground
    /// mirrors pay both copies; RAID-x's data goes at full stripe speed and
    /// its clustered images cost one long write of `n-1` blocks per group,
    /// i.e. a `1/(n-1)` surcharge: `nB · (n-1)/n = (n-1)B`.
    pub fn max_large_write_bw(&self, a: Arch) -> f64 {
        let n = self.n as f64;
        match a {
            Arch::Raid5 => (n - 1.0) * self.disk_bw,
            Arch::Chained | Arch::Raid10 => n * self.disk_bw / 2.0,
            Arch::RaidX => (n - 1.0) * self.disk_bw,
        }
    }

    /// Maximum aggregate small-write bandwidth, foreground.
    ///
    /// RAID-5 pays four accesses per block (read old data + old parity,
    /// write new data + parity): `nB/4`. Foreground mirrors pay two
    /// accesses: `nB/2`. RAID-x defers the image entirely: `nB`.
    pub fn max_small_write_bw(&self, a: Arch) -> f64 {
        let n = self.n as f64;
        match a {
            Arch::Raid5 => n * self.disk_bw / 4.0,
            Arch::Chained | Arch::Raid10 => n * self.disk_bw / 2.0,
            Arch::RaidX => n * self.disk_bw,
        }
    }

    /// Sustained small-write bandwidth, counting deferred image traffic.
    /// For RAID-x the background flush costs `1/(n-1)` of a long write per
    /// image, so sustained bandwidth is `nB(n-1)/n = (n-1)B`.
    pub fn sustained_small_write_bw(&self, a: Arch) -> f64 {
        match a {
            Arch::RaidX => (self.n as f64 - 1.0) * self.disk_bw,
            other => self.max_small_write_bw(other),
        }
    }

    /// Time for one client to read a large file of `m` blocks in parallel.
    pub fn large_read_time(&self, a: Arch, m: u64) -> f64 {
        let (n, m) = (self.n as f64, m as f64);
        match a {
            Arch::Raid5 => m * self.read_time / (n - 1.0),
            Arch::Chained | Arch::Raid10 | Arch::RaidX => m * self.read_time / n,
        }
    }

    /// Time for one small (single-block) read: one block access everywhere.
    pub fn small_read_time(&self, _a: Arch) -> f64 {
        self.read_time
    }

    /// Time for one client to write a large file of `m` blocks, foreground.
    ///
    /// RAID-x: `mW/n + mW/(n(n-1))` — the paper's cell, whose second term
    /// is the clustered image flush amortized over groups of `n-1`.
    pub fn large_write_time(&self, a: Arch, m: u64) -> f64 {
        let (n, m) = (self.n as f64, m as f64);
        match a {
            Arch::Raid5 => m * self.write_time / (n - 1.0),
            Arch::Chained | Arch::Raid10 => 2.0 * m * self.write_time / n,
            Arch::RaidX => m * self.write_time / n + m * self.write_time / (n * (n - 1.0)),
        }
    }

    /// Latency of one small write.
    ///
    /// RAID-5 serializes a read before the write (`R + W`); the mirrored
    /// schemes write both copies concurrently on different disks (`W`);
    /// RAID-x acknowledges after the data write (`W`).
    pub fn small_write_time(&self, a: Arch) -> f64 {
        match a {
            Arch::Raid5 => self.read_time + self.write_time,
            _ => self.write_time,
        }
    }

    /// Best-case fault coverage (Table 2's bottom row).
    pub fn max_fault_coverage(&self, a: Arch) -> u64 {
        match a {
            Arch::Raid5 => 1,
            Arch::Chained | Arch::Raid10 => self.n / 2,
            // For a 1-D RAID-x (k = 1) a single failure; the n×k variant
            // tolerates one per row, reported by the layout itself.
            Arch::RaidX => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> PeakModel {
        PeakModel { n: 8, disk_bw: 10.0, read_time: 0.01, write_time: 0.012 }
    }

    #[test]
    fn reads_scale_with_all_spindles() {
        let m = m();
        assert_eq!(m.max_read_bw(Arch::RaidX), 80.0);
        assert_eq!(m.max_read_bw(Arch::Raid10), 80.0);
        assert_eq!(m.max_read_bw(Arch::Raid5), 70.0);
    }

    #[test]
    fn raidx_large_write_beats_mirrors_and_matches_raid5() {
        let m = m();
        assert_eq!(m.max_large_write_bw(Arch::RaidX), 70.0);
        assert_eq!(m.max_large_write_bw(Arch::Raid5), 70.0);
        assert_eq!(m.max_large_write_bw(Arch::Raid10), 40.0);
    }

    #[test]
    fn raidx_small_write_advantage_is_about_4x_over_raid5() {
        let m = m();
        let ratio = m.max_small_write_bw(Arch::RaidX) / m.max_small_write_bw(Arch::Raid5);
        assert_eq!(ratio, 4.0);
        let vs_mirror = m.max_small_write_bw(Arch::RaidX) / m.max_small_write_bw(Arch::Raid10);
        assert_eq!(vs_mirror, 2.0);
    }

    #[test]
    fn large_write_improvement_over_chained_approaches_two() {
        // The paper: "For large array size, the improvement factor
        // approaches two."
        for &n in &[4u64, 16, 64, 256] {
            let m = PeakModel::unit(n);
            let factor =
                m.large_write_time(Arch::Chained, 1000) / m.large_write_time(Arch::RaidX, 1000);
            assert!(factor < 2.0);
            if n >= 64 {
                assert!(factor > 1.9, "n={n} factor={factor}");
            }
        }
    }

    #[test]
    fn small_write_latency_shows_rmw_penalty() {
        let m = m();
        assert!(m.small_write_time(Arch::Raid5) > m.small_write_time(Arch::RaidX));
        assert_eq!(m.small_write_time(Arch::RaidX), 0.012);
        assert_eq!(m.small_write_time(Arch::Raid5), 0.022);
    }

    #[test]
    fn sustained_raidx_small_write_still_wins() {
        let m = m();
        assert!(m.sustained_small_write_bw(Arch::RaidX) > m.max_small_write_bw(Arch::Raid10));
    }

    #[test]
    fn fault_coverage_row() {
        let m = m();
        assert_eq!(m.max_fault_coverage(Arch::Raid5), 1);
        assert_eq!(m.max_fault_coverage(Arch::Chained), 4);
        assert_eq!(m.max_fault_coverage(Arch::Raid10), 4);
        assert_eq!(m.max_fault_coverage(Arch::RaidX), 1);
    }

    #[test]
    fn arch_metadata() {
        assert_eq!(Arch::ALL.len(), 4);
        assert_eq!(Arch::RaidX.name(), "RAID-x");
    }
}
