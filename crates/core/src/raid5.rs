//! RAID-5: block striping with rotating parity.
//!
//! The paper's main whipping boy: full-stripe writes are fine, but a small
//! write must read the old data and old parity before writing both back
//! (four disk operations, two of them serialized before the writes) — the
//! classic *small-write problem* that RAID-x eliminates.

use crate::layout::{Layout, ReadSource, WriteScheme};
use crate::types::{BlockAddr, FaultSet};

/// Left-rotating parity array over `ndisks` disks.
#[derive(Debug, Clone)]
pub struct Raid5 {
    ndisks: usize,
    blocks_per_disk: u64,
}

impl Raid5 {
    /// A RAID-5 array. Requires at least three disks.
    pub fn new(ndisks: usize, blocks_per_disk: u64) -> Self {
        assert!(ndisks >= 3, "RAID-5 needs at least three disks");
        Raid5 { ndisks, blocks_per_disk }
    }

    /// Parity disk of stripe `s` (rotates right-to-left like the
    /// left-symmetric layout).
    pub fn parity_disk(&self, s: u64) -> usize {
        let n = self.ndisks as u64;
        (n - 1 - (s % n)) as usize
    }

    /// Physical address of stripe `s`'s parity block.
    pub fn parity_addr(&self, s: u64) -> BlockAddr {
        BlockAddr::new(self.parity_disk(s), s)
    }

    /// The `ndisks - 1` data blocks of stripe `s`, as logical numbers.
    pub fn stripe_members(&self, s: u64) -> Vec<u64> {
        let w = self.ndisks as u64 - 1;
        (s * w..(s + 1) * w).filter(|&lb| lb < self.capacity_blocks()).collect()
    }
}

impl Layout for Raid5 {
    fn name(&self) -> &'static str {
        "RAID-5"
    }

    fn ndisks(&self) -> usize {
        self.ndisks
    }

    fn capacity_blocks(&self) -> u64 {
        (self.ndisks as u64 - 1) * self.blocks_per_disk
    }

    fn stripe_width(&self) -> usize {
        self.ndisks - 1
    }

    fn write_scheme(&self) -> WriteScheme {
        WriteScheme::Parity
    }

    fn locate_data(&self, lb: u64) -> BlockAddr {
        debug_assert!(lb < self.capacity_blocks());
        let w = self.ndisks as u64 - 1;
        let (s, j) = (lb / w, lb % w);
        let p = self.parity_disk(s) as u64;
        let disk = ((p + 1 + j) % self.ndisks as u64) as usize;
        BlockAddr::new(disk, s)
    }

    fn locate_images(&self, _lb: u64) -> Vec<BlockAddr> {
        Vec::new()
    }

    fn locate_parity(&self, lb: u64) -> Option<BlockAddr> {
        let (s, _) = self.stripe_of(lb);
        Some(self.parity_addr(s))
    }

    fn read_source(&self, lb: u64, failed: &FaultSet) -> ReadSource {
        let d = self.locate_data(lb);
        if !failed.contains(d.disk) {
            return ReadSource::Primary(d);
        }
        let (s, _) = self.stripe_of(lb);
        let parity = self.parity_addr(s);
        if failed.contains(parity.disk) {
            return ReadSource::Lost;
        }
        let mut siblings = Vec::with_capacity(self.ndisks - 2);
        for sib in self.stripe_members(s) {
            if sib == lb {
                continue;
            }
            let addr = self.locate_data(sib);
            if failed.contains(addr.disk) {
                return ReadSource::Lost;
            }
            siblings.push((sib, addr));
        }
        ReadSource::Reconstruct { siblings, parity }
    }

    fn tolerates(&self, failed: &FaultSet) -> bool {
        failed.len() <= 1
    }

    fn max_fault_coverage(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::check_layout_invariants;

    #[test]
    fn parity_rotates_over_all_disks() {
        let l = Raid5::new(4, 100);
        let disks: Vec<usize> = (0..4).map(|s| l.parity_disk(s)).collect();
        assert_eq!(disks, vec![3, 2, 1, 0]);
        assert_eq!(l.parity_disk(4), 3);
    }

    #[test]
    fn data_never_on_parity_disk() {
        let l = Raid5::new(5, 100);
        for lb in 0..400 {
            let (s, _) = l.stripe_of(lb);
            assert_ne!(l.locate_data(lb).disk, l.parity_disk(s), "lb={lb}");
        }
    }

    #[test]
    fn stripe_occupies_one_row() {
        let l = Raid5::new(4, 100);
        // Stripe 0: data on disks 0,1,2 row 0; parity disk 3 row 0.
        let addrs: Vec<BlockAddr> = (0..3).map(|lb| l.locate_data(lb)).collect();
        assert_eq!(addrs, vec![BlockAddr::new(0, 0), BlockAddr::new(1, 0), BlockAddr::new(2, 0)]);
        // Stripe 1: parity on disk 2, data wraps 3,0,1.
        let addrs: Vec<BlockAddr> = (3..6).map(|lb| l.locate_data(lb)).collect();
        assert_eq!(addrs, vec![BlockAddr::new(3, 1), BlockAddr::new(0, 1), BlockAddr::new(1, 1)]);
    }

    #[test]
    fn invariants_hold() {
        check_layout_invariants(&Raid5::new(6, 64), 64, 320);
    }

    #[test]
    fn degraded_read_reconstructs() {
        let l = Raid5::new(4, 100);
        let d0 = l.locate_data(0);
        let failed = FaultSet::of(&[d0.disk]);
        match l.read_source(0, &failed) {
            ReadSource::Reconstruct { siblings, parity } => {
                assert_eq!(siblings.len(), 2);
                assert_eq!(parity, l.parity_addr(0));
                for (_, a) in &siblings {
                    assert!(!failed.contains(a.disk));
                }
            }
            other => panic!("expected reconstruction, got {other:?}"),
        }
        // A block whose disk survives is read normally even in degraded mode.
        assert!(matches!(l.read_source(1, &failed), ReadSource::Primary(_)));
    }

    #[test]
    fn double_failure_loses_data() {
        let l = Raid5::new(4, 100);
        assert!(l.tolerates(&FaultSet::of(&[1])));
        assert!(!l.tolerates(&FaultSet::of(&[1, 2])));
        // Some block must be unreadable under a double failure.
        let failed = FaultSet::of(&[0, 1]);
        let lost = (0..30).any(|lb| l.read_source(lb, &failed) == ReadSource::Lost);
        assert!(lost);
    }

    #[test]
    fn capacity_excludes_parity() {
        let l = Raid5::new(5, 100);
        assert_eq!(l.capacity_blocks(), 400);
        assert_eq!(l.stripe_width(), 4);
    }
}
