//! Shared address and fault-set types.

use std::fmt;

/// A physical block location inside the single I/O space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    /// Global disk number (disk `g` is attached to node `g mod nodes`).
    pub disk: usize,
    /// Block offset on that disk.
    pub block: u64,
}

impl BlockAddr {
    /// Convenience constructor.
    pub fn new(disk: usize, block: u64) -> Self {
        BlockAddr { disk, block }
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}:{}", self.disk, self.block)
    }
}

/// A set of failed disks, as a bitset (clusters here are ≤ a few hundred
/// disks, so a `Vec<u64>` bitmap is compact and branch-free to query).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    bits: Vec<u64>,
    count: usize,
}

impl FaultSet {
    /// No failures.
    pub fn none() -> Self {
        FaultSet::default()
    }

    /// A set containing the given disks.
    pub fn of(disks: &[usize]) -> Self {
        let mut s = FaultSet::none();
        for &d in disks {
            s.insert(d);
        }
        s
    }

    /// Mark `disk` failed. Returns true if it was newly inserted.
    pub fn insert(&mut self, disk: usize) -> bool {
        let (w, b) = (disk / 64, disk % 64);
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        let newly = self.bits[w] & (1 << b) == 0;
        self.bits[w] |= 1 << b;
        if newly {
            self.count += 1;
        }
        newly
    }

    /// Mark `disk` healthy again. Returns true if it was present.
    pub fn remove(&mut self, disk: usize) -> bool {
        let (w, b) = (disk / 64, disk % 64);
        if w >= self.bits.len() {
            return false;
        }
        let present = self.bits[w] & (1 << b) != 0;
        self.bits[w] &= !(1 << b);
        if present {
            self.count -= 1;
        }
        present
    }

    /// Is `disk` failed?
    #[inline]
    pub fn contains(&self, disk: usize) -> bool {
        let (w, b) = (disk / 64, disk % 64);
        self.bits.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of failed disks.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no disks are failed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate over the failed disk indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64).filter_map(move |b| (word & (1 << b) != 0).then_some(w * 64 + b))
        })
    }
}

impl FromIterator<usize> for FaultSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = FaultSet::none();
        for d in iter {
            s.insert(d);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = FaultSet::none();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(130));
        assert_eq!(s.len(), 2);
        assert!(s.contains(3) && s.contains(130));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_ascending() {
        let s = FaultSet::of(&[5, 1, 200, 64]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 64, 200]);
    }

    #[test]
    fn contains_beyond_storage_is_false() {
        let s = FaultSet::of(&[1]);
        assert!(!s.contains(1_000_000));
    }

    #[test]
    fn from_iterator() {
        let s: FaultSet = [2usize, 2, 9].into_iter().collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn addr_display() {
        assert_eq!(BlockAddr::new(3, 17).to_string(), "D3:17");
    }
}
