//! Reliability analysis: survival probabilities under multiple random
//! disk failures.
//!
//! Table 2's "max fault coverage" row reports the *best case* (how many
//! failures can be survived when they land favourably). Operators care
//! about the expected case: the probability that `f` simultaneous random
//! failures lose no data. For small arrays this is computed exactly by
//! enumeration; larger arrays fall back to deterministic Monte-Carlo
//! sampling.

use crate::layout::Layout;
use crate::types::FaultSet;

/// Probability that a uniformly random set of `f` distinct failed disks
/// is survivable, computed exactly when `C(ndisks, f)` is small enough,
/// else by `samples` Monte-Carlo draws seeded with `seed`.
pub fn survival_probability(layout: &dyn Layout, f: usize, samples: u64, seed: u64) -> f64 {
    let n = layout.ndisks();
    if f == 0 {
        return 1.0;
    }
    if f > n {
        return 0.0;
    }
    if combinations(n, f) <= 200_000 {
        exact(layout, f)
    } else {
        monte_carlo(layout, f, samples, seed)
    }
}

fn combinations(n: usize, k: usize) -> u128 {
    let k = k.min(n - k);
    let mut c: u128 = 1;
    for i in 0..k {
        c = c * (n - i) as u128 / (i + 1) as u128;
        if c > 1 << 40 {
            return u128::MAX;
        }
    }
    c
}

/// Exact: enumerate every f-subset of disks.
fn exact(layout: &dyn Layout, f: usize) -> f64 {
    let n = layout.ndisks();
    let mut picked = vec![0usize; f];
    let mut survived = 0u64;
    let mut total = 0u64;
    enumerate_subsets(n, f, 0, 0, &mut picked, &mut |subset| {
        total += 1;
        if layout.tolerates(&FaultSet::of(subset)) {
            survived += 1;
        }
    });
    survived as f64 / total as f64
}

fn enumerate_subsets(
    n: usize,
    f: usize,
    depth: usize,
    start: usize,
    picked: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if depth == f {
        visit(picked);
        return;
    }
    for d in start..=n - (f - depth) {
        picked[depth] = d;
        enumerate_subsets(n, f, depth + 1, d + 1, picked, visit);
    }
}

/// Deterministic Monte-Carlo estimate.
fn monte_carlo(layout: &dyn Layout, f: usize, samples: u64, seed: u64) -> f64 {
    let n = layout.ndisks();
    let mut rng = sim_core::SplitMix64::new(seed);
    let mut survived = 0u64;
    for _ in 0..samples {
        let mut fs = FaultSet::none();
        while fs.len() < f {
            fs.insert(rng.next_below(n as u64) as usize);
        }
        if layout.tolerates(&fs) {
            survived += 1;
        }
    }
    survived as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChainedDecluster, Raid10, Raid5, RaidX};

    #[test]
    fn single_failure_always_survivable_on_redundant_layouts() {
        let n = 16;
        assert_eq!(survival_probability(&Raid5::new(n, 100), 1, 0, 0), 1.0);
        assert_eq!(survival_probability(&Raid10::new(n, 100), 1, 0, 0), 1.0);
        assert_eq!(survival_probability(&ChainedDecluster::new(n, 100), 1, 0, 0), 1.0);
        assert_eq!(survival_probability(&RaidX::new(16, 1, 131_072), 1, 0, 0), 1.0);
    }

    #[test]
    fn raid5_double_failure_always_fatal() {
        assert_eq!(survival_probability(&Raid5::new(8, 100), 2, 0, 0), 0.0);
    }

    #[test]
    fn raid10_double_failure_matches_combinatorics() {
        // 8 disks, 4 pairs: P(two failures hit one pair) = 4 / C(8,2) = 4/28.
        let p = survival_probability(&Raid10::new(8, 100), 2, 0, 0);
        assert!((p - 24.0 / 28.0).abs() < 1e-12, "p={p}");
    }

    #[test]
    fn chained_double_failure_matches_ring_adjacency() {
        // n-disk ring: fatal pairs are the n adjacent ones out of C(n,2).
        let n = 10;
        let p = survival_probability(&ChainedDecluster::new(n, 100), 2, 0, 0);
        let expect = 1.0 - n as f64 / (n as f64 * (n as f64 - 1.0) / 2.0);
        assert!((p - expect).abs() < 1e-12, "p={p} expect={expect}");
    }

    #[test]
    fn raidx_nxk_double_failure_matches_row_combinatorics() {
        // 4x3: fatal iff both failures share a row of 4: 3*C(4,2)=18 of C(12,2)=66.
        let p = survival_probability(&RaidX::new(4, 3, 240), 2, 0, 0);
        let expect = 1.0 - 18.0 / 66.0;
        assert!((p - expect).abs() < 1e-12, "p={p} expect={expect}");
    }

    #[test]
    fn survival_decreases_with_failures() {
        let l = RaidX::new(4, 3, 240);
        let mut prev = 1.0;
        for f in 1..=4 {
            let p = survival_probability(&l, f, 0, 0);
            assert!(p <= prev + 1e-12, "f={f}: {p} > {prev}");
            prev = p;
        }
        // Four failures over three rows always share a row: fatal.
        assert_eq!(prev, 0.0);
    }

    #[test]
    fn monte_carlo_tracks_exact() {
        let l = Raid10::new(8, 100);
        let exact_p = exact(&l, 2);
        let mc = monte_carlo(&l, 2, 40_000, 7);
        assert!((exact_p - mc).abs() < 0.01, "exact {exact_p} vs mc {mc}");
    }

    #[test]
    fn edge_cases() {
        let l = Raid5::new(4, 100);
        assert_eq!(survival_probability(&l, 0, 0, 0), 1.0);
        assert_eq!(survival_probability(&l, 5, 0, 0), 0.0);
    }
}
