#![warn(missing_docs)]
//! # raidx-core — RAID-x orthogonal striping and mirroring, plus baselines
//!
//! The paper's primary contribution as pure, heavily-tested address
//! arithmetic: the [`RaidX`] OSM layout (1-D and n×k two-dimensional), the
//! measured baselines ([`Raid5`], [`Raid10`]) and the analytic comparator
//! ([`ChainedDecluster`]), all behind one [`Layout`] trait; the Table 2
//! analytic performance model ([`model::PeakModel`]); and rebuild planning
//! ([`fault::plan_rebuild`]).
//!
//! Nothing in this crate touches the simulator: layouts answer *where*
//! blocks and their redundancy live and *what* to do on failure. The `cdd`
//! crate turns those answers into cluster traffic, and the `cluster` crate's
//! data plane stores the actual bytes.
//!
//! ```
//! use raidx_core::{Layout, RaidX};
//!
//! // The 4x3 array of the paper's Figure 3.
//! let l = RaidX::new(4, 3, 131_072);
//! let addr = l.locate_data(0);
//! let image = l.image_addr(0);
//! assert_ne!(addr.disk, image.disk); // orthogonality
//! ```

pub mod chained;
pub mod fault;
pub mod layout;
pub mod model;
pub mod raid0;
pub mod raid10;
pub mod raid5;
pub mod raidx;
pub mod reliability;
pub mod types;

pub use chained::ChainedDecluster;
pub use layout::{Layout, ReadSource, WriteScheme};
pub use model::{Arch, PeakModel};
pub use raid0::Raid0;
pub use raid10::Raid10;
pub use raid5::Raid5;
pub use raidx::RaidX;
pub use reliability::survival_probability;
pub use types::{BlockAddr, FaultSet};

/// Build the layout for `arch` over `ndisks` disks of `blocks_per_disk`
/// blocks, matching how the Trojans experiments configured each
/// architecture (RAID-x uses the n×k shape implied by `nodes`).
pub fn layout_for(
    arch: Arch,
    nodes: usize,
    disks_per_node: usize,
    blocks_per_disk: u64,
) -> Box<dyn Layout> {
    let ndisks = nodes * disks_per_node;
    match arch {
        Arch::Raid5 => Box::new(Raid5::new(ndisks, blocks_per_disk)),
        Arch::Chained => Box::new(ChainedDecluster::new(ndisks, blocks_per_disk)),
        Arch::Raid10 => Box::new(Raid10::new(ndisks, blocks_per_disk)),
        Arch::RaidX => Box::new(RaidX::new(nodes, disks_per_node, blocks_per_disk)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_produces_each_arch() {
        for arch in Arch::ALL {
            let l = layout_for(arch, 4, 3, 240);
            assert_eq!(l.ndisks(), 12);
            assert!(l.capacity_blocks() > 0);
            assert!(!l.name().is_empty());
        }
    }

    #[test]
    fn factory_raidx_uses_node_shape() {
        let l = layout_for(Arch::RaidX, 4, 3, 240);
        assert_eq!(l.stripe_width(), 4);
        assert_eq!(l.max_fault_coverage(), 3);
    }
}
