//! Chained declustering (Hsiao & DeWitt): each disk carries the primary
//! copy of its own bucket and the mirror of its left neighbour's bucket.
//!
//! The paper compares RAID-x against this analytically (Table 2, Figure 1b):
//! chained declustering matches RAID-x's read bandwidth but pays both copies
//! in the foreground on writes — the factor-of-two RAID-x recovers by
//! deferring its clustered images.

use crate::layout::{Layout, ReadSource, WriteScheme};
use crate::types::{BlockAddr, FaultSet};

/// Chained-declustering array: primary of block `b` on disk `b mod N`
/// (top half of the platter); its image on disk `(b+1) mod N` (bottom
/// half), i.e. skewed by one position — Figure 1b.
#[derive(Debug, Clone)]
pub struct ChainedDecluster {
    ndisks: usize,
    blocks_per_disk: u64,
}

impl ChainedDecluster {
    /// A chained-declustering array. Requires at least two disks and an
    /// even per-disk capacity (top half data, bottom half images).
    pub fn new(ndisks: usize, blocks_per_disk: u64) -> Self {
        assert!(ndisks >= 2, "chained declustering needs at least two disks");
        assert!(blocks_per_disk >= 2, "need at least two blocks per disk");
        ChainedDecluster { ndisks, blocks_per_disk }
    }

    fn half(&self) -> u64 {
        self.blocks_per_disk / 2
    }
}

impl Layout for ChainedDecluster {
    fn name(&self) -> &'static str {
        "Chained-declustering"
    }

    fn ndisks(&self) -> usize {
        self.ndisks
    }

    fn capacity_blocks(&self) -> u64 {
        self.ndisks as u64 * self.half()
    }

    fn stripe_width(&self) -> usize {
        self.ndisks
    }

    fn write_scheme(&self) -> WriteScheme {
        WriteScheme::ForegroundMirror
    }

    fn locate_data(&self, lb: u64) -> BlockAddr {
        debug_assert!(lb < self.capacity_blocks());
        BlockAddr::new((lb % self.ndisks as u64) as usize, lb / self.ndisks as u64)
    }

    fn locate_images(&self, lb: u64) -> Vec<BlockAddr> {
        let n = self.ndisks as u64;
        let disk = ((lb % n + 1) % n) as usize;
        vec![BlockAddr::new(disk, self.half() + lb / n)]
    }

    fn read_source(&self, lb: u64, failed: &FaultSet) -> ReadSource {
        let d = self.locate_data(lb);
        let img = self.locate_images(lb)[0];
        let d_ok = !failed.contains(d.disk);
        let i_ok = !failed.contains(img.disk);
        // Balance reads over the chain: alternate by row+column parity.
        let prefer_primary = (d.block + d.disk as u64).is_multiple_of(2);
        match (d_ok, i_ok) {
            (true, true) if prefer_primary => ReadSource::Primary(d),
            (true, true) => ReadSource::Image(img),
            (true, false) => ReadSource::Primary(d),
            (false, true) => ReadSource::Image(img),
            (false, false) => ReadSource::Lost,
        }
    }

    fn tolerates(&self, failed: &FaultSet) -> bool {
        // Data is lost only when two *adjacent* disks on the ring fail.
        let n = self.ndisks;
        !(0..n).any(|i| failed.contains(i) && failed.contains((i + 1) % n))
    }

    fn max_fault_coverage(&self) -> usize {
        self.ndisks / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::check_layout_invariants;

    #[test]
    fn image_is_skewed_one_disk() {
        let l = ChainedDecluster::new(4, 12);
        for lb in 0..24u64 {
            let d = l.locate_data(lb);
            let img = l.locate_images(lb)[0];
            assert_eq!(img.disk, (d.disk + 1) % 4, "lb={lb}");
            // Data in the top half, images in the bottom half.
            assert!(d.block < 6);
            assert!(img.block >= 6);
        }
    }

    #[test]
    fn invariants_hold() {
        check_layout_invariants(&ChainedDecluster::new(5, 40), 40, 100);
    }

    #[test]
    fn adjacent_failures_lose_data_nonadjacent_dont() {
        let l = ChainedDecluster::new(6, 20);
        assert!(l.tolerates(&FaultSet::of(&[0, 2, 4])));
        assert!(!l.tolerates(&FaultSet::of(&[2, 3])));
        // Wraparound adjacency.
        assert!(!l.tolerates(&FaultSet::of(&[5, 0])));
        assert_eq!(l.max_fault_coverage(), 3);
    }

    #[test]
    fn reads_balance_across_copies() {
        let l = ChainedDecluster::new(4, 40);
        let none = FaultSet::none();
        let primaries = (0..80)
            .filter(|&lb| matches!(l.read_source(lb, &none), ReadSource::Primary(_)))
            .count();
        assert_eq!(primaries, 40);
    }

    #[test]
    fn degraded_read_falls_back() {
        let l = ChainedDecluster::new(4, 40);
        // lb 0: data disk 0, image disk 1.
        assert!(matches!(l.read_source(0, &FaultSet::of(&[0])), ReadSource::Image(_)));
        assert!(matches!(l.read_source(0, &FaultSet::of(&[1])), ReadSource::Primary(_)));
        assert_eq!(l.read_source(0, &FaultSet::of(&[0, 1])), ReadSource::Lost);
    }
}
