//! RAID-x: orthogonal striping and mirroring (OSM) — the paper's
//! contribution.
//!
//! Data blocks are striped RAID-0 style across all disks (top half of each
//! platter). The mirror images of each *mirroring group* of `n-1`
//! consecutive blocks are **clustered vertically on a single disk** (bottom
//! half), chosen so that no block's image ever shares a disk with its data,
//! and so that the images of any stripe group land on **exactly two disks**
//! (Figure 1a). Images are flushed in the background as one long sequential
//! write per group — that is what eliminates both the RAID-5 small-write
//! problem and the foreground cost of RAID-10/chained-declustering
//! mirroring.
//!
//! In the two-dimensional n×k configuration (Figure 3), `n` is the number
//! of nodes (degree of parallelism) and `k` the disks per node (depth of
//! pipelining): disk `d` of the array sits on node `d mod n`, row `d / n`.
//! Consecutive stripes rotate over the `k` rows, so successive stripe
//! groups pipeline on the per-node SCSI buses while the `n` blocks of one
//! stripe spread over all nodes.
//!
//! ## The placement rule
//!
//! Within one row of `n` disks, with row-local block sequence `b`:
//!
//! * data: disk `b mod n`, platter row `b div n` (top half);
//! * image group `g = b div (n-1)` lives on disk `n-1 - (g mod n)`,
//!   packed densely in the bottom half.
//!
//! Orthogonality proof sketch: block `b` in group `g` has offset
//! `t = b mod (n-1) ∈ [0, n-2]` and data disk `(t - g) mod n`; the group's
//! image disk is `n-1-(g mod n) ≡ -(g+1) (mod n)`. They collide only if
//! `t ≡ n-1 (mod n)`, impossible since `t ≤ n-2`. A stripe of `n`
//! consecutive blocks spans exactly two consecutive groups (because
//! `n > n-1`), hence exactly two image disks.

use crate::layout::{Layout, ReadSource, WriteScheme};
use crate::types::{BlockAddr, FaultSet};

/// The RAID-x orthogonal striping and mirroring layout over an n×k array.
#[derive(Debug, Clone)]
pub struct RaidX {
    /// Stripe width = number of nodes.
    n: usize,
    /// Pipeline depth = disks per node.
    k: usize,
    blocks_per_disk: u64,
    /// First block of the image region on every disk.
    data_half: u64,
    /// Stripes assigned to each row sub-array (bounded by both the data
    /// region and the image region).
    data_rows: u64,
}

impl RaidX {
    /// An n×k RAID-x array (`n ≥ 2` nodes, `k ≥ 1` disks per node).
    pub fn new(n: usize, k: usize, blocks_per_disk: u64) -> Self {
        assert!(n >= 2, "RAID-x needs stripe width >= 2 (mirroring requires a second disk)");
        assert!(k >= 1, "RAID-x needs at least one disk row");
        assert!(blocks_per_disk >= 4, "disks must hold at least 4 blocks");
        let data_half = blocks_per_disk / 2;
        let image_capacity = blocks_per_disk - data_half;
        // Each image group holds n-1 blocks; a disk can host this many
        // whole groups:
        let max_instances = image_capacity / (n as u64 - 1).max(1);
        // Choosing data_rows = instances*(n-1) makes the group count an
        // exact multiple of n, so every disk's image region fits exactly.
        let data_rows = data_half.min(max_instances * (n as u64 - 1));
        assert!(data_rows > 0, "disk too small for this stripe width");
        RaidX { n, k, blocks_per_disk, data_half, data_rows }
    }

    /// `(n, k)`: stripe width and pipeline depth.
    pub fn shape(&self) -> (usize, usize) {
        (self.n, self.k)
    }

    /// Raw blocks per physical disk.
    pub fn blocks_per_disk(&self) -> u64 {
        self.blocks_per_disk
    }

    /// Number of blocks in one mirroring group (`n - 1`).
    pub fn group_len(&self) -> usize {
        self.n - 1
    }

    /// First block of the image region on every disk.
    pub fn image_base(&self) -> u64 {
        self.data_half
    }

    /// Decompose a logical block: `(row, stripe-within-row, position)`.
    fn decompose(&self, lb: u64) -> (usize, u64, u64) {
        let n = self.n as u64;
        let s = lb / n;
        let j = lb % n;
        let row = (s % self.k as u64) as usize;
        let sp = s / self.k as u64;
        (row, sp, j)
    }

    /// Image location of `lb` (every block has exactly one image).
    pub fn image_addr(&self, lb: u64) -> BlockAddr {
        let (row, sp, j) = self.decompose(lb);
        let n = self.n as u64;
        let w = n - 1;
        let b = sp * n + j; // row-local block sequence
        let g = b / w;
        let t = b % w;
        let local_disk = (n - 1 - (g % n)) as usize;
        let block = self.data_half + (g / n) * w + t;
        BlockAddr::new(row * self.n + local_disk, block)
    }

    /// The mirroring-group id of `lb` within its row sub-array, plus the
    /// row; blocks with equal `(row, group)` have their images clustered
    /// contiguously on one disk (the unit of the background flush).
    pub fn image_group(&self, lb: u64) -> (usize, u64) {
        let (row, sp, j) = self.decompose(lb);
        let b = sp * self.n as u64 + j;
        (row, b / (self.n as u64 - 1))
    }

    /// Row sub-array (0..k) that owns disk `disk`.
    pub fn row_of_disk(&self, disk: usize) -> usize {
        disk / self.n
    }
}

impl Layout for RaidX {
    fn name(&self) -> &'static str {
        "RAID-x"
    }

    fn ndisks(&self) -> usize {
        self.n * self.k
    }

    fn capacity_blocks(&self) -> u64 {
        self.n as u64 * self.k as u64 * self.data_rows
    }

    fn stripe_width(&self) -> usize {
        self.n
    }

    fn write_scheme(&self) -> WriteScheme {
        WriteScheme::BackgroundMirror
    }

    fn locate_data(&self, lb: u64) -> BlockAddr {
        debug_assert!(lb < self.capacity_blocks());
        let (row, sp, j) = self.decompose(lb);
        BlockAddr::new(row * self.n + j as usize, sp)
    }

    fn locate_images(&self, lb: u64) -> Vec<BlockAddr> {
        vec![self.image_addr(lb)]
    }

    fn read_source(&self, lb: u64, failed: &FaultSet) -> ReadSource {
        let d = self.locate_data(lb);
        if !failed.contains(d.disk) {
            return ReadSource::Primary(d);
        }
        let img = self.image_addr(lb);
        if !failed.contains(img.disk) {
            ReadSource::Image(img)
        } else {
            ReadSource::Lost
        }
    }

    fn image_group_key(&self, lb: u64) -> Option<(u64, usize)> {
        let (row, g) = self.image_group(lb);
        // Encode (row, group) into one id; groups within a row are dense.
        Some((row as u64 * (u32::MAX as u64) + g, self.group_len()))
    }

    fn tolerates(&self, failed: &FaultSet) -> bool {
        // Survivable iff no row sub-array has two failures: each image
        // group on a disk covers blocks from every other disk of its row.
        let mut per_row = vec![0usize; self.k];
        for d in failed.iter() {
            if d >= self.ndisks() {
                continue;
            }
            per_row[self.row_of_disk(d)] += 1;
            if per_row[self.row_of_disk(d)] >= 2 {
                return false;
            }
        }
        true
    }

    fn max_fault_coverage(&self) -> usize {
        // One failure per stripe-group row: k total (Section 6: "for the
        // 4x3 array, up-to-3 disk failures in 3 stripe groups can be
        // tolerated").
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::check_layout_invariants;
    use std::collections::HashSet;

    /// Figure 1a, reproduced exactly: 4 disks, blocks B0..B11 on top,
    /// images clustered (M0,M1,M2)->D3, (M3,M4,M5)->D2, (M6,M7,M8)->D1,
    /// (M9,M10,M11)->D0.
    #[test]
    fn figure_1a_placement() {
        let l = RaidX::new(4, 1, 1000);
        for lb in 0..4 {
            assert_eq!(l.locate_data(lb), BlockAddr::new(lb as usize, 0));
        }
        for lb in 4..8 {
            assert_eq!(l.locate_data(lb), BlockAddr::new(lb as usize - 4, 1));
        }
        let image_disks: Vec<usize> = (0..12).map(|lb| l.image_addr(lb).disk).collect();
        assert_eq!(image_disks, vec![3, 3, 3, 2, 2, 2, 1, 1, 1, 0, 0, 0]);
        // Images are packed densely and contiguously in the bottom half.
        let base = l.image_base();
        assert_eq!(l.image_addr(0).block, base);
        assert_eq!(l.image_addr(1).block, base + 1);
        assert_eq!(l.image_addr(2).block, base + 2);
        assert_eq!(l.image_addr(3).block, base); // new group, new disk
    }

    /// The defining OSM property: a stripe group's images live on exactly
    /// two disks (and at least two for n >= 3 whenever the group boundary
    /// falls inside the stripe).
    #[test]
    fn stripe_images_on_at_most_two_disks() {
        for n in 2..=8usize {
            for k in 1..=3usize {
                let l = RaidX::new(n, k, 240);
                let stripes = l.capacity_blocks() / n as u64;
                for s in 0..stripes.min(200) {
                    let disks: HashSet<usize> =
                        l.stripe_blocks(s).iter().map(|&lb| l.image_addr(lb).disk).collect();
                    assert!(
                        !disks.is_empty() && disks.len() <= 2,
                        "n={n} k={k} s={s}: images on {disks:?}"
                    );
                }
            }
        }
    }

    /// Orthogonality: no block's image on its own data disk, for a sweep
    /// of shapes.
    #[test]
    fn orthogonal_for_all_shapes() {
        for n in 2..=9usize {
            for k in 1..=4usize {
                let l = RaidX::new(n, k, 120);
                for lb in 0..l.capacity_blocks() {
                    let d = l.locate_data(lb);
                    let m = l.image_addr(lb);
                    assert_ne!(d.disk, m.disk, "n={n} k={k} lb={lb}");
                    // Images stay within the same row sub-array.
                    assert_eq!(l.row_of_disk(d.disk), l.row_of_disk(m.disk));
                }
            }
        }
    }

    #[test]
    fn invariants_hold_and_regions_disjoint() {
        let l = RaidX::new(4, 3, 240);
        check_layout_invariants(&l, 240, l.capacity_blocks());
        for lb in 0..l.capacity_blocks() {
            assert!(l.locate_data(lb).block < l.image_base());
            let img = l.image_addr(lb);
            assert!(img.block >= l.image_base());
            assert!(img.block < 240, "image beyond platter: {img}");
        }
    }

    /// Figure 3: stripes rotate across the k rows, one disk per node.
    #[test]
    fn figure_3_two_dimensional_addressing() {
        let l = RaidX::new(4, 3, 240);
        // Stripe 0 -> row 0 (disks 0..3), stripe 1 -> row 1 (disks 4..7),
        // stripe 2 -> row 2 (disks 8..11), stripe 3 -> row 0 again.
        assert_eq!(l.locate_data(0), BlockAddr::new(0, 0));
        assert_eq!(l.locate_data(4), BlockAddr::new(4, 0));
        assert_eq!(l.locate_data(8), BlockAddr::new(8, 0));
        assert_eq!(l.locate_data(12), BlockAddr::new(0, 1)); // B12 under B0 on D0
                                                             // Each stripe touches all 4 nodes exactly once.
        for s in 0..60 {
            let nodes: HashSet<usize> =
                l.stripe_blocks(s).iter().map(|&lb| l.locate_data(lb).disk % 4).collect();
            assert_eq!(nodes.len(), 4);
        }
    }

    #[test]
    fn image_groups_cluster_consecutive_blocks() {
        let l = RaidX::new(5, 2, 200);
        for lb in 0..l.capacity_blocks() - 1 {
            let (ra, ga) = l.image_group(lb);
            let a = l.image_addr(lb);
            // All members of a group sit consecutively on one disk.
            for lb2 in lb + 1..l.capacity_blocks() {
                if l.image_group(lb2) == (ra, ga) {
                    let b = l.image_addr(lb2);
                    assert_eq!(a.disk, b.disk);
                }
            }
        }
    }

    #[test]
    fn image_addresses_unique() {
        let l = RaidX::new(4, 3, 240);
        let mut seen = HashSet::new();
        for lb in 0..l.capacity_blocks() {
            assert!(seen.insert(l.image_addr(lb)), "duplicate image for lb={lb}");
        }
    }

    #[test]
    fn fault_tolerance_one_per_row() {
        let l = RaidX::new(4, 3, 240);
        // One failure in each of the 3 rows: survivable (the paper's
        // "up-to-3 disk failures" claim for the 4x3 array).
        assert!(l.tolerates(&FaultSet::of(&[0, 5, 10])));
        assert_eq!(l.max_fault_coverage(), 3);
        // Two failures in row 0: data loss.
        assert!(!l.tolerates(&FaultSet::of(&[0, 2])));
        // Verify the loss is real: some block has data on one failed disk
        // and image on the other.
        let failed = FaultSet::of(&[0, 2]);
        let lost =
            (0..l.capacity_blocks()).any(|lb| l.read_source(lb, &failed) == ReadSource::Lost);
        assert!(lost);
    }

    #[test]
    fn degraded_reads_use_image() {
        let l = RaidX::new(4, 1, 240);
        // lb 0: data on disk 0, image on disk 3.
        assert!(matches!(l.read_source(0, &FaultSet::none()), ReadSource::Primary(_)));
        match l.read_source(0, &FaultSet::of(&[0])) {
            ReadSource::Image(a) => assert_eq!(a.disk, 3),
            other => panic!("{other:?}"),
        }
        assert_eq!(l.read_source(0, &FaultSet::of(&[0, 3])), ReadSource::Lost);
    }

    #[test]
    fn capacity_is_half_the_raw_space() {
        let l = RaidX::new(4, 3, 240);
        // 12 disks x 240 blocks raw; mirroring halves it (minus group
        // rounding).
        let raw = 12 * 240;
        let cap = l.capacity_blocks();
        assert!(cap <= raw / 2);
        assert!(cap >= raw / 2 - 12 * 4, "capacity {cap} lost too much to rounding");
    }

    #[test]
    fn n2_degenerates_to_alternating_mirror() {
        let l = RaidX::new(2, 1, 100);
        for lb in 0..l.capacity_blocks() {
            let d = l.locate_data(lb);
            let m = l.image_addr(lb);
            assert_ne!(d.disk, m.disk);
        }
    }

    #[test]
    #[should_panic(expected = "stripe width >= 2")]
    fn n1_rejected() {
        RaidX::new(1, 3, 100);
    }
}
