//! Property-based tests of the layout invariants across randomly drawn
//! array shapes, capacities and block ranges (driven by the deterministic
//! in-tree harness in `sim_core::check`).

use raidx_core::layout::{check_layout_invariants, Layout, ReadSource};
use raidx_core::{ChainedDecluster, FaultSet, Raid0, Raid10, Raid5, RaidX};
use sim_core::check::{run_cases, Gen};
use std::collections::HashSet;

/// Draw `(n nodes, k disks/node, blocks per disk)`. The disk must hold at
/// least one whole image group per half (`RaidX::new` rejects smaller
/// disks, which `raidx_rejects_undersized_disks` checks separately).
fn shape(g: &mut Gen) -> (usize, usize, u64) {
    (g.usize_in(2..13), g.usize_in(1..5), g.u64_in(64..513))
}

#[test]
#[should_panic(expected = "disk too small")]
fn raidx_rejects_undersized_disks() {
    // 16 blocks/disk cannot hold a whole 9-block image group per half.
    RaidX::new(10, 1, 16);
}

/// RAID-x orthogonality: no block's image shares its data disk, for
/// any shape, over the whole logical space (or its first 4096 blocks).
#[test]
fn raidx_orthogonality() {
    run_cases("raidx_orthogonality", 64, |g| {
        let (n, k, bpd) = shape(g);
        let l = RaidX::new(n, k, bpd);
        let cap = l.capacity_blocks().min(4096);
        for lb in 0..cap {
            let d = l.locate_data(lb);
            let m = l.image_addr(lb);
            assert_ne!(d.disk, m.disk);
            assert!(m.block >= l.image_base());
            assert!(m.block < bpd);
            assert!(d.block < l.image_base());
        }
    });
}

/// The images of every stripe group occupy exactly one or two disks.
#[test]
fn raidx_stripe_images_two_disks() {
    run_cases("raidx_stripe_images_two_disks", 64, |g| {
        let (n, k, bpd) = shape(g);
        let l = RaidX::new(n, k, bpd);
        let stripes = (l.capacity_blocks() / n as u64).min(512);
        for s in 0..stripes {
            let disks: HashSet<usize> =
                l.stripe_blocks(s).iter().map(|&lb| l.image_addr(lb).disk).collect();
            assert!((1..=2).contains(&disks.len()));
        }
    });
}

/// Physical addresses (data plus images) are globally unique.
#[test]
fn raidx_no_address_collisions() {
    run_cases("raidx_no_address_collisions", 64, |g| {
        let (n, k, bpd) = shape(g);
        let l = RaidX::new(n, k, bpd);
        let cap = l.capacity_blocks().min(2048);
        let mut seen = HashSet::new();
        for lb in 0..cap {
            assert!(seen.insert(l.locate_data(lb)));
            assert!(seen.insert(l.image_addr(lb)));
        }
    });
}

/// Every single-disk failure is survivable on RAID-x, and every block
/// remains readable through its image.
#[test]
fn raidx_single_failure_readable() {
    run_cases("raidx_single_failure_readable", 64, |g| {
        let (n, k, bpd) = shape(g);
        let fail_seed = g.usize_in(0..1000);
        let l = RaidX::new(n, k, bpd);
        let dead = fail_seed % l.ndisks();
        let failed = FaultSet::of(&[dead]);
        assert!(l.tolerates(&failed));
        for lb in 0..l.capacity_blocks().min(1024) {
            match l.read_source(lb, &failed) {
                ReadSource::Primary(a) | ReadSource::Image(a) => assert_ne!(a.disk, dead),
                other => panic!("lb={lb} gave {other:?}"),
            }
        }
    });
}

/// `tolerates` is exactly "no two failures in one row" for RAID-x.
#[test]
fn raidx_tolerates_iff_rows_distinct() {
    run_cases("raidx_tolerates_iff_rows_distinct", 64, |g| {
        let (n, k, bpd) = shape(g);
        let picks = g.vec_of(0..5, |g| g.usize_in(0..10_000));
        let l = RaidX::new(n, k, bpd);
        let failed: FaultSet = picks.iter().map(|p| p % l.ndisks()).collect();
        let mut rows = HashSet::new();
        let all_distinct = failed.iter().all(|d| rows.insert(l.row_of_disk(d)));
        assert_eq!(l.tolerates(&failed), all_distinct);
        // When tolerated, nothing reads as Lost.
        if all_distinct {
            for lb in (0..l.capacity_blocks()).step_by(97) {
                assert_ne!(l.read_source(lb, &failed), ReadSource::Lost);
            }
        }
    });
}

/// Generic invariants hold for all five layouts on random shapes.
#[test]
fn all_layouts_invariants() {
    run_cases("all_layouts_invariants", 64, |g| {
        let (n, k, bpd) = shape(g);
        let nd = n * k;
        let limit = 2048;
        check_layout_invariants(&Raid0::new(nd, bpd), bpd, limit);
        check_layout_invariants(&RaidX::new(n, k, bpd), bpd, limit);
        if nd >= 3 {
            check_layout_invariants(&Raid5::new(nd, bpd), bpd, limit);
        }
        if nd % 2 == 0 {
            check_layout_invariants(&Raid10::new(nd, bpd), bpd, limit);
        }
        check_layout_invariants(&ChainedDecluster::new(nd, bpd), bpd, limit);
    });
}

/// RAID-5 degraded reads always return a reconstruction whose members
/// avoid the failed disk and cover the whole stripe.
#[test]
fn raid5_degraded_reconstruction_complete() {
    run_cases("raid5_degraded_reconstruction_complete", 64, |g| {
        let nd = g.usize_in(3..17);
        let bpd = g.u64_in(8..257);
        let pick = g.u64_in(0..10_000);
        let l = Raid5::new(nd, bpd);
        let lb = pick % l.capacity_blocks();
        let dead = l.locate_data(lb).disk;
        let failed = FaultSet::of(&[dead]);
        match l.read_source(lb, &failed) {
            ReadSource::Reconstruct { siblings, parity } => {
                assert_eq!(siblings.len(), nd - 2);
                assert!(!failed.contains(parity.disk));
                let mut disks: HashSet<usize> = siblings.iter().map(|(_, a)| a.disk).collect();
                disks.insert(parity.disk);
                disks.insert(dead);
                // Stripe spans all disks exactly once.
                assert_eq!(disks.len(), nd);
            }
            other => panic!("expected reconstruct, got {other:?}"),
        }
    });
}

/// Chained declustering: survivable iff no two adjacent failures; and
/// under any survivable fault set every block reads from a live disk.
#[test]
fn chained_adjacency_rule() {
    run_cases("chained_adjacency_rule", 64, |g| {
        let nd = g.usize_in(2..17);
        let bpd = g.u64_in(8..129);
        let picks = g.vec_of(0..4, |g| g.usize_in(0..10_000));
        let l = ChainedDecluster::new(nd, bpd);
        let failed: FaultSet = picks.iter().map(|p| p % nd).collect();
        let adjacent = (0..nd).any(|i| failed.contains(i) && failed.contains((i + 1) % nd));
        assert_eq!(l.tolerates(&failed), !adjacent);
        if !adjacent {
            for lb in (0..l.capacity_blocks()).step_by(31) {
                match l.read_source(lb, &failed) {
                    ReadSource::Primary(a) | ReadSource::Image(a) => {
                        assert!(!failed.contains(a.disk));
                    }
                    other => panic!("{other:?}"),
                }
            }
        }
    });
}

/// Capacity accounting: RAID-x loses at most one group's worth of
/// rounding per row versus exactly half the raw space.
#[test]
fn raidx_capacity_bound() {
    run_cases("raidx_capacity_bound", 64, |g| {
        let (n, k, bpd) = shape(g);
        let l = RaidX::new(n, k, bpd);
        let raw = (n * k) as u64 * bpd;
        assert!(l.capacity_blocks() <= raw / 2);
        let lost = raw / 2 - l.capacity_blocks();
        assert!(
            lost <= (n as u64 * k as u64) * (n as u64 - 1) + raw / 2 % 2 * (n as u64 * k as u64),
            "capacity lost {lost} blocks"
        );
    });
}
