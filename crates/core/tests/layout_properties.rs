//! Property-based tests of the layout invariants across randomly drawn
//! array shapes, capacities and block ranges.

use proptest::prelude::*;
use raidx_core::layout::{check_layout_invariants, Layout, ReadSource};
use raidx_core::{ChainedDecluster, FaultSet, Raid0, Raid10, Raid5, RaidX};
use std::collections::HashSet;

fn shapes() -> impl Strategy<Value = (usize, usize, u64)> {
    // (n nodes, k disks/node, blocks per disk). The disk must hold at
    // least one whole image group per half (RaidX::new rejects smaller
    // disks, which `raidx_rejects_undersized_disks` checks separately).
    (2usize..=12, 1usize..=4, 64u64..=512)
}

#[test]
#[should_panic(expected = "disk too small")]
fn raidx_rejects_undersized_disks() {
    // 16 blocks/disk cannot hold a whole 9-block image group per half.
    RaidX::new(10, 1, 16);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RAID-x orthogonality: no block's image shares its data disk, for
    /// any shape, over the whole logical space (or its first 4096 blocks).
    #[test]
    fn raidx_orthogonality((n, k, bpd) in shapes()) {
        let l = RaidX::new(n, k, bpd);
        let cap = l.capacity_blocks().min(4096);
        for lb in 0..cap {
            let d = l.locate_data(lb);
            let m = l.image_addr(lb);
            prop_assert_ne!(d.disk, m.disk);
            prop_assert!(m.block >= l.image_base());
            prop_assert!(m.block < bpd);
            prop_assert!(d.block < l.image_base());
        }
    }

    /// The images of every stripe group occupy exactly one or two disks.
    #[test]
    fn raidx_stripe_images_two_disks((n, k, bpd) in shapes()) {
        let l = RaidX::new(n, k, bpd);
        let stripes = (l.capacity_blocks() / n as u64).min(512);
        for s in 0..stripes {
            let disks: HashSet<usize> =
                l.stripe_blocks(s).iter().map(|&lb| l.image_addr(lb).disk).collect();
            prop_assert!((1..=2).contains(&disks.len()));
        }
    }

    /// Physical addresses (data plus images) are globally unique.
    #[test]
    fn raidx_no_address_collisions((n, k, bpd) in shapes()) {
        let l = RaidX::new(n, k, bpd);
        let cap = l.capacity_blocks().min(2048);
        let mut seen = HashSet::new();
        for lb in 0..cap {
            prop_assert!(seen.insert(l.locate_data(lb)));
            prop_assert!(seen.insert(l.image_addr(lb)));
        }
    }

    /// Every single-disk failure is survivable on RAID-x, and every block
    /// remains readable through its image.
    #[test]
    fn raidx_single_failure_readable((n, k, bpd) in shapes(), fail_seed in 0usize..1000) {
        let l = RaidX::new(n, k, bpd);
        let dead = fail_seed % l.ndisks();
        let failed = FaultSet::of(&[dead]);
        prop_assert!(l.tolerates(&failed));
        for lb in 0..l.capacity_blocks().min(1024) {
            match l.read_source(lb, &failed) {
                ReadSource::Primary(a) | ReadSource::Image(a) => prop_assert_ne!(a.disk, dead),
                other => prop_assert!(false, "lb={} gave {:?}", lb, other),
            }
        }
    }

    /// `tolerates` is exactly "no two failures in one row" for RAID-x.
    #[test]
    fn raidx_tolerates_iff_rows_distinct(
        (n, k, bpd) in shapes(),
        picks in proptest::collection::vec(0usize..10_000, 0..5)
    ) {
        let l = RaidX::new(n, k, bpd);
        let failed: FaultSet = picks.iter().map(|p| p % l.ndisks()).collect();
        let mut rows = HashSet::new();
        let all_distinct = failed.iter().all(|d| rows.insert(l.row_of_disk(d)));
        prop_assert_eq!(l.tolerates(&failed), all_distinct);
        // When tolerated, nothing reads as Lost.
        if all_distinct {
            for lb in (0..l.capacity_blocks()).step_by(97) {
                prop_assert_ne!(l.read_source(lb, &failed), ReadSource::Lost);
            }
        }
    }

    /// Generic invariants hold for all five layouts on random shapes.
    #[test]
    fn all_layouts_invariants((n, k, bpd) in shapes()) {
        let nd = n * k;
        let limit = 2048;
        check_layout_invariants(&Raid0::new(nd, bpd), bpd, limit);
        check_layout_invariants(&RaidX::new(n, k, bpd), bpd, limit);
        if nd >= 3 {
            check_layout_invariants(&Raid5::new(nd, bpd), bpd, limit);
        }
        if nd % 2 == 0 {
            check_layout_invariants(&Raid10::new(nd, bpd), bpd, limit);
        }
        check_layout_invariants(&ChainedDecluster::new(nd, bpd), bpd, limit);
    }

    /// RAID-5 degraded reads always return a reconstruction whose members
    /// avoid the failed disk and cover the whole stripe.
    #[test]
    fn raid5_degraded_reconstruction_complete(nd in 3usize..=16, bpd in 8u64..=256, pick in 0u64..10_000) {
        let l = Raid5::new(nd, bpd);
        let lb = pick % l.capacity_blocks();
        let dead = l.locate_data(lb).disk;
        let failed = FaultSet::of(&[dead]);
        match l.read_source(lb, &failed) {
            ReadSource::Reconstruct { siblings, parity } => {
                prop_assert_eq!(siblings.len(), nd - 2);
                prop_assert!(!failed.contains(parity.disk));
                let mut disks: HashSet<usize> =
                    siblings.iter().map(|(_, a)| a.disk).collect();
                disks.insert(parity.disk);
                disks.insert(dead);
                // Stripe spans all disks exactly once.
                prop_assert_eq!(disks.len(), nd);
            }
            other => prop_assert!(false, "expected reconstruct, got {:?}", other),
        }
    }

    /// Chained declustering: survivable iff no two adjacent failures; and
    /// under any survivable fault set every block reads from a live disk.
    #[test]
    fn chained_adjacency_rule(nd in 2usize..=16, bpd in 8u64..=128, picks in proptest::collection::vec(0usize..10_000, 0..4)) {
        let l = ChainedDecluster::new(nd, bpd);
        let failed: FaultSet = picks.iter().map(|p| p % nd).collect();
        let adjacent = (0..nd).any(|i| failed.contains(i) && failed.contains((i + 1) % nd));
        prop_assert_eq!(l.tolerates(&failed), !adjacent);
        if !adjacent {
            for lb in (0..l.capacity_blocks()).step_by(31) {
                match l.read_source(lb, &failed) {
                    ReadSource::Primary(a) | ReadSource::Image(a) => {
                        prop_assert!(!failed.contains(a.disk));
                    }
                    other => prop_assert!(false, "{:?}", other),
                }
            }
        }
    }

    /// Capacity accounting: RAID-x loses at most one group's worth of
    /// rounding per row versus exactly half the raw space.
    #[test]
    fn raidx_capacity_bound((n, k, bpd) in shapes()) {
        let l = RaidX::new(n, k, bpd);
        let raw = (n * k) as u64 * bpd;
        prop_assert!(l.capacity_blocks() <= raw / 2);
        let lost = raw / 2 - l.capacity_blocks();
        prop_assert!(lost <= (n as u64 * k as u64) * (n as u64 - 1) + raw / 2 % 2 * (n as u64 * k as u64),
            "capacity lost {} blocks", lost);
    }
}
