//! Per-operation latency distributions (extension experiment): what one
//! 32 KB request costs under increasing load, with tail percentiles.

use cluster::ClusterConfig;
use sim_core::Engine;
use workloads::{measure_latency, LatencyResult};

use crate::harness::{build_store, md_table, par_map, SystemKind};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Architecture.
    pub kind: SystemKind,
    /// Concurrent clients.
    pub clients: usize,
    /// Writes (true) or reads (false).
    pub writes: bool,
    /// Distribution.
    pub result: LatencyResult,
}

/// Run one point.
pub fn run_point(kind: SystemKind, clients: usize, writes: bool) -> LatencyResult {
    let mut engine = Engine::new();
    let mut store = build_store(&mut engine, ClusterConfig::trojans(), kind);
    measure_latency(&mut engine, &mut store, clients, 8, writes).expect("latency run failed")
}

/// Sweep.
pub fn run_sweep() -> Vec<Point> {
    let mut cases = Vec::new();
    for kind in SystemKind::MEASURED {
        for clients in [1usize, 8, 16] {
            for writes in [false, true] {
                cases.push((kind, clients, writes));
            }
        }
    }
    par_map(cases, |(kind, clients, writes)| Point {
        kind,
        clients,
        writes,
        result: run_point(kind, clients, writes),
    })
}

/// Render.
pub fn render(points: &[Point]) -> String {
    let mut out = String::new();
    for writes in [false, true] {
        out.push_str(&format!(
            "\n### Single-block {} latency (ms): median / p99\n\n",
            if writes { "write" } else { "read" }
        ));
        let mut headers = vec!["clients".to_string()];
        headers.extend(SystemKind::MEASURED.iter().map(|k| k.name().to_string()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = [1usize, 8, 16]
            .into_iter()
            .map(|c| {
                let mut row = vec![c.to_string()];
                for kind in SystemKind::MEASURED {
                    let p = points
                        .iter()
                        .find(|p| p.kind == kind && p.clients == c && p.writes == writes)
                        .expect("missing point");
                    row.push(format!("{:.1} / {:.1}", p.result.p50 * 1e3, p.result.p99 * 1e3));
                }
                row
            })
            .collect();
        out.push_str(&md_table(&header_refs, &rows));
    }
    out.push_str(
        "\nRAID-5's write median carries the read-modify-write round trip; \
         NFS's tail grows with clients as requests queue at the server; \
         RAID-x writes stay near the raw disk service time because the \
         image is deferred.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidx_core::Arch;

    #[test]
    fn nfs_tail_grows_with_clients() {
        let one = run_point(SystemKind::Nfs, 1, false);
        let many = run_point(SystemKind::Nfs, 16, false);
        assert!(many.p99 > 2.0 * one.p99, "NFS p99 {:.4} vs {:.4}", many.p99, one.p99);
        let rx1 = run_point(SystemKind::Raid(Arch::RaidX), 1, false);
        let rx16 = run_point(SystemKind::Raid(Arch::RaidX), 16, false);
        // The distributed array's tail grows far less.
        assert!(rx16.p99 / rx1.p99 < many.p99 / one.p99);
    }
}
