//! Figure 6: Andrew benchmark elapsed times per phase, versus the number
//! of concurrent clients, on the four architectures.

use cfs::Fs;
use cluster::ClusterConfig;
use sim_core::Engine;
use workloads::{run_andrew, AndrewConfig, AndrewResult, PHASES};

use crate::harness::{build_store, md_table, par_map, SystemKind};

/// Client counts (the paper drives up to 32 clients on 16 nodes).
pub const CLIENTS: [usize; 5] = [1, 4, 8, 16, 32];

/// One measured run.
#[derive(Debug, Clone)]
pub struct Point {
    /// Architecture.
    pub kind: SystemKind,
    /// Concurrent Andrew clients.
    pub clients: usize,
    /// Per-phase elapsed times.
    pub result: AndrewResult,
}

/// Run the Andrew benchmark once.
pub fn run_point(kind: SystemKind, clients: usize) -> AndrewResult {
    let mut engine = Engine::new();
    let store = build_store(&mut engine, ClusterConfig::trojans(), kind);
    let (mut fs, _) = Fs::format(store, 8192, 0).expect("format failed");
    let cfg = AndrewConfig { clients, ..Default::default() };
    run_andrew(&mut engine, &mut fs, &cfg).expect("andrew failed")
}

/// Full sweep.
pub fn run_sweep() -> Vec<Point> {
    let mut cases = Vec::new();
    for kind in SystemKind::MEASURED {
        for clients in CLIENTS {
            cases.push((kind, clients));
        }
    }
    par_map(cases, |(kind, clients)| Point { kind, clients, result: run_point(kind, clients) })
}

/// Render one subplot per architecture (as in the paper) plus a totals
/// comparison.
pub fn render(points: &[Point]) -> String {
    let mut out = String::new();
    for kind in SystemKind::MEASURED {
        out.push_str(&format!(
            "\n### Figure 6: Andrew benchmark on {} — elapsed seconds per phase\n\n",
            kind.name()
        ));
        let mut headers = vec!["clients".to_string()];
        headers.extend(PHASES.iter().map(|p| p.to_string()));
        headers.push("total".to_string());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = CLIENTS
            .iter()
            .map(|&c| {
                let p = points
                    .iter()
                    .find(|p| p.kind == kind && p.clients == c)
                    .expect("missing point");
                let mut row = vec![c.to_string()];
                row.extend(p.result.phase_secs.iter().map(|s| format!("{s:.3}")));
                row.push(format!("{:.3}", p.result.total_secs()));
                row
            })
            .collect();
        out.push_str(&md_table(&header_refs, &rows));
    }
    // Cross-architecture totals.
    out.push_str("\n### Figure 6 summary: total Andrew elapsed time (s)\n\n");
    let mut headers = vec!["clients".to_string()];
    headers.extend(SystemKind::MEASURED.iter().map(|k| k.name().to_string()));
    headers.push("RAID-x vs RAID-5".to_string());
    headers.push("RAID-x vs RAID-10".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = CLIENTS
        .iter()
        .map(|&c| {
            let total = |kind: SystemKind| {
                points
                    .iter()
                    .find(|p| p.kind == kind && p.clients == c)
                    .expect("missing")
                    .result
                    .total_secs()
            };
            let rx = total(SystemKind::MEASURED[3]);
            let r5 = total(SystemKind::MEASURED[1]);
            let r10 = total(SystemKind::MEASURED[2]);
            let mut row = vec![c.to_string()];
            for kind in SystemKind::MEASURED {
                row.push(format!("{:.3}", total(kind)));
            }
            row.push(format!("{:+.1}%", (1.0 - rx / r5) * 100.0));
            row.push(format!("{:+.1}%", (1.0 - rx / r10) * 100.0));
            row
        })
        .collect();
    out.push_str(&md_table(&header_refs, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidx_core::Arch;

    #[test]
    fn raidx_total_beats_nfs_at_scale() {
        let rx = run_point(SystemKind::Raid(Arch::RaidX), 8);
        let nfs = run_point(SystemKind::Nfs, 8);
        assert!(
            rx.total_secs() < nfs.total_secs(),
            "RAID-x {:.2}s vs NFS {:.2}s",
            rx.total_secs(),
            nfs.total_secs()
        );
    }
}
