//! Resource-utilization breakdown: where the bytes and the busy time go
//! on a serverless RAID-x cluster versus the NFS baseline. Quantifies the
//! paper's central architectural argument — the single I/O space spreads
//! load over every NIC and disk arm, while NFS piles it on one node.

use cdd::{CddConfig, IoSystem};
use cluster::{Cluster, ClusterConfig};
use nfs_sim::{NfsConfig, NfsSystem};
use raidx_core::Arch;
use sim_core::{Engine, SimDuration};
use workloads::{run_parallel_io, IoPattern, ParallelIoConfig};

use crate::harness::md_table;

/// Utilization summary of one resource class.
#[derive(Debug, Clone)]
pub struct ClassUtil {
    /// Class label ("disk", "nic-tx", ...).
    pub class: &'static str,
    /// Mean utilization over the run (0..=1).
    pub mean: f64,
    /// Highest single-resource utilization.
    pub max: f64,
    /// Total bytes through the class.
    pub bytes: u64,
}

fn summarize(engine: &Engine, cluster: &Cluster, span: SimDuration) -> Vec<ClassUtil> {
    let mut classes: Vec<(&'static str, Vec<sim_core::ResourceId>)> = vec![
        ("cpu", cluster.nodes.iter().map(|n| n.cpu).collect()),
        ("nic-tx", cluster.nodes.iter().map(|n| n.tx).collect()),
        ("nic-rx", cluster.nodes.iter().map(|n| n.rx).collect()),
        ("scsi-bus", cluster.nodes.iter().map(|n| n.bus).collect()),
        ("disk", cluster.disks.iter().map(|d| d.res).collect()),
    ];
    classes
        .drain(..)
        .map(|(class, ids)| {
            let utils: Vec<f64> =
                ids.iter().map(|&id| engine.resource_stats(id).utilization(span)).collect();
            let bytes: u64 = ids.iter().map(|&id| engine.resource_stats(id).bytes).sum();
            ClassUtil {
                class,
                mean: utils.iter().sum::<f64>() / utils.len() as f64,
                max: utils.iter().cloned().fold(0.0, f64::max),
                bytes,
            }
        })
        .collect()
}

/// Run the 16-client large-write workload on both systems and render the
/// per-class utilization tables.
pub fn render() -> String {
    let cfg = ParallelIoConfig {
        clients: 16,
        pattern: IoPattern::LargeWrite,
        repeats: 2,
        ..Default::default()
    };

    let mut out = String::from("\n### Resource utilization, 16 clients x 2 MB writes\n");
    // RAID-x.
    {
        let mut engine = Engine::new();
        let mut sys =
            IoSystem::new(&mut engine, ClusterConfig::trojans(), Arch::RaidX, CddConfig::default());
        let r = run_parallel_io(&mut engine, &mut sys, &cfg).expect("experiment I/O failed");
        let span = SimDuration::from_secs_f64(r.drain_secs);
        out.push_str("\n**RAID-x (serverless single I/O space)**\n\n");
        out.push_str(&util_table(&summarize(&engine, &sys.cluster, span)));
    }
    // NFS.
    {
        let mut engine = Engine::new();
        let mut sys = NfsSystem::new(&mut engine, ClusterConfig::trojans(), NfsConfig::default());
        let r = run_parallel_io(&mut engine, &mut sys, &cfg).expect("experiment I/O failed");
        let span = SimDuration::from_secs_f64(r.drain_secs);
        let summary = summarize(&engine, &sys.cluster, span);
        out.push_str("\n**NFS (central server at node 0)**\n\n");
        out.push_str(&util_table(&summary));
        // Name the saturated component explicitly.
        let hottest =
            summary.iter().max_by(|a, b| a.max.total_cmp(&b.max)).expect("summary nonempty");
        let server_rx = engine.resource_stats(sys.cluster.nodes[0].rx).utilization(span);
        out.push_str(&format!(
            "\nNFS bottleneck: the server's {} at {:.0}% utilization (its rx \
             port runs at {:.0}%), while the mean across the cluster sits at \
             {:.0}% — fifteen nodes' hardware idles. This is the saturation \
             behind Figure 5's flat NFS curves.\n",
            hottest.class,
            hottest.max * 100.0,
            server_rx * 100.0,
            hottest.mean * 100.0
        ));
    }
    out
}

fn util_table(rows: &[ClassUtil]) -> String {
    let headers = ["resource class", "mean util", "max util", "bytes moved"];
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.class.to_string(),
                format!("{:.1}%", r.mean * 100.0),
                format!("{:.1}%", r.max * 100.0),
                format!("{:.1} MB", r.bytes as f64 / 1e6),
            ]
        })
        .collect();
    md_table(&headers, &data)
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_both_systems() {
        let t = super::render();
        assert!(t.contains("RAID-x (serverless"));
        assert!(t.contains("NFS (central server"));
        assert!(t.contains("disk"));
    }
}
