//! Table 2: expected peak performance of the four RAID architectures,
//! from the analytic model, evaluated both symbolically (units of B/R/W)
//! and with Trojans-calibrated constants.

use raidx_core::{Arch, PeakModel};
use sim_disk::DiskSpec;

use crate::harness::md_table;

/// Render Table 2 for `n` disks.
pub fn render(n: u64) -> String {
    let unit = PeakModel::unit(n);
    // Calibrated: per-disk effective bandwidth for 32 KB random blocks.
    let spec = DiskSpec::classic_scsi();
    let bs = 32u64 << 10;
    let cal = PeakModel {
        n,
        disk_bw: spec.effective_bandwidth(bs) / 1e6,
        read_time: spec.avg_random_access(bs).as_secs_f64(),
        write_time: spec.avg_random_access(bs).as_secs_f64(),
    };
    let m = 1024; // blocks per file for the parallel-time rows

    let mut out = format!(
        "\n### Table 2: expected peak performance, n = {n} disks \
         (symbolic: units of B; calibrated: MB/s with 32 KB blocks on the \
         1999 SCSI disk model, B = {:.2} MB/s)\n\n",
        cal.disk_bw
    );
    let headers = ["Indicator", "RAID-5", "Chained decl.", "RAID-10", "RAID-x"];
    let row = |name: &str, f: &dyn Fn(Arch) -> String| -> Vec<String> {
        let mut r = vec![name.to_string()];
        r.extend(Arch::ALL.iter().map(|&a| f(a)));
        r
    };
    let rows = vec![
        row("Max read bandwidth (xB)", &|a| format!("{:.1}", unit.max_read_bw(a))),
        row("Max large-write bandwidth (xB)", &|a| format!("{:.1}", unit.max_large_write_bw(a))),
        row("Max small-write bandwidth (xB)", &|a| format!("{:.1}", unit.max_small_write_bw(a))),
        row("Calibrated read bw (MB/s)", &|a| format!("{:.1}", cal.max_read_bw(a))),
        row("Calibrated large-write bw (MB/s)", &|a| format!("{:.1}", cal.max_large_write_bw(a))),
        row("Calibrated small-write bw (MB/s)", &|a| format!("{:.1}", cal.max_small_write_bw(a))),
        row("Large read time (xR, m=1024)", &|a| format!("{:.1}", unit.large_read_time(a, m))),
        row("Small read time", &|a| format!("{:.1}R", unit.small_read_time(a))),
        row("Large write time (xW, m=1024)", &|a| format!("{:.1}", unit.large_write_time(a, m))),
        row("Small write time", &|a| match a {
            Arch::Raid5 => "R+W".to_string(),
            _ => "W".to_string(),
        }),
        row("Max fault coverage (disks)", &|a| unit.max_fault_coverage(a).to_string()),
    ];
    out.push_str(&md_table(&headers, &rows));
    out.push_str(&format!(
        "\nRAID-x vs chained declustering large-write improvement factor at \
         n = {n}: {:.3} (approaches 2 as n grows).\n",
        unit.large_write_time(Arch::Chained, m) / unit.large_write_time(Arch::RaidX, m)
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_rows() {
        let t = super::render(16);
        assert!(t.contains("Max fault coverage"));
        assert!(t.contains("RAID-x"));
        assert!(t.contains("improvement factor"));
        assert!(t.matches('\n').count() > 12);
    }
}
