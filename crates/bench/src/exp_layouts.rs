//! Figures 1 and 3: render the block/image placement maps of RAID-x OSM,
//! chained declustering and the 4×3 two-dimensional array, exactly as the
//! paper draws them.

use raidx_core::{ChainedDecluster, Layout, RaidX};

/// Render Figure 1a: OSM on 4 disks, 3 stripes of data + their images.
pub fn render_figure_1a() -> String {
    let l = RaidX::new(4, 1, 1000);
    let mut out =
        String::from("\n### Figure 1(a): orthogonal striping and mirroring, 4 disks\n\n```\n");
    out.push_str("            Disk0   Disk1   Disk2   Disk3\n");
    for row in 0..3u64 {
        out.push_str(&format!("data row {row} "));
        for disk in 0..4usize {
            let lb = (0..12u64).find(|&lb| {
                let a = l.locate_data(lb);
                a.disk == disk && a.block == row
            });
            out.push_str(&format!("  B{:<5}", lb.expect("dense")));
        }
        out.push('\n');
    }
    for row in 0..3u64 {
        out.push_str(&format!("mirr row {row} "));
        for disk in 0..4usize {
            let img = (0..12u64).find(|&lb| {
                let a = l.image_addr(lb);
                a.disk == disk && a.block == l.image_base() + row
            });
            match img {
                Some(lb) => out.push_str(&format!("  M{lb:<5}")),
                None => out.push_str("  -     "),
            }
        }
        out.push('\n');
    }
    out.push_str("```\n");
    out
}

/// Render Figure 1b: chained declustering on 4 disks.
pub fn render_figure_1b() -> String {
    let l = ChainedDecluster::new(4, 6);
    let mut out = String::from(
        "\n### Figure 1(b): skewed mirroring in chained declustering, 4 disks\n\n```\n",
    );
    out.push_str("            Disk0   Disk1   Disk2   Disk3\n");
    for row in 0..3u64 {
        out.push_str(&format!("data row {row} "));
        for disk in 0..4u64 {
            out.push_str(&format!("  B{:<5}", row * 4 + disk));
        }
        out.push('\n');
    }
    for row in 0..3u64 {
        out.push_str(&format!("mirr row {row} "));
        for disk in 0..4usize {
            let img = (0..12u64).find(|&lb| {
                let a = l.locate_images(lb)[0];
                a.disk == disk && a.block == 3 + row
            });
            match img {
                Some(lb) => out.push_str(&format!("  M{lb:<5}")),
                None => out.push_str("  -     "),
            }
        }
        out.push('\n');
    }
    out.push_str("```\n");
    out
}

/// Render Figure 3: the 4×3 orthogonal array — which disk holds each of
/// the first 48 data blocks.
pub fn render_figure_3() -> String {
    let l = RaidX::new(4, 3, 1000);
    let mut out = String::from(
        "\n### Figure 3: 4x3 RAID-x — disk D(j) on node (j mod 4), stripes \
         rotate over rows; per-disk data columns:\n\n```\n",
    );
    for node in 0..4 {
        out.push_str(&format!("Node {node}: "));
        for row in 0..3 {
            let disk = row * 4 + node;
            let blocks: Vec<u64> =
                (0..48u64).filter(|&lb| l.locate_data(lb).disk == disk).take(4).collect();
            out.push_str(&format!(
                "D{disk:<2}[{}]  ",
                blocks.iter().map(|b| format!("B{b}")).collect::<Vec<_>>().join(",")
            ));
        }
        out.push('\n');
    }
    out.push_str("```\n");
    out
}

/// All three renderings.
pub fn render_all() -> String {
    format!("{}{}{}", render_figure_1a(), render_figure_1b(), render_figure_3())
}

#[cfg(test)]
mod tests {
    #[test]
    fn figure_1a_matches_paper_text() {
        let f = super::render_figure_1a();
        // "The image blocks (such as M0, M1, M2) are clustered in the same
        // disk (Disk 3) vertically."
        let lines: Vec<&str> = f.lines().collect();
        let m_rows: Vec<&&str> = lines.iter().filter(|l| l.starts_with("mirr")).collect();
        assert_eq!(m_rows.len(), 3);
        // Disk 3's column in the mirror rows holds M0, M1, M2.
        assert!(m_rows[0].contains("M0"));
        assert!(m_rows[1].contains("M1"));
        assert!(m_rows[2].contains("M2"));
    }

    #[test]
    fn figure_3_has_all_nodes() {
        let f = super::render_figure_3();
        for n in 0..4 {
            assert!(f.contains(&format!("Node {n}:")));
        }
        assert!(f.contains("B0"));
    }

    #[test]
    fn figure_1b_renders() {
        let f = super::render_figure_1b();
        assert!(f.contains("chained declustering"));
        assert!(f.contains("M0"));
    }
}
