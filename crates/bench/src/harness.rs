//! Shared harness utilities: system construction and parallel sweeps.

use cdd::{BlockStore, CddConfig, IoSystem};
use cluster::ClusterConfig;
use nfs_sim::{NfsConfig, NfsSystem};
use raidx_core::Arch;
use sim_core::Engine;

/// The I/O architectures the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Centralized NFS server.
    Nfs,
    /// Distributed RAID under the CDD single I/O space.
    Raid(Arch),
}

impl SystemKind {
    /// The four measured architectures, in the paper's plotting order.
    pub const MEASURED: [SystemKind; 4] = [
        SystemKind::Nfs,
        SystemKind::Raid(Arch::Raid5),
        SystemKind::Raid(Arch::Raid10),
        SystemKind::Raid(Arch::RaidX),
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Nfs => "NFS",
            SystemKind::Raid(a) => a.name(),
        }
    }
}

/// Build the block store for `kind` on a cluster described by `cc`,
/// registering its resources in `engine`.
pub fn build_store(
    engine: &mut Engine,
    cc: ClusterConfig,
    kind: SystemKind,
) -> Box<dyn BlockStore> {
    match kind {
        SystemKind::Nfs => Box::new(NfsSystem::new(engine, cc, NfsConfig::default())),
        SystemKind::Raid(arch) => Box::new(IoSystem::new(engine, cc, arch, CddConfig::default())),
    }
}

/// Build with a custom CDD configuration (for the ablations).
pub fn build_store_with(
    engine: &mut Engine,
    cc: ClusterConfig,
    arch: Arch,
    cdd: CddConfig,
) -> Box<dyn BlockStore> {
    Box::new(IoSystem::new(engine, cc, arch, cdd))
}

/// Map `f` over `items` on a scoped worker pool (simulations are
/// independent and CPU-bound, so sweeps scale with cores). Result order
/// matches input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let n = items.len();
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get()).min(n.max(1));
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|it| Mutex::new(Some(it))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().expect("poisoned").take().expect("item claimed twice");
                let r = f(item);
                *slots[i].lock().expect("poisoned") = Some(r);
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().expect("poisoned").expect("slot unfilled")).collect()
}

/// Write a CSV file (header + rows) under `results/`, creating the
/// directory if needed. Returns the path written. Values are emitted
/// verbatim — callers pass plain numbers and names without commas.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<String> {
    std::fs::create_dir_all("results")?;
    let path = format!("results/{name}.csv");
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Render a markdown table: header row + alignment + data rows.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect::<Vec<i64>>(), |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<i64>>());
    }

    #[test]
    fn build_every_kind() {
        for kind in SystemKind::MEASURED {
            let mut e = Engine::new();
            let mut cc = ClusterConfig::shape(4, 1);
            cc.disk.capacity = 16 << 20;
            let mut s = build_store(&mut e, cc, kind);
            let bs = s.block_size() as usize;
            s.write(0, 0, &vec![1u8; bs]).unwrap();
            let (got, _) = s.read(1, 0, 1).unwrap();
            assert_eq!(got, vec![1u8; bs], "{}", kind.name());
        }
    }

    #[test]
    fn md_table_renders() {
        let t = md_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}
