//! Trace capture: run the Figure-5 style parallel-write benchmark under
//! each architecture with the [`sim_core::trace::EventLog`] tracer
//! installed and export Perfetto-loadable Chrome traces plus CSV/JSON
//! metrics under `results/traces/`.
//!
//! The headline claim the summary proves: RAID-x's mirror-image writes
//! are **deferred** — the OSM flush backlog grows during the foreground
//! phase and drains in the background after the last client finishes —
//! while RAID-10 performs its mirror writes on the foreground path (its
//! backlog gauge never rises and its drain time equals its foreground
//! time).
//!
//! Per architecture this writes four files (slug ∈ nfs/raid5/raid10/raidx):
//!
//! * `trace_{slug}.json` — Chrome trace-event JSON; open at
//!   <https://ui.perfetto.dev>. One track per disk/link/node resource,
//!   one per job, counter tracks for queue depth and OSM backlog.
//! * `util_{slug}.csv` — per-resource windowed utilization.
//! * `series_{slug}.csv` — every gauge series (queue depths, backlog).
//! * `metrics_{slug}.json` — counters + latency-histogram summaries.
//!
//! Everything here is driven by simulated time; the CDD lock-group
//! samples are keyed by *operation sequence number* (lock grants are
//! scoped to a functional call, so a sim-time axis would be empty).

use cdd::{CddConfig, IoSystem};
use cluster::ClusterConfig;
use sim_core::trace::EventLog;
use sim_core::{
    chrome_trace_json, json_is_valid, metrics_csv, metrics_json, utilization_csv, Engine,
    MetricsRegistry, SimDuration, SimTime,
};
use workloads::parallel_io::{run_parallel_io, BandwidthResult, IoPattern, ParallelIoConfig};

use crate::harness::{build_store, md_table, par_map, SystemKind};

/// Parameters of a trace capture.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Cluster shape and hardware.
    pub cc: ClusterConfig,
    /// Concurrent writer clients.
    pub clients: usize,
    /// Synchronized write bursts per client.
    pub repeats: usize,
    /// Bytes per client per burst.
    pub write_bytes: u64,
    /// Utilization window width (widened automatically for long runs).
    pub tick: SimDuration,
    /// OSM write-behind backlog bound handed to the RAID architectures'
    /// [`CddConfig::max_image_backlog`] (`None` = the paper's unbounded
    /// queue). With a bound set, the exported `cdd.image_backlog_by_op`
    /// gauge is clamped at the bound.
    pub max_image_backlog: Option<usize>,
    /// Output directory for the exported files.
    pub out_dir: String,
}

impl Default for TraceConfig {
    fn default() -> Self {
        let mut cc = ClusterConfig::trojans();
        cc.disk.capacity = 64 << 20;
        TraceConfig {
            cc,
            clients: 4,
            repeats: 2,
            write_bytes: 1 << 20,
            tick: SimDuration::from_micros(500),
            max_image_backlog: None,
            out_dir: "results/traces".to_string(),
        }
    }
}

impl TraceConfig {
    /// A fast configuration for CI smoke runs: a 4×1 array, two clients,
    /// one 128 KB burst each.
    pub fn smoke() -> Self {
        let mut cc = ClusterConfig::shape(4, 1);
        cc.disk.capacity = 8 << 20;
        TraceConfig {
            cc,
            clients: 2,
            repeats: 1,
            write_bytes: 128 << 10,
            tick: SimDuration::from_micros(200),
            ..Self::default()
        }
    }
}

/// Everything measured and exported for one architecture.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Architecture traced.
    pub kind: SystemKind,
    /// File-name slug (`nfs`, `raid5`, `raid10`, `raidx`).
    pub slug: &'static str,
    /// Foreground bandwidth result of the traced run.
    pub bw: BandwidthResult,
    /// Events recorded by the tracer.
    pub events: usize,
    /// Peak of the OSM flush-backlog gauge (bytes).
    pub backlog_peak: f64,
    /// Backlog still pending when the last client finished (bytes).
    pub backlog_at_foreground_end: f64,
    /// Backlog after the run fully drained (bytes; must be 0).
    pub backlog_final: f64,
    /// Foreground job latency percentiles in nanoseconds (p50, p95, p99).
    pub latency_ns: Option<(u64, u64, u64)>,
    /// CDD lock grants / conflicts (`None` for NFS).
    pub locks: Option<(u64, u64)>,
    /// CDD per-op held-lock samples recorded while grants were live.
    pub lock_samples: usize,
    /// Peak of the per-op image-backlog gauge, in buffered blocks
    /// (`None` for NFS). With [`TraceConfig::max_image_backlog`] set this
    /// never exceeds the bound.
    pub image_backlog_peak: Option<usize>,
    /// Samples that fell past the largest bound of any latency histogram
    /// (their percentiles degrade to exact-max); nonzero means the stock
    /// bucket bounds under-cover this workload.
    pub hist_overflow: u64,
    /// Peak queue depth per disk resource, `(resource name, depth)` in
    /// registry order.
    pub disk_queue_peaks: Vec<(String, u64)>,
    /// Whether the emitted Chrome trace parsed as valid JSON.
    pub trace_json_valid: bool,
    /// Paths written, in `trace/util/series/metrics` order.
    pub paths: [String; 4],
}

/// Map an architecture to its file-name slug.
pub fn slug(kind: SystemKind) -> &'static str {
    match kind {
        SystemKind::Nfs => "nfs",
        SystemKind::Raid(raidx_core::Arch::Raid5) => "raid5",
        SystemKind::Raid(raidx_core::Arch::Raid10) => "raid10",
        SystemKind::Raid(raidx_core::Arch::RaidX) => "raidx",
        SystemKind::Raid(raidx_core::Arch::Chained) => "chained",
    }
}

/// Run the traced workload for one architecture and export its files.
pub fn run_arch(kind: SystemKind, cfg: &TraceConfig) -> std::io::Result<TraceRun> {
    let mut engine = Engine::new();
    let log = EventLog::new();
    let io_cfg = ParallelIoConfig {
        clients: cfg.clients,
        pattern: IoPattern::LargeWrite,
        large_bytes: cfg.write_bytes,
        repeats: cfg.repeats,
        ..Default::default()
    };
    // RAID kinds keep the concrete `IoSystem` in hand so the CDD lock
    // metrics can be sampled; NFS goes through the generic builder.
    let (bw, locks, lock_samples, backlog_samples) = match kind {
        SystemKind::Raid(arch) => {
            let cdd_cfg =
                CddConfig { max_image_backlog: cfg.max_image_backlog, ..CddConfig::default() };
            let mut sys = IoSystem::new(&mut engine, cfg.cc.clone(), arch, cdd_cfg);
            sys.enable_lock_metrics();
            engine.set_tracer(Box::new(log.clone()));
            let bw = run_parallel_io(&mut engine, &mut sys, &io_cfg).expect("traced run failed");
            let samples = sys.take_lock_samples();
            let backlog = sys.take_backlog_samples();
            (bw, Some((sys.lock_grants(), sys.lock_conflicts())), samples, Some(backlog))
        }
        SystemKind::Nfs => {
            let mut store = build_store(&mut engine, cfg.cc.clone(), kind);
            engine.set_tracer(Box::new(log.clone()));
            let bw = run_parallel_io(&mut engine, &mut store, &io_cfg).expect("traced run failed");
            (bw, None, Vec::new(), None)
        }
    };
    let events = log.take();
    let res_names: Vec<String> = engine.resources().map(|(_, n, _)| n.to_string()).collect();
    let mut reg = MetricsRegistry::from_events(&events, &res_names, cfg.tick);
    if let Some((grants, conflicts)) = locks {
        reg.set_counter("cdd.lock_grants", grants);
        reg.set_counter("cdd.lock_conflicts", conflicts);
        // Held-lock samples are keyed by op sequence, not sim time.
        let series = reg.gauge_mut("cdd.locks_held_by_op");
        for &(op, held) in &lock_samples {
            series.push(SimTime(op), held as f64);
        }
    }
    if let Some(samples) = &backlog_samples {
        // Post-op buffered image blocks, keyed by op sequence. This is
        // the series the backlog bound clamps (the time-domain
        // `osm.flush_backlog_bytes` gauge tracks detached in-flight
        // writes instead).
        let series = reg.gauge_mut("cdd.image_backlog_by_op");
        for &(op, blocks) in samples {
            series.push(SimTime(op), blocks as f64);
        }
    }

    let s = slug(kind);
    let trace = chrome_trace_json(&events, &res_names);
    let trace_json_valid = json_is_valid(&trace);
    std::fs::create_dir_all(&cfg.out_dir)?;
    let paths = [
        format!("{}/trace_{s}.json", cfg.out_dir),
        format!("{}/util_{s}.csv", cfg.out_dir),
        format!("{}/series_{s}.csv", cfg.out_dir),
        format!("{}/metrics_{s}.json", cfg.out_dir),
    ];
    std::fs::write(&paths[0], &trace)?;
    std::fs::write(&paths[1], utilization_csv(&reg))?;
    std::fs::write(&paths[2], metrics_csv(&reg))?;
    std::fs::write(&paths[3], metrics_json(&reg))?;

    let backlog = reg.gauge("osm.flush_backlog_bytes");
    let fg_end = SimTime((bw.elapsed_secs * 1e9).round() as u64);
    let lat = reg.histogram("job_latency_ns");
    let hist_overflow = reg.histograms().map(|(_, h)| h.overflow_count()).sum();
    let disk_queue_peaks = reg
        .gauges()
        .filter(|(name, _)| name.starts_with("disk") && name.ends_with(".queue_depth"))
        .map(|(name, series)| {
            let res = name.trim_end_matches(".queue_depth").to_string();
            (res, series.max_value().unwrap_or(0.0).round() as u64)
        })
        .collect();
    Ok(TraceRun {
        kind,
        slug: s,
        events: events.len(),
        backlog_peak: backlog.and_then(|b| b.max_value()).unwrap_or(0.0),
        backlog_at_foreground_end: backlog.and_then(|b| b.value_at(fg_end)).unwrap_or(0.0),
        backlog_final: backlog.and_then(|b| b.last()).unwrap_or(0.0),
        latency_ns: lat
            .and_then(|h| Some((h.percentile(50.0)?, h.percentile(95.0)?, h.percentile(99.0)?))),
        locks,
        lock_samples: lock_samples.len(),
        image_backlog_peak: backlog_samples
            .map(|s| s.into_iter().map(|(_, blocks)| blocks).max().unwrap_or(0)),
        hist_overflow,
        disk_queue_peaks,
        trace_json_valid,
        paths,
        bw,
    })
}

/// Trace all four measured architectures.
pub fn run_all(cfg: &TraceConfig) -> std::io::Result<Vec<TraceRun>> {
    par_map(SystemKind::MEASURED.to_vec(), |kind| run_arch(kind, cfg)).into_iter().collect()
}

fn kb(bytes: f64) -> String {
    format!("{:.0}", bytes / 1024.0)
}

/// Render the summary table plus the foreground/background narrative.
pub fn render_summary(runs: &[TraceRun]) -> String {
    let mut out = String::new();
    out.push_str("\n### Trace capture: parallel large writes, foreground vs background\n\n");
    let headers = [
        "arch",
        "MB/s",
        "foreground s",
        "drain s",
        "backlog peak KB",
        "backlog @fg-end KB",
        "backlog final KB",
        "p50/p95/p99 us",
        "lock grants/conflicts",
        "events",
    ];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.kind.name().to_string(),
                format!("{:.1}", r.bw.aggregate_mbs),
                format!("{:.4}", r.bw.elapsed_secs),
                format!("{:.4}", r.bw.drain_secs),
                kb(r.backlog_peak),
                kb(r.backlog_at_foreground_end),
                kb(r.backlog_final),
                r.latency_ns.map_or("-".to_string(), |(p50, p95, p99)| {
                    format!("{}/{}/{}", p50 / 1000, p95 / 1000, p99 / 1000)
                }),
                r.locks.map_or("-".to_string(), |(g, c)| format!("{g}/{c}")),
                r.events.to_string(),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));

    let find = |k: SystemKind| runs.iter().find(|r| r.kind == k);
    if let (Some(rx), Some(r10)) = (find(SystemKind::MEASURED[3]), find(SystemKind::MEASURED[2])) {
        let bg = rx.bw.drain_secs - rx.bw.elapsed_secs;
        out.push_str(&format!(
            "\nRAID-x defers mirror-image writes: its backlog peaks at {} KB, still \
             holds {} KB when the last client finishes, and drains to {} KB \
             {:.4}s later in the background — the foreground figure excludes that \
             flush time. RAID-10 mirrors on the foreground path: backlog peak \
             {} KB and drain time equals foreground time \
             ({:.4}s vs {:.4}s).\n",
            kb(rx.backlog_peak),
            kb(rx.backlog_at_foreground_end),
            kb(rx.backlog_final),
            bg,
            kb(r10.backlog_peak),
            r10.bw.drain_secs,
            r10.bw.elapsed_secs,
        ));
    }
    let total_events: usize = runs.iter().map(|r| r.events).sum();
    let total_overflow: u64 = runs.iter().map(|r| r.hist_overflow).sum();
    out.push_str(&format!(
        "\nTotals: {total_events} trace events across {} runs; {total_overflow} \
         histogram samples past the largest bucket bound (exact-max fallback).\n",
        runs.len()
    ));
    for r in runs {
        let peaks: Vec<String> =
            r.disk_queue_peaks.iter().map(|(res, d)| format!("{res}={d}")).collect();
        out.push_str(&format!(
            "  {}: peak disk queue depth {}\n",
            r.slug,
            if peaks.is_empty() { "-".to_string() } else { peaks.join(" ") }
        ));
    }
    for r in runs {
        out.push_str(&format!("  {} -> {}\n", r.slug, r.paths.join(", ")));
    }
    out
}

/// Assert the properties a smoke run must exhibit; returns the first
/// violated property as an error string.
pub fn smoke_check(runs: &[TraceRun]) -> Result<(), String> {
    if runs.len() != SystemKind::MEASURED.len() {
        return Err(format!("expected {} runs, got {}", SystemKind::MEASURED.len(), runs.len()));
    }
    for r in runs {
        if r.events == 0 {
            return Err(format!("{}: tracer recorded no events", r.slug));
        }
        if !r.trace_json_valid {
            return Err(format!("{}: Chrome trace is not valid JSON", r.slug));
        }
        if r.latency_ns.is_none() {
            return Err(format!("{}: no job latency samples", r.slug));
        }
        if r.bw.drain_secs + 1e-12 < r.bw.elapsed_secs {
            return Err(format!("{}: drain time shorter than foreground time", r.slug));
        }
    }
    let rx = &runs[3];
    if rx.backlog_peak <= 0.0 {
        return Err("raidx: OSM flush backlog never rose above zero".to_string());
    }
    if rx.backlog_final != 0.0 {
        return Err(format!("raidx: backlog did not drain to zero ({})", rx.backlog_final));
    }
    if rx.bw.drain_secs <= rx.bw.elapsed_secs {
        return Err("raidx: no background drain phase after foreground end".to_string());
    }
    let r10 = &runs[2];
    if r10.backlog_peak != 0.0 {
        return Err("raid10: mirror writes unexpectedly deferred".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_out_dir(name: &str) -> String {
        format!("{}/../../target/tmp-traces-{name}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn smoke_run_emits_valid_traces_and_proves_background_drain() {
        let cfg = TraceConfig { out_dir: test_out_dir("smoke"), ..TraceConfig::smoke() };
        let runs = run_all(&cfg).expect("trace export failed");
        smoke_check(&runs).expect("smoke property violated");
        for r in &runs {
            for p in &r.paths {
                let meta = std::fs::metadata(p).expect("exported file missing");
                assert!(meta.len() > 0, "{p} is empty");
            }
        }
        let summary = render_summary(&runs);
        assert!(summary.contains("RAID-x defers mirror-image writes"));
        assert!(summary.contains("trace_raidx.json"));
        assert!(summary.contains("Totals:"), "{summary}");
        assert!(summary.contains("peak disk queue depth"), "{summary}");
        let rx = &runs[3];
        assert!(!rx.disk_queue_peaks.is_empty(), "no disk queue gauges sampled");
        assert!(
            rx.disk_queue_peaks.iter().any(|(_, d)| *d > 0),
            "parallel writes never queued at any disk: {:?}",
            rx.disk_queue_peaks
        );
    }

    /// The acceptance check for the backlog bound: in a traced parallel
    /// write run the per-op backlog gauge stays clamped at the configured
    /// bound, while the unbounded default builds a strictly larger
    /// backlog on the same workload.
    #[test]
    fn backlog_gauge_clamps_at_configured_bound() {
        let unbounded = TraceConfig { out_dir: test_out_dir("unbounded"), ..TraceConfig::smoke() };
        let r = run_arch(SystemKind::MEASURED[3], &unbounded).expect("raidx trace failed");
        let free_peak = r.image_backlog_peak.expect("raid run must sample the backlog");
        assert!(free_peak > 1, "unbounded run built no backlog (peak {free_peak})");

        let bound = 1usize;
        let clamped = TraceConfig {
            out_dir: test_out_dir("bounded"),
            max_image_backlog: Some(bound),
            ..TraceConfig::smoke()
        };
        let r = run_arch(SystemKind::MEASURED[3], &clamped).expect("raidx trace failed");
        let peak = r.image_backlog_peak.expect("raid run must sample the backlog");
        assert!(peak <= bound, "backlog bound {bound} violated: peak {peak}");
        // The exported gauge series carries the clamped samples.
        let metrics = std::fs::read_to_string(&r.paths[2]).expect("series csv missing");
        assert!(metrics.contains("cdd.image_backlog_by_op"), "gauge missing from export");
    }

    #[test]
    fn raid_runs_record_lock_metrics() {
        let cfg = TraceConfig { out_dir: test_out_dir("locks"), ..TraceConfig::smoke() };
        let r = run_arch(SystemKind::MEASURED[3], &cfg).expect("raidx trace failed");
        let (grants, _) = r.locks.expect("raid run must report lock counters");
        assert!(grants > 0, "no lock grants recorded");
        assert!(r.lock_samples > 0, "no per-op lock samples recorded");
    }
}
