//! Figure 5: aggregate I/O bandwidth of the four architectures versus the
//! number of concurrent clients, for large/small reads and writes.

use cluster::ClusterConfig;
use sim_core::Engine;
use workloads::{run_parallel_io, BandwidthResult, IoPattern, ParallelIoConfig};

use crate::harness::{build_store, md_table, par_map, SystemKind};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Architecture.
    pub kind: SystemKind,
    /// Access pattern.
    pub pattern: IoPattern,
    /// Concurrent clients.
    pub clients: usize,
    /// Measurement.
    pub result: BandwidthResult,
}

/// Client counts plotted (the paper sweeps 1..16 on the Trojans cluster).
pub const CLIENTS: [usize; 6] = [1, 2, 4, 8, 12, 16];

/// Run the full Figure 5 sweep on the Trojans configuration.
pub fn run_sweep() -> Vec<Point> {
    let mut cases = Vec::new();
    for pattern in IoPattern::ALL {
        for kind in SystemKind::MEASURED {
            for clients in CLIENTS {
                cases.push((kind, pattern, clients));
            }
        }
    }
    par_map(cases, |(kind, pattern, clients)| {
        let result = run_point(kind, pattern, clients);
        Point { kind, pattern, clients, result }
    })
}

/// Measure one configuration.
pub fn run_point(kind: SystemKind, pattern: IoPattern, clients: usize) -> BandwidthResult {
    let mut engine = Engine::new();
    let mut store = build_store(&mut engine, ClusterConfig::trojans(), kind);
    let cfg = ParallelIoConfig { clients, pattern, repeats: 3, ..Default::default() };
    run_parallel_io(&mut engine, &mut store, &cfg).expect("fig5 point failed")
}

/// Render the sweep as four markdown tables, one per subplot.
pub fn render(points: &[Point]) -> String {
    let mut out = String::new();
    for (tag, pattern) in [
        ("(a)", IoPattern::LargeRead),
        ("(b)", IoPattern::SmallRead),
        ("(c)", IoPattern::LargeWrite),
        ("(d)", IoPattern::SmallWrite),
    ] {
        out.push_str(&format!(
            "\n### Figure 5{tag}: {} — aggregate bandwidth (MB/s)\n\n",
            pattern.label()
        ));
        let mut headers = vec!["clients".to_string()];
        headers.extend(SystemKind::MEASURED.iter().map(|k| k.name().to_string()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = CLIENTS
            .iter()
            .map(|&c| {
                let mut row = vec![c.to_string()];
                for kind in SystemKind::MEASURED {
                    let p = points
                        .iter()
                        .find(|p| p.kind == kind && p.pattern == pattern && p.clients == c)
                        .expect("missing point");
                    row.push(format!("{:.2}", p.result.aggregate_mbs));
                }
                row
            })
            .collect();
        out.push_str(&md_table(&header_refs, &rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidx_core::Arch;

    #[test]
    fn raidx_large_write_scales_and_beats_raid10() {
        let rx1 = run_point(SystemKind::Raid(Arch::RaidX), IoPattern::LargeWrite, 1);
        let rx16 = run_point(SystemKind::Raid(Arch::RaidX), IoPattern::LargeWrite, 16);
        let r10 = run_point(SystemKind::Raid(Arch::Raid10), IoPattern::LargeWrite, 16);
        assert!(rx16.aggregate_mbs > 3.0 * rx1.aggregate_mbs, "no scaling");
        assert!(
            rx16.aggregate_mbs > 1.2 * r10.aggregate_mbs,
            "RAID-x {:.2} vs RAID-10 {:.2}",
            rx16.aggregate_mbs,
            r10.aggregate_mbs
        );
    }

    #[test]
    fn nfs_saturates_early() {
        let n4 = run_point(SystemKind::Nfs, IoPattern::LargeRead, 4);
        let n16 = run_point(SystemKind::Nfs, IoPattern::LargeRead, 16);
        // Beyond saturation adding clients gains little.
        assert!(
            n16.aggregate_mbs < 1.5 * n4.aggregate_mbs,
            "NFS kept scaling: {:.2} -> {:.2}",
            n4.aggregate_mbs,
            n16.aggregate_mbs
        );
    }
}
