#![warn(missing_docs)]
//! # bench — the experiment harness
//!
//! One module (and one binary under `src/bin`) per table/figure of the
//! paper, plus ablations. Each experiment function returns its results as
//! a rendered markdown fragment so `all_experiments` can regenerate the
//! data sections of `EXPERIMENTS.md` in one run.

pub mod exp_ablations;
pub mod exp_degraded;
pub mod exp_fault;
pub mod exp_fig5;
pub mod exp_fig6;
pub mod exp_fig7;
pub mod exp_latency;
pub mod exp_layouts;
pub mod exp_mixed;
pub mod exp_reliability;
pub mod exp_scalability;
pub mod exp_table2;
pub mod exp_table3;
pub mod exp_trace;
pub mod exp_utilization;
pub mod harness;
pub mod microbench;
pub mod perfbench;

pub use harness::{build_store, par_map, SystemKind};
