//! Table 3: achievable I/O bandwidth at 1 vs. 16 clients, and the
//! improvement factor, for the four architectures.

use workloads::IoPattern;

use crate::exp_fig5::run_point;
use crate::harness::{md_table, par_map, SystemKind};

/// One table row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Architecture.
    pub kind: SystemKind,
    /// Operation.
    pub pattern: IoPattern,
    /// MB/s with one client.
    pub one: f64,
    /// MB/s with sixteen clients.
    pub sixteen: f64,
}

impl Row {
    /// 16-client bandwidth over 1-client bandwidth.
    pub fn improvement(&self) -> f64 {
        self.sixteen / self.one
    }
}

/// The operations the paper tabulates (it omits small read, whose results
/// "are very close to that for large read").
pub const OPS: [IoPattern; 3] =
    [IoPattern::LargeRead, IoPattern::LargeWrite, IoPattern::SmallWrite];

/// Measure every row.
pub fn run() -> Vec<Row> {
    let mut cases = Vec::new();
    for kind in SystemKind::MEASURED {
        for pattern in OPS {
            cases.push((kind, pattern));
        }
    }
    par_map(cases, |(kind, pattern)| {
        let one = run_point(kind, pattern, 1).aggregate_mbs;
        let sixteen = run_point(kind, pattern, 16).aggregate_mbs;
        Row { kind, pattern, one, sixteen }
    })
}

/// Render as markdown.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "\n### Table 3: achievable I/O bandwidth and improvement factor (1 vs 16 clients)\n\n",
    );
    let headers =
        ["Architecture", "Operation", "1 client (MB/s)", "16 clients (MB/s)", "Improvement"];
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kind.name().to_string(),
                r.pattern.label().to_string(),
                format!("{:.2}", r.one),
                format!("{:.2}", r.sixteen),
                format!("{:.2}x", r.improvement()),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &data));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidx_core::Arch;

    #[test]
    fn raidx_has_best_improvement_for_writes() {
        // Small sanity subset (full sweep is the binary's job): RAID-x
        // improves more from 1 to 16 clients than NFS does.
        let rx1 = run_point(SystemKind::Raid(Arch::RaidX), IoPattern::LargeWrite, 1).aggregate_mbs;
        let rx16 =
            run_point(SystemKind::Raid(Arch::RaidX), IoPattern::LargeWrite, 16).aggregate_mbs;
        let n1 = run_point(SystemKind::Nfs, IoPattern::LargeWrite, 1).aggregate_mbs;
        let n16 = run_point(SystemKind::Nfs, IoPattern::LargeWrite, 16).aggregate_mbs;
        assert!(rx16 / rx1 > 2.0 * (n16 / n1).max(0.1));
    }
}
