//! Degraded-mode and rebuild-under-load performance — the operational
//! side of Section 6: what does a failure cost while the cluster keeps
//! serving clients?

use cdd::{CddConfig, IoSystem};
use cluster::ClusterConfig;
use raidx_core::Arch;
use sim_core::Engine;
use workloads::{run_parallel_io, IoPattern, ParallelIoConfig};

use crate::harness::{md_table, par_map};

/// Bandwidth of `arch` under three conditions: healthy, one disk failed
/// (degraded), and during an active rebuild of that disk.
#[derive(Debug, Clone)]
pub struct DegradedPoint {
    /// Architecture.
    pub arch: Arch,
    /// Healthy aggregate MB/s.
    pub healthy: f64,
    /// Degraded aggregate MB/s (disk 3 failed).
    pub degraded: f64,
    /// Aggregate MB/s while the rebuild of disk 3 runs concurrently.
    pub rebuilding: f64,
}

fn bandwidth(sys: &mut IoSystem, engine: &mut Engine, clients: usize, precreate: bool) -> f64 {
    let cfg = ParallelIoConfig {
        clients,
        pattern: IoPattern::LargeRead,
        repeats: 2,
        precreate,
        ..Default::default()
    };
    run_parallel_io(engine, sys, &cfg).expect("run failed").aggregate_mbs
}

/// Seed the read files while the array is healthy (the degraded runs
/// cannot pre-create them — RAID-5 refuses degraded writes).
fn seed_files(sys: &mut IoSystem, clients: usize) {
    let bs = sys.block_size();
    let nblocks = (2u64 << 20).div_ceil(bs);
    let region = nblocks * 2; // repeats = 2
    let payload = vec![0xA5u8; (nblocks * bs) as usize];
    for c in 0..clients {
        for r in 0..2u64 {
            sys.write((c + 1) % 16, c as u64 * region + r * nblocks, &payload)
                .expect("experiment I/O failed");
        }
    }
}

/// Measure one architecture (16 clients of large reads; reads work in
/// degraded mode on every architecture).
pub fn run_point(arch: Arch) -> DegradedPoint {
    let clients = 16;
    let mut cc = ClusterConfig::trojans();
    cc.disk.capacity = 2 << 30;

    // Healthy.
    let mut engine = Engine::new();
    let mut sys = IoSystem::new(&mut engine, cc.clone(), arch, CddConfig::default());
    let healthy = bandwidth(&mut sys, &mut engine, clients, true);

    // Degraded: same workload with disk 3 gone. Fresh engine so the two
    // measurements do not share queues; the files are seeded while the
    // array is still healthy.
    let mut engine = Engine::new();
    let mut sys = IoSystem::new(&mut engine, cc.clone(), arch, CddConfig::default());
    seed_files(&mut sys, clients);
    sys.fail_disk(3);
    let degraded = bandwidth(&mut sys, &mut engine, clients, false);

    // Rebuilding: seed, fail, start the rebuild concurrently with the
    // measured workload.
    let mut engine = Engine::new();
    let mut sys = IoSystem::new(&mut engine, cc, arch, CddConfig::default());
    seed_files(&mut sys, clients);
    sys.fail_disk(3);
    let (rebuild_plan, _) = sys.rebuild_disk(3, 3).expect("rebuild plan");
    engine.spawn_job("rebuild", rebuild_plan);
    let rebuilding = bandwidth(&mut sys, &mut engine, clients, false);

    DegradedPoint { arch, healthy, degraded, rebuilding }
}

/// Run all architectures.
pub fn run_all() -> Vec<DegradedPoint> {
    par_map(vec![Arch::Raid5, Arch::Chained, Arch::Raid10, Arch::RaidX], run_point)
}

/// Render as markdown.
pub fn render(points: &[DegradedPoint]) -> String {
    let mut out = String::from(
        "\n### Degraded-mode and rebuild-under-load bandwidth (16 clients, 2 MB reads)\n\n",
    );
    let headers = [
        "Architecture",
        "healthy (MB/s)",
        "degraded (MB/s)",
        "during rebuild (MB/s)",
        "degraded/healthy",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.arch.name().to_string(),
                format!("{:.2}", p.healthy),
                format!("{:.2}", p.degraded),
                format!("{:.2}", p.rebuilding),
                format!("{:.0}%", p.degraded / p.healthy * 100.0),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nMirror-based schemes lose only the failed spindle's share in \
         degraded mode; RAID-5 additionally reconstructs every block that \
         lived on the dead disk from the whole surviving stripe, which \
         multiplies its degraded read traffic.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_never_beats_healthy_and_raid5_hurts_most() {
        let rx = run_point(Arch::RaidX);
        let r5 = run_point(Arch::Raid5);
        assert!(rx.degraded <= rx.healthy * 1.02);
        assert!(r5.degraded <= r5.healthy * 1.02);
        // RAID-5's reconstruction penalty exceeds RAID-x's mirror penalty.
        let rx_ratio = rx.degraded / rx.healthy;
        let r5_ratio = r5.degraded / r5.healthy;
        assert!(
            r5_ratio < rx_ratio,
            "RAID-5 degraded ratio {r5_ratio:.2} not worse than RAID-x {rx_ratio:.2}"
        );
        // Rebuild traffic costs something.
        assert!(rx.rebuilding <= rx.degraded * 1.05);
    }
}
