//! Reliability analysis: probability of surviving `f` simultaneous random
//! disk failures — the expected-case companion to Table 2's best-case
//! fault-coverage row. Exact enumeration (no sampling noise).

use raidx_core::{survival_probability, ChainedDecluster, Layout, Raid10, Raid5, RaidX};

use crate::harness::md_table;

/// Render survival probabilities for 16-disk arrays, f = 1..4, including
/// the RAID-x shape family (more rows ⇒ more survivable multi-failures).
pub fn render() -> String {
    let bpd = 131_072;
    let layouts: Vec<(String, Box<dyn Layout>)> = vec![
        ("RAID-5 (16)".into(), Box::new(Raid5::new(16, bpd))),
        ("RAID-10 (16)".into(), Box::new(Raid10::new(16, bpd))),
        ("Chained (16)".into(), Box::new(ChainedDecluster::new(16, bpd))),
        ("RAID-x 16x1".into(), Box::new(RaidX::new(16, 1, bpd))),
        ("RAID-x 8x2".into(), Box::new(RaidX::new(8, 2, bpd))),
        ("RAID-x 4x4".into(), Box::new(RaidX::new(4, 4, bpd))),
    ];
    let mut out = String::from(
        "\n### Reliability: probability that f simultaneous random disk \
         failures lose no data (16 disks)\n\n",
    );
    let headers = ["Layout", "f=1", "f=2", "f=3", "f=4"];
    let rows: Vec<Vec<String>> = layouts
        .iter()
        .map(|(name, l)| {
            let mut row = vec![name.clone()];
            for f in 1..=4usize {
                row.push(format!("{:.3}", survival_probability(l.as_ref(), f, 50_000, 42)));
            }
            row
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nThe n×k trade-off in numbers: narrowing the stripe (16x1 -> 4x4) \
         confines each mirroring group to a smaller row, so random \
         multi-failures are likelier to land in distinct rows and survive — \
         at the bandwidth cost the shape ablation shows. Chained \
         declustering's ring survives best (only adjacent pairs are fatal); \
         RAID-5 dies at any second failure.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_ordered_probabilities() {
        let t = super::render();
        assert!(t.contains("RAID-x 4x4"));
        assert!(t.contains("f=4"));
        // RAID-5 at f=2 must be 0.
        let raid5_row = t.lines().find(|l| l.contains("RAID-5")).unwrap();
        assert!(raid5_row.contains("0.000"));
    }
}
