//! Figure 7: striped checkpointing with staggering on the distributed
//! RAID-x — the staircase timeline, the stagger-depth trade-off, and the
//! 4×3 / 6×2 / 12×1 array reconfiguration the paper proposes.

use cdd::{CddConfig, IoSystem};
use checkpoint::{run_striped_checkpoint, verify_checkpoint, CheckpointConfig, CheckpointResult};
use cluster::ClusterConfig;
use raidx_core::Arch;
use sim_core::Engine;

use crate::harness::{md_table, par_map};

/// One configuration's outcome.
#[derive(Debug, Clone)]
pub struct Point {
    /// Array shape (nodes, disks per node).
    pub shape: (usize, usize),
    /// Stagger group width.
    pub stagger_width: usize,
    /// Result.
    pub result: CheckpointResult,
}

fn run_shape(nodes: usize, k: usize, stagger_width: usize, processes: usize) -> CheckpointResult {
    let mut cc = ClusterConfig::shape(nodes, k);
    cc.disk.capacity = 1 << 30;
    let mut engine = Engine::new();
    let mut store = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());
    let cfg = CheckpointConfig {
        processes,
        stagger_width,
        ckpt_bytes: 4 << 20,
        rounds: 2,
        ..Default::default()
    };
    let r = run_striped_checkpoint(&mut engine, &mut store, &cfg).expect("checkpoint failed");
    // Integrity: every image must verify after the run.
    for p in 0..processes {
        verify_checkpoint(&mut store, &cfg, p, 1).expect("checkpoint corrupted");
    }
    r
}

/// The stagger-depth sweep on the paper's 12-process scenario over a 4×3
/// array, plus the reconfigured shapes.
pub fn run_sweep() -> Vec<Point> {
    let cases: Vec<(usize, usize, usize)> = vec![
        // (nodes, k, stagger width) — Figure 7's 4x3 with groups of 4,
        // plus the trade-off sweep.
        (4, 3, 1),
        (4, 3, 2),
        (4, 3, 4),
        (4, 3, 6),
        (4, 3, 12),
        // Reconfiguration: same 12 disks arranged 6x2 and 12x1.
        (6, 2, 4),
        (12, 1, 4),
        (6, 2, 6),
        (12, 1, 12),
    ];
    par_map(cases, |(nodes, k, w)| Point {
        shape: (nodes, k),
        stagger_width: w,
        result: run_shape(nodes, k, w, 12),
    })
}

/// Render.
pub fn render(points: &[Point]) -> String {
    let mut out = String::from(
        "\n### Figure 7: striped checkpointing with staggering — 12 processes, \
         4 MB checkpoint each, RAID-x arrays of 12 disks\n\n",
    );
    let headers =
        ["array", "stagger width", "round span (s)", "mean blocked (s)", "first group blocked (s)"];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}x{}", p.shape.0, p.shape.1),
                p.stagger_width.to_string(),
                format!(
                    "{:.3}",
                    p.result.round_secs.iter().sum::<f64>() / p.result.round_secs.len() as f64
                ),
                format!("{:.3}", p.result.mean_blocked_secs),
                format!("{:.3}", p.result.first_group_blocked_secs),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nStaggering trades round span (longer: groups take turns) against \
         per-process blocking (shorter for early groups) — the staircase of \
         Figure 7. Reconfiguring 4x3 -> 12x1 widens the stripe (more \
         parallelism, less pipelining).\n",
    );
    out.push_str(&render_staircase());
    out.push_str(&render_two_level());
    out
}

/// Figure 7's timeline itself: per-process bars showing the staggered
/// staircase (each bar is how long the process stayed blocked — sync,
/// waiting for its stagger turn, then writing).
pub fn render_staircase() -> String {
    let mut cc = ClusterConfig::trojans_4x3();
    cc.disk.capacity = 1 << 30;
    let mut engine = Engine::new();
    let mut store = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());
    let cfg = CheckpointConfig {
        processes: 12,
        stagger_width: 4,
        ckpt_bytes: 4 << 20,
        rounds: 1,
        ..Default::default()
    };
    run_striped_checkpoint(&mut engine, &mut store, &cfg).expect("staircase run failed");
    let jobs = engine.jobs();
    let latencies: Vec<f64> = jobs
        .iter()
        .filter(|j| j.label.starts_with("ckpt/"))
        .filter_map(|j| j.try_latency())
        .map(|d| d.as_secs_f64())
        .collect();
    let max = latencies.iter().cloned().fold(0.0, f64::max);
    let mut out = String::from(
        "\n### Figure 7 timeline: 12 processes, stagger groups of 4 (each \
         bar = time the process is blocked; C = writing, . = waiting)\n\n```\n",
    );
    const WIDTH: usize = 56;
    for (p, &lat) in latencies.iter().enumerate() {
        let total = ((lat / max) * WIDTH as f64).round() as usize;
        // The final segment of each bar is the actual write; earlier time
        // is sync + stagger wait. Estimate the write span from group 0's
        // bar (it never waits for a predecessor).
        let write_span = ((latencies[..cfg.stagger_width].iter().cloned().fold(f64::MAX, f64::min)
            / max)
            * WIDTH as f64)
            .round() as usize;
        let wait = total.saturating_sub(write_span);
        out.push_str(&format!(
            "P{p:02} |{}{}| {lat:.3}s\n",
            ".".repeat(wait),
            "C".repeat(total - wait),
        ));
    }
    out.push_str("```\n");
    out
}

/// The two-level recovery experiment: one image-local checkpoint serves
/// both recovery paths; transient recovery is network-independent.
pub fn render_two_level() -> String {
    use checkpoint::run_two_level;
    let run = |link_rate: u64| {
        let mut cc = ClusterConfig::trojans();
        cc.disk.capacity = 1 << 30;
        cc.net.link_rate = link_rate;
        let mut engine = Engine::new();
        let mut sys = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());
        run_two_level(&mut engine, &mut sys, 4, 90).expect("two-level failed")
    };
    let fast = run(12_500_000);
    let slow = run(2_000_000);
    let mut out = String::from(
        "\n### Two-level recovery (image-local checkpoint placement, ~2.9 MB state)\n\n",
    );
    out.push_str(&md_table(
        &[
            "interconnect",
            "checkpoint (s)",
            "transient recovery (s)",
            "permanent recovery (s)",
            "transient net bytes",
        ],
        &[
            vec![
                "Fast Ethernet".into(),
                format!("{:.3}", fast.checkpoint_secs),
                format!("{:.3}", fast.transient_secs),
                format!("{:.3}", fast.permanent_secs),
                fast.transient_net_bytes.to_string(),
            ],
            vec![
                "congested (2 MB/s)".into(),
                format!("{:.3}", slow.checkpoint_secs),
                format!("{:.3}", slow.transient_secs),
                format!("{:.3}", slow.permanent_secs),
                slow.transient_net_bytes.to_string(),
            ],
        ],
    ));
    out.push_str(
        "\nOne OSM checkpoint serves both levels: its data stripes across \
         the array (parallel write) while its image clusters on the local \
         disk. Transient recovery reads the local image — zero network \
         bytes, immune to congestion — while permanent recovery reads the \
         striped copy from a surviving node.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_tradeoff_holds() {
        let staggered = run_shape(4, 3, 4, 12);
        let all_at_once = run_shape(4, 3, 12, 12);
        // First stagger group resumes earlier than the unstaggered mean.
        assert!(staggered.first_group_blocked_secs < all_at_once.mean_blocked_secs);
    }
}
