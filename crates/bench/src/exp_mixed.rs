//! Mixed transaction-style workload across the four architectures — the
//! I/O-centric application mix (E-commerce, data mining) the paper's
//! introduction motivates, with an 80/20 hot-spot skew and a 30% write
//! ratio.

use cluster::ClusterConfig;
use sim_core::Engine;
use workloads::{run_mixed, MixedConfig, MixedResult};

use crate::harness::{build_store, md_table, par_map, SystemKind};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Architecture.
    pub kind: SystemKind,
    /// Write ratio used.
    pub write_fraction: f64,
    /// Measurement.
    pub result: MixedResult,
}

/// Run one configuration.
pub fn run_point(kind: SystemKind, write_fraction: f64) -> MixedResult {
    let mut engine = Engine::new();
    let mut store = build_store(&mut engine, ClusterConfig::trojans(), kind);
    let cfg = MixedConfig { clients: 16, ops_per_client: 32, write_fraction, ..Default::default() };
    run_mixed(&mut engine, &mut store, &cfg).expect("mixed run failed")
}

/// Sweep architectures × write ratios.
pub fn run_sweep() -> Vec<Point> {
    let mut cases = Vec::new();
    for kind in SystemKind::MEASURED {
        for wf in [0.0, 0.3, 0.7] {
            cases.push((kind, wf));
        }
    }
    par_map(cases, |(kind, wf)| Point { kind, write_fraction: wf, result: run_point(kind, wf) })
}

/// Render as markdown.
pub fn render(points: &[Point]) -> String {
    let mut out = String::from(
        "\n### Mixed transaction workload (16 clients, 1-4 block ops, 80/20 hot-spot skew)\n\n",
    );
    let headers =
        ["write ratio", "NFS (ops/s)", "RAID-5 (ops/s)", "RAID-10 (ops/s)", "RAID-x (ops/s)"];
    let rows: Vec<Vec<String>> = [0.0, 0.3, 0.7]
        .into_iter()
        .map(|wf| {
            let mut row = vec![format!("{:.0}%", wf * 100.0)];
            for kind in SystemKind::MEASURED {
                let p = points
                    .iter()
                    .find(|p| p.kind == kind && (p.write_fraction - wf).abs() < 1e-9)
                    .expect("missing point");
                row.push(format!("{:.0}", p.result.ops_per_sec));
            }
            row
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nAs the write ratio climbs, RAID-5 falls behind (every hot-spot \
         update is a read-modify-write) while RAID-x holds its rate — its \
         deferred clustered images keep small updates at one foreground \
         disk operation.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidx_core::Arch;

    #[test]
    fn write_heavy_mix_separates_raidx_from_raid5() {
        let rx = run_point(SystemKind::Raid(Arch::RaidX), 0.7);
        let r5 = run_point(SystemKind::Raid(Arch::Raid5), 0.7);
        assert!(rx.ops_per_sec > 1.3 * r5.ops_per_sec);
    }
}
