//! Section 6 fault-tolerance claims, executed: single-disk recovery on
//! every redundant architecture, the 4×3 one-failure-per-row bound, and
//! rebuild cost measurements.

use cdd::{CddConfig, IoSystem};
use cluster::ClusterConfig;
use raidx_core::Arch;
use sim_core::plan::background;
use sim_core::Engine;

use crate::harness::md_table;

/// Outcome of one failure/recovery scenario.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Architecture.
    pub arch: Arch,
    /// Scenario label.
    pub scenario: String,
    /// Did all data survive (verified byte-for-byte)?
    pub survived: bool,
    /// Degraded read of the dataset (seconds; 0 if not applicable).
    pub degraded_read_secs: f64,
    /// Rebuild duration (seconds; 0 if not run).
    pub rebuild_secs: f64,
    /// Blocks restored by the rebuild.
    pub rebuilt_blocks: usize,
}

fn dataset(nblocks: u64, bs: usize) -> Vec<u8> {
    (0..nblocks as usize * bs).map(|i| ((i * 13 + 7) % 251) as u8).collect()
}

/// Run single-failure + rebuild on one architecture over the Trojans
/// cluster; returns the measured point.
pub fn single_failure(arch: Arch) -> FaultPoint {
    let mut cc = ClusterConfig::trojans();
    cc.disk.capacity = 512 << 20;
    let mut engine = Engine::new();
    let mut s = IoSystem::new(&mut engine, cc, arch, CddConfig::default());
    let bs = s.block_size() as usize;
    let nblocks = 256u64;
    let data = dataset(nblocks, bs);
    let wp = s.write(0, 0, &data).expect("experiment I/O failed");
    engine.spawn_job("seed", wp);
    engine.run().expect("experiment I/O failed");

    s.fail_disk(3);
    let t0 = engine.now();
    let (got, rp) = s.read(1, 0, nblocks).expect("experiment I/O failed");
    let survived = got == data;
    engine.spawn_job("degraded-read", rp);
    engine.run().expect("experiment I/O failed");
    let degraded_read_secs = engine.now().since(t0).as_secs_f64();

    let t1 = engine.now();
    let (plan, rebuilt_blocks) = s.rebuild_disk(3, 3).expect("experiment I/O failed");
    engine.spawn_job("rebuild", plan);
    engine.run().expect("experiment I/O failed");
    let rebuild_secs = engine.now().since(t1).as_secs_f64();

    // Post-rebuild verification.
    let (after, _) = s.read(2, 0, nblocks).expect("experiment I/O failed");
    FaultPoint {
        arch,
        scenario: "single disk failure + rebuild".into(),
        survived: survived && after == data,
        degraded_read_secs,
        rebuild_secs,
        rebuilt_blocks,
    }
}

/// Foreground cost of rebuilding while clients keep issuing I/O.
#[derive(Debug, Clone)]
pub struct RebuildLoadPoint {
    /// Architecture.
    pub arch: Arch,
    /// Foreground load duration on the healthy array (seconds).
    pub fg_healthy_secs: f64,
    /// Foreground load duration while the rebuild runs in the
    /// background (degraded routing + rebuild contention).
    pub fg_rebuild_secs: f64,
    /// Time until the background rebuild itself drained (seconds).
    pub rebuild_drain_secs: f64,
    /// Blocks the rebuild restored.
    pub rebuilt_blocks: usize,
}

impl RebuildLoadPoint {
    /// Foreground slowdown factor under the rebuild.
    pub fn slowdown(&self) -> f64 {
        self.fg_rebuild_secs / self.fg_healthy_secs
    }
}

/// Spawn the foreground load: four clients each reading the whole seeded
/// dataset in 32-block chunks. Plans are built against the array's
/// *current* fault state, so the degraded run routes around the dead disk.
fn spawn_foreground(engine: &mut Engine, sys: &mut IoSystem, nblocks: u64) {
    for client in 0..4usize {
        for chunk in (0..nblocks).step_by(32) {
            let (_, plan) = sys.read(client, chunk, 32.min(nblocks - chunk)).expect("fg read");
            engine.spawn_job(format!("fg{client}@{chunk}"), plan);
        }
    }
}

/// Measure rebuild-under-load for one architecture: foreground read load
/// on the healthy array vs the same load issued degraded while the
/// rebuild of the failed disk runs as a *background* job competing for
/// the same disks and links.
pub fn rebuild_under_load(arch: Arch) -> RebuildLoadPoint {
    let nblocks = 256u64;
    let mut cc = ClusterConfig::trojans();
    cc.disk.capacity = 512 << 20;
    let seed = |engine: &mut Engine, sys: &mut IoSystem| {
        let bs = sys.block_size() as usize;
        let data = dataset(nblocks, bs);
        let wp = sys.write(0, 0, &data).expect("seed write");
        engine.spawn_job("seed", wp);
        engine.run().expect("seed run");
    };

    // Healthy baseline.
    let mut engine = Engine::new();
    let mut sys = IoSystem::new(&mut engine, cc.clone(), arch, CddConfig::default());
    seed(&mut engine, &mut sys);
    let t0 = engine.now();
    spawn_foreground(&mut engine, &mut sys, nblocks);
    let report = engine.run().expect("healthy fg run");
    let fg_healthy_secs = report.foreground_end.since(t0).as_secs_f64();

    // Degraded foreground + background rebuild, same seeded state.
    let mut engine = Engine::new();
    let mut sys = IoSystem::new(&mut engine, cc, arch, CddConfig::default());
    seed(&mut engine, &mut sys);
    sys.fail_disk(3);
    let t0 = engine.now();
    // Plan the foreground first (degraded routing), then the rebuild, so
    // the clients run exactly as they would mid-recovery.
    spawn_foreground(&mut engine, &mut sys, nblocks);
    let (rebuild_plan, rebuilt_blocks) = sys.rebuild_disk(3, 3).expect("rebuild plan");
    engine.spawn_job("rebuild", background(rebuild_plan));
    let report = engine.run().expect("rebuild-under-load run");
    RebuildLoadPoint {
        arch,
        fg_healthy_secs,
        fg_rebuild_secs: report.foreground_end.since(t0).as_secs_f64(),
        rebuild_drain_secs: report.end.since(t0).as_secs_f64(),
        rebuilt_blocks,
    }
}

/// Foreground cost of an epoch-map rebalance: retiring a healthy disk
/// onto a hot-added spare while clients keep reading.
#[derive(Debug, Clone)]
pub struct RebalanceLoadPoint {
    /// Architecture.
    pub arch: Arch,
    /// Foreground load duration on the static array (seconds).
    pub fg_healthy_secs: f64,
    /// Foreground load duration while the migration drains in the
    /// background (old-home routing + copy contention).
    pub fg_rebalance_secs: f64,
    /// Time until the background migration itself drained (seconds).
    pub rebalance_drain_secs: f64,
    /// Blocks the migration moved.
    pub moved_blocks: usize,
}

impl RebalanceLoadPoint {
    /// Foreground slowdown factor under the migration.
    pub fn slowdown(&self) -> f64 {
        self.fg_rebalance_secs / self.fg_healthy_secs
    }
}

/// Measure rebalance-under-load for one architecture: the same foreground
/// read load as [`rebuild_under_load`], but the background job is the
/// incremental migration draining a disk-retirement epoch transition
/// instead of a post-failure rebuild — the cost the epoch-versioned map
/// pays to reshape a *healthy* array.
pub fn rebalance_under_load(arch: Arch) -> RebalanceLoadPoint {
    let nblocks = 256u64;
    let mut cc = ClusterConfig::trojans();
    cc.disk.capacity = 512 << 20;
    let seed = |engine: &mut Engine, sys: &mut IoSystem| {
        let bs = sys.block_size() as usize;
        let data = dataset(nblocks, bs);
        let wp = sys.write(0, 0, &data).expect("seed write");
        engine.spawn_job("seed", wp);
        engine.run().expect("seed run");
    };

    // Static (epoch-0) baseline.
    let mut engine = Engine::new();
    let mut sys = IoSystem::new(&mut engine, cc.clone(), arch, CddConfig::default());
    seed(&mut engine, &mut sys);
    let t0 = engine.now();
    spawn_foreground(&mut engine, &mut sys, nblocks);
    let report = engine.run().expect("healthy fg run");
    let fg_healthy_secs = report.foreground_end.since(t0).as_secs_f64();

    // Epoch transition + foreground load + background migration drain.
    let mut engine = Engine::new();
    let mut sys = IoSystem::new(&mut engine, cc, arch, CddConfig::default());
    seed(&mut engine, &mut sys);
    sys.add_disk(&mut engine, 0).expect("hot-add spare");
    sys.remove_disk(0, 3).expect("retire disk 3");
    let t0 = engine.now();
    // Plan the foreground first: mid-migration reads of still-pending
    // blocks route to the old home, exactly as clients would see them.
    spawn_foreground(&mut engine, &mut sys, nblocks);
    let out = sys.rebalance(3, None).expect("rebalance plan");
    assert!(out.finished, "unbounded rebalance must drain the migration");
    engine.spawn_job("rebalance", background(out.plan));
    let report = engine.run().expect("rebalance-under-load run");
    RebalanceLoadPoint {
        arch,
        fg_healthy_secs,
        fg_rebalance_secs: report.foreground_end.since(t0).as_secs_f64(),
        rebalance_drain_secs: report.end.since(t0).as_secs_f64(),
        moved_blocks: out.moved,
    }
}

/// The paper's 4×3 claim: three simultaneous failures, one per row,
/// survive; a fourth in an occupied row loses data.
pub fn multi_failure_4x3() -> (bool, bool) {
    let mut cc = ClusterConfig::trojans_4x3();
    cc.disk.capacity = 512 << 20;
    let mut engine = Engine::new();
    let mut s = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());
    let bs = s.block_size() as usize;
    let data = dataset(240, bs);
    s.write(0, 0, &data).expect("experiment I/O failed");
    s.fail_disk(0); // row 0
    s.fail_disk(7); // row 1
    s.fail_disk(9); // row 2
    let three_ok = matches!(s.read(1, 0, 240), Ok((got, _)) if got == data);
    s.fail_disk(2); // second failure in row 0
    let four_ok = s.read(1, 0, 240).is_ok();
    (three_ok, four_ok)
}

/// Render all fault experiments.
pub fn render() -> String {
    let mut out = String::from("\n### Section 6 fault tolerance, executed\n\n");
    let headers = [
        "Architecture",
        "Scenario",
        "Data intact",
        "Degraded read (s)",
        "Rebuild (s)",
        "Blocks rebuilt",
    ];
    let rows: Vec<Vec<String>> = [Arch::Raid5, Arch::Chained, Arch::Raid10, Arch::RaidX]
        .into_iter()
        .map(|arch| {
            let p = single_failure(arch);
            vec![
                arch.name().to_string(),
                p.scenario.clone(),
                if p.survived { "yes".into() } else { "LOST".into() },
                format!("{:.3}", p.degraded_read_secs),
                format!("{:.3}", p.rebuild_secs),
                p.rebuilt_blocks.to_string(),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    let (three, four) = multi_failure_4x3();
    out.push_str(&format!(
        "\n4x3 array: three simultaneous failures (one per stripe-group row) \
         survived = {three}; adding a second failure in one row readable = {four} \
         (paper: up to 3 failures tolerated, one per row).\n",
    ));
    out.push_str("\n### Rebuild under continuing foreground load\n\n");
    let headers = [
        "Architecture",
        "fg healthy (s)",
        "fg during rebuild (s)",
        "slowdown",
        "rebuild drain (s)",
        "Blocks rebuilt",
    ];
    let rows: Vec<Vec<String>> = [Arch::Raid5, Arch::Chained, Arch::Raid10, Arch::RaidX]
        .into_iter()
        .map(|arch| {
            let p = rebuild_under_load(arch);
            vec![
                arch.name().to_string(),
                format!("{:.4}", p.fg_healthy_secs),
                format!("{:.4}", p.fg_rebuild_secs),
                format!("{:.2}x", p.slowdown()),
                format!("{:.4}", p.rebuild_drain_secs),
                p.rebuilt_blocks.to_string(),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nThe rebuild runs as a background job competing with four clients \
         re-reading the dataset degraded: foreground latency pays for both \
         the re-routed reads and the rebuild's source/target traffic, while \
         the drain column is how long the array stays exposed to a second \
         failure.\n",
    );
    out.push_str("\n### Rebalance under continuing foreground load\n\n");
    let headers = [
        "Architecture",
        "fg static (s)",
        "fg during rebalance (s)",
        "slowdown",
        "migration drain (s)",
        "Blocks moved",
    ];
    let rows: Vec<Vec<String>> = [Arch::Raid5, Arch::Chained, Arch::Raid10, Arch::RaidX]
        .into_iter()
        .map(|arch| {
            let p = rebalance_under_load(arch);
            vec![
                arch.name().to_string(),
                format!("{:.4}", p.fg_healthy_secs),
                format!("{:.4}", p.fg_rebalance_secs),
                format!("{:.2}x", p.slowdown()),
                format!("{:.4}", p.rebalance_drain_secs),
                p.moved_blocks.to_string(),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nHere the array is healthy: a hot-added spare absorbs a retired \
         disk via the epoch map's incremental migration, so only that \
         disk's blocks move — compare the drain and slowdown columns \
         against the full rebuild table above, which must reconstruct \
         every lost block from redundancy.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_architecture_survives_and_rebuilds() {
        for arch in [Arch::Raid5, Arch::Raid10, Arch::RaidX] {
            let p = single_failure(arch);
            assert!(p.survived, "{arch:?} lost data");
            assert!(p.rebuilt_blocks > 0);
            assert!(p.rebuild_secs > 0.0);
        }
    }

    #[test]
    fn four_by_three_bound() {
        let (three, four) = multi_failure_4x3();
        assert!(three);
        assert!(!four);
    }

    #[test]
    fn rebalance_under_load_moves_only_the_retired_disk() {
        let p = rebalance_under_load(Arch::RaidX);
        assert!(p.moved_blocks > 0, "migration moved nothing");
        assert!(p.fg_healthy_secs > 0.0);
        assert!(p.rebalance_drain_secs >= p.fg_healthy_secs * 0.1);
        let r = rebuild_under_load(Arch::RaidX);
        assert!(
            p.moved_blocks <= r.rebuilt_blocks,
            "migration ({}) moved more blocks than a full rebuild restored ({})",
            p.moved_blocks,
            r.rebuilt_blocks
        );
    }

    #[test]
    fn rebuild_under_load_costs_foreground_time() {
        let p = rebuild_under_load(Arch::RaidX);
        assert!(p.rebuilt_blocks > 0);
        assert!(p.fg_healthy_secs > 0.0);
        assert!(
            p.fg_rebuild_secs >= p.fg_healthy_secs,
            "degraded+rebuild foreground {:.4}s beat healthy {:.4}s",
            p.fg_rebuild_secs,
            p.fg_healthy_secs
        );
        assert!(
            p.rebuild_drain_secs >= p.fg_rebuild_secs * 0.5,
            "rebuild drained implausibly fast"
        );
    }
}
