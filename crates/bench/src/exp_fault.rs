//! Section 6 fault-tolerance claims, executed: single-disk recovery on
//! every redundant architecture, the 4×3 one-failure-per-row bound, and
//! rebuild cost measurements.

use cdd::{CddConfig, IoSystem};
use cluster::ClusterConfig;
use raidx_core::Arch;
use sim_core::Engine;

use crate::harness::md_table;

/// Outcome of one failure/recovery scenario.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Architecture.
    pub arch: Arch,
    /// Scenario label.
    pub scenario: String,
    /// Did all data survive (verified byte-for-byte)?
    pub survived: bool,
    /// Degraded read of the dataset (seconds; 0 if not applicable).
    pub degraded_read_secs: f64,
    /// Rebuild duration (seconds; 0 if not run).
    pub rebuild_secs: f64,
    /// Blocks restored by the rebuild.
    pub rebuilt_blocks: usize,
}

fn dataset(nblocks: u64, bs: usize) -> Vec<u8> {
    (0..nblocks as usize * bs).map(|i| ((i * 13 + 7) % 251) as u8).collect()
}

/// Run single-failure + rebuild on one architecture over the Trojans
/// cluster; returns the measured point.
pub fn single_failure(arch: Arch) -> FaultPoint {
    let mut cc = ClusterConfig::trojans();
    cc.disk.capacity = 512 << 20;
    let mut engine = Engine::new();
    let mut s = IoSystem::new(&mut engine, cc, arch, CddConfig::default());
    let bs = s.block_size() as usize;
    let nblocks = 256u64;
    let data = dataset(nblocks, bs);
    let wp = s.write(0, 0, &data).expect("experiment I/O failed");
    engine.spawn_job("seed", wp);
    engine.run().expect("experiment I/O failed");

    s.fail_disk(3);
    let t0 = engine.now();
    let (got, rp) = s.read(1, 0, nblocks).expect("experiment I/O failed");
    let survived = got == data;
    engine.spawn_job("degraded-read", rp);
    engine.run().expect("experiment I/O failed");
    let degraded_read_secs = engine.now().since(t0).as_secs_f64();

    let t1 = engine.now();
    let (plan, rebuilt_blocks) = s.rebuild_disk(3, 3).expect("experiment I/O failed");
    engine.spawn_job("rebuild", plan);
    engine.run().expect("experiment I/O failed");
    let rebuild_secs = engine.now().since(t1).as_secs_f64();

    // Post-rebuild verification.
    let (after, _) = s.read(2, 0, nblocks).expect("experiment I/O failed");
    FaultPoint {
        arch,
        scenario: "single disk failure + rebuild".into(),
        survived: survived && after == data,
        degraded_read_secs,
        rebuild_secs,
        rebuilt_blocks,
    }
}

/// The paper's 4×3 claim: three simultaneous failures, one per row,
/// survive; a fourth in an occupied row loses data.
pub fn multi_failure_4x3() -> (bool, bool) {
    let mut cc = ClusterConfig::trojans_4x3();
    cc.disk.capacity = 512 << 20;
    let mut engine = Engine::new();
    let mut s = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());
    let bs = s.block_size() as usize;
    let data = dataset(240, bs);
    s.write(0, 0, &data).expect("experiment I/O failed");
    s.fail_disk(0); // row 0
    s.fail_disk(7); // row 1
    s.fail_disk(9); // row 2
    let three_ok = matches!(s.read(1, 0, 240), Ok((got, _)) if got == data);
    s.fail_disk(2); // second failure in row 0
    let four_ok = s.read(1, 0, 240).is_ok();
    (three_ok, four_ok)
}

/// Render all fault experiments.
pub fn render() -> String {
    let mut out = String::from("\n### Section 6 fault tolerance, executed\n\n");
    let headers = [
        "Architecture",
        "Scenario",
        "Data intact",
        "Degraded read (s)",
        "Rebuild (s)",
        "Blocks rebuilt",
    ];
    let rows: Vec<Vec<String>> = [Arch::Raid5, Arch::Chained, Arch::Raid10, Arch::RaidX]
        .into_iter()
        .map(|arch| {
            let p = single_failure(arch);
            vec![
                arch.name().to_string(),
                p.scenario.clone(),
                if p.survived { "yes".into() } else { "LOST".into() },
                format!("{:.3}", p.degraded_read_secs),
                format!("{:.3}", p.rebuild_secs),
                p.rebuilt_blocks.to_string(),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    let (three, four) = multi_failure_4x3();
    out.push_str(&format!(
        "\n4x3 array: three simultaneous failures (one per stripe-group row) \
         survived = {three}; adding a second failure in one row readable = {four} \
         (paper: up to 3 failures tolerated, one per row).\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_architecture_survives_and_rebuilds() {
        for arch in [Arch::Raid5, Arch::Raid10, Arch::RaidX] {
            let p = single_failure(arch);
            assert!(p.survived, "{arch:?} lost data");
            assert!(p.rebuilt_blocks > 0);
            assert!(p.rebuild_secs > 0.0);
        }
    }

    #[test]
    fn four_by_three_bound() {
        let (three, four) = multi_failure_4x3();
        assert!(three);
        assert!(!four);
    }
}
