//! Ablations of the design decisions DESIGN.md calls out:
//!
//! 1. **Background vs. synchronous image writes** — the OSM "hiding"
//!    claim: turning off deferral should collapse RAID-x's write advantage
//!    to RAID-10 levels.
//! 2. **Lock-group broadcast cost** — the consistency module's price.
//! 3. **Array shape** — n×k sweeps (12×1, 6×2, 4×3, 2×6): parallelism vs.
//!    pipelining.
//! 4. **RAID-5 small-write anatomy** — operation counts showing the
//!    four-op read-modify-write cycle.

use cdd::{CddConfig, IoSystem};
use cluster::ClusterConfig;
use raidx_core::Arch;
use sim_core::Engine;
use workloads::{run_parallel_io, IoPattern, ParallelIoConfig};

use crate::harness::md_table;

fn run_with(cdd: CddConfig, pattern: IoPattern, clients: usize, cc: ClusterConfig) -> f64 {
    let mut engine = Engine::new();
    let mut store = IoSystem::new(&mut engine, cc, Arch::RaidX, cdd);
    let cfg = ParallelIoConfig { clients, pattern, repeats: 3, ..Default::default() };
    run_parallel_io(&mut engine, &mut store, &cfg).expect("experiment I/O failed").aggregate_mbs
}

/// Ablation 1: deferred vs. synchronous images.
pub fn background_mirroring() -> String {
    let mut out = String::from(
        "\n### Ablation: background (OSM) vs. synchronous image writes, RAID-x, 16 clients\n\n",
    );
    let headers = ["Pattern", "deferred images (MB/s)", "synchronous images (MB/s)", "OSM gain"];
    let rows: Vec<Vec<String>> = [IoPattern::SmallWrite, IoPattern::LargeWrite]
        .into_iter()
        .map(|pat| {
            let on = run_with(CddConfig::default(), pat, 16, ClusterConfig::trojans());
            let off = run_with(
                CddConfig { background_mirroring: false, ..CddConfig::default() },
                pat,
                16,
                ClusterConfig::trojans(),
            );
            vec![
                pat.label().to_string(),
                format!("{on:.2}"),
                format!("{off:.2}"),
                format!("{:.2}x", on / off),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out
}

/// Ablation 2: lock-group broadcast on/off.
pub fn lock_cost() -> String {
    let mut out = String::from(
        "\n### Ablation: consistency-module lock broadcast cost, RAID-x small writes\n\n",
    );
    let headers = ["clients", "locks on (MB/s)", "locks off (MB/s)", "overhead"];
    let rows: Vec<Vec<String>> = [1usize, 4, 16]
        .into_iter()
        .map(|c| {
            let on =
                run_with(CddConfig::default(), IoPattern::SmallWrite, c, ClusterConfig::trojans());
            let off = run_with(
                CddConfig { lock_broadcast: false, ..CddConfig::default() },
                IoPattern::SmallWrite,
                c,
                ClusterConfig::trojans(),
            );
            vec![
                c.to_string(),
                format!("{on:.2}"),
                format!("{off:.2}"),
                format!("{:.1}%", (off / on - 1.0) * 100.0),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out
}

/// Ablation 3: n×k shape sweep with 12 disks.
pub fn shape_sweep() -> String {
    let mut out =
        String::from("\n### Ablation: n x k array shape (12 disks total), RAID-x, 2 MB writes\n\n");
    let headers = ["shape", "clients = nodes", "large write (MB/s)", "large read (MB/s)"];
    let rows: Vec<Vec<String>> = [(12usize, 1usize), (6, 2), (4, 3), (2, 6)]
        .into_iter()
        .map(|(n, k)| {
            let cc = ClusterConfig::shape(n, k);
            let w = run_with(CddConfig::default(), IoPattern::LargeWrite, n, cc.clone());
            let r = run_with(CddConfig::default(), IoPattern::LargeRead, n, cc);
            vec![format!("{n}x{k}"), n.to_string(), format!("{w:.2}"), format!("{r:.2}")]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nWider stripes (more nodes) add parallel NICs and disks; deeper \
         pipelines share a node's bus and link — parallelism beats \
         pipelining when clients scale with nodes.\n",
    );
    out
}

/// Ablation 4: RAID-5 small-write anatomy — count disk operations per
/// logical write.
pub fn raid5_anatomy() -> String {
    let mut cc = ClusterConfig::trojans();
    cc.disk.capacity = 256 << 20;
    let mut engine = Engine::new();
    let mut s5 = IoSystem::new(&mut engine, cc.clone(), Arch::Raid5, CddConfig::default());
    let bs = s5.block_size() as usize;
    let one = vec![1u8; bs];
    let plan5 = s5.write(0, 0, &one).expect("experiment I/O failed");
    let mut engine_x = Engine::new();
    let mut sx = IoSystem::new(&mut engine_x, cc, Arch::RaidX, CddConfig::default());
    let planx = sx.write(0, 0, &one).expect("experiment I/O failed");
    let d5 = plan5.disk_bytes() / bs as u64;
    let dx = planx.disk_bytes() / bs as u64;
    format!(
        "\n### Ablation: small-write anatomy (disk block operations per one-block write)\n\n\
         RAID-5: {d5} block ops (read old data + read old parity + write data + write parity).\n\
         RAID-x: {dx} block op(s) foreground; the image is buffered into its \
         mirroring group and flushed later as part of one long write.\n"
    )
}

/// Ablation 5: disk queue discipline. The Figure-5 workloads keep each
/// client's file compact on the platter, so seeks are short and rotation
/// dominates — scheduling cannot help there (and measurably doesn't).
/// A full-platter scattered read mix is where seek-aware disciplines pay:
/// this ablation hammers one RAID-x array with random block reads spread
/// over the whole logical space.
pub fn disk_scheduling() -> String {
    use sim_core::rng::SplitMix64;
    use sim_disk::spec::SchedPolicy;

    let run_pol = |p: SchedPolicy| -> f64 {
        let mut cc = ClusterConfig::trojans();
        cc.disk.scheduler = p;
        let mut engine = Engine::new();
        let mut store = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());
        let cap = cdd::BlockStore::capacity_blocks(&store);
        let mut rng = SplitMix64::new(0xD15C);
        // 16 clients x 64 scattered single-block reads over the full space,
        let mut total_bytes = 0u64;
        for c in 0..16usize {
            let mut ops = Vec::new();
            for _ in 0..64 {
                let lb = rng.next_below(cap);
                let (_, plan) =
                    cdd::BlockStore::read(&mut store, c, lb, 1).expect("experiment I/O failed");
                total_bytes += cdd::BlockStore::block_size(&store);
                ops.push(plan);
            }
            // Issued asynchronously (deep queues), like a parallel file
            // system driving the array hard.
            engine.spawn_job(format!("c{c}"), sim_core::plan::par(ops));
        }
        let rep = engine.run().expect("experiment I/O failed");
        total_bytes as f64 / rep.foreground_end.as_secs_f64() / 1e6
    };

    let mut out = String::from(
        "\n### Ablation: disk queue discipline (full-platter scattered reads, 16 clients)\n\n",
    );
    let headers = ["discipline", "aggregate (MB/s)"];
    let rows: Vec<Vec<String>> = [
        ("FCFS", SchedPolicy::Fcfs),
        ("SSTF", SchedPolicy::Sstf),
        ("Elevator", SchedPolicy::Elevator),
    ]
    .into_iter()
    .map(|(name, p)| vec![name.to_string(), format!("{:.2}", run_pol(p))])
    .collect();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nOn the Figure-5 workloads (compact per-client files) scheduling \
         changes nothing — seeks are short and the network dominates. On a \
         full-platter random mix, seek-aware disciplines recover the long \
         seek time that FCFS wastes.\n",
    );
    out
}

/// Ablation 6: replica read-balancing policies (the paper's announced
/// "I/O load balancing" next step) on the mirrored architectures.
pub fn read_balancing() -> String {
    use cdd::ReadBalance;
    let run_pol = |arch: Arch, policy: ReadBalance| {
        let mut engine = Engine::new();
        let cfg = CddConfig { read_balance: policy, ..CddConfig::default() };
        let mut store = IoSystem::new(&mut engine, ClusterConfig::trojans(), arch, cfg);
        let wl = ParallelIoConfig {
            clients: 16,
            pattern: IoPattern::LargeRead,
            repeats: 3,
            ..Default::default()
        };
        run_parallel_io(&mut engine, &mut store, &wl).expect("experiment I/O failed").aggregate_mbs
    };
    let mut out =
        String::from("\n### Ablation: replica read balancing (16 clients, 2 MB reads)\n\n");
    let headers =
        ["Architecture", "primary only (MB/s)", "layout preference (MB/s)", "least loaded (MB/s)"];
    let rows: Vec<Vec<String>> = [Arch::Raid10, Arch::Chained, Arch::RaidX]
        .into_iter()
        .map(|arch| {
            vec![
                arch.name().to_string(),
                format!("{:.2}", run_pol(arch, ReadBalance::PrimaryOnly)),
                format!("{:.2}", run_pol(arch, ReadBalance::LayoutPreference)),
                format!("{:.2}", run_pol(arch, ReadBalance::LeastLoaded)),
            ]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nRAID-10 gains ~50%: only half its spindles hold primaries, so \
         load-aware replica selection recruits the idle mirrors. For \
         chained declustering the *static* alternation actually hurts — \
         redirected runs land in the far image region of the platter and \
         pay long seeks — while the load-aware policy correctly stays on \
         primaries when load is already even. RAID-x primaries stripe over \
         every disk, so no policy changes anything: its balance is \
         structural.\n",
    );
    out
}

/// One bounded-backlog run: 16 clients x 8 rounds of scattered one-block
/// writes (scattered so mirroring groups rarely complete and the
/// write-behind queue actually grows), sampling the queue after every
/// request. Returns (aggregate MB/s, peak buffered image blocks).
fn backlog_run(bound: Option<usize>) -> (f64, usize) {
    let cfg = CddConfig { max_image_backlog: bound, ..CddConfig::default() };
    let (mut engine, mut store) =
        cdd::testkit::build_with(ClusterConfig::trojans(), Arch::RaidX, cfg);
    let bs = store.block_size() as usize;
    let buf = vec![0x42u8; bs];
    let mut peak = 0usize;
    let mut total_bytes = 0u64;
    for round in 0..8u64 {
        for client in 0..16usize {
            // Stride clients far apart so images land in distinct groups.
            let lb = client as u64 * 512 + round * 7;
            let plan = store.write(client, lb, &buf).expect("experiment I/O failed");
            peak = peak.max(store.pending_image_blocks());
            total_bytes += bs as u64;
            engine.spawn_job(format!("w{client}.{round}"), plan);
        }
    }
    let rep = engine.run().expect("experiment I/O failed");
    (total_bytes as f64 / rep.foreground_end.as_secs_f64() / 1e6, peak)
}

/// Ablation 7: the write-behind backlog bound. Unbounded reproduces the
/// paper's queue; tightening the bound converts deferred image writes
/// back into foreground flushes, trading write latency for a hard cap on
/// buffered dirty state (what a real array must bound to survive a crash
/// with a fixed NVRAM budget).
pub fn backlog_bound() -> String {
    let mut out = String::from(
        "\n### Ablation: OSM write-behind backlog bound, RAID-x, 16 clients, scattered writes\n\n",
    );
    let headers = ["backlog bound (blocks)", "aggregate (MB/s)", "peak buffered blocks"];
    let rows: Vec<Vec<String>> = [None, Some(64), Some(16), Some(4), Some(0)]
        .into_iter()
        .map(|bound| {
            let (mbs, peak) = backlog_run(bound);
            let label = bound.map_or("unbounded".to_string(), |b| b.to_string());
            vec![label, format!("{mbs:.2}"), peak.to_string()]
        })
        .collect();
    out.push_str(&md_table(&headers, &rows));
    out.push_str(
        "\nThe backlog gauge stays clamped at the bound while throughput \
         degrades toward the synchronous-mirroring floor as the bound \
         approaches zero — the deferral win and the dirty-state exposure \
         are the same blocks.\n",
    );
    out
}

/// All ablations.
pub fn render_all() -> String {
    format!(
        "{}{}{}{}{}{}{}",
        background_mirroring(),
        lock_cost(),
        shape_sweep(),
        disk_scheduling(),
        read_balancing(),
        raid5_anatomy(),
        backlog_bound()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferral_is_the_win() {
        let on = run_with(CddConfig::default(), IoPattern::SmallWrite, 8, ClusterConfig::trojans());
        let off = run_with(
            CddConfig { background_mirroring: false, ..CddConfig::default() },
            IoPattern::SmallWrite,
            8,
            ClusterConfig::trojans(),
        );
        assert!(on > 1.2 * off, "deferred {on:.2} vs sync {off:.2}");
    }

    #[test]
    fn backlog_never_exceeds_bound() {
        let (_, unbounded_peak) = backlog_run(None);
        for bound in [0usize, 4, 16] {
            let (_, peak) = backlog_run(Some(bound));
            assert!(peak <= bound, "bound {bound} violated: peak {peak}");
        }
        assert!(
            unbounded_peak > 16,
            "unbounded run never built a backlog (peak {unbounded_peak}); \
             the sweep is not exercising backpressure"
        );
    }

    #[test]
    fn raid5_does_four_ops() {
        let text = raid5_anatomy();
        assert!(text.contains("RAID-5: 4 block ops"), "{text}");
        assert!(text.contains("RAID-x: 1 block op"), "{text}");
    }
}
