//! Engine performance harness behind the `perf` binary — the
//! `BENCH_engine.json` events-per-second trajectory.
//!
//! Each scenario is run once as warmup and then `samples` timed times;
//! the wall-clock samples reduce to median + MAD (median absolute
//! deviation — robust against scheduler noise on a shared host). Two
//! kinds of numbers come out:
//!
//! * advisory: median/MAD wall time and `rate = work / median secs`
//!   (events per second for engine scenarios) — machine-dependent;
//! * gateable: the deterministic work counters each run returns, which
//!   must be identical across every repetition (the harness flags a
//!   scenario as *unstable* otherwise — a nondeterminism bug).
//!
//! The gated rows (`perf_smoke`, `model_check_budget`) call straight
//! into [`raidx_verify::perf_smoke`] so the baseline writer and the
//! verify gate can never drift apart; the `zipf_cache` row likewise
//! calls [`raidx_verify::cache_coherence::zipf_cache_work`], whose
//! hit-rate/speedup counters verify pass 13 gates directly. On top of the scenario table the
//! harness measures profiler-on overhead against the same workload and
//! snapshots a per-phase host attribution ([`sim_core::ProfReport`]) for
//! the Perfetto host-track export.

use std::time::Instant;

use cluster::ClusterConfig;
use raidx_core::Arch;
use raidx_verify::benchfile::BenchScenario;
use raidx_verify::cache_coherence;
use raidx_verify::fault_sweep::{self, FaultKind, SweepScenario};
use raidx_verify::perf_smoke;
use sim_core::prof::{HostProfiler, ProfReport};
use sim_core::Engine;
use workloads::{run_parallel_io, IoPattern, ParallelIoConfig};

use crate::harness::{build_store, SystemKind};

/// Harness options.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Timed repetitions per scenario.
    pub samples: usize,
    /// Smoke mode: fewer samples' worth of scenarios — drops the
    /// oversized scale canary so CI stays fast.
    pub smoke: bool,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions { samples: 5, smoke: false }
    }
}

/// Everything one `perf` invocation produces.
#[derive(Debug, Clone)]
pub struct PerfRun {
    /// One row per scenario, ready for `benchfile::render`.
    pub rows: Vec<BenchScenario>,
    /// Scenarios whose work counters differed between repetitions
    /// (must be empty — anything here is a determinism bug).
    pub unstable: Vec<String>,
    /// Measured profiler-on overhead on the RAID-x write workload, in
    /// percent of the profiler-off median (advisory; budget < 5%).
    pub overhead_pct: f64,
    /// Per-phase host attribution from a profiled run.
    pub attribution: ProfReport,
}

/// Median and median-absolute-deviation of a sample set (ns). The
/// samples are sorted internally; an empty slice reduces to `(0, 0)`.
pub fn median_mad(samples: &[u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let mut dev: Vec<u64> = sorted.iter().map(|&s| s.abs_diff(median)).collect();
    dev.sort_unstable();
    (median, dev[dev.len() / 2])
}

fn stats_pairs(engine: &Engine) -> Vec<(String, u64)> {
    engine.stats().pairs().iter().map(|&(k, v)| (k.to_string(), v)).collect()
}

/// Run a parallel-write workload for `kind` on an `nodes`-node cluster,
/// optionally profiled; returns the engine work counters and, when
/// profiled, the attribution report.
fn arch_run(
    kind: SystemKind,
    nodes: usize,
    clients: usize,
    repeats: usize,
    profiled: bool,
) -> (Vec<(String, u64)>, Option<ProfReport>) {
    let mut engine = Engine::new();
    if profiled {
        engine.set_profiler(HostProfiler::default());
    }
    let mut store = build_store(&mut engine, ClusterConfig::shape(nodes, 1), kind);
    let cfg =
        ParallelIoConfig { clients, pattern: IoPattern::LargeWrite, repeats, ..Default::default() };
    run_parallel_io(&mut engine, &mut store, &cfg).expect("perf workload failed");
    let work = stats_pairs(&engine);
    (work, engine.take_profiler().map(|p| p.report()))
}

struct Scenario {
    name: &'static str,
    rate: &'static str,
    run: Box<dyn Fn() -> Vec<(String, u64)>>,
}

fn scenario_list(smoke: bool) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = vec![Scenario {
        name: perf_smoke::SMOKE_NAME,
        rate: "events",
        run: Box::new(|| perf_smoke::smoke_run(false).work),
    }];
    for kind in SystemKind::MEASURED {
        let name = match kind {
            SystemKind::Nfs => "parallel_write_nfs",
            SystemKind::Raid(Arch::Raid5) => "parallel_write_raid5",
            SystemKind::Raid(Arch::Raid10) => "parallel_write_raid10",
            SystemKind::Raid(Arch::RaidX) => "parallel_write_raidx",
            SystemKind::Raid(Arch::Chained) => "parallel_write_chained",
        };
        out.push(Scenario {
            name,
            rate: "events",
            run: Box::new(move || arch_run(kind, 8, 4, 2, false).0),
        });
    }
    out.push(Scenario {
        name: "fault_smoke",
        rate: "trace_events",
        run: Box::new(|| {
            let sc = SweepScenario {
                arch: Arch::RaidX,
                kind: FaultKind::Permanent,
                inject_at: 18,
                cached: false,
            };
            let outcome = fault_sweep::run_scenario(&sc);
            vec![
                ("trace_events".to_string(), outcome.events as u64),
                ("failed_ops".to_string(), outcome.failed_ops as u64),
            ]
        }),
    });
    out.push(Scenario {
        name: "reconfig_smoke",
        rate: "trace_events",
        run: Box::new(|| {
            // Disk add + retire mid-workload, migration drained after the
            // script: tracks rebalance throughput next to fault recovery.
            let sc = SweepScenario {
                arch: Arch::RaidX,
                kind: FaultKind::Reconfig,
                inject_at: 18,
                cached: false,
            };
            let outcome = fault_sweep::run_scenario(&sc);
            vec![
                ("trace_events".to_string(), outcome.events as u64),
                ("failed_ops".to_string(), outcome.failed_ops as u64),
            ]
        }),
    });
    out.push(Scenario {
        name: perf_smoke::MODEL_NAME,
        rate: "steps",
        run: Box::new(perf_smoke::model_budget_work),
    });
    out.push(Scenario {
        name: cache_coherence::ZIPF_NAME,
        rate: "cache_hits",
        // Cached + uncached runs of the shared Zipf read workload; the
        // hit-rate and speedup counters are what verify pass 13 gates.
        run: Box::new(cache_coherence::zipf_cache_work),
    });
    if !smoke {
        // Deliberately oversized cluster: the scaling canary tracks how
        // engine cost grows toward the north star's cluster sizes.
        out.push(Scenario {
            name: "scale_canary_64",
            rate: "events",
            run: Box::new(|| arch_run(SystemKind::Raid(Arch::RaidX), 64, 64, 1, false).0),
        });
    }
    out
}

fn measure_scenario(sc: &Scenario, samples: usize, unstable: &mut Vec<String>) -> BenchScenario {
    let reference = (sc.run)(); // warmup + reference work counters
    let mut walls = Vec::with_capacity(samples);
    let mut stable = true;
    for _ in 0..samples {
        // det-ok: host stopwatch around a whole run; advisory figures only.
        let t0 = Instant::now();
        let work = (sc.run)();
        // det-ok: host stopwatch readout for the advisory wall figures.
        walls.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        stable &= work == reference;
    }
    if !stable {
        unstable.push(sc.name.to_string());
    }
    let (median, mad) = median_mad(&walls);
    let rate_units = reference.iter().find(|(k, _)| k == sc.rate).map_or(0, |&(_, v)| v);
    BenchScenario {
        name: sc.name.to_string(),
        samples,
        wall_median_ns: median,
        wall_mad_ns: mad,
        rate_counter: sc.rate.to_string(),
        rate_per_sec: rate_units as f64 / (median.max(1) as f64 * 1e-9),
        work: reference,
    }
}

/// Measure profiler-on overhead (percent of the profiler-off median on
/// the RAID-x parallel write) and capture a phase attribution.
pub fn measure_overhead(samples: usize) -> (f64, ProfReport) {
    let samples = samples.max(3);
    let time_one = |profiled: bool| -> (u64, Option<ProfReport>) {
        // det-ok: host stopwatch for the overhead comparison (advisory).
        let t0 = Instant::now();
        let (_, rep) = arch_run(SystemKind::Raid(Arch::RaidX), 8, 4, 2, profiled);
        // det-ok: host stopwatch readout for the overhead comparison.
        (u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX), rep)
    };
    time_one(false); // warmup
    let plain: Vec<u64> = (0..samples).map(|_| time_one(false).0).collect();
    let mut attribution = None;
    let profiled: Vec<u64> = (0..samples)
        .map(|_| {
            let (ns, rep) = time_one(true);
            attribution = rep;
            ns
        })
        .collect();
    let (m_plain, _) = median_mad(&plain);
    let (m_prof, _) = median_mad(&profiled);
    let overhead = 100.0 * (m_prof as f64 - m_plain as f64) / m_plain.max(1) as f64;
    (overhead, attribution.expect("profiled run returns a report"))
}

/// Run the full harness: every scenario, then the overhead measurement.
pub fn run(opts: &PerfOptions) -> PerfRun {
    let samples = opts.samples.max(1);
    let mut unstable = Vec::new();
    let rows = scenario_list(opts.smoke)
        .iter()
        .map(|sc| measure_scenario(sc, samples, &mut unstable))
        .collect();
    let (overhead_pct, attribution) = measure_overhead(samples);
    PerfRun { rows, unstable, overhead_pct, attribution }
}

/// Render the run as a fixed-width terminal table.
pub fn render_summary(run: &PerfRun) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>10} {:>16} {:>14}",
        "scenario", "median ms", "mad ms", "rate", "work counters"
    );
    for r in &run.rows {
        let _ = writeln!(
            out,
            "{:<24} {:>12.3} {:>10.3} {:>12.0}/s {:>14}",
            r.name,
            r.wall_median_ns as f64 / 1e6,
            r.wall_mad_ns as f64 / 1e6,
            r.rate_per_sec,
            format!(
                "{} {}",
                r.rate_counter,
                r.work.iter().find(|(k, _)| *k == r.rate_counter).map_or(0, |&(_, v)| v)
            ),
        );
    }
    let _ = writeln!(
        out,
        "profiler-on overhead: {:.2}% of the profiler-off median (budget < 5%)",
        run.overhead_pct
    );
    for name in &run.unstable {
        let _ = writeln!(out, "WARNING: scenario {name} had unstable work counters");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_mad_reduces_correctly() {
        assert_eq!(median_mad(&[]), (0, 0));
        assert_eq!(median_mad(&[7]), (7, 0));
        // sorted: 1 2 3 9 100 -> median 3; deviations 2 1 0 6 97 -> mad 2.
        assert_eq!(median_mad(&[9, 1, 100, 3, 2]), (3, 2));
        // Even count takes the upper middle, like the microbench reducer.
        assert_eq!(median_mad(&[4, 1, 2, 3]), (3, 1));
    }

    #[test]
    fn smoke_scenarios_measure_stably() {
        let mut unstable = Vec::new();
        let list = scenario_list(true);
        assert!(list.len() >= 4, "smoke mode still covers >= 4 scenarios");
        let sc = &list[0]; // perf_smoke: the cheapest engine scenario
        let row = measure_scenario(sc, 2, &mut unstable);
        assert!(unstable.is_empty(), "{unstable:?}");
        assert_eq!(row.samples, 2);
        assert!(row.wall_median_ns > 0);
        assert!(row.rate_per_sec > 0.0);
        assert!(row.work.iter().any(|(k, v)| k == "events" && *v > 0), "{row:?}");
    }

    #[test]
    fn full_scenario_list_names_are_unique_and_complete() {
        let list = scenario_list(false);
        assert!(list.len() >= 8, "full list covers all scenario families");
        let mut names: Vec<_> = list.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), list.len(), "duplicate scenario names");
        for required in [
            "perf_smoke",
            "parallel_write_raidx",
            "fault_smoke",
            "reconfig_smoke",
            "model_check_budget",
            "zipf_cache",
            "scale_canary_64",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
    }
}
