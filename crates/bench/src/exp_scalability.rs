//! Scalability beyond the Trojans prototype — the paper's stated next
//! step ("an enlarged prototype of several hundreds of disks on a much
//! larger Trojans cluster"): RAID-x bandwidth as the cluster grows, on
//! the 1999 interconnect and on gigabit Ethernet.

use cdd::{CddConfig, IoSystem};
use cluster::ClusterConfig;
use raidx_core::Arch;
use sim_core::Engine;
use sim_net::NetSpec;
use workloads::{run_parallel_io, IoPattern, ParallelIoConfig};

use crate::harness::{md_table, par_map};

/// One scalability point.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Nodes (= clients = disks, one disk per node).
    pub nodes: usize,
    /// Gigabit interconnect?
    pub gigabit: bool,
    /// Aggregate large-read MB/s.
    pub read_mbs: f64,
    /// Aggregate large-write MB/s.
    pub write_mbs: f64,
    /// Engine events dispatched for the large-write run
    /// ([`sim_core::EngineStats`]) — the simulator-cost axis of the
    /// sweep, deterministic per configuration.
    pub engine_events: u64,
}

/// Node counts swept.
pub const NODES: [usize; 5] = [4, 8, 16, 32, 64];

fn run_one(nodes: usize, gigabit: bool, pattern: IoPattern) -> (f64, u64) {
    let mut cc = ClusterConfig::shape(nodes, 1);
    if gigabit {
        cc.net = NetSpec::gigabit();
    }
    let mut engine = Engine::new();
    let mut store = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());
    let cfg = ParallelIoConfig { clients: nodes, pattern, repeats: 2, ..Default::default() };
    let mbs =
        run_parallel_io(&mut engine, &mut store, &cfg).expect("scale run failed").aggregate_mbs;
    (mbs, engine.stats().events)
}

/// Full sweep.
pub fn run_sweep() -> Vec<ScalePoint> {
    let mut cases = Vec::new();
    for gigabit in [false, true] {
        for nodes in NODES {
            cases.push((nodes, gigabit));
        }
    }
    par_map(cases, |(nodes, gigabit)| {
        let (read_mbs, _) = run_one(nodes, gigabit, IoPattern::LargeRead);
        let (write_mbs, engine_events) = run_one(nodes, gigabit, IoPattern::LargeWrite);
        ScalePoint { nodes, gigabit, read_mbs, write_mbs, engine_events }
    })
}

/// Render as markdown.
pub fn render(points: &[ScalePoint]) -> String {
    let mut out = String::from(
        "\n### Scalability: RAID-x aggregate bandwidth as the cluster grows \
         (clients = nodes = disks)\n\n",
    );
    for gigabit in [false, true] {
        out.push_str(&format!(
            "\n**{} interconnect**\n\n",
            if gigabit { "Gigabit" } else { "Fast Ethernet (1999)" }
        ));
        let headers = [
            "nodes",
            "large read (MB/s)",
            "large write (MB/s)",
            "read MB/s per node",
            "engine events (write)",
        ];
        let rows: Vec<Vec<String>> = points
            .iter()
            .filter(|p| p.gigabit == gigabit)
            .map(|p| {
                vec![
                    p.nodes.to_string(),
                    format!("{:.1}", p.read_mbs),
                    format!("{:.1}", p.write_mbs),
                    format!("{:.2}", p.read_mbs / p.nodes as f64),
                    p.engine_events.to_string(),
                ]
            })
            .collect();
        out.push_str(&md_table(&headers, &rows));
    }
    out.push_str(
        "\nThe serverless design scales with node count because every node \
         contributes a NIC port and a disk arm; per-node efficiency dips \
         slowly as the lock broadcast and cross-traffic grow. The same \
         software on gigabit shifts the bottleneck to the disk arms.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raidx_scales_superlinearly_vs_flat() {
        let (r8, _) = run_one(8, false, IoPattern::LargeRead);
        let (r32, _) = run_one(32, false, IoPattern::LargeRead);
        assert!(r32 > 2.5 * r8, "32 nodes {r32:.1} MB/s vs 8 nodes {r8:.1} MB/s — not scaling");
    }

    #[test]
    fn engine_work_grows_with_cluster_size() {
        let (_, e8) = run_one(8, false, IoPattern::LargeWrite);
        let (_, e32) = run_one(32, false, IoPattern::LargeWrite);
        assert!(e8 > 0, "no engine events counted");
        assert!(
            e32 > 2 * e8,
            "simulator cost did not grow with the cluster: {e8} events @8 vs {e32} @32"
        );
    }
}
