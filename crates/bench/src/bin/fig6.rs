//! Regenerates Figure 6 (Andrew benchmark elapsed times).

fn main() {
    let points = bench::exp_fig6::run_sweep();
    println!("{}", bench::exp_fig6::render(&points));
}
