//! Runs every experiment and emits the complete results document
//! (the data sections of EXPERIMENTS.md).

fn main() {
    println!("# RAID-x reproduction — experiment results\n");
    println!("## Layout maps (Figures 1 & 3)");
    println!("{}", bench::exp_layouts::render_all());
    println!("## Table 2 (analytic model)");
    println!("{}", bench::exp_table2::render(16));
    println!("## Figure 5 (parallel I/O bandwidth)");
    let f5 = bench::exp_fig5::run_sweep();
    println!("{}", bench::exp_fig5::render(&f5));
    let rows: Vec<Vec<String>> = f5
        .iter()
        .map(|p| {
            vec![
                p.kind.name().to_string(),
                p.pattern.label().replace(' ', "-"),
                p.clients.to_string(),
                format!("{:.4}", p.result.aggregate_mbs),
                format!("{:.6}", p.result.elapsed_secs),
                format!("{:.6}", p.result.drain_secs),
            ]
        })
        .collect();
    if let Ok(path) = bench::harness::write_csv(
        "fig5",
        &["arch", "pattern", "clients", "aggregate_mbs", "elapsed_s", "drain_s"],
        &rows,
    ) {
        eprintln!("wrote {path}");
    }
    println!("## Table 3 (1 vs 16 clients)");
    let t3 = bench::exp_table3::run();
    println!("{}", bench::exp_table3::render(&t3));
    println!("## Figure 6 (Andrew benchmark)");
    let f6 = bench::exp_fig6::run_sweep();
    println!("{}", bench::exp_fig6::render(&f6));
    let rows: Vec<Vec<String>> = f6
        .iter()
        .map(|p| {
            let mut row = vec![p.kind.name().to_string(), p.clients.to_string()];
            row.extend(p.result.phase_secs.iter().map(|s| format!("{s:.4}")));
            row.push(format!("{:.4}", p.result.total_secs()));
            row
        })
        .collect();
    if let Ok(path) = bench::harness::write_csv(
        "fig6",
        &["arch", "clients", "makedir_s", "copy_s", "scandir_s", "readall_s", "make_s", "total_s"],
        &rows,
    ) {
        eprintln!("wrote {path}");
    }
    println!("## Figure 7 (striped checkpointing)");
    let f7 = bench::exp_fig7::run_sweep();
    println!("{}", bench::exp_fig7::render(&f7));
    println!("## Reliability under multiple failures");
    println!("{}", bench::exp_reliability::render());
    println!("## Fault tolerance (Section 6)");
    println!("{}", bench::exp_fault::render());
    println!("## Per-operation latency distributions");
    let lat = bench::exp_latency::run_sweep();
    println!("{}", bench::exp_latency::render(&lat));
    println!("## Mixed transaction workload");
    let mx = bench::exp_mixed::run_sweep();
    println!("{}", bench::exp_mixed::render(&mx));
    println!("## Degraded-mode and rebuild-under-load performance");
    let dg = bench::exp_degraded::run_all();
    println!("{}", bench::exp_degraded::render(&dg));
    println!("## Resource utilization (serverless vs central)");
    println!("{}", bench::exp_utilization::render());
    println!("## Scalability beyond the prototype");
    let sc = bench::exp_scalability::run_sweep();
    println!("{}", bench::exp_scalability::render(&sc));
    println!("## Ablations");
    println!("{}", bench::exp_ablations::render_all());
}
