//! Renders Figures 1 and 3 (placement maps).

fn main() {
    println!("{}", bench::exp_layouts::render_all());
}
