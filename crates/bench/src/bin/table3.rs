//! Regenerates Table 3 (1 vs 16 clients, improvement factors).

fn main() {
    let rows = bench::exp_table3::run();
    println!("{}", bench::exp_table3::render(&rows));
}
