//! Degraded-mode and rebuild-under-load bandwidth for every architecture.

fn main() {
    let points = bench::exp_degraded::run_all();
    println!("{}", bench::exp_degraded::render(&points));
}
