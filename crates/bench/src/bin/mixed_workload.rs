//! Mixed transaction-style workload across the four architectures.

fn main() {
    let points = bench::exp_mixed::run_sweep();
    println!("{}", bench::exp_mixed::render(&points));
}
