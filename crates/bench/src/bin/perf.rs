//! Engine performance harness: write the `BENCH_engine.json` baseline
//! plus the host-side attribution artifacts.
//!
//! ```text
//! cargo run --release -p bench --bin perf [-- --samples <n>] [-- --smoke] [-- --out <dir>]
//! ```
//!
//! Default (no `--out`): writes `BENCH_engine.json` at the repo root —
//! the committed baseline the `perf-smoke` verify pass gates against —
//! and the advisory host artifacts under `results/perf/`
//! (`attribution.txt`, a per-phase host wall-clock table, and
//! `host_profile.json`, a Chrome/Perfetto trace of the sampled phase
//! spans). `--smoke` runs the CI subset (drops the oversized scale
//! canary, fewer samples) and MUST be combined with `--out` so a quick
//! check never clobbers the committed baseline. Run under `--release`:
//! debug-build wall figures are meaningless and the run takes minutes.

use std::path::{Path, PathBuf};

use bench::perfbench::{self, PerfOptions};
use raidx_verify::benchfile;
use raidx_verify::perf_smoke::BASELINE_FILE;

struct Cli {
    opts: PerfOptions,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli { opts: PerfOptions::default(), out: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                cli.opts.smoke = true;
                cli.opts.samples = cli.opts.samples.min(3);
            }
            "--samples" => {
                let n = args.next().ok_or("--samples requires a number")?;
                cli.opts.samples =
                    n.parse().map_err(|e| format!("--samples: invalid number `{n}`: {e}"))?;
            }
            "--out" => cli.out = Some(PathBuf::from(args.next().ok_or("--out requires a path")?)),
            "--help" | "-h" => {
                return Err("usage: perf [--samples <n>] [--smoke] [--out <dir>]".to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if cli.opts.smoke && cli.out.is_none() {
        return Err(
            "--smoke requires --out so it cannot overwrite the committed baseline".to_string()
        );
    }
    Ok(cli)
}

fn write_outputs(root: &Path, run: &perfbench::PerfRun) -> std::io::Result<()> {
    let results = root.join("results").join("perf");
    std::fs::create_dir_all(&results)?;
    let bench_path = root.join(BASELINE_FILE);
    std::fs::write(&bench_path, benchfile::render(&run.rows, Some(run.overhead_pct)))?;
    println!("wrote {}", bench_path.display());
    let attr = results.join("attribution.txt");
    std::fs::write(&attr, run.attribution.render_table())?;
    println!("wrote {}", attr.display());
    let chrome = results.join("host_profile.json");
    std::fs::write(&chrome, run.attribution.chrome_trace_json())?;
    println!("wrote {} (load in Perfetto / chrome://tracing)", chrome.display());
    Ok(())
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if cfg!(debug_assertions) {
        eprintln!("perf: warning: debug build — wall figures are meaningless, use --release");
    }
    let root = match &cli.out {
        Some(dir) => dir.clone(),
        // crates/bench -> crates -> repo root.
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("repo root")
            .to_path_buf(),
    };
    println!(
        "perf: {} samples/scenario{}",
        cli.opts.samples.max(1),
        if cli.opts.smoke { ", smoke subset" } else { "" }
    );
    let run = perfbench::run(&cli.opts);
    print!("{}", perfbench::render_summary(&run));
    if let Err(e) = write_outputs(&root, &run) {
        eprintln!("perf: writing outputs under {} failed: {e}", root.display());
        std::process::exit(1);
    }
    if !run.unstable.is_empty() {
        eprintln!("perf: unstable work counters in: {}", run.unstable.join(", "));
        std::process::exit(1);
    }
}
