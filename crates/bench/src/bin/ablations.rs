//! Runs the design ablations (OSM deferral, locks, array shape, RAID-5
//! small-write anatomy).

fn main() {
    println!("{}", bench::exp_ablations::render_all());
}
