//! Run the `raidx-verify` passes and exit non-zero on any finding.
//!
//! ```text
//! cargo run -p bench --bin verify_all [-- --pass <name>]... [-- --budget <n>] [-- --smoke] [-- --list-passes] [-- --json <path>]
//! ```
//!
//! Passes: plan linting of every architecture's real I/O plans, lock-order
//! analysis of a recorded lock trace, the layout conformance sweep, the
//! determinism audit (double-run fingerprints plus the source-level
//! hazard scan), the `raidx-model` interleaving checker, Wing–Gong
//! linearizability over explored SIOS histories, the OSM/checkpoint
//! crash-consistency audit, the trace-determinism audit (the full
//! observability event stream must replay byte-identically), the
//! fault-injection sweep (every enumerated single-fault point recovers
//! byte-for-byte and replays fingerprint-identically), the happens-before
//! race detector over merged engine + protocol traces, the
//! parser-based whole-workspace static analyzer (`raidx-analyze`: five
//! rule families with planted-defect canaries), the perf-smoke gate
//! (deterministic engine work counters vs the committed
//! `BENCH_engine.json` baseline, plus profiler transparency), and the
//! cache-coherence gate (model check + linearizability of the caching
//! scenario with a skip-invalidation canary, cached-vs-uncached
//! transparency on every architecture, the Zipf hit-rate/speedup gate).
//!
//! `--pass <name>` (repeatable, hyphens and underscores interchangeable;
//! `source-scan` is kept as an alias for `static-analysis`, which
//! subsumed the old pass-4b line scanner) runs only the named passes;
//! `--budget <n>` bounds the schedules explored per model-checking
//! scenario (default 100000); `--smoke` shrinks the fault sweep and race
//! detector to their CI subsets; `--list-passes` prints the registry
//! (stable order) and exits; `--json <path>` additionally writes every
//! pass's checks as machine-readable JSON (stable schema: pass, rule,
//! file, line, message, acknowledged, ok). Each pass reports its
//! wall-clock time.

use cdd::{CddConfig, IoSystem};
use cluster::ClusterConfig;
use raidx_core::Arch;
use raidx_verify::{analyze_lock_trace, audit_workload, conformance_sweep, lint_io_paths};
use raidx_verify::{
    cache_coherence, crash_consistency, fault_sweep, linearizability, model_check, perf_smoke,
    race_detect, static_analysis, trace_determinism,
};
use raidx_verify::{report, report::PassReport, source_scan};
use sim_core::Engine;
use std::path::Path;

fn lock_order_pass() -> PassReport {
    let mut report = PassReport::new("lock-order");
    for arch in Arch::ALL {
        let mut engine = Engine::new();
        let mut cc = ClusterConfig::shape(4, 2);
        cc.disk.capacity = 8 << 20;
        let bs = cc.block_size as usize;
        let mut sys = IoSystem::new(&mut engine, cc, arch, CddConfig::default());
        sys.enable_lock_trace();
        let name = sys.layout().name();
        let stripe = sys.layout().stripe_width() as u64;
        let buf = vec![0x77; bs];
        let wide = vec![0x11; bs * stripe as usize];
        for client in 0..4u64 {
            for b in 0..6u64 {
                sys.write(client as usize, client * 16 + b, &buf).expect("write");
            }
            sys.write(client as usize, client * 16 + 8, &wide).expect("stripe write");
        }
        let trace = sys.take_lock_trace();
        let audit = analyze_lock_trace(&trace);
        let detail = if audit.clean() {
            format!("{} grants, {} order edges, no defects", audit.grants, audit.order_edges)
        } else {
            audit.defects.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
        };
        report.push(format!("{name} lock trace"), audit.clean(), detail);
    }
    report
}

fn layout_pass() -> PassReport {
    let mut report = PassReport::new("layout-conformance");
    for row in conformance_sweep() {
        let name = format!("{} {}x{}", row.arch, row.shape.0, row.shape.1);
        let detail = if row.ok() {
            format!("{} blocks conform", row.checked)
        } else {
            format!(
                "{} violations, first: {}",
                row.violations.len(),
                row.violations.first().map(String::as_str).unwrap_or("")
            )
        };
        report.push(name, row.ok(), detail);
    }
    report
}

fn determinism_pass() -> PassReport {
    let mut report = PassReport::new("determinism");
    for arch in Arch::ALL {
        let audit = audit_workload(arch);
        let name = format!("{arch:?} double run");
        let detail = match &audit.divergence {
            None => {
                format!("fingerprint {:016x}, {} trace lines", audit.fingerprint_a, audit.lines)
            }
            Some((i, a, b)) => format!("diverged at line {i}: `{a}` vs `{b}`"),
        };
        report.push(name, audit.deterministic(), detail);
    }
    // Source-level hazard scan over every crate.
    let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir");
    match source_scan::scan_dir(crates_dir) {
        Ok(hazards) => {
            let detail = if hazards.is_empty() {
                "no wall clocks, OS entropy, unordered iteration or stale acks in sim paths"
                    .to_string()
            } else {
                hazards.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
            };
            report.push("source hazard scan", hazards.is_empty(), detail);
        }
        Err(e) => report.fail("source hazard scan", format!("scan failed: {e}")),
    }
    report
}

/// Registry of every pass with a one-line description, in execution
/// order (the order `--list-passes` prints and a full run executes).
const PASSES: [(&str, &str); 13] = [
    ("plan-lint", "reject Plan DAG shapes that would panic or deadlock the event loop"),
    ("lock-order", "replay recorded lock-group traces for double grants, leaks and order cycles"),
    ("layout-conformance", "exhaustive OSM/parity/mirror placement rules across array shapes"),
    ("determinism", "double-run aggregate fingerprints plus the source-level hazard scan"),
    ("model-check", "exhaustive interleaving of small multi-client CDD scenarios"),
    ("linearizability", "Wing-Gong check of explored SIOS histories against a sequential spec"),
    ("crash-consistency", "crash-point enumeration inside OSM flushes and checkpoint commits"),
    ("trace-determinism", "full observability event stream must replay byte-identically"),
    ("fault-sweep", "every enumerated single-fault point recovers byte-for-byte"),
    ("race-detect", "vector-clock happens-before races and same-tick commutativity violations"),
    ("static-analysis", "parser-based workspace rules: determinism scopes, trigger conformance, wildcard arms, lock discipline, hygiene"),
    ("perf-smoke", "deterministic engine work counters vs the BENCH_engine.json baseline, plus profiler transparency"),
    ("cache-coherence", "client block-cache gate: model check + linearizability with a skip-invalidation canary, cached-vs-uncached transparency, Zipf hit-rate/speedup"),
];

fn pass_names() -> Vec<&'static str> {
    PASSES.iter().map(|&(n, _)| n).collect()
}

fn run_pass(name: &str, budget: u64, smoke: bool) -> PassReport {
    match name {
        "plan-lint" => lint_io_paths(),
        "lock-order" => lock_order_pass(),
        "layout-conformance" => layout_pass(),
        "determinism" => determinism_pass(),
        "model-check" => model_check::run_pass(budget),
        "linearizability" => linearizability::run_pass(budget),
        "crash-consistency" => crash_consistency::run_pass(),
        "trace-determinism" => trace_determinism::run_pass(),
        "fault-sweep" => fault_sweep::run_pass(smoke),
        "race-detect" => race_detect::run_pass(smoke),
        "static-analysis" => {
            let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir");
            static_analysis::run_pass(crates_dir)
        }
        "perf-smoke" => {
            let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(Path::parent)
                .expect("repo root");
            perf_smoke::run_pass(repo_root)
        }
        "cache-coherence" => cache_coherence::run_pass(budget),
        other => unreachable!("unregistered pass {other}"),
    }
}

struct Cli {
    passes: Vec<String>,
    budget: u64,
    smoke: bool,
    list: bool,
    json: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        passes: Vec::new(),
        budget: model_check::DEFAULT_BUDGET,
        smoke: false,
        list: false,
        json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cli.smoke = true,
            "--list-passes" | "--list_passes" => cli.list = true,
            "--pass" => {
                // Accept underscores as separators too (`--pass
                // trace_determinism` names the same pass).
                let mut name = args.next().ok_or("--pass requires a name")?.replace('_', "-");
                // The old pass-4b line scanner lives on inside pass 11.
                if name == "source-scan" {
                    name = "static-analysis".to_string();
                }
                if !pass_names().contains(&name.as_str()) {
                    return Err(format!(
                        "unknown pass `{name}`; available: {}",
                        pass_names().join(", ")
                    ));
                }
                cli.passes.push(name);
            }
            "--budget" => {
                let n = args.next().ok_or("--budget requires a number")?;
                cli.budget =
                    n.parse().map_err(|e| format!("--budget: invalid number `{n}`: {e}"))?;
            }
            "--json" => {
                cli.json = Some(args.next().ok_or("--json requires a path")?);
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: verify_all [--pass <name>]... [--budget <n>] [--smoke] [--list-passes] [--json <path>]\npasses: {}",
                    pass_names().join(", ")
                ));
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if cli.list {
        let width = PASSES.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, desc) in PASSES {
            println!("{name:width$}  {desc}");
        }
        return;
    }
    let selected: Vec<&str> = if cli.passes.is_empty() {
        pass_names()
    } else {
        pass_names().into_iter().filter(|n| cli.passes.iter().any(|p| p == n)).collect()
    };
    let mut failures = 0;
    let mut checks = 0;
    let mut timings: Vec<(&str, f64)> = Vec::new();
    let mut reports: Vec<PassReport> = Vec::new();
    for name in &selected {
        // det-ok: wall-clock spent per pass is reporting, not simulation.
        let t0 = std::time::Instant::now();
        let mut p = run_pass(name, cli.budget, cli.smoke);
        // det-ok: wall-clock readout of the per-pass stopwatch above.
        let secs = t0.elapsed().as_secs_f64();
        p.secs = Some(secs);
        timings.push((name, secs));
        print!("{}", p.render());
        println!("   ({secs:.2}s)\n");
        failures += p.failures();
        checks += p.checks.len();
        reports.push(p);
    }
    if let Some(path) = &cli.json {
        if let Err(e) = std::fs::write(path, report::render_json(&reports)) {
            eprintln!("--json {path}: write failed: {e}");
            std::process::exit(2);
        }
        println!("json report written to {path}");
    }
    let total: f64 = timings.iter().map(|(_, s)| s).sum();
    let slowest = timings.iter().max_by(|a, b| a.1.total_cmp(&b.1));
    if let Some((name, secs)) = slowest {
        println!("timing: {total:.2}s total, slowest pass {name} ({secs:.2}s)");
    }
    if failures == 0 {
        println!("verify_all: all {checks} checks passed across {} passes", selected.len());
    } else {
        println!("verify_all: {failures}/{checks} checks FAILED");
        std::process::exit(1);
    }
}
