//! Run all four `raidx-verify` passes and exit non-zero on any finding.
//!
//! ```text
//! cargo run -p bench --bin verify_all
//! ```
//!
//! Passes: plan linting of every architecture's real I/O plans, lock-order
//! analysis of a recorded lock trace, the layout conformance sweep, and
//! the determinism audit (double-run fingerprints plus the source-level
//! hazard scan).

use cdd::{CddConfig, IoSystem};
use cluster::ClusterConfig;
use raidx_core::Arch;
use raidx_verify::{analyze_lock_trace, audit_workload, conformance_sweep, lint_io_paths};
use raidx_verify::{report::PassReport, source_scan};
use sim_core::Engine;
use std::path::Path;

fn lock_order_pass() -> PassReport {
    let mut report = PassReport::new("lock-order");
    for arch in Arch::ALL {
        let mut engine = Engine::new();
        let mut cc = ClusterConfig::shape(4, 2);
        cc.disk.capacity = 8 << 20;
        let bs = cc.block_size as usize;
        let mut sys = IoSystem::new(&mut engine, cc, arch, CddConfig::default());
        sys.enable_lock_trace();
        let name = sys.layout().name();
        let stripe = sys.layout().stripe_width() as u64;
        let buf = vec![0x77; bs];
        let wide = vec![0x11; bs * stripe as usize];
        for client in 0..4u64 {
            for b in 0..6u64 {
                sys.write(client as usize, client * 16 + b, &buf).expect("write");
            }
            sys.write(client as usize, client * 16 + 8, &wide).expect("stripe write");
        }
        let trace = sys.take_lock_trace();
        let audit = analyze_lock_trace(&trace);
        let detail = if audit.clean() {
            format!("{} grants, {} order edges, no defects", audit.grants, audit.order_edges)
        } else {
            audit.defects.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
        };
        report.push(format!("{name} lock trace"), audit.clean(), detail);
    }
    report
}

fn layout_pass() -> PassReport {
    let mut report = PassReport::new("layout-conformance");
    for row in conformance_sweep() {
        let name = format!("{} {}x{}", row.arch, row.shape.0, row.shape.1);
        let detail = if row.ok() {
            format!("{} blocks conform", row.checked)
        } else {
            format!(
                "{} violations, first: {}",
                row.violations.len(),
                row.violations.first().map(String::as_str).unwrap_or("")
            )
        };
        report.push(name, row.ok(), detail);
    }
    report
}

fn determinism_pass() -> PassReport {
    let mut report = PassReport::new("determinism");
    for arch in Arch::ALL {
        let audit = audit_workload(arch);
        let name = format!("{arch:?} double run");
        let detail = match &audit.divergence {
            None => {
                format!("fingerprint {:016x}, {} trace lines", audit.fingerprint_a, audit.lines)
            }
            Some((i, a, b)) => format!("diverged at line {i}: `{a}` vs `{b}`"),
        };
        report.push(name, audit.deterministic(), detail);
    }
    // Source-level hazard scan over every crate.
    let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir");
    match source_scan::scan_dir(crates_dir) {
        Ok(hazards) => {
            let detail = if hazards.is_empty() {
                "no wall clocks, OS entropy or unordered iteration in sim paths".to_string()
            } else {
                hazards.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
            };
            report.push("source hazard scan", hazards.is_empty(), detail);
        }
        Err(e) => report.fail("source hazard scan", format!("scan failed: {e}")),
    }
    report
}

fn main() {
    let passes = vec![lint_io_paths(), lock_order_pass(), layout_pass(), determinism_pass()];
    let mut failures = 0;
    for p in &passes {
        print!("{}", p.render());
        println!();
        failures += p.failures();
    }
    let checks: usize = passes.iter().map(|p| p.checks.len()).sum();
    if failures == 0 {
        println!("verify_all: all {checks} checks passed across {} passes", passes.len());
    } else {
        println!("verify_all: {failures}/{checks} checks FAILED");
        std::process::exit(1);
    }
}
