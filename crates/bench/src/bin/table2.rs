//! Regenerates Table 2 (analytic peak performance).

fn main() {
    println!("{}", bench::exp_table2::render(16));
    println!("{}", bench::exp_table2::render(4));
}
