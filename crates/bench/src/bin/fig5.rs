//! Regenerates Figure 5 (aggregate bandwidth vs. clients).

fn main() {
    let points = bench::exp_fig5::run_sweep();
    println!("{}", bench::exp_fig5::render(&points));
}
