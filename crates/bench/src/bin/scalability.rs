//! RAID-x scalability sweep (the paper's "several hundreds of disks"
//! future-work direction).

fn main() {
    let points = bench::exp_scalability::run_sweep();
    println!("{}", bench::exp_scalability::render(&points));
}
