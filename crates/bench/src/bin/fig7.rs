//! Regenerates Figure 7 (striped checkpointing with staggering).

fn main() {
    let points = bench::exp_fig7::run_sweep();
    println!("{}", bench::exp_fig7::render(&points));
}
