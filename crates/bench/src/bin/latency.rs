//! Per-operation latency distributions across the architectures.

fn main() {
    let points = bench::exp_latency::run_sweep();
    println!("{}", bench::exp_latency::render(&points));
}
