//! Survival probabilities under multiple random disk failures.

fn main() {
    println!("{}", bench::exp_reliability::render());
}
