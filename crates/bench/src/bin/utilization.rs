//! Per-resource utilization breakdown: serverless RAID-x vs central NFS.

fn main() {
    println!("{}", bench::exp_utilization::render());
}
