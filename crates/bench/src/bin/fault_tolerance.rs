//! Executes the Section 6 fault-tolerance scenarios.

fn main() {
    println!("{}", bench::exp_fault::render());
}
