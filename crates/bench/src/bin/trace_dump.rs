//! Capture deterministic traces of the parallel-write benchmark on all
//! four architectures and export them under `results/traces/`.
//!
//! ```text
//! cargo run --release -p bench --bin trace_dump [-- --smoke] \
//!     [--clients N] [--repeats N] [--out DIR]
//! ```
//!
//! `--smoke` runs a small 4×1 configuration and additionally asserts the
//! exported traces exhibit the properties CI relies on (valid JSON,
//! non-empty streams, RAID-x background drain, RAID-10 foreground
//! mirroring), exiting non-zero on any violation.

use bench::exp_trace::{render_summary, run_all, smoke_check, TraceConfig};

struct Cli {
    cfg: TraceConfig,
    smoke: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1).peekable();
    let smoke = args.peek().map(String::as_str) == Some("--smoke");
    let mut cli =
        Cli { cfg: if smoke { TraceConfig::smoke() } else { TraceConfig::default() }, smoke };
    if smoke {
        args.next();
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => {
                let n = args.next().ok_or("--clients requires a number")?;
                cli.cfg.clients =
                    n.parse().map_err(|e| format!("--clients: invalid number `{n}`: {e}"))?;
            }
            "--repeats" => {
                let n = args.next().ok_or("--repeats requires a number")?;
                cli.cfg.repeats =
                    n.parse().map_err(|e| format!("--repeats: invalid number `{n}`: {e}"))?;
            }
            "--out" => {
                cli.cfg.out_dir = args.next().ok_or("--out requires a directory")?;
            }
            "--smoke" => return Err("--smoke must be the first argument".to_string()),
            "--help" | "-h" => {
                return Err("usage: trace_dump [--smoke] [--clients N] [--repeats N] [--out DIR]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let runs = match run_all(&cli.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace export failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", render_summary(&runs));
    if cli.smoke {
        if let Err(msg) = smoke_check(&runs) {
            eprintln!("trace_dump --smoke: FAILED: {msg}");
            std::process::exit(1);
        }
        println!("trace_dump --smoke: OK");
    }
}
