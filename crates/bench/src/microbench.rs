//! Dependency-free micro-benchmark harness with a Criterion-shaped API.
//!
//! The `benches/` entry points were written against Criterion; this module
//! provides the small subset they use (`Criterion`, benchmark groups,
//! throughput annotation, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros) so they run with no external crates. Each
//! benchmark is calibrated to a per-sample budget, timed over a fixed
//! number of samples, and reported as the median ns/iteration plus derived
//! throughput.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units processed per iteration, for derived-throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements (events, ops) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration of the last `iter` call.
    median_ns: f64,
}

impl Bencher {
    /// Calibrate, then time `f` over the configured number of samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate the per-sample iteration count to ~5ms.
        let budget = Duration::from_millis(5);
        let mut n = 1u64;
        loop {
            // det-ok: a microbenchmark harness measures wall time by design.
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            // det-ok: wall-clock calibration check, not a simulation path.
            if t0.elapsed() >= budget || n >= 1 << 22 {
                break;
            }
            n *= 2;
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                // det-ok: wall-clock sampling, not a simulation path.
                let t0 = Instant::now();
                for _ in 0..n {
                    black_box(f());
                }
                // det-ok: wall-clock readout of the microbench stopwatch.
                t0.elapsed().as_nanos() as f64 / n as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

fn report(name: &str, median_ns: f64, thrpt: Option<Throughput>) {
    let mut line = format!("{name:<44} time: {:>12}/iter", human_time(median_ns));
    match thrpt {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (median_ns * 1e-9);
            line.push_str(&format!("   thrpt: {:.2} Melem/s", rate / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (median_ns * 1e-9);
            line.push_str(&format!("   thrpt: {:.1} MiB/s", rate / (1024.0 * 1024.0)));
        }
        None => {}
    }
    println!("{line}");
}

/// Top-level benchmark driver (Criterion-shaped).
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.samples, median_ns: 0.0 };
        f(&mut b);
        report(name, b.median_ns, None);
        self
    }

    /// Open a named group; group benchmarks share a throughput annotation.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), throughput: None }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with units-per-iteration.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.parent.samples, median_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{name}", self.name), b.median_ns, self.throughput);
        self
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Declare a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn human_time_scales() {
        assert!(human_time(10.0).ends_with("ns"));
        assert!(human_time(10_000.0).ends_with("us"));
        assert!(human_time(10_000_000.0).ends_with("ms"));
    }
}
