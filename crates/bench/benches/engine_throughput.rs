//! Micro-benchmarks of the discrete-event engine: event throughput for
//! the plan shapes the RAID engines generate.

use bench::microbench::{Criterion, Throughput};
use bench::{criterion_group, criterion_main};
use sim_core::plan::{barrier, par, seq, use_res};
use sim_core::{BarrierId, Demand, Engine, FixedRate, SimDuration};

fn busy(us: u64) -> Demand {
    Demand::Busy(SimDuration::from_micros(us))
}

fn bench_seq_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("seq_chain_10k_uses", |b| {
        b.iter(|| {
            let mut e = Engine::new();
            let r = e.add_resource("r", Box::new(FixedRate::per_op(SimDuration::ZERO)));
            e.spawn_job("chain", seq((0..n).map(|_| use_res(r, busy(1))).collect()));
            e.run().expect("bench setup failed").end
        })
    });
    g.finish();
}

fn bench_contended_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let jobs = 64u64;
    let per = 64u64;
    g.throughput(Throughput::Elements(jobs * per));
    g.bench_function("fanout_64jobs_x64ops_16disks", |b| {
        b.iter(|| {
            let mut e = Engine::new();
            let disks: Vec<_> = (0..16)
                .map(|i| {
                    e.add_resource(
                        format!("d{i}"),
                        Box::new(FixedRate::per_op(SimDuration::from_micros(3))),
                    )
                })
                .collect();
            for j in 0..jobs {
                e.spawn_job(
                    "j",
                    par((0..per)
                        .map(|i| use_res(disks[((j + i) % 16) as usize], busy(2)))
                        .collect()),
                );
            }
            e.run().expect("bench setup failed").end
        })
    });
    g.finish();
}

fn bench_barrier_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let parties = 16usize;
    let cycles = 256usize;
    g.throughput(Throughput::Elements((parties * cycles) as u64));
    g.bench_function("barrier_16x256_cycles", |b| {
        b.iter(|| {
            let mut e = Engine::new();
            let bid = BarrierId(1);
            e.register_barrier(bid, parties);
            let r = e.add_resource("cpu", Box::new(FixedRate::per_op(SimDuration::ZERO)));
            for _ in 0..parties {
                e.spawn_job(
                    "p",
                    seq((0..cycles).flat_map(|_| [use_res(r, busy(1)), barrier(bid)]).collect()),
                );
            }
            e.run().expect("bench setup failed").end
        })
    });
    g.finish();
}

criterion_group!(benches, bench_seq_chain, bench_contended_fanout, bench_barrier_cycles);
criterion_main!(benches);
