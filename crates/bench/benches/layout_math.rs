//! Micro-benchmarks of the layout address arithmetic — the per-request
//! hot path of the CDD client module.

use bench::microbench::{black_box, Criterion};
use bench::{criterion_group, criterion_main};
use raidx_core::{ChainedDecluster, FaultSet, Layout, Raid10, Raid5, RaidX};

fn bench_locate(c: &mut Criterion) {
    let mut g = c.benchmark_group("locate_data");
    let bpd = 131_072;
    let raidx = RaidX::new(16, 1, bpd);
    let raid5 = Raid5::new(16, bpd);
    let raid10 = Raid10::new(16, bpd);
    let chained = ChainedDecluster::new(16, bpd);
    g.bench_function("raidx", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for lb in 0..1024u64 {
                acc ^= raidx.locate_data(black_box(lb)).disk;
            }
            acc
        })
    });
    g.bench_function("raid5", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for lb in 0..1024u64 {
                acc ^= raid5.locate_data(black_box(lb)).disk;
            }
            acc
        })
    });
    g.bench_function("raid10", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for lb in 0..1024u64 {
                acc ^= raid10.locate_data(black_box(lb)).disk;
            }
            acc
        })
    });
    g.bench_function("chained", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for lb in 0..1024u64 {
                acc ^= chained.locate_data(black_box(lb)).disk;
            }
            acc
        })
    });
    g.finish();
}

fn bench_image_addr(c: &mut Criterion) {
    let raidx = RaidX::new(16, 3, 131_072);
    c.bench_function("raidx_image_addr_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for lb in 0..1024u64 {
                acc ^= raidx.image_addr(black_box(lb)).block;
            }
            acc
        })
    });
}

fn bench_read_source_degraded(c: &mut Criterion) {
    let raid5 = Raid5::new(16, 131_072);
    let failed = FaultSet::of(&[3]);
    c.bench_function("raid5_degraded_read_source_1k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for lb in 0..1024u64 {
                acc ^= match raid5.read_source(black_box(lb), &failed) {
                    raidx_core::ReadSource::Primary(a) => a.disk,
                    raidx_core::ReadSource::Reconstruct { siblings, .. } => siblings.len(),
                    _ => 0,
                };
            }
            acc
        })
    });
}

fn bench_merge_runs(c: &mut Criterion) {
    let raidx = RaidX::new(16, 1, 131_072);
    let items: Vec<(u64, raidx_core::BlockAddr)> =
        (0..4096u64).map(|lb| (lb, raidx.locate_data(lb))).collect();
    c.bench_function("merge_runs_4k_blocks", |b| {
        b.iter(|| cdd::merge_runs(black_box(items.clone())))
    });
}

criterion_group!(
    benches,
    bench_locate,
    bench_image_addr,
    bench_read_source_degraded,
    bench_merge_runs
);
criterion_main!(benches);
