//! Micro-benchmarks of the full CDD I/O path: plan construction plus
//! functional data movement for each write scheme, the lock table, and
//! the parity XOR kernel.

use bench::microbench::{black_box, Criterion, Throughput};
use bench::{criterion_group, criterion_main};
use cdd::testkit;
use cdd::LockGroupTable;
use cluster::xor_into;
use raidx_core::Arch;

/// Trojans-class cluster with 1 GB disks so far-striding writes fit.
const BENCH_DISK: u64 = 1 << 30;

fn bench_write_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_path_2MB");
    let bytes = 2u64 << 20;
    g.throughput(Throughput::Bytes(bytes));
    for arch in [Arch::Chained, Arch::Raid5, Arch::Raid10, Arch::RaidX] {
        g.bench_function(arch.name(), |b| {
            let (_e, mut s) = testkit::trojans_with_capacity(arch, BENCH_DISK);
            let payload = vec![0xABu8; bytes as usize];
            let mut lb0 = 0u64;
            b.iter(|| {
                let plan = s.write(0, lb0, &payload).expect("bench setup failed");
                lb0 = (lb0 + 64) % 65536;
                black_box(plan.leaf_count())
            })
        });
    }
    g.finish();
}

fn bench_read_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_path_2MB");
    let bytes = 2u64 << 20;
    g.throughput(Throughput::Bytes(bytes));
    for arch in [Arch::Chained, Arch::RaidX] {
        g.bench_function(arch.name(), |b| {
            let (_e, mut s) = testkit::trojans_with_capacity(arch, BENCH_DISK);
            let payload = vec![0xCDu8; bytes as usize];
            s.write(0, 0, &payload).expect("bench setup failed");
            b.iter(|| {
                let (data, plan) = s.read(1, 0, 64).expect("bench setup failed");
                black_box((data.len(), plan.leaf_count()))
            })
        });
    }
    g.finish();
}

/// The front end's run coalescing: one contiguous 64-block write admits
/// as a single run, while 64 single-block writes pay per-request
/// validation, locking and plan assembly. The gap is the coalescing win.
fn bench_coalesced_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("coalesced_write_2MB");
    let bytes = 2u64 << 20;
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("one_64_block_write", |b| {
        let (_e, mut s) = testkit::trojans_with_capacity(Arch::RaidX, BENCH_DISK);
        let bs = s.block_size() as usize;
        let payload = vec![0xEEu8; 64 * bs];
        let mut lb0 = 0u64;
        b.iter(|| {
            let plan = s.write(0, lb0, &payload).expect("bench setup failed");
            lb0 = (lb0 + 64) % 65536;
            black_box(plan.leaf_count())
        })
    });
    g.bench_function("sixty_four_1_block_writes", |b| {
        let (_e, mut s) = testkit::trojans_with_capacity(Arch::RaidX, BENCH_DISK);
        let bs = s.block_size() as usize;
        let payload = vec![0xEEu8; bs];
        let mut lb0 = 0u64;
        b.iter(|| {
            let mut leaves = 0usize;
            for i in 0..64u64 {
                let plan = s.write(0, lb0 + i, &payload).expect("bench setup failed");
                leaves += plan.leaf_count();
            }
            lb0 = (lb0 + 64) % 65536;
            black_box(leaves)
        })
    });
    g.finish();
}

/// Race-detector observability overhead on the write hot path: the same
/// 2 MB RAID-x write with no tracer installed (the single
/// `Option::is_some` branch per emission site must be free), and with a
/// live [`sim_core::EventLog`] recording every protocol access (the cost
/// a traced verification run actually pays).
fn bench_tracer_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_path_tracing");
    let bytes = 2u64 << 20;
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("tracer_disabled", |b| {
        let (_e, mut s) = testkit::trojans_with_capacity(Arch::RaidX, BENCH_DISK);
        let payload = vec![0xABu8; bytes as usize];
        let mut lb0 = 0u64;
        b.iter(|| {
            let plan = s.write(0, lb0, &payload).expect("bench setup failed");
            lb0 = (lb0 + 64) % 65536;
            black_box(plan.leaf_count())
        })
    });
    g.bench_function("tracer_event_log", |b| {
        let (_e, mut s) = testkit::trojans_with_capacity(Arch::RaidX, BENCH_DISK);
        let log = sim_core::EventLog::new();
        s.set_tracer(Box::new(log.clone()));
        let payload = vec![0xABu8; bytes as usize];
        let mut lb0 = 0u64;
        b.iter(|| {
            let plan = s.write(0, lb0, &payload).expect("bench setup failed");
            lb0 = (lb0 + 64) % 65536;
            black_box(plan.leaf_count())
        });
        black_box(log.events().len());
    });
    g.finish();
}

fn bench_lock_table(c: &mut Criterion) {
    c.bench_function("lock_table_acquire_release", |b| {
        let mut t = LockGroupTable::new();
        // Pre-populate with held ranges to make the scan realistic.
        let held: Vec<_> = (0..64usize)
            .map(|i| t.acquire(i % 8, i as u64 * 1000, 64).expect("bench setup failed"))
            .collect();
        b.iter(|| {
            let h = t.acquire(9, 1_000_000, 64).expect("bench setup failed");
            t.release(h);
        });
        drop(held);
    });
}

fn bench_xor_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parity_xor");
    let bs = 32usize << 10;
    g.throughput(Throughput::Bytes(bs as u64));
    g.bench_function("xor_32KB", |b| {
        let src = vec![0x5Au8; bs];
        let mut acc = vec![0u8; bs];
        b.iter(|| {
            xor_into(black_box(&mut acc), black_box(&src));
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_write_path,
    bench_read_path,
    bench_coalesced_write,
    bench_tracer_overhead,
    bench_lock_table,
    bench_xor_kernel
);
criterion_main!(benches);
