//! `cargo bench` entry points for the paper's experiments: one Criterion
//! benchmark per table/figure, each timing a representative point of the
//! corresponding experiment (the full sweeps are the `bench` binaries:
//! `fig5`, `table3`, `fig6`, `fig7`, `table2`, `fault_tolerance`,
//! `ablations`, `all_experiments`).

use bench::microbench::{black_box, Criterion};
use bench::{criterion_group, criterion_main};
use bench::{exp_fig5, exp_fig6, exp_table2, SystemKind};
use cdd::{CddConfig, IoSystem};
use checkpoint::{run_striped_checkpoint, CheckpointConfig};
use cluster::ClusterConfig;
use raidx_core::Arch;
use sim_core::Engine;
use workloads::IoPattern;

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_analytic_model", |b| {
        b.iter(|| black_box(exp_table2::render(16).len()))
    });
}

fn bench_fig5_point(c: &mut Criterion) {
    c.bench_function("fig5_point_raidx_large_write_8c", |b| {
        b.iter(|| {
            let r = exp_fig5::run_point(SystemKind::Raid(Arch::RaidX), IoPattern::LargeWrite, 8);
            black_box(r.aggregate_mbs)
        })
    });
}

fn bench_table3_pair(c: &mut Criterion) {
    c.bench_function("table3_pair_nfs_small_write", |b| {
        b.iter(|| {
            let one = exp_fig5::run_point(SystemKind::Nfs, IoPattern::SmallWrite, 1);
            let many = exp_fig5::run_point(SystemKind::Nfs, IoPattern::SmallWrite, 16);
            black_box(many.aggregate_mbs / one.aggregate_mbs)
        })
    });
}

fn bench_fig6_point(c: &mut Criterion) {
    c.bench_function("fig6_andrew_raidx_4c", |b| {
        b.iter(|| {
            let r = exp_fig6::run_point(SystemKind::Raid(Arch::RaidX), 4);
            black_box(r.total_secs())
        })
    });
}

fn bench_fig7_point(c: &mut Criterion) {
    c.bench_function("fig7_checkpoint_4x3_stagger4", |b| {
        b.iter(|| {
            let mut cc = ClusterConfig::trojans_4x3();
            cc.disk.capacity = 1 << 30;
            let mut engine = Engine::new();
            let mut store = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());
            let cfg = CheckpointConfig {
                processes: 12,
                stagger_width: 4,
                ckpt_bytes: 1 << 20,
                rounds: 1,
                ..Default::default()
            };
            let r =
                run_striped_checkpoint(&mut engine, &mut store, &cfg).expect("bench setup failed");
            black_box(r.round_secs[0])
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_fig5_point, bench_table3_pair, bench_fig6_point, bench_fig7_point
}
criterion_main!(benches);
