#![warn(missing_docs)]
//! # checkpoint — striped checkpointing with staggering on RAID-x
//!
//! Section 6 of the paper: coordinated checkpointing of `P` processes onto
//! the distributed array. Writing all checkpoints at once causes network
//! and disk contention; writing them to a central server causes an I/O
//! bottleneck. The paper's scheme does both fixes at once:
//!
//! * **striping** — each stagger group writes its checkpoints in parallel
//!   across a stripe group of disks (full-stripe bandwidth);
//! * **staggering** — groups take turns (Figure 7's staircase), bounding
//!   instantaneous contention; the `n×k` array can be *reconfigured*
//!   (4×3 ↔ 6×2 ↔ 12×1) to trade stripe parallelism against stagger
//!   depth.
//!
//! Recovery: a transient failure restores from the checkpoint's **local
//! mirrored image** (OSM keeps one image per block in the same row);
//! a permanent disk failure restores through the degraded read path.

pub mod crash;
pub mod two_level;

pub use crash::{audit_two_level, audit_write_behind, CrashAudit, CrashDefect, CrashFinding};
pub use two_level::{image_local_blocks, run_two_level, TwoLevelResult};

use cdd::{BlockStore, IoError};
use sim_core::plan::{barrier, delay, seq};
use sim_core::{BarrierId, Engine, Plan, SimDuration};

/// Parameters of a striped, staggered checkpoint run.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Number of application processes (one per client slot, round-robin
    /// over nodes).
    pub processes: usize,
    /// Processes checkpointing simultaneously (the stripe group size;
    /// `processes` ⇒ no staggering).
    pub stagger_width: usize,
    /// Checkpoint image bytes per process.
    pub ckpt_bytes: u64,
    /// Coordination (synchronization) overhead per process per round —
    /// the paper's `S`.
    pub sync_overhead: SimDuration,
    /// Checkpoint rounds to run.
    pub rounds: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            processes: 12,
            stagger_width: 4,
            ckpt_bytes: 1 << 20,
            sync_overhead: SimDuration::from_millis(2),
            rounds: 2,
        }
    }
}

/// Outcome of a checkpoint run.
#[derive(Debug, Clone)]
pub struct CheckpointResult {
    /// Wall-clock span of each round (last process done − round start).
    pub round_secs: Vec<f64>,
    /// Mean time a process was blocked (sync + waiting its turn +
    /// writing), averaged over processes and rounds — the cost
    /// checkpointing imposes on the application.
    pub mean_blocked_secs: f64,
    /// Blocked time of the *first* stagger group (they resume earliest —
    /// the staircase's bottom step).
    pub first_group_blocked_secs: f64,
}

/// Deterministic checkpoint payload for process `p`, round `r`.
pub fn ckpt_pattern(p: usize, r: usize, bytes: usize) -> Vec<u8> {
    (0..bytes).map(|i| ((p * 131 + r * 17 + i * 7) % 256) as u8).collect()
}

fn region_for(cfg: &CheckpointConfig, store: &impl BlockStore, p: usize, r: usize) -> u64 {
    // Two alternating checkpoint regions per process (double buffering),
    // disjoint across processes.
    let bs = store.block_size();
    let nblocks = cfg.ckpt_bytes.div_ceil(bs);
    (p as u64 * 2 + (r % 2) as u64) * nblocks
}

/// Run `cfg.rounds` coordinated checkpoints over `store`.
///
/// Every process writes a distinct deterministic pattern; the data is
/// verifiable afterwards with [`verify_checkpoint`].
pub fn run_striped_checkpoint<S: BlockStore>(
    engine: &mut Engine,
    store: &mut S,
    cfg: &CheckpointConfig,
) -> Result<CheckpointResult, IoError> {
    assert!(cfg.stagger_width > 0 && cfg.processes > 0);
    let bs = store.block_size();
    let nblocks = cfg.ckpt_bytes.div_ceil(bs);
    assert!(
        cfg.processes as u64 * 2 * nblocks <= store.capacity_blocks(),
        "checkpoint regions exceed capacity"
    );
    let nodes = store.nodes();
    let groups = cfg.processes.div_ceil(cfg.stagger_width);

    // Barriers: one global sync, plus one hand-off barrier between each
    // pair of consecutive stagger groups. All are cyclic across rounds.
    let sync = BarrierId(0xC0DE);
    engine.register_barrier(sync, cfg.processes);
    for g in 0..groups.saturating_sub(1) {
        let members = group_size(cfg, g) + group_size(cfg, g + 1);
        engine.register_barrier(BarrierId(0xC100 + g as u32), members);
    }

    let mut round_secs = Vec::with_capacity(cfg.rounds);
    let mut blocked_total = 0.0;
    let mut first_group_blocked = 0.0;
    for r in 0..cfg.rounds {
        let start = engine.now();
        for p in 0..cfg.processes {
            let g = p / cfg.stagger_width;
            let node = p % nodes;
            let lb0 = region_for(cfg, store, p, r);
            let payload = {
                let mut v = ckpt_pattern(p, r, cfg.ckpt_bytes as usize);
                v.resize((nblocks * bs) as usize, 0);
                v
            };
            let write = store.write(node, lb0, &payload)?;
            let mut steps: Vec<Plan> = vec![barrier(sync), delay(cfg.sync_overhead)];
            if g > 0 {
                steps.push(barrier(BarrierId(0xC100 + (g - 1) as u32)));
            }
            steps.push(write);
            if g + 1 < groups {
                steps.push(barrier(BarrierId(0xC100 + g as u32)));
            }
            engine.spawn_job(format!("ckpt/r{r}/p{p}"), seq(steps));
        }
        let report = engine.run().expect("checkpoint deadlocked");
        round_secs.push(report.foreground_end.since(start).as_secs_f64());
        let jobs = engine.jobs();
        let this_round = &jobs[jobs.len() - cfg.processes..];
        for (p, j) in this_round.iter().enumerate() {
            let blocked = j.try_latency().map_or(0.0, |d| d.as_secs_f64());
            blocked_total += blocked;
            if p / cfg.stagger_width == 0 {
                first_group_blocked += blocked;
            }
        }
    }
    let first_group = group_size(cfg, 0);
    Ok(CheckpointResult {
        round_secs,
        mean_blocked_secs: blocked_total / (cfg.processes * cfg.rounds) as f64,
        first_group_blocked_secs: first_group_blocked / (first_group * cfg.rounds) as f64,
    })
}

fn group_size(cfg: &CheckpointConfig, g: usize) -> usize {
    let start = g * cfg.stagger_width;
    cfg.stagger_width.min(cfg.processes - start)
}

/// Verify that process `p`'s checkpoint from round `r` is intact,
/// returning the read plan (use after failures to exercise recovery).
pub fn verify_checkpoint<S: BlockStore>(
    store: &mut S,
    cfg: &CheckpointConfig,
    p: usize,
    r: usize,
) -> Result<Plan, IoError> {
    let bs = store.block_size();
    let nblocks = cfg.ckpt_bytes.div_ceil(bs);
    let lb0 = region_for(cfg, store, p, r);
    let (bytes, plan) = store.read(p % store.nodes(), lb0, nblocks)?;
    let expect = ckpt_pattern(p, r, cfg.ckpt_bytes as usize);
    if bytes[..expect.len()] != expect[..] {
        return Err(IoError::DataLoss { lb: lb0 });
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd::IoSystem;
    use raidx_core::Arch;

    fn setup(nodes: usize, k: usize) -> (Engine, IoSystem) {
        cdd::testkit::shape(nodes, k, 256 << 20, Arch::RaidX)
    }

    #[test]
    fn checkpoints_complete_and_verify() {
        let (mut e, mut s) = setup(4, 3);
        let cfg =
            CheckpointConfig { processes: 12, stagger_width: 4, rounds: 2, ..Default::default() };
        let r = run_striped_checkpoint(&mut e, &mut s, &cfg).unwrap();
        assert_eq!(r.round_secs.len(), 2);
        assert!(r.round_secs.iter().all(|&t| t > 0.0));
        for p in 0..12 {
            verify_checkpoint(&mut s, &cfg, p, 1).unwrap();
        }
    }

    #[test]
    fn staggering_staircase_first_group_resumes_early() {
        let (mut e, mut s) = setup(4, 3);
        let cfg =
            CheckpointConfig { processes: 12, stagger_width: 4, rounds: 1, ..Default::default() };
        let r = run_striped_checkpoint(&mut e, &mut s, &cfg).unwrap();
        // Figure 7: group 0 resumes well before the round ends.
        assert!(
            r.first_group_blocked_secs < 0.6 * r.round_secs[0],
            "first group blocked {} of round {}",
            r.first_group_blocked_secs,
            r.round_secs[0]
        );
    }

    #[test]
    fn staggering_cuts_first_group_blocking_vs_no_stagger() {
        let run_width = |w: usize| {
            let (mut e, mut s) = setup(4, 3);
            let cfg = CheckpointConfig {
                processes: 12,
                stagger_width: w,
                rounds: 1,
                ..Default::default()
            };
            run_striped_checkpoint(&mut e, &mut s, &cfg).unwrap()
        };
        let all_at_once = run_width(12);
        let staggered = run_width(4);
        // Without staggering everyone contends on the same stripes; a
        // staggered group of 4 finishes its own writes much sooner.
        assert!(
            staggered.first_group_blocked_secs < 0.7 * all_at_once.mean_blocked_secs,
            "staggered first group {:.4}s vs unstaggered mean {:.4}s",
            staggered.first_group_blocked_secs,
            all_at_once.mean_blocked_secs
        );
    }

    #[test]
    fn transient_failure_recovers_from_mirror() {
        let (mut e, mut s) = setup(4, 1);
        let cfg =
            CheckpointConfig { processes: 4, stagger_width: 2, rounds: 1, ..Default::default() };
        run_striped_checkpoint(&mut e, &mut s, &cfg).unwrap();
        // Permanent single-disk failure: every checkpoint still verifies
        // through the OSM images.
        s.fail_disk(2);
        for p in 0..4 {
            verify_checkpoint(&mut s, &cfg, p, 0).unwrap();
        }
    }

    #[test]
    fn corrupted_checkpoint_detected() {
        let (mut e, mut s) = setup(4, 1);
        let cfg =
            CheckpointConfig { processes: 2, stagger_width: 2, rounds: 1, ..Default::default() };
        run_striped_checkpoint(&mut e, &mut s, &cfg).unwrap();
        // Overwrite process 0's region with garbage.
        let bs = s.block_size();
        let junk = vec![0u8; bs as usize];
        cdd::BlockStore::write(&mut s, 0, 0, &junk).unwrap();
        assert!(verify_checkpoint(&mut s, &cfg, 0, 0).is_err());
    }
}
