//! Crash-point enumeration for the OSM mirror-flush and two-level
//! checkpoint commit protocols.
//!
//! The simulation's recovery tests (`two_level.rs`) exercise one failure
//! at one point in time; this module instead walks the **physical write
//! schedule** of each protocol and verifies recovery after a crash at
//! *every* prefix of it. Each schedule step is one atomic cell write
//! (single data block, single image block, one commit record, one
//! journal entry) — the granularity a disk actually guarantees; anything
//! the protocol treats as atomic beyond that must be earned by ordering.
//!
//! Two protocols are audited:
//!
//! * [`audit_two_level`] — a double-buffered striped checkpoint (Section
//!   6): data blocks stripe into the inactive slot, OSM images flush,
//!   then a single commit record flips the active slot. After any crash,
//!   *transient* recovery (read the committed slot's local images) and
//!   *permanent* recovery (read its striped data blocks) must both
//!   reconstruct the committed version exactly.
//! * [`audit_write_behind`] — OSM's background mirror flush with a
//!   write-behind journal: journal the block, write the data block, then
//!   later flush the image and clear the journal entry. After any crash,
//!   replaying the journal (re-flushing journaled blocks) must leave
//!   every image equal to its data block.
//!
//! [`CrashDefect`] plants ordering bugs (commit before flush, missing
//! journal entry, in-place overwrite of the committed slot, …) so tests
//! can prove the audit catches each one.

use std::collections::BTreeSet;

/// An ordering bug planted into a protocol's write schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashDefect {
    /// Faithful protocol — every crash point must recover cleanly.
    None,
    /// Two-level: the commit record is written after the data stripes
    /// but **before** the image flushes. A crash in between leaves the
    /// committed slot with stale images — transient recovery breaks.
    EarlyCommit,
    /// Two-level: the commit record is written first, before any data.
    /// A crash right after it leaves the committed slot torn — both
    /// recovery paths break.
    CommitBeforeFlush,
    /// Two-level: the new checkpoint overwrites the committed slot
    /// instead of the inactive one (no double buffering). A crash
    /// mid-write tears the only committed copy.
    InPlaceCheckpoint,
    /// Two-level: image flushes are skipped entirely; write-behind: the
    /// journal entry is cleared without writing the image. Transient /
    /// mirror recovery reads stale images.
    SkipImageFlush,
    /// Write-behind: the block is journalled only at flush time, after
    /// the data write. A crash in the window leaves a stale image with
    /// no journal entry to repair it.
    LateJournal,
}

/// One recovery failure at one crash point.
#[derive(Debug, Clone)]
pub struct CrashFinding {
    /// Number of schedule steps that completed before the crash.
    pub crash_after: usize,
    /// Which recovery path failed: `"transient"`, `"permanent"` or
    /// `"mirror"`.
    pub path: &'static str,
    /// Human-readable description of the inconsistency.
    pub detail: String,
}

impl std::fmt::Display for CrashFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "crash after step {}: {} recovery: {}", self.crash_after, self.path, self.detail)
    }
}

/// Aggregate result of one crash-point sweep.
#[derive(Debug, Clone, Default)]
pub struct CrashAudit {
    /// Crash points enumerated (schedule prefixes, including "no steps"
    /// and "all steps").
    pub crash_points: usize,
    /// Individual cell comparisons performed across all recoveries.
    pub checks: u64,
    /// Every recovery failure found.
    pub findings: Vec<CrashFinding>,
}

impl CrashAudit {
    /// True when every crash point recovered consistently.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

// --- Two-level double-buffered checkpoint -------------------------------

/// Abstract persistent state of the double-buffered checkpoint region.
#[derive(Debug, Clone)]
struct CkptDisk {
    /// Striped data cells, per slot.
    data: [Vec<u64>; 2],
    /// Local OSM image cells, per slot.
    image: [Vec<u64>; 2],
    /// The atomic commit record: (active slot, committed version).
    commit: (usize, u64),
}

#[derive(Debug, Clone, Copy)]
enum CkptStep {
    Data { slot: usize, i: usize, val: u64 },
    Image { slot: usize, i: usize, val: u64 },
    Commit { slot: usize, val: u64 },
}

fn ckpt_schedule(blocks: usize, defect: CrashDefect) -> Vec<CkptStep> {
    // Version 1 already lives committed in slot 0; version 2 is being
    // checkpointed. The in-place defect writes into the committed slot.
    let slot = if defect == CrashDefect::InPlaceCheckpoint { 0 } else { 1 };
    let mut sched = Vec::new();
    if defect == CrashDefect::CommitBeforeFlush {
        sched.push(CkptStep::Commit { slot, val: 2 });
    }
    for i in 0..blocks {
        sched.push(CkptStep::Data { slot, i, val: 2 });
    }
    if defect == CrashDefect::EarlyCommit {
        sched.push(CkptStep::Commit { slot, val: 2 });
    }
    if defect != CrashDefect::SkipImageFlush {
        for i in 0..blocks {
            sched.push(CkptStep::Image { slot, i, val: 2 });
        }
    }
    if !matches!(defect, CrashDefect::CommitBeforeFlush | CrashDefect::EarlyCommit) {
        sched.push(CkptStep::Commit { slot, val: 2 });
    }
    sched
}

/// Enumerate every crash point of a two-level checkpoint commit and
/// verify both recovery paths reconstruct the committed version.
pub fn audit_two_level(blocks: usize, defect: CrashDefect) -> CrashAudit {
    let sched = ckpt_schedule(blocks, defect);
    let mut audit = CrashAudit { crash_points: sched.len() + 1, checks: 0, findings: Vec::new() };
    for crash_after in 0..=sched.len() {
        let mut d = CkptDisk {
            data: [vec![1; blocks], vec![0; blocks]],
            image: [vec![1; blocks], vec![0; blocks]],
            commit: (0, 1),
        };
        for step in &sched[..crash_after] {
            match *step {
                CkptStep::Data { slot, i, val } => d.data[slot][i] = val,
                CkptStep::Image { slot, i, val } => d.image[slot][i] = val,
                CkptStep::Commit { slot, val } => d.commit = (slot, val),
            }
        }
        let (slot, ver) = d.commit;
        for i in 0..blocks {
            audit.checks += 2;
            if d.image[slot][i] != ver {
                audit.findings.push(CrashFinding {
                    crash_after,
                    path: "transient",
                    detail: format!(
                        "image block {i} of committed slot {slot} holds {} instead of version {ver}",
                        d.image[slot][i]
                    ),
                });
            }
            if d.data[slot][i] != ver {
                audit.findings.push(CrashFinding {
                    crash_after,
                    path: "permanent",
                    detail: format!(
                        "data block {i} of committed slot {slot} holds {} instead of version {ver}",
                        d.data[slot][i]
                    ),
                });
            }
        }
    }
    audit
}

// --- OSM write-behind mirror flush --------------------------------------

#[derive(Debug, Clone)]
struct MirrorDisk {
    data: Vec<u64>,
    image: Vec<u64>,
    /// Persisted write-behind journal: blocks whose image may be stale.
    journal: BTreeSet<usize>,
}

#[derive(Debug, Clone, Copy)]
enum MirrorStep {
    Journal(usize),
    Data { i: usize, val: u64 },
    Image { i: usize, val: u64 },
    Clear(usize),
}

fn mirror_schedule(blocks: usize, defect: CrashDefect) -> Vec<MirrorStep> {
    let mut sched = Vec::new();
    for i in 0..blocks {
        if defect != CrashDefect::LateJournal {
            sched.push(MirrorStep::Journal(i));
        }
        sched.push(MirrorStep::Data { i, val: 2 });
    }
    // The deferred background flush.
    for i in 0..blocks {
        if defect == CrashDefect::LateJournal {
            sched.push(MirrorStep::Journal(i));
        }
        if defect != CrashDefect::SkipImageFlush {
            sched.push(MirrorStep::Image { i, val: 2 });
        }
        sched.push(MirrorStep::Clear(i));
    }
    sched
}

/// Enumerate every crash point of an OSM write-behind mirror flush and
/// verify journal replay repairs every stale image.
pub fn audit_write_behind(blocks: usize, defect: CrashDefect) -> CrashAudit {
    let sched = mirror_schedule(blocks, defect);
    let mut audit = CrashAudit { crash_points: sched.len() + 1, checks: 0, findings: Vec::new() };
    for crash_after in 0..=sched.len() {
        let mut d =
            MirrorDisk { data: vec![1; blocks], image: vec![1; blocks], journal: BTreeSet::new() };
        for step in &sched[..crash_after] {
            match *step {
                MirrorStep::Journal(i) => {
                    d.journal.insert(i);
                }
                MirrorStep::Data { i, val } => d.data[i] = val,
                MirrorStep::Image { i, val } => d.image[i] = val,
                MirrorStep::Clear(i) => {
                    d.journal.remove(&i);
                }
            }
        }
        // Recovery: re-flush every journalled block, then every image
        // must mirror its data block.
        let mut recovered = d.image.clone();
        for &i in &d.journal {
            recovered[i] = d.data[i];
        }
        for (i, rec) in recovered.iter().enumerate() {
            audit.checks += 1;
            if *rec != d.data[i] {
                audit.findings.push(CrashFinding {
                    crash_after,
                    path: "mirror",
                    detail: format!(
                        "image of block {i} holds {} but data holds {} and the journal has no entry",
                        rec, d.data[i]
                    ),
                });
            }
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_two_level_survives_every_crash_point() {
        for blocks in 1..=4 {
            let a = audit_two_level(blocks, CrashDefect::None);
            assert!(a.clean(), "blocks={blocks}: {:?}", a.findings.first());
            assert_eq!(a.crash_points, 2 * blocks + 2);
            assert!(a.checks > 0);
        }
    }

    #[test]
    fn clean_write_behind_survives_every_crash_point() {
        for blocks in 1..=4 {
            let a = audit_write_behind(blocks, CrashDefect::None);
            assert!(a.clean(), "blocks={blocks}: {:?}", a.findings.first());
            assert!(a.crash_points > 0 && a.checks > 0);
        }
    }

    #[test]
    fn early_commit_breaks_transient_recovery() {
        let a = audit_two_level(3, CrashDefect::EarlyCommit);
        assert!(!a.clean());
        assert!(a.findings.iter().all(|f| f.path == "transient"), "{:?}", a.findings);
    }

    #[test]
    fn commit_before_flush_breaks_both_paths() {
        let a = audit_two_level(3, CrashDefect::CommitBeforeFlush);
        assert!(a.findings.iter().any(|f| f.path == "transient"));
        assert!(a.findings.iter().any(|f| f.path == "permanent"));
    }

    #[test]
    fn in_place_checkpoint_tears_committed_copy() {
        let a = audit_two_level(3, CrashDefect::InPlaceCheckpoint);
        assert!(!a.clean());
        // The torn state is visible mid-write, before any commit flip.
        assert!(a.findings.iter().any(|f| f.crash_after <= 3), "{:?}", a.findings);
    }

    #[test]
    fn skipped_image_flush_caught_in_both_protocols() {
        assert!(!audit_two_level(2, CrashDefect::SkipImageFlush).clean());
        assert!(!audit_write_behind(2, CrashDefect::SkipImageFlush).clean());
    }

    #[test]
    fn late_journal_leaves_unrepairable_window() {
        let a = audit_write_behind(2, CrashDefect::LateJournal);
        assert!(!a.clean());
        assert!(a.findings.iter().all(|f| f.path == "mirror"));
        // The defect is irrelevant to the two-level protocol.
        assert!(audit_two_level(2, CrashDefect::LateJournal).clean());
    }

    #[test]
    fn findings_render_with_crash_point() {
        let a = audit_write_behind(1, CrashDefect::LateJournal);
        let f = a.findings.first().expect("finding");
        let s = f.to_string();
        assert!(s.contains("crash after step"), "{s}");
    }
}
