//! Two-level recovery on RAID-x (Section 6 + the Vaidya two-level scheme
//! the paper builds on).
//!
//! The OSM layout lets one checkpoint serve both recovery levels. A
//! process on node `m` writes its checkpoint into logical blocks whose
//! **mirroring groups live on node m's own disk**: the data blocks stripe
//! across the whole array (full parallel write bandwidth), while the
//! clustered image lands locally. Then:
//!
//! * a **transient** failure (process crash, node reboot) restores from
//!   the local image — a sequential read touching *no network*;
//! * a **permanent** failure (node/disk loss) restores from the striped
//!   data blocks on the surviving disks, read by any other node.

use cdd::{merge_runs, CddConfig, IoError, IoSystem, OpBuilder};
use sim_core::plan::par;
use sim_core::{Engine, Plan};

/// The first `count` logical blocks whose (single) OSM image lives on a
/// disk attached to `node`, skipping the first `skip` matches (so several
/// processes on one node get disjoint regions).
pub fn image_local_blocks(sys: &IoSystem, node: usize, count: usize, skip: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut skipped = 0;
    for lb in 0..sys.capacity_blocks() {
        let img = sys.layout().locate_images(lb);
        let Some(img) = img.first() else { continue };
        if sys.cluster.node_of_disk(img.disk) == node {
            if skipped < skip {
                skipped += 1;
                continue;
            }
            out.push(lb);
            if out.len() == count {
                break;
            }
        }
    }
    out
}

/// Outcome of the two-level experiment for one process.
#[derive(Debug, Clone)]
pub struct TwoLevelResult {
    /// Time to write the checkpoint (striped data + local image flush).
    pub checkpoint_secs: f64,
    /// Transient recovery: sequential read of the local image.
    pub transient_secs: f64,
    /// Network bytes moved during transient recovery (the claim: zero).
    pub transient_net_bytes: u64,
    /// Permanent recovery: striped read from another node.
    pub permanent_secs: f64,
}

/// Checkpoint one process on `node`, then time both recovery paths.
///
/// `ckpt_blocks` is the checkpoint size in blocks. The caller provides a
/// fresh engine/system pair.
pub fn run_two_level(
    engine: &mut Engine,
    sys: &mut IoSystem,
    node: usize,
    ckpt_blocks: usize,
) -> Result<TwoLevelResult, IoError> {
    let bs = sys.block_size() as usize;
    let lbs = image_local_blocks(sys, node, ckpt_blocks, 0);
    assert_eq!(lbs.len(), ckpt_blocks, "not enough image-local blocks");

    // --- Checkpoint: write every block (they are contiguous runs of
    // n-1, so the writes merge) and flush the image groups.
    let payload: Vec<u8> = (0..bs).map(|i| (i % 241) as u8).collect();
    let t0 = engine.now();
    for &lb in &lbs {
        let p = sys.write(node, lb, &payload)?;
        engine.spawn_job("ckpt-write", p);
    }
    let flush = sys.flush_images();
    engine.spawn_job("ckpt-flush", flush);
    engine.run().expect("checkpoint deadlocked");
    let checkpoint_secs = engine.now().since(t0).as_secs_f64();

    // --- Transient recovery: read the local image clusters directly.
    let tx_before: u64 = sys.cluster.nodes.iter().map(|n| engine.resource_stats(n.tx).bytes).sum();
    let images: Vec<(u64, raidx_core::BlockAddr)> =
        lbs.iter().map(|&lb| (lb, sys.layout().locate_images(lb)[0])).collect();
    let ops = OpBuilder { cluster: &sys.cluster, cfg: &CddConfig::default() };
    let reads: Vec<Plan> = merge_runs(images)
        .into_iter()
        .map(|run| ops.read_run(node, run.disk, run.start, run.len()))
        .collect();
    let t1 = engine.now();
    engine.spawn_job("transient-recovery", par(reads));
    engine.run().expect("transient recovery deadlocked");
    let transient_secs = engine.now().since(t1).as_secs_f64();
    let tx_after: u64 = sys.cluster.nodes.iter().map(|n| engine.resource_stats(n.tx).bytes).sum();

    // --- Permanent recovery: the node is gone; a neighbour reads the
    // striped data blocks.
    let neighbour = (node + 1) % sys.cluster.cfg.nodes;
    let t2 = engine.now();
    for &lb in &lbs {
        let (bytes, p) = sys.read(neighbour, lb, 1)?;
        assert_eq!(bytes, payload, "permanent recovery corrupted block {lb}");
        engine.spawn_job("permanent-recovery", p);
    }
    engine.run().expect("permanent recovery deadlocked");
    let permanent_secs = engine.now().since(t2).as_secs_f64();

    Ok(TwoLevelResult {
        checkpoint_secs,
        transient_secs,
        transient_net_bytes: tx_after - tx_before,
        permanent_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterConfig;
    use raidx_core::Arch;

    fn setup() -> (Engine, IoSystem) {
        cdd::testkit::trojans_with_capacity(Arch::RaidX, 1 << 30)
    }

    #[test]
    fn image_local_blocks_really_are_local() {
        let (_e, sys) = setup();
        for node in [0usize, 5, 15] {
            let lbs = image_local_blocks(&sys, node, 45, 0);
            assert_eq!(lbs.len(), 45);
            for &lb in &lbs {
                let img = sys.layout().locate_images(lb)[0];
                assert_eq!(sys.cluster.node_of_disk(img.disk), node);
                // And the data block is *not* local-only: it stripes.
            }
            // Data blocks cover many nodes (striping preserved).
            let data_nodes: std::collections::HashSet<usize> = lbs
                .iter()
                .map(|&lb| sys.cluster.node_of_disk(sys.layout().locate_data(lb).disk))
                .collect();
            assert!(data_nodes.len() >= 8, "checkpoint not striped: {data_nodes:?}");
        }
    }

    #[test]
    fn disjoint_regions_via_skip() {
        let (_e, sys) = setup();
        let a = image_local_blocks(&sys, 3, 30, 0);
        let b = image_local_blocks(&sys, 3, 30, 30);
        assert!(a.iter().all(|lb| !b.contains(lb)));
    }

    #[test]
    fn transient_recovery_touches_no_network() {
        let (mut e, mut sys) = setup();
        let r = run_two_level(&mut e, &mut sys, 4, 60).unwrap();
        assert_eq!(
            r.transient_net_bytes, 0,
            "transient recovery moved {} network bytes",
            r.transient_net_bytes
        );
        assert!(r.transient_secs > 0.0);
        assert!(r.permanent_secs > 0.0);
        assert!(r.checkpoint_secs > 0.0);
    }

    /// The local path's advantage is *network independence*: on a slow
    /// or congested interconnect, permanent (striped, remote) recovery
    /// degrades while transient (local image) recovery is untouched.
    #[test]
    fn transient_recovery_immune_to_slow_network() {
        let fast = {
            let (mut e, mut sys) = setup();
            run_two_level(&mut e, &mut sys, 7, 90).unwrap()
        };
        let slow = {
            let mut cc = ClusterConfig::trojans();
            cc.disk.capacity = 1 << 30;
            cc.net.link_rate = 2_000_000; // congested 2 MB/s links
            let (mut e, mut sys) = cdd::testkit::build(cc, Arch::RaidX);
            run_two_level(&mut e, &mut sys, 7, 90).unwrap()
        };
        // Local recovery time barely moves; remote recovery collapses.
        assert!(
            (slow.transient_secs / fast.transient_secs) < 1.1,
            "transient affected by the network: {:.3}s -> {:.3}s",
            fast.transient_secs,
            slow.transient_secs
        );
        assert!(
            slow.permanent_secs > 3.0 * fast.permanent_secs,
            "permanent recovery should be network-bound: {:.3}s -> {:.3}s",
            fast.permanent_secs,
            slow.permanent_secs
        );
        assert!(slow.transient_secs < slow.permanent_secs);
    }
}
