#![warn(missing_docs)]
//! # nfs-sim — the centralized NFS baseline
//!
//! The paper's fourth measured architecture: a conventional client/server
//! NFS, where every I/O from every client funnels through **one server
//! node** — its CPU (nfsd), its NIC port and its local disks. This is the
//! architecture the serverless single I/O space replaces, and in Figure 5
//! it is the one that saturates first: the server's single 12.5 MB/s Fast
//! Ethernet port and single disk arm are shared by all clients.
//!
//! Semantics follow 1999-era NFSv2/v3 defaults: per-block RPCs (rsize =
//! one 32 KB block here) and synchronous writes (each write RPC is stable
//! on disk before the reply).

use cdd::{frontend, IoError};
use cluster::{Cluster, ClusterConfig, DataPlane};
use raidx_core::{Layout, Raid0};
use sim_core::plan::{par, seq, use_res};
use sim_core::{Demand, Engine, Plan, SimDuration};
use sim_net::transfer_plan;

/// NFS protocol cost parameters.
#[derive(Debug, Clone)]
pub struct NfsConfig {
    /// RPC header bytes per request/reply.
    pub rpc_bytes: u64,
    /// Server-side nfsd processing per RPC (lookup, VFS, scheduling).
    pub nfsd_overhead: SimDuration,
    /// Synchronous (write-through) writes, as NFSv2 mandated.
    pub sync_writes: bool,
}

impl Default for NfsConfig {
    fn default() -> Self {
        NfsConfig {
            rpc_bytes: 128,
            nfsd_overhead: SimDuration::from_micros(150),
            sync_writes: true,
        }
    }
}

/// A central NFS server exporting its local disks to every cluster node.
pub struct NfsSystem {
    /// Cluster resource handles.
    pub cluster: Cluster,
    plane: DataPlane,
    layout: Raid0,
    cfg: NfsConfig,
    /// The node acting as the server.
    pub server: usize,
}

impl NfsSystem {
    /// Build the cluster and export node 0's disks over NFS.
    pub fn new(engine: &mut Engine, cluster_cfg: ClusterConfig, cfg: NfsConfig) -> Self {
        let blocks_per_disk = cluster_cfg.blocks_per_disk();
        let server = 0;
        // The server's local disks: global disks g with g % nodes == server.
        let layout = Raid0::new(cluster_cfg.disks_per_node, blocks_per_disk);
        let plane = DataPlane::new(
            cluster_cfg.total_disks(),
            cluster_cfg.block_size as usize,
            blocks_per_disk,
        );
        let cluster = Cluster::build(cluster_cfg, engine);
        NfsSystem { cluster, plane, layout, cfg, server }
    }

    /// Logical block size.
    pub fn block_size(&self) -> u64 {
        self.cluster.cfg.block_size
    }

    /// Exported capacity in blocks (the server's disks only — the
    /// fundamental scalability limit of the central-server design).
    pub fn capacity_blocks(&self) -> u64 {
        self.layout.capacity_blocks()
    }

    /// Map the export's local disk index to the global disk number.
    fn global_disk(&self, local: usize) -> usize {
        local * self.cluster.cfg.nodes + self.server
    }

    fn rpc(&self, src: usize, dst: usize, payload: u64) -> Plan {
        transfer_plan(
            &self.cluster.cfg.net,
            &self.cluster.path(src, dst),
            self.cfg.rpc_bytes + payload,
        )
    }

    fn nfsd(&self) -> Plan {
        use_res(self.cluster.nodes[self.server].cpu, Demand::Busy(self.cfg.nfsd_overhead))
    }

    /// Write `data` at logical block `lb0` from node `client`.
    ///
    /// Admission goes through the same `cdd::frontend` checks as the
    /// serverless array, so both stores reject malformed I/O with
    /// identical [`IoError`] variants.
    pub fn write(&mut self, client: usize, lb0: u64, data: &[u8]) -> Result<Plan, IoError> {
        let bs = self.block_size() as usize;
        let nblocks = frontend::validate_write(bs, self.capacity_blocks(), lb0, data.len())?;
        let mut rpcs = Vec::with_capacity(nblocks as usize);
        for (i, lb) in (lb0..lb0 + nblocks).enumerate() {
            let a = self.layout.locate_data(lb);
            let g = self.global_disk(a.disk);
            self.plane.write(g, a.block, &data[i * bs..(i + 1) * bs])?;
            let d = &self.cluster.disks[g];
            let mut chain = vec![
                self.rpc(client, self.server, bs as u64),
                self.nfsd(),
                use_res(d.bus, Demand::BusXfer { bytes: bs as u64 }),
            ];
            if self.cfg.sync_writes {
                chain.push(use_res(
                    d.res,
                    Demand::DiskWrite { offset: a.block * bs as u64, bytes: bs as u64 },
                ));
            }
            chain.push(self.rpc(self.server, client, 0));
            rpcs.push(seq(chain));
        }
        Ok(par(rpcs))
    }

    /// Read `nblocks` from logical block `lb0` for node `client`.
    pub fn read(
        &mut self,
        client: usize,
        lb0: u64,
        nblocks: u64,
    ) -> Result<(Vec<u8>, Plan), IoError> {
        frontend::validate_range(lb0, nblocks, self.capacity_blocks())?;
        let bs = self.block_size() as usize;
        let mut out = vec![0u8; nblocks as usize * bs];
        let mut rpcs = Vec::with_capacity(nblocks as usize);
        for (i, lb) in (lb0..lb0 + nblocks).enumerate() {
            let a = self.layout.locate_data(lb);
            let g = self.global_disk(a.disk);
            self.plane.read(g, a.block, &mut out[i * bs..(i + 1) * bs])?;
            let d = &self.cluster.disks[g];
            rpcs.push(seq(vec![
                self.rpc(client, self.server, 0),
                self.nfsd(),
                use_res(d.res, Demand::DiskRead { offset: a.block * bs as u64, bytes: bs as u64 }),
                use_res(d.bus, Demand::BusXfer { bytes: bs as u64 }),
                self.rpc(self.server, client, bs as u64),
            ]));
        }
        Ok((out, par(rpcs)))
    }
}

impl cdd::BlockStore for NfsSystem {
    fn block_size(&self) -> u64 {
        NfsSystem::block_size(self)
    }

    fn capacity_blocks(&self) -> u64 {
        NfsSystem::capacity_blocks(self)
    }

    fn nodes(&self) -> usize {
        self.cluster.cfg.nodes
    }

    fn arch_name(&self) -> String {
        "NFS".to_string()
    }

    fn cpu_of(&self, client: usize) -> sim_core::ResourceId {
        self.cluster.nodes[client].cpu
    }

    fn write(&mut self, client: usize, lb0: u64, data: &[u8]) -> Result<Plan, IoError> {
        NfsSystem::write(self, client, lb0, data)
    }

    fn read(&mut self, client: usize, lb0: u64, nblocks: u64) -> Result<(Vec<u8>, Plan), IoError> {
        NfsSystem::read(self, client, lb0, nblocks)
    }

    fn caches_metadata(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        let mut c = ClusterConfig::shape(4, 1);
        c.disk.capacity = 8 << 20;
        c
    }

    #[test]
    fn roundtrip() {
        let mut e = Engine::new();
        let mut s = NfsSystem::new(&mut e, cfg(), NfsConfig::default());
        let bs = s.block_size() as usize;
        let data: Vec<u8> = (0..4 * bs).map(|i| (i % 256) as u8).collect();
        let wp = s.write(2, 1, &data).unwrap();
        let (got, rp) = s.read(3, 1, 4).unwrap();
        assert_eq!(got, data);
        e.spawn_job("w", wp);
        e.spawn_job("r", rp);
        e.run().unwrap();
    }

    #[test]
    fn all_io_flows_through_server() {
        let mut e = Engine::new();
        let mut s = NfsSystem::new(&mut e, cfg(), NfsConfig::default());
        let bs = s.block_size() as usize;
        let data = vec![7u8; 2 * bs];
        let wp = s.write(3, 0, &data).unwrap();
        e.spawn_job("w", wp);
        e.run().unwrap();
        // The server node's rx saw the payload; no other node's disk moved.
        assert!(e.resource_stats(s.cluster.nodes[0].rx).bytes >= 2 * bs as u64);
        for g in 1..4 {
            assert_eq!(e.resource_stats(s.cluster.disks[g].res).ops, 0);
        }
        assert!(e.resource_stats(s.cluster.disks[0].res).ops > 0);
    }

    #[test]
    fn capacity_limited_to_server_disks() {
        let mut e = Engine::new();
        let s = NfsSystem::new(&mut e, cfg(), NfsConfig::default());
        // 1 disk per node -> only node 0's single disk is exported.
        assert_eq!(s.capacity_blocks(), cfg().blocks_per_disk());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut e = Engine::new();
        let mut s = NfsSystem::new(&mut e, cfg(), NfsConfig::default());
        let cap = s.capacity_blocks();
        assert!(s.read(0, cap, 1).is_err());
    }

    #[test]
    fn concurrent_clients_serialize_on_server_port() {
        let mut e = Engine::new();
        let mut s = NfsSystem::new(&mut e, cfg(), NfsConfig::default());
        let bs = s.block_size();
        // Two remote clients read back-to-back ranges simultaneously.
        s.write(0, 0, &vec![1u8; 16 * bs as usize]).unwrap();
        let (_, p1) = s.read(1, 0, 8).unwrap();
        let (_, p2) = s.read(2, 8, 8).unwrap();
        e.spawn_job("c1", p1);
        e.spawn_job("c2", p2);
        let rep = e.run().unwrap();
        // 16 blocks = 512 KB through one 12.5 MB/s port: >= 40 ms.
        assert!(rep.end.as_secs_f64() > 0.04, "finished too fast: {}", rep.end);
        let tx = e.resource_stats(s.cluster.nodes[0].tx);
        assert!(tx.bytes >= 16 * bs);
    }
}
