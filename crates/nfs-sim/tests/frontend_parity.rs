//! Regression test for the shared admission layer: the centralized NFS
//! baseline and the serverless CDD array must reject malformed I/O with
//! *identical* `IoError` variants and fields, because both now admit
//! requests through `cdd::frontend`. Before the layering refactor each
//! store carried its own hand-rolled checks and the reported errors
//! drifted (different `BadLength::expected`, different `OutOfRange::lb`).

use cdd::IoError;
use cluster::ClusterConfig;
use nfs_sim::{NfsConfig, NfsSystem};
use raidx_core::Arch;
use sim_core::Engine;

fn nfs() -> (Engine, NfsSystem) {
    let mut cc = ClusterConfig::shape(4, 1);
    cc.disk.capacity = 4 << 20;
    let mut e = Engine::new();
    let s = NfsSystem::new(&mut e, cc, NfsConfig::default());
    (e, s)
}

fn cdd_array() -> (Engine, cdd::IoSystem) {
    cdd::testkit::shape(4, 1, 4 << 20, Arch::RaidX)
}

/// A 2-block request starting at the store's last valid block must be
/// rejected with `OutOfRange` naming the last *requested* block and the
/// store's capacity — the same report from both admission paths.
fn straddling_read_error(store: &mut dyn cdd::BlockStore) -> (u64, u64, u64) {
    let cap = store.capacity_blocks();
    match store.read(0, cap - 1, 2) {
        Err(IoError::OutOfRange { lb, capacity }) => (cap, lb, capacity),
        other => panic!("expected OutOfRange, got {other:?}"),
    }
}

#[test]
fn out_of_range_errors_are_identical() {
    let (_e1, mut nfs) = nfs();
    let (_e2, mut cdd) = cdd_array();

    // Each store reports relative to its own capacity (the NFS export is
    // one disk; the array is cluster-wide), but the *shape* of the report
    // is shared: lb = last requested block = capacity.
    for store in [&mut nfs as &mut dyn cdd::BlockStore, &mut cdd] {
        let (cap, lb, capacity) = straddling_read_error(store);
        assert_eq!(lb, cap, "last requested block should be reported");
        assert_eq!(capacity, cap);
    }

    // Writes past the end produce the identical report.
    let bs = nfs.block_size() as usize;
    let cap = nfs.capacity_blocks();
    let buf = vec![0u8; 2 * bs];
    match nfs.write(0, cap - 1, &buf) {
        Err(IoError::OutOfRange { lb, capacity }) => {
            assert_eq!((lb, capacity), (cap, cap));
        }
        other => panic!("expected OutOfRange, got {other:?}"),
    }
    let cap = cdd.capacity_blocks();
    match cdd.write(0, cap - 1, &buf) {
        Err(IoError::OutOfRange { lb, capacity }) => {
            assert_eq!((lb, capacity), (cap, cap));
        }
        other => panic!("expected OutOfRange, got {other:?}"),
    }
}

#[test]
fn bad_length_errors_are_identical() {
    let (_e1, mut nfs) = nfs();
    let (_e2, mut cdd) = cdd_array();
    let bs = nfs.block_size() as usize;
    assert_eq!(bs as u64, cdd.block_size());

    for len in [0usize, 1, bs - 1, bs + 1] {
        let buf = vec![0u8; len];
        let nfs_err = nfs.write(0, 0, &buf).unwrap_err();
        let cdd_err = cdd.write(0, 0, &buf).unwrap_err();
        match (&nfs_err, &cdd_err) {
            (
                IoError::BadLength { expected: ea, got: ga },
                IoError::BadLength { expected: eb, got: gb },
            ) => {
                assert_eq!(ea, eb, "stores reported different expected sizes for len {len}");
                assert_eq!(ga, gb);
                assert_eq!(*ga, len);
            }
            other => panic!("len {len}: expected two BadLength errors, got {other:?}"),
        }
    }
}

#[test]
fn whole_block_requests_still_admitted() {
    let (_e1, mut nfs) = nfs();
    let (_e2, mut cdd) = cdd_array();
    let bs = nfs.block_size() as usize;
    let buf = vec![7u8; 3 * bs];
    nfs.write(0, 0, &buf).expect("NFS rejected a valid write");
    cdd.write(0, 0, &buf).expect("CDD rejected a valid write");
    assert_eq!(nfs.read(1, 0, 3).unwrap().0, cdd.read(1, 0, 3).unwrap().0);
}
