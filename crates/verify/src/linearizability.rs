//! Pass 6 — Wing–Gong linearizability checking of SIOS histories.
//!
//! The model checker records every completed group read/write with its
//! real-time invocation/response window ([`cdd::proto::OpRecord`]). This
//! pass replays each explored schedule's history against a **sequential
//! block-store specification**: there must exist a total order of the
//! operations that (a) respects real time — an operation that completed
//! before another was invoked stays before it — and (b) makes every
//! group read return exactly the store contents at its linearization
//! point. A torn read (a reader observing half of a group write) has no
//! such order, which is precisely the consistency the paper's lock-group
//! protocol is supposed to buy.
//!
//! The search is the classic Wing–Gong DFS over linearization prefixes,
//! memoized on `(remaining-ops mask, store state)` so equivalent
//! prefixes are explored once.

use crate::report::PassReport;
use cdd::proto::{
    scenario_cache, scenario_epoch, scenario_reader, scenario_three, CddModel, HistOp, OpRecord,
    Scenario,
};
use cdd::Defect;
use sim_core::explore::Explorer;
use std::collections::BTreeSet;

/// Check one history against the sequential block-store spec (`blocks`
/// cells, all initially zero). Returns the witness-free error if no
/// linearization exists.
pub fn check_history(blocks: u64, hist: &[OpRecord]) -> Result<(), String> {
    assert!(hist.len() < 64, "history too long for the mask encoding");
    let full: u64 = (1u64 << hist.len()) - 1;
    let store = vec![0u64; blocks as usize];
    let mut memo: BTreeSet<(u64, Vec<u64>)> = BTreeSet::new();
    if dfs(hist, full, &store, &mut memo) {
        Ok(())
    } else {
        let reads: Vec<String> = hist
            .iter()
            .filter_map(|r| match &r.op {
                HistOp::Read { start, vals } => {
                    Some(format!("client {} read [{start}..] = {vals:?}", r.client))
                }
                HistOp::Write { .. } => None,
            })
            .collect();
        Err(format!("no linearization of {} ops exists (reads: {})", hist.len(), reads.join("; ")))
    }
}

fn dfs(hist: &[OpRecord], mask: u64, store: &[u64], memo: &mut BTreeSet<(u64, Vec<u64>)>) -> bool {
    if mask == 0 {
        return true;
    }
    if !memo.insert((mask, store.to_vec())) {
        return false; // this configuration already failed
    }
    for i in 0..hist.len() {
        if (mask >> i) & 1 == 0 {
            continue;
        }
        // Real-time rule: i may linearize first among the remaining ops
        // only if no remaining j responded before i was invoked.
        let blocked =
            (0..hist.len()).any(|j| j != i && (mask >> j) & 1 == 1 && hist[j].resp < hist[i].inv);
        if blocked {
            continue;
        }
        match &hist[i].op {
            HistOp::Write { start, len, val } => {
                let mut next = store.to_vec();
                for lb in *start..*start + *len {
                    next[lb as usize] = *val;
                }
                if dfs(hist, mask & !(1 << i), &next, memo) {
                    return true;
                }
            }
            HistOp::Read { start, vals } => {
                let matches =
                    vals.iter().enumerate().all(|(k, v)| store[*start as usize + k] == *v);
                if matches && dfs(hist, mask & !(1 << i), store, memo) {
                    return true;
                }
            }
        }
    }
    false
}

/// Explore one scenario and linearizability-check the history of every
/// schedule, appending one check to `rep`.
pub fn check_scenario(rep: &mut PassReport, sc: Scenario, budget: u64) {
    let name = sc.name;
    let blocks = sc.blocks;
    let m = CddModel::new(sc);
    let ex = Explorer { max_schedules: budget.max(1), ..Explorer::default() };
    let r = ex.explore_with(&m, |s| check_history(blocks, &s.history));
    match (&r.failure, r.truncated) {
        (Some(f), _) => rep.fail(name, f.to_string()),
        (None, true) => rep.fail(
            name,
            format!("budget exhausted after {} schedules ({} pruned)", r.schedules, r.pruned),
        ),
        (None, false) => rep.ok(
            name,
            format!("{} schedules, every history linearizable ({} pruned)", r.schedules, r.pruned),
        ),
    }
}

/// Run the linearizability pass: clean scenarios plus a canary with a
/// planted unlocked reader the checker must flag.
pub fn run_pass(budget: u64) -> PassReport {
    let mut rep = PassReport::new("linearizability");
    check_scenario(&mut rep, scenario_reader(Defect::None), budget);
    check_scenario(&mut rep, scenario_three(Defect::None), budget);
    check_scenario(&mut rep, scenario_epoch(Defect::None), budget);
    check_scenario(&mut rep, scenario_cache(Defect::None), budget);
    // Canary: an unlocked reader must produce a torn (non-linearizable)
    // read on some schedule.
    let sc = scenario_reader(Defect::UnlockedRead);
    let blocks = sc.blocks;
    let m = CddModel::new(sc);
    let ex = Explorer { max_schedules: budget.max(1), ..Explorer::default() };
    let r = ex.explore_with(&m, |s| check_history(blocks, &s.history));
    rep.push(
        "canary: planted unlocked read is caught",
        r.failure.is_some(),
        match &r.failure {
            Some(f) => format!("caught: {f}"),
            None => "checker missed a planted unlocked read".to_string(),
        },
    );
    // Canary: a migration copy that skips the pending re-validation must
    // produce a stale (non-linearizable) read on some schedule.
    let sc = scenario_epoch(Defect::UnsyncedReconfig);
    let blocks = sc.blocks;
    let m = CddModel::new(sc);
    let ex = Explorer { max_schedules: budget.max(1), ..Explorer::default() };
    let r = ex.explore_with(&m, |s| check_history(blocks, &s.history));
    rep.push(
        "canary: planted unsynced migration is caught",
        r.failure.is_some(),
        match &r.failure {
            Some(f) => format!("caught: {f}"),
            None => "checker missed a planted unsynced migration".to_string(),
        },
    );
    // Canary: a writer that skips the cache-invalidation broadcast must
    // leave some schedule with a stale cached read after the write's
    // response — non-linearizable by the real-time rule.
    let sc = scenario_cache(Defect::SkipInvalidate);
    let blocks = sc.blocks;
    let m = CddModel::new(sc);
    let ex = Explorer { max_schedules: budget.max(1), ..Explorer::default() };
    let r = ex.explore_with(&m, |s| check_history(blocks, &s.history));
    rep.push(
        "canary: planted skipped invalidation is caught",
        r.failure.is_some(),
        match &r.failure {
            Some(f) => format!("caught: {f}"),
            None => "checker missed a planted skipped invalidation".to_string(),
        },
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(client: usize, inv: u64, resp: u64, start: u64, len: u64, val: u64) -> OpRecord {
        OpRecord { client, inv, resp, op: HistOp::Write { start, len, val } }
    }

    fn r(client: usize, inv: u64, resp: u64, start: u64, vals: Vec<u64>) -> OpRecord {
        OpRecord { client, inv, resp, op: HistOp::Read { start, vals } }
    }

    #[test]
    fn sequential_history_linearizes() {
        let hist = vec![w(0, 1, 2, 0, 2, 7), r(1, 3, 4, 0, vec![7, 7]), r(1, 5, 6, 0, vec![7, 7])];
        assert!(check_history(2, &hist).is_ok());
    }

    #[test]
    fn concurrent_read_may_see_old_or_new() {
        // Reader overlaps the write: both the pre- and post-state are
        // legal return values.
        for vals in [vec![0, 0], vec![7, 7]] {
            let hist = vec![w(0, 1, 10, 0, 2, 7), r(1, 2, 9, 0, vals)];
            assert!(check_history(2, &hist).is_ok());
        }
    }

    #[test]
    fn torn_read_is_rejected() {
        let hist = vec![w(0, 1, 10, 0, 2, 7), r(1, 2, 9, 0, vec![7, 0])];
        let err = check_history(2, &hist).expect_err("torn read accepted");
        assert!(err.contains("no linearization"), "{err}");
    }

    #[test]
    fn real_time_order_is_enforced() {
        // The write completed (resp 2) before the read was invoked
        // (inv 3): the read may not be moved before it.
        let hist = vec![w(0, 1, 2, 0, 2, 7), r(1, 3, 4, 0, vec![0, 0])];
        assert!(check_history(2, &hist).is_err());
        // But if they overlap, the stale read is fine.
        let hist = vec![w(0, 1, 4, 0, 2, 7), r(1, 3, 5, 0, vec![0, 0])];
        assert!(check_history(2, &hist).is_ok());
    }

    #[test]
    fn clean_pass_reports_zero_findings() {
        let rep = run_pass(crate::model_check::DEFAULT_BUDGET);
        assert!(rep.all_ok(), "{}", rep.render());
        assert_eq!(rep.checks.len(), 7);
    }

    #[test]
    fn seeded_skip_invalidate_produces_stale_read() {
        let mut rep = PassReport::new("linearizability");
        check_scenario(
            &mut rep,
            scenario_cache(Defect::SkipInvalidate),
            crate::model_check::DEFAULT_BUDGET,
        );
        assert_eq!(rep.failures(), 1, "{}", rep.render());
        assert!(rep.checks[0].detail.contains("no linearization"), "{}", rep.checks[0].detail);
    }

    #[test]
    fn seeded_unlocked_read_fails_the_check() {
        let mut rep = PassReport::new("linearizability");
        check_scenario(
            &mut rep,
            scenario_reader(Defect::UnlockedRead),
            crate::model_check::DEFAULT_BUDGET,
        );
        assert_eq!(rep.failures(), 1, "{}", rep.render());
        assert!(rep.checks[0].detail.contains("leaf check"), "{}", rep.checks[0].detail);
    }

    #[test]
    fn seeded_unsynced_reconfig_produces_stale_read() {
        let mut rep = PassReport::new("linearizability");
        check_scenario(
            &mut rep,
            scenario_epoch(Defect::UnsyncedReconfig),
            crate::model_check::DEFAULT_BUDGET,
        );
        assert_eq!(rep.failures(), 1, "{}", rep.render());
        assert!(rep.checks[0].detail.contains("no linearization"), "{}", rep.checks[0].detail);
    }

    #[test]
    fn seeded_early_release_produces_torn_read() {
        let mut rep = PassReport::new("linearizability");
        check_scenario(
            &mut rep,
            scenario_reader(Defect::EarlyRelease),
            crate::model_check::DEFAULT_BUDGET,
        );
        assert_eq!(rep.failures(), 1, "{}", rep.render());
    }
}
