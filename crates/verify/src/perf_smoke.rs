//! Pass 12 — `perf-smoke`: the engine-performance regression gate.
//!
//! Wall-clock benchmarks cannot gate CI (they measure the host, not the
//! code), so this pass gates what *is* deterministic: the engine's work
//! counters ([`sim_core::EngineStats`] — events dispatched, heap pushes,
//! queue-scan iterations, task-slot allocations, tracer calls). It
//! re-runs the small shared scenarios that `bench::perfbench` also
//! writes into `BENCH_engine.json`, and asserts
//!
//! 1. the fresh work counters match the committed baseline within a
//!    tolerance band — catching accidental algorithmic regressions
//!    (an O(n) scan quietly becoming O(n²) shows up as a blown
//!    `queue_scan_iters` long before anyone profiles);
//! 2. a profiler-on run is *result-identical* to a profiler-off run
//!    (same trace fingerprint, same end time, same work counters) —
//!    the profiler-transparency guarantee;
//! 3. a canary: deliberately inflated baseline counters must be flagged,
//!    proving the comparator is alive.
//!
//! The scenario definitions live here (not in `bench`) so the pass and
//! the baseline writer can never drift apart: `perfbench` calls
//! [`smoke_run`] and [`model_budget_work`] for these rows.

use std::path::Path;

use raidx_core::Arch;
use sim_core::explore::Explorer;
use sim_core::trace::EventLog;
use sim_core::HostProfiler;
use workloads::parallel_io::{run_parallel_io, IoPattern, ParallelIoConfig};

use crate::benchfile::{self, BenchScenario};
use crate::report::PassReport;
use crate::trace_determinism::stream_fingerprint;

/// Scenario name of the gated engine smoke run.
pub const SMOKE_NAME: &str = "perf_smoke";
/// Scenario name of the gated model-check budget run.
pub const MODEL_NAME: &str = "model_check_budget";
/// Schedule budget of the gated model-check scenario.
pub const MODEL_BUDGET: u64 = 20_000;
/// Baseline file the pass reads, relative to the repo root.
pub const BASELINE_FILE: &str = "BENCH_engine.json";
/// Counters may drift by this factor before the gate trips. Wide enough
/// to absorb legitimate engine evolution in the same PR that updates the
/// baseline, narrow enough to catch a complexity-class regression.
pub const TOLERANCE: f64 = 1.5;

/// Everything a smoke-scenario run exposes for comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmokeOutcome {
    /// FNV-1a fingerprint of the full trace-event stream.
    pub fingerprint: u64,
    /// Simulated end time, nanoseconds.
    pub end_ns: u64,
    /// Deterministic engine work counters.
    pub work: Vec<(String, u64)>,
}

/// Run the shared smoke scenario — a small RAID-x parallel-write
/// workload on a 4×1 cluster with tracing enabled — optionally with the
/// host profiler installed (which must not change anything observable).
pub fn smoke_run(profiled: bool) -> SmokeOutcome {
    let (mut engine, mut sys) = cdd::testkit::shape(4, 1, 8 << 20, Arch::RaidX);
    if profiled {
        engine.set_profiler(HostProfiler::sampled(7));
    }
    let log = EventLog::new();
    engine.set_tracer(Box::new(log.clone()));
    let cfg = ParallelIoConfig {
        clients: 4,
        pattern: IoPattern::LargeWrite,
        large_bytes: 128 << 10,
        repeats: 2,
        ..Default::default()
    };
    run_parallel_io(&mut engine, &mut sys, &cfg).expect("smoke workload failed");
    let report = engine.run().expect("drain failed");
    SmokeOutcome {
        fingerprint: stream_fingerprint(&log.events()),
        end_ns: report.end.0,
        work: engine.stats().pairs().iter().map(|&(k, v)| (k.to_string(), v)).collect(),
    }
}

/// Deterministic work counters of the gated model-check scenario: a
/// bounded exploration of the contended CDD lock scenario.
pub fn model_budget_work() -> Vec<(String, u64)> {
    let m = cdd::proto::CddModel::new(cdd::proto::scenario_contended(cdd::Defect::None));
    let r = Explorer { max_schedules: MODEL_BUDGET.max(1), ..Explorer::default() }.explore(&m);
    vec![
        ("schedules".to_string(), r.schedules),
        ("steps".to_string(), r.steps),
        ("pruned".to_string(), r.pruned),
    ]
}

/// Compare fresh work counters against a baseline. Returns one message
/// per violation (missing counter, zero/non-zero flip, or a ratio
/// outside `[1/tol, tol]`).
pub fn compare_work(
    current: &[(String, u64)],
    baseline: &[(String, u64)],
    tol: f64,
) -> Vec<String> {
    let mut problems = Vec::new();
    for (key, base) in baseline {
        let Some((_, cur)) = current.iter().find(|(k, _)| k == key) else {
            problems.push(format!("counter `{key}` missing from the fresh run"));
            continue;
        };
        match (*base, *cur) {
            (0, 0) => {}
            (0, c) => problems.push(format!("`{key}` was 0 at baseline, now {c}")),
            (b, 0) => problems.push(format!("`{key}` was {b} at baseline, now 0")),
            (b, c) => {
                let ratio = c as f64 / b as f64;
                if !(1.0 / tol..=tol).contains(&ratio) {
                    problems.push(format!(
                        "`{key}` drifted {ratio:.2}x (baseline {b}, now {c}, tolerance {tol}x)"
                    ));
                }
            }
        }
    }
    problems
}

fn gate_scenario(
    rep: &mut PassReport,
    baseline: &[BenchScenario],
    name: &str,
    current: &[(String, u64)],
) {
    let check = format!("{name} vs baseline");
    let Some(base) = baseline.iter().find(|s| s.name == name) else {
        rep.fail(check, format!("scenario `{name}` not found in {BASELINE_FILE}"));
        return;
    };
    if base.work.is_empty() {
        rep.fail(check, "baseline carries no work counters");
        return;
    }
    let problems = compare_work(current, &base.work, TOLERANCE);
    if problems.is_empty() {
        let summary: Vec<String> = current.iter().map(|(k, v)| format!("{k}={v}")).collect();
        rep.ok(
            check,
            format!("{} counters within {TOLERANCE}x: {}", base.work.len(), summary.join(" ")),
        );
    } else {
        rep.fail(check, problems.join("; "));
    }
}

/// Run the perf-smoke pass against the baseline at
/// `<repo_root>/BENCH_engine.json`.
pub fn run_pass(repo_root: &Path) -> PassReport {
    let mut rep = PassReport::new("perf-smoke");
    let path = repo_root.join(BASELINE_FILE);
    let baseline = match std::fs::read_to_string(&path) {
        Ok(text) => benchfile::parse(&text),
        Err(e) => {
            rep.fail("baseline file", format!("{}: {e}", path.display()));
            return rep;
        }
    };
    if baseline.is_empty() {
        rep.fail("baseline file", format!("{} contains no scenarios", path.display()));
        return rep;
    }
    rep.ok("baseline file", format!("{} scenarios in {BASELINE_FILE}", baseline.len()));

    // 1. Deterministic work counters match the committed baseline.
    let plain = smoke_run(false);
    gate_scenario(&mut rep, &baseline, SMOKE_NAME, &plain.work);
    gate_scenario(&mut rep, &baseline, MODEL_NAME, &model_budget_work());

    // 2. Profiler transparency: identical results with the profiler on.
    let profiled = smoke_run(true);
    rep.push(
        "profiler transparency",
        plain == profiled,
        if plain == profiled {
            format!(
                "profiled run identical: fingerprint {:016x}, end {}ns, {} counters",
                plain.fingerprint,
                plain.end_ns,
                plain.work.len()
            )
        } else {
            format!("profiled run diverged: {plain:?} vs {profiled:?}")
        },
    );

    // 3. Canary: an inflated baseline must trip the comparator.
    let inflated: Vec<(String, u64)> =
        plain.work.iter().map(|(k, v)| (k.clone(), v.saturating_mul(3).max(1))).collect();
    let caught = !compare_work(&plain.work, &inflated, TOLERANCE).is_empty();
    rep.push(
        "canary: 3x counter drift is caught",
        caught,
        if caught {
            "comparator flagged the planted drift"
        } else {
            "comparator missed a 3x drift"
        },
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_deterministic_and_profiler_transparent() {
        let a = smoke_run(false);
        let b = smoke_run(false);
        assert_eq!(a, b, "same-seed smoke runs must be identical");
        let p = smoke_run(true);
        assert_eq!(a, p, "profiler must be invisible to results");
        assert!(a.work.iter().any(|(k, v)| k == "events" && *v > 0), "{a:?}");
    }

    #[test]
    fn model_budget_work_is_deterministic() {
        let a = model_budget_work();
        assert_eq!(a, model_budget_work());
        assert!(a.iter().any(|(k, v)| k == "schedules" && *v > 0), "{a:?}");
    }

    #[test]
    fn comparator_flags_drift_and_passes_identity() {
        let base = vec![("events".to_string(), 1000u64), ("scans".to_string(), 0)];
        assert!(compare_work(&base, &base, TOLERANCE).is_empty());
        let drifted = vec![("events".to_string(), 4000u64), ("scans".to_string(), 5)];
        let problems = compare_work(&drifted, &base, TOLERANCE);
        assert_eq!(problems.len(), 2, "{problems:?}");
        let missing = vec![("events".to_string(), 1000u64)];
        assert_eq!(compare_work(&missing, &base, TOLERANCE).len(), 1);
    }

    #[test]
    fn pass_against_matching_baseline_is_green() {
        // Build a baseline in a temp dir from a fresh run, then gate it.
        let dir = std::env::temp_dir().join("raidx-perf-smoke-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let smoke = smoke_run(false);
        let rows = vec![
            BenchScenario {
                name: SMOKE_NAME.into(),
                samples: 1,
                rate_counter: "events".into(),
                work: smoke.work.clone(),
                ..Default::default()
            },
            BenchScenario {
                name: MODEL_NAME.into(),
                samples: 1,
                rate_counter: "steps".into(),
                work: model_budget_work(),
                ..Default::default()
            },
        ];
        std::fs::write(dir.join(BASELINE_FILE), benchfile::render(&rows, None))
            .expect("write baseline");
        let rep = run_pass(&dir);
        assert!(rep.all_ok(), "{}", rep.render());

        // A corrupted baseline (counters tripled) must fail the gate.
        let bad: Vec<BenchScenario> = rows
            .iter()
            .map(|r| BenchScenario {
                work: r.work.iter().map(|(k, v)| (k.clone(), v * 3 + 1)).collect(),
                ..r.clone()
            })
            .collect();
        std::fs::write(dir.join(BASELINE_FILE), benchfile::render(&bad, None))
            .expect("write baseline");
        let rep = run_pass(&dir);
        assert!(!rep.all_ok(), "tripled baseline must trip the gate");
    }
}
