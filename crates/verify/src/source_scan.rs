//! Pass 4b — source-level nondeterminism hazard scan.
//!
//! The determinism auditor proves one workload replays bit-identically;
//! this scanner hunts for the *sources* of future divergence in the
//! simulation crates before they ever fire in a run:
//!
//! * wall clocks and OS entropy (`Instant::now`, `SystemTime`,
//!   `.elapsed(`, `UNIX_EPOCH`, `thread_rng`, `rand::random`) — the
//!   simulator owns time and randomness, nothing else may; trace and
//!   export paths in particular must stamp simulated nanoseconds only;
//! * iteration over `HashMap`/`HashSet` bindings — iteration order is
//!   randomized per process, so draining one into events, plans or error
//!   lists silently breaks replay.
//!
//! The scanner is **token-aware**: each line is split by a small lexer
//! into its code part (string and char literals blanked, block comments
//! dropped) and its `//` line-comment part before any pattern matching.
//! Hazard patterns only ever match real code — `.elapsed(` inside a
//! comment or a format string is not a finding — and acknowledgements
//! only ever live in line comments.
//!
//! A flagged line can be acknowledged with a `// det-ok:` comment on the
//! line or the line above it (e.g. an error-path diagnostic where order
//! is cosmetic); the scanner reports but does not count acknowledged
//! sites. An acknowledgement whose scope (its own line and the next) no
//! longer contains any hazard is itself flagged as **stale** — otherwise
//! refactors silently leave behind comments that pre-approve a future
//! hazard. Doc comments (`//!`, `///`) merely *mentioning* the marker are
//! not acknowledgements. Test modules (from `#[cfg(test)]` onward) are
//! skipped: tests assert determinism rather than provide it.

use std::path::{Path, PathBuf};

/// One hazardous line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// File the hazard is in (as given to the scanner).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was matched (pattern name or `unordered iteration of `ident).
    pub what: String,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} — {}", self.file, self.line, self.what, self.snippet)
    }
}

// Built with concat! so the scanner does not flag its own pattern table.
const CLOCK_AND_ENTROPY: [&str; 7] = [
    concat!("thread", "_rng"),
    concat!("Instant", "::now"),
    concat!("System", "Time"),
    concat!("rand", "::random"),
    concat!("random", "_state"),
    concat!(".ela", "psed("),
    concat!("UNIX_", "EPOCH"),
];

const UNORDERED_TYPES: [&str; 2] = [concat!("Hash", "Map"), concat!("Hash", "Set")];

const ITER_METHODS: [&str; 7] =
    [".iter()", ".iter_mut()", ".values()", ".values_mut()", ".keys()", ".drain()", ".into_iter()"];

/// Extract the identifier being bound on a line that declares an
/// unordered-map value: `foo: HashMap<...>`, `let foo = HashMap::new()`,
/// `let mut foo: HashSet<...>`.
fn declared_ident(line: &str) -> Option<String> {
    let pos = UNORDERED_TYPES.iter().filter_map(|t| line.find(t)).min()?;
    let before = &line[..pos];
    // The ident precedes the nearest `:` or `=` left of the type — but a
    // `:` that is half of a `::` path separator (as in
    // `std::collections::HashMap`) is part of the type path, not the
    // binding separator, so skip those pairs while scanning right-to-left.
    let b = before.as_bytes();
    let mut sep = None;
    let mut i = b.len();
    while i > 0 {
        i -= 1;
        match b[i] {
            b'=' => {
                sep = Some(i);
                break;
            }
            b':' if i > 0 && b[i - 1] == b':' => i -= 1, // skip `::`
            b':' => {
                sep = Some(i);
                break;
            }
            _ => {}
        }
    }
    let head = before[..sep?].trim_end();
    let ident: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let keyword = matches!(ident.as_str(), "" | "let" | "mut" | "pub" | "crate" | "self" | "fn");
    (!keyword && !ident.chars().next().is_some_and(|c| c.is_numeric())).then_some(ident)
}

fn is_word_boundary(text: &str, start: usize) -> bool {
    // `.` is allowed before: `self.pending.iter()` still iterates the
    // tracked field `pending`.
    start == 0
        || !text[..start].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Does `line` iterate the tracked identifier `ident`?
fn iterates(line: &str, ident: &str) -> bool {
    for m in ITER_METHODS {
        let call = format!("{ident}{m}");
        let mut from = 0;
        while let Some(off) = line[from..].find(&call) {
            let at = from + off;
            if is_word_boundary(line, at) {
                return true;
            }
            from = at + 1;
        }
    }
    // `for x in map` / `for (k, v) in &map` / `in &mut self.map`.
    if let Some(pos) = line.find(" in ") {
        let tail = line[pos + 4..].trim_start_matches(['&', ' ']).trim_start_matches("mut ");
        let end = tail
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
            .unwrap_or(tail.len());
        // Last path segment: `ctx.barriers` iterates `barriers`.
        if tail[..end].split('.').next_back() == Some(ident) && !tail[end..].starts_with('(') {
            return true;
        }
    }
    false
}

// Built with concat! for the same self-matching reason as the pattern
// tables above.
const ACK_MARKER: &str = concat!("det", "-ok");

/// Multi-line lexer state carried across lines of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Code,
    /// Inside `/* … */`, with nesting depth.
    BlockComment(u32),
    /// Inside a normal `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`s.
    RawStr(u8),
}

/// One source line, split into what the compiler would see as code and
/// what it would see as a `//` line comment.
struct SplitLine {
    /// Code with string/char literal contents blanked and comments
    /// removed.
    code: String,
    /// Body of a trailing `//` line comment, if any.
    comment: Option<String>,
    /// The line comment was a doc comment (`///` or `//!`).
    doc: bool,
}

/// Split one line, advancing the cross-line state.
fn split_line(state: &mut LexState, line: &str) -> SplitLine {
    let b = line.as_bytes();
    let mut out = SplitLine { code: String::new(), comment: None, doc: false };
    let mut i = 0;
    while i < b.len() {
        match *state {
            LexState::BlockComment(depth) => {
                if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    *state =
                        if depth > 1 { LexState::BlockComment(depth - 1) } else { LexState::Code };
                    i += 2;
                } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    *state = LexState::BlockComment(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            LexState::Str => {
                if b[i] == b'\\' {
                    i += 2; // skip the escaped char (or trailing continuation)
                } else if b[i] == b'"' {
                    *state = LexState::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                let close = b[i] == b'"'
                    && b[i + 1..].iter().take(hashes as usize).filter(|&&c| c == b'#').count()
                        == hashes as usize;
                if close {
                    *state = LexState::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            LexState::Code => {
                let prev_ident = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
                match b[i] {
                    b'/' if b.get(i + 1) == Some(&b'/') => {
                        out.doc = matches!(b.get(i + 2), Some(&b'/') | Some(&b'!'));
                        out.comment = Some(line[i + 2..].to_string());
                        return out;
                    }
                    b'/' if b.get(i + 1) == Some(&b'*') => {
                        *state = LexState::BlockComment(1);
                        i += 2;
                    }
                    b'"' => {
                        *state = LexState::Str;
                        i += 1;
                    }
                    b'r' | b'b' if !prev_ident => {
                        // Possible raw string: `r"…"`, `r#"…"#`, `br#"…"#`.
                        let mut j = i + 1;
                        if b[i] == b'b' && b.get(j) == Some(&b'r') {
                            j += 1;
                        }
                        let mut hashes = 0u8;
                        while b.get(j + hashes as usize) == Some(&b'#') {
                            hashes += 1;
                        }
                        if b.get(j + hashes as usize) == Some(&b'"') && (b[i] == b'r' || j > i + 1)
                        {
                            *state = LexState::RawStr(hashes);
                            i = j + hashes as usize + 1;
                        } else {
                            out.code.push(b[i] as char);
                            i += 1;
                        }
                    }
                    b'\'' if !prev_ident => {
                        // Char literal vs lifetime: a literal closes with
                        // `'` after one (possibly escaped) char.
                        let lit_end = if b.get(i + 1) == Some(&b'\\') {
                            // escaped char literals: '\n', '\'', '\x7f', '\u{…}'
                            b[i + 2..].iter().position(|&c| c == b'\'').map(|p| i + 3 + p)
                        } else if b.get(i + 2) == Some(&b'\'') {
                            Some(i + 3)
                        } else {
                            None
                        };
                        match lit_end {
                            Some(end) => i = end, // blank the literal
                            None => {
                                out.code.push('\''); // lifetime marker
                                i += 1;
                            }
                        }
                    }
                    c => {
                        out.code.push(c as char);
                        i += 1;
                    }
                }
            }
        }
    }
    out
}

/// Scan one file's text. `label` is used in the reported hazards.
pub fn scan_source_text(label: &str, text: &str) -> Vec<Hazard> {
    // Lex the whole file (the lexer state spans lines), then keep the
    // non-test prefix (test modules sit at the bottom).
    let raw: Vec<&str> = text.lines().map(str::trim).collect();
    let mut lex = LexState::Code;
    let split: Vec<SplitLine> = raw
        .iter()
        .map(|l| split_line(&mut lex, l))
        .take_while(|s| !s.code.contains("#[cfg(test)]"))
        .collect();
    let mut tracked: Vec<String> = Vec::new();
    let mut found: Vec<(usize, Hazard)> = Vec::new();
    // has_hazard[i]: line i contains a hazard, acknowledged or not —
    // what decides whether a nearby acknowledgement is live or stale.
    let mut has_hazard = vec![false; split.len()];
    let mut acks: Vec<usize> = Vec::new();
    for (i, s) in split.iter().enumerate() {
        if let Some(comment) = &s.comment {
            if !s.doc && comment.contains(ACK_MARKER) {
                acks.push(i);
            }
        }
        let line = s.code.as_str();
        if let Some(ident) = declared_ident(line) {
            if !tracked.contains(&ident) {
                tracked.push(ident);
            }
        }
        for pat in CLOCK_AND_ENTROPY {
            if line.contains(pat) {
                has_hazard[i] = true;
                found.push((
                    i,
                    Hazard {
                        file: label.to_string(),
                        line: i + 1,
                        what: format!("forbidden call {pat}"),
                        snippet: raw[i].to_string(),
                    },
                ));
            }
        }
        for ident in &tracked {
            if iterates(line, ident) {
                has_hazard[i] = true;
                found.push((
                    i,
                    Hazard {
                        file: label.to_string(),
                        line: i + 1,
                        what: format!("unordered iteration of `{ident}`"),
                        snippet: raw[i].to_string(),
                    },
                ));
            }
        }
    }
    // An acknowledgement covers its own line and the next one; a hazard
    // is reported unless covered, and a covering-nothing ack is stale.
    let mut hazards: Vec<(usize, Hazard)> =
        found.into_iter().filter(|(i, _)| !acks.iter().any(|&a| a == *i || a + 1 == *i)).collect();
    for &a in &acks {
        let live = has_hazard[a] || has_hazard.get(a + 1) == Some(&true);
        if !live {
            hazards.push((
                a,
                Hazard {
                    file: label.to_string(),
                    line: a + 1,
                    what: format!("stale {ACK_MARKER} acknowledgement (no hazard in scope)"),
                    snippet: raw[a].to_string(),
                },
            ));
        }
    }
    hazards.sort_by_key(|(i, _)| *i);
    hazards.into_iter().map(|(_, h)| h).collect()
}

/// Recursively scan every `.rs` file under `root` (skipping `tests/`,
/// `benches/` and `target/` directories — those assert determinism, they
/// do not implement it).
pub fn scan_dir(root: &Path) -> std::io::Result<Vec<Hazard>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut hazards = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(&f)?;
        let label = f.strip_prefix(root).unwrap_or(&f).display().to_string();
        hazards.extend(scan_source_text(&label, &text));
    }
    Ok(hazards)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "tests" | "benches" | ".git") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wall_clock_and_entropy() {
        let src = "fn f() {\n    let t = Instant::now();\n    let r = rng.thread_rng();\n}\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 2, "{h:?}");
        assert_eq!(h[0].line, 2);
    }

    #[test]
    fn flags_elapsed_and_epoch_wall_clocks() {
        // Trace/export paths must not stamp wall time: `.elapsed()` on a
        // stopwatch and epoch arithmetic are both flagged.
        let src = "fn f(t0: Instant) {\n    let d = t0.elapsed();\n    \
                   let e = now.duration_since(UNIX_EPOCH);\n}\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 2, "{h:?}");
        assert!(h[0].what.contains(concat!("ela", "psed")), "{h:?}");
        assert!(h[1].what.contains(concat!("UNIX", "_EPOCH")), "{h:?}");
    }

    #[test]
    fn flags_hashmap_iteration() {
        let src = "\
struct S { pending: HashMap<u64, u32> }
fn f(s: &S) {
    for (k, v) in s.pending.iter() {
        use_it(k, v);
    }
}
";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("pending"));
    }

    #[test]
    fn flags_fully_qualified_declaration() {
        let src = "\
let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
for (k, v) in m.iter() {
    use_it(k, v);
}
";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("`m`"), "{h:?}");
    }

    #[test]
    fn flags_for_in_over_tracked_binding() {
        let src = "let seen = HashSet::new();\nfor d in &seen {\n    go(d);\n}\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
    }

    #[test]
    fn det_ok_acknowledges() {
        let src = "\
let m: HashMap<u32, u32> = HashMap::new();
// det-ok: error-path diagnostics, order is cosmetic
for v in m.values() {
    show(v);
}
";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn inline_ack_on_hazard_line_accepted() {
        let src = "let t = Instant::now(); // det-ok: test-only timing\n";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn stale_ack_is_flagged() {
        // The hazard this comment once excused is gone; the leftover
        // acknowledgement would pre-approve whatever lands next to it.
        let src = "\
fn f() {
    // det-ok: error-path diagnostics, order is cosmetic
    let x = compute();
    use_it(x);
}
";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("stale"), "{h:?}");
        assert_eq!(h[0].line, 2);
    }

    #[test]
    fn doc_comment_mention_is_not_an_ack() {
        // A doc comment describing the marker is neither a live nor a
        // stale acknowledgement — and does not excuse a hazard below it.
        let src = "//! Lines may carry a `// det-ok:` acknowledgement.\nlet t = Instant::now();\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("forbidden call"), "{h:?}");
    }

    #[test]
    fn acked_hazard_produces_neither_finding() {
        let src = "\
let m: HashMap<u32, u32> = HashMap::new();
for v in m.values() { show(v); } // det-ok: order is cosmetic here
";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn btreemap_untracked_and_lookups_clean() {
        let src = "\
let b: BTreeMap<u32, u32> = BTreeMap::new();
let m: HashMap<u32, u32> = HashMap::new();
for v in b.values() { show(v); }
let x = m.get(&3);
m.insert(1, 2);
";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn test_modules_skipped() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { Instant::now(); }\n}\n";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn hazard_mentions_in_comments_are_not_findings() {
        // The token-aware scanner must not flag pattern text that only
        // appears in comments — the false-positive class the line-based
        // scanner suffered from.
        let src = "\
// the stopwatch .elapsed( reading happens in the driver, not here
fn f() {
    /* Instant::now is forbidden in sim paths */
    let x = compute();
}
";
        assert!(scan_source_text("x.rs", src).is_empty(), "{:?}", scan_source_text("x.rs", src));
    }

    #[test]
    fn hazard_text_in_string_literals_is_not_a_finding() {
        let src = "\
fn f() {
    let msg = \"call Instant::now() to observe .elapsed( drift\";
    let raw = r#\"SystemTime in a raw \"string\" too\"#;
    emit(msg, raw);
}
";
        assert!(scan_source_text("x.rs", src).is_empty(), "{:?}", scan_source_text("x.rs", src));
    }

    #[test]
    fn multiline_strings_and_block_comments_stay_blanked() {
        let src = "\
fn f() {
    let m = \"first line
        second line with Instant::now()
        third\";
    /* a block comment
       mentioning thread_rng across
       lines */
    let h: HashMap<u32, u32> = HashMap::new();
    for v in h.values() { show(v); }
}
";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("`h`"), "{h:?}");
    }

    #[test]
    fn trailing_comment_hazard_is_ignored_but_code_still_scans() {
        let src = "let t = Instant::now(); // not .elapsed( — the call left of us is the hazard\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains(concat!("Instant", "::now")), "{h:?}");
    }

    #[test]
    fn char_literals_and_lifetimes_lex_through() {
        // A `'"'` char literal must not open a string; lifetimes must
        // not derail the lexer from later real hazards.
        let src = "\
fn f<'a>(x: &'a str) {
    let q = '\"';
    let e = '\\'';
    let t = Instant::now();
    keep(x, q, e, t);
}
";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert_eq!(h[0].line, 4);
    }

    #[test]
    fn ack_inside_string_literal_does_not_acknowledge() {
        let src = "let s = \"// det-ok: just text\";\nlet t = Instant::now();\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("forbidden call"), "{h:?}");
    }

    /// The real tree must be hazard-free (with its `det-ok`
    /// acknowledgements) — the satellite gate that keeps future changes
    /// honest.
    #[test]
    fn workspace_sources_are_clean() {
        let crates = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir");
        let hazards = scan_dir(crates).expect("scan");
        assert!(
            hazards.is_empty(),
            "{} hazards:\n{}",
            hazards.len(),
            hazards.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }
}
