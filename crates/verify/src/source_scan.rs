//! Pass 4b — source-level nondeterminism hazard scan.
//!
//! The determinism auditor proves one workload replays bit-identically;
//! this scanner hunts for the *sources* of future divergence in the
//! simulation crates before they ever fire in a run:
//!
//! * wall clocks and OS entropy (`Instant::now`, `SystemTime`,
//!   `.elapsed(`, `UNIX_EPOCH`, `thread_rng`, `rand::random`) — the
//!   simulator owns time and randomness, nothing else may; trace and
//!   export paths in particular must stamp simulated nanoseconds only;
//! * iteration over `HashMap`/`HashSet` bindings — iteration order is
//!   randomized per process, so draining one into events, plans or error
//!   lists silently breaks replay.
//!
//! A flagged line can be acknowledged with a `// det-ok:` comment on the
//! line or the line above it (e.g. an error-path diagnostic where order
//! is cosmetic); the scanner reports but does not count acknowledged
//! sites. An acknowledgement whose scope (its own line and the next) no
//! longer contains any hazard is itself flagged as **stale** — otherwise
//! refactors silently leave behind comments that pre-approve a future
//! hazard. Doc comments (`//!`, `///`) merely *mentioning* the marker are
//! not acknowledgements. Test modules (from `#[cfg(test)]` onward) are
//! skipped: tests assert determinism rather than provide it.

use std::path::{Path, PathBuf};

/// One hazardous line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// File the hazard is in (as given to the scanner).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was matched (pattern name or `unordered iteration of `ident).
    pub what: String,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} — {}", self.file, self.line, self.what, self.snippet)
    }
}

// Built with concat! so the scanner does not flag its own pattern table.
const CLOCK_AND_ENTROPY: [&str; 7] = [
    concat!("thread", "_rng"),
    concat!("Instant", "::now"),
    concat!("System", "Time"),
    concat!("rand", "::random"),
    concat!("random", "_state"),
    concat!(".ela", "psed("),
    concat!("UNIX_", "EPOCH"),
];

const UNORDERED_TYPES: [&str; 2] = [concat!("Hash", "Map"), concat!("Hash", "Set")];

const ITER_METHODS: [&str; 7] =
    [".iter()", ".iter_mut()", ".values()", ".values_mut()", ".keys()", ".drain()", ".into_iter()"];

/// Extract the identifier being bound on a line that declares an
/// unordered-map value: `foo: HashMap<...>`, `let foo = HashMap::new()`,
/// `let mut foo: HashSet<...>`.
fn declared_ident(line: &str) -> Option<String> {
    let pos = UNORDERED_TYPES.iter().filter_map(|t| line.find(t)).min()?;
    let before = &line[..pos];
    // The ident precedes the nearest `:` or `=` left of the type — but a
    // `:` that is half of a `::` path separator (as in
    // `std::collections::HashMap`) is part of the type path, not the
    // binding separator, so skip those pairs while scanning right-to-left.
    let b = before.as_bytes();
    let mut sep = None;
    let mut i = b.len();
    while i > 0 {
        i -= 1;
        match b[i] {
            b'=' => {
                sep = Some(i);
                break;
            }
            b':' if i > 0 && b[i - 1] == b':' => i -= 1, // skip `::`
            b':' => {
                sep = Some(i);
                break;
            }
            _ => {}
        }
    }
    let head = before[..sep?].trim_end();
    let ident: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let keyword = matches!(ident.as_str(), "" | "let" | "mut" | "pub" | "crate" | "self" | "fn");
    (!keyword && !ident.chars().next().is_some_and(|c| c.is_numeric())).then_some(ident)
}

fn is_word_boundary(text: &str, start: usize) -> bool {
    // `.` is allowed before: `self.pending.iter()` still iterates the
    // tracked field `pending`.
    start == 0
        || !text[..start].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Does `line` iterate the tracked identifier `ident`?
fn iterates(line: &str, ident: &str) -> bool {
    for m in ITER_METHODS {
        let call = format!("{ident}{m}");
        let mut from = 0;
        while let Some(off) = line[from..].find(&call) {
            let at = from + off;
            if is_word_boundary(line, at) {
                return true;
            }
            from = at + 1;
        }
    }
    // `for x in map` / `for (k, v) in &map` / `in &mut self.map`.
    if let Some(pos) = line.find(" in ") {
        let tail = line[pos + 4..].trim_start_matches(['&', ' ']).trim_start_matches("mut ");
        let end = tail
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
            .unwrap_or(tail.len());
        // Last path segment: `ctx.barriers` iterates `barriers`.
        if tail[..end].split('.').next_back() == Some(ident) && !tail[end..].starts_with('(') {
            return true;
        }
    }
    false
}

// Built with concat! for the same self-matching reason as the pattern
// tables above.
const ACK_MARKER: &str = concat!("det", "-ok");

/// Scan one file's text. `label` is used in the reported hazards.
pub fn scan_source_text(label: &str, text: &str) -> Vec<Hazard> {
    // Non-test prefix of the file (test modules sit at the bottom).
    let lines: Vec<&str> =
        text.lines().take_while(|l| !l.contains("#[cfg(test)]")).map(str::trim).collect();
    let mut tracked: Vec<String> = Vec::new();
    let mut found: Vec<(usize, Hazard)> = Vec::new();
    // has_hazard[i]: line i contains a hazard, acknowledged or not —
    // what decides whether a nearby acknowledgement is live or stale.
    let mut has_hazard = vec![false; lines.len()];
    let mut acks: Vec<usize> = Vec::new();
    for (i, &line) in lines.iter().enumerate() {
        let is_doc = line.starts_with("//!") || line.starts_with("///");
        if line.contains(ACK_MARKER) && !is_doc {
            acks.push(i);
        }
        if line.starts_with("//") {
            continue;
        }
        if let Some(ident) = declared_ident(line) {
            if !tracked.contains(&ident) {
                tracked.push(ident);
            }
        }
        for pat in CLOCK_AND_ENTROPY {
            if line.contains(pat) {
                has_hazard[i] = true;
                found.push((
                    i,
                    Hazard {
                        file: label.to_string(),
                        line: i + 1,
                        what: format!("forbidden call {pat}"),
                        snippet: line.to_string(),
                    },
                ));
            }
        }
        for ident in &tracked {
            if iterates(line, ident) {
                has_hazard[i] = true;
                found.push((
                    i,
                    Hazard {
                        file: label.to_string(),
                        line: i + 1,
                        what: format!("unordered iteration of `{ident}`"),
                        snippet: line.to_string(),
                    },
                ));
            }
        }
    }
    // An acknowledgement covers its own line and the next one; a hazard
    // is reported unless covered, and a covering-nothing ack is stale.
    let mut hazards: Vec<(usize, Hazard)> =
        found.into_iter().filter(|(i, _)| !acks.iter().any(|&a| a == *i || a + 1 == *i)).collect();
    for &a in &acks {
        let live = has_hazard[a] || has_hazard.get(a + 1) == Some(&true);
        if !live {
            hazards.push((
                a,
                Hazard {
                    file: label.to_string(),
                    line: a + 1,
                    what: format!("stale {ACK_MARKER} acknowledgement (no hazard in scope)"),
                    snippet: lines[a].to_string(),
                },
            ));
        }
    }
    hazards.sort_by_key(|(i, _)| *i);
    hazards.into_iter().map(|(_, h)| h).collect()
}

/// Recursively scan every `.rs` file under `root` (skipping `tests/`,
/// `benches/` and `target/` directories — those assert determinism, they
/// do not implement it).
pub fn scan_dir(root: &Path) -> std::io::Result<Vec<Hazard>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut hazards = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(&f)?;
        let label = f.strip_prefix(root).unwrap_or(&f).display().to_string();
        hazards.extend(scan_source_text(&label, &text));
    }
    Ok(hazards)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "tests" | "benches" | ".git") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wall_clock_and_entropy() {
        let src = "fn f() {\n    let t = Instant::now();\n    let r = rng.thread_rng();\n}\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 2, "{h:?}");
        assert_eq!(h[0].line, 2);
    }

    #[test]
    fn flags_elapsed_and_epoch_wall_clocks() {
        // Trace/export paths must not stamp wall time: `.elapsed()` on a
        // stopwatch and epoch arithmetic are both flagged.
        let src = "fn f(t0: Instant) {\n    let d = t0.elapsed();\n    \
                   let e = now.duration_since(UNIX_EPOCH);\n}\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 2, "{h:?}");
        assert!(h[0].what.contains(concat!("ela", "psed")), "{h:?}");
        assert!(h[1].what.contains(concat!("UNIX", "_EPOCH")), "{h:?}");
    }

    #[test]
    fn flags_hashmap_iteration() {
        let src = "\
struct S { pending: HashMap<u64, u32> }
fn f(s: &S) {
    for (k, v) in s.pending.iter() {
        use_it(k, v);
    }
}
";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("pending"));
    }

    #[test]
    fn flags_fully_qualified_declaration() {
        let src = "\
let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
for (k, v) in m.iter() {
    use_it(k, v);
}
";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("`m`"), "{h:?}");
    }

    #[test]
    fn flags_for_in_over_tracked_binding() {
        let src = "let seen = HashSet::new();\nfor d in &seen {\n    go(d);\n}\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
    }

    #[test]
    fn det_ok_acknowledges() {
        let src = "\
let m: HashMap<u32, u32> = HashMap::new();
// det-ok: error-path diagnostics, order is cosmetic
for v in m.values() {
    show(v);
}
";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn inline_ack_on_hazard_line_accepted() {
        let src = "let t = Instant::now(); // det-ok: test-only timing\n";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn stale_ack_is_flagged() {
        // The hazard this comment once excused is gone; the leftover
        // acknowledgement would pre-approve whatever lands next to it.
        let src = "\
fn f() {
    // det-ok: error-path diagnostics, order is cosmetic
    let x = compute();
    use_it(x);
}
";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("stale"), "{h:?}");
        assert_eq!(h[0].line, 2);
    }

    #[test]
    fn doc_comment_mention_is_not_an_ack() {
        // A doc comment describing the marker is neither a live nor a
        // stale acknowledgement — and does not excuse a hazard below it.
        let src = "//! Lines may carry a `// det-ok:` acknowledgement.\nlet t = Instant::now();\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].what.contains("forbidden call"), "{h:?}");
    }

    #[test]
    fn acked_hazard_produces_neither_finding() {
        let src = "\
let m: HashMap<u32, u32> = HashMap::new();
for v in m.values() { show(v); } // det-ok: order is cosmetic here
";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn btreemap_untracked_and_lookups_clean() {
        let src = "\
let b: BTreeMap<u32, u32> = BTreeMap::new();
let m: HashMap<u32, u32> = HashMap::new();
for v in b.values() { show(v); }
let x = m.get(&3);
m.insert(1, 2);
";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    #[test]
    fn test_modules_skipped() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { Instant::now(); }\n}\n";
        assert!(scan_source_text("x.rs", src).is_empty());
    }

    /// The real tree must be hazard-free (with its `det-ok`
    /// acknowledgements) — the satellite gate that keeps future changes
    /// honest.
    #[test]
    fn workspace_sources_are_clean() {
        let crates = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir");
        let hazards = scan_dir(crates).expect("scan");
        assert!(
            hazards.is_empty(),
            "{} hazards:\n{}",
            hazards.len(),
            hazards.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }
}
