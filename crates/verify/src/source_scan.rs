//! Pass 4b — source-level nondeterminism hazard scan (compatibility
//! shim).
//!
//! The line-oriented scanner that used to live here was promoted into
//! the dedicated analyzer crate as the scope-aware `determinism` rule
//! family of verify pass 11 (`raidx_analyze::determinism`): the same
//! hazard classes (wall clocks / OS entropy, unordered `HashMap` /
//! `HashSet` iteration through bindings) and the same `det-ok`
//! acknowledgement syntax, but with item-granular `#[cfg(test)]`
//! skipping and per-function binding scopes from the shared item
//! parser. This module re-exports the historical API so pass-4b
//! callers (`verify_all --pass source_scan`, now an alias for
//! `static-analysis`) keep working.

pub use raidx_analyze::determinism::{scan_dir, scan_source_text, Hazard};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    /// The real tree must be hazard-free (with its `det-ok`
    /// acknowledgements) — the satellite gate that keeps future changes
    /// honest.
    #[test]
    fn workspace_sources_are_clean() {
        let crates = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir");
        let hazards = scan_dir(crates).expect("scan");
        assert!(
            hazards.is_empty(),
            "{} hazards:\n{}",
            hazards.len(),
            hazards.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }

    /// The re-exported scanner keeps the historical behavior contract.
    #[test]
    fn shim_scans_like_pass_4b() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        let h = scan_source_text("x.rs", src);
        assert_eq!(h.len(), 1, "{h:?}");
        assert_eq!(h[0].line, 2);
        let acked = "let t = Instant::now(); // det-ok: canary\n";
        assert!(scan_source_text("x.rs", acked).is_empty());
    }
}
