//! Pass 2 — lock-order analysis over recorded grant/release traces.
//!
//! The consistency modules serialize writers through block-range lock
//! groups ([`cdd::LockGroupTable`]). A trace of its grants and releases
//! (recorded via [`cdd::IoSystem::enable_lock_trace`]) is replayed here
//! against three invariants:
//!
//! * a slot is never granted twice without an intervening release
//!   (double grant — table corruption);
//! * every release matches a live grant (no release-without-grant);
//! * every grant is eventually released (no leaked groups at trace end);
//!
//! plus the classic ordering property: the *range acquisition order* must
//! be acyclic. If client A acquires range R1 then R2 while holding R1,
//! and client B acquires R2 then R1, the order graph has a cycle — the
//! timing that interleaves them deadlocks the real (distributed) protocol
//! even though the serialized replay happens to finish.

use cdd::LockEvent;
use std::collections::{BTreeMap, BTreeSet};

/// A contiguous block range, the node of the ordering graph.
pub type Range = (u64, u64);

/// A defect found in a lock trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockDefect {
    /// A slot was granted again while its previous grant was still live.
    DoubleGrant {
        /// The corrupted slot.
        slot: usize,
        /// Holder of the still-live grant.
        first_owner: usize,
        /// Owner of the conflicting second grant.
        second_owner: usize,
    },
    /// A release arrived for a slot with no live grant.
    ReleaseWithoutGrant {
        /// The releasing client.
        owner: usize,
        /// The slot it tried to release.
        slot: usize,
    },
    /// A grant was still live when the trace ended.
    LeakedGroup {
        /// Holder of the leaked grant.
        owner: usize,
        /// First block of the leaked range.
        start: u64,
        /// Length of the leaked range.
        len: u64,
    },
    /// The range acquisition order contains a cycle (potential deadlock).
    OrderCycle {
        /// The ranges along the cycle, ending where it started.
        cycle: Vec<Range>,
    },
}

impl std::fmt::Display for LockDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockDefect::DoubleGrant { slot, first_owner, second_owner } => write!(
                f,
                "slot {slot} granted to node {second_owner} while node {first_owner} holds it"
            ),
            LockDefect::ReleaseWithoutGrant { owner, slot } => {
                write!(f, "node {owner} released slot {slot} with no live grant")
            }
            LockDefect::LeakedGroup { owner, start, len } => {
                write!(f, "node {owner} never released [{start}, {})", start + len)
            }
            LockDefect::OrderCycle { cycle } => {
                let path = cycle
                    .iter()
                    .map(|(s, l)| format!("[{s},{})", s + l))
                    .collect::<Vec<_>>()
                    .join(" -> ");
                write!(f, "cyclic acquisition order: {path}")
            }
        }
    }
}

/// Outcome of replaying one trace.
#[derive(Debug, Clone, Default)]
pub struct LockAuditReport {
    /// Events replayed.
    pub events: usize,
    /// Grants seen.
    pub grants: usize,
    /// Conflicts seen (not defects — the table refused them correctly).
    pub conflicts: usize,
    /// Edges in the range-ordering graph.
    pub order_edges: usize,
    /// Defects found, in detection order.
    pub defects: Vec<LockDefect>,
}

impl LockAuditReport {
    /// True when the trace is defect-free.
    pub fn clean(&self) -> bool {
        self.defects.is_empty()
    }
}

/// Replay `events` and audit the invariants described in the module docs.
pub fn analyze_lock_trace(events: &[LockEvent]) -> LockAuditReport {
    let mut report = LockAuditReport { events: events.len(), ..Default::default() };
    // Live grants, slot -> (owner, range).
    let mut live: BTreeMap<usize, (usize, Range)> = BTreeMap::new();
    // Range-ordering graph: held range -> ranges acquired while holding it.
    let mut edges: BTreeMap<Range, BTreeSet<Range>> = BTreeMap::new();
    for ev in events {
        match *ev {
            LockEvent::Grant { owner, start, len, slot } => {
                report.grants += 1;
                let range = (start, len);
                for (_, &(held_owner, held)) in live.iter() {
                    if held_owner == owner && held != range {
                        edges.entry(held).or_default().insert(range);
                    }
                }
                if let Some(&(first_owner, _)) = live.get(&slot) {
                    report.defects.push(LockDefect::DoubleGrant {
                        slot,
                        first_owner,
                        second_owner: owner,
                    });
                }
                live.insert(slot, (owner, range));
            }
            LockEvent::Release { owner, slot } => {
                if live.remove(&slot).is_none() {
                    report.defects.push(LockDefect::ReleaseWithoutGrant { owner, slot });
                }
            }
            LockEvent::Conflict { .. } => report.conflicts += 1,
        }
    }
    for (_, (owner, (start, len))) in live {
        report.defects.push(LockDefect::LeakedGroup { owner, start, len });
    }
    report.order_edges = edges.values().map(BTreeSet::len).sum();
    if let Some(cycle) = find_cycle(&edges) {
        report.defects.push(LockDefect::OrderCycle { cycle });
    }
    report
}

/// Depth-first search for a cycle in the ordering graph; returns the
/// cycle path (closed: first node repeated at the end) if one exists.
fn find_cycle(edges: &BTreeMap<Range, BTreeSet<Range>>) -> Option<Vec<Range>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Open,
        Done,
    }
    let mut marks: BTreeMap<Range, Mark> = BTreeMap::new();
    let mut stack: Vec<Range> = Vec::new();

    fn visit(
        node: Range,
        edges: &BTreeMap<Range, BTreeSet<Range>>,
        marks: &mut BTreeMap<Range, Mark>,
        stack: &mut Vec<Range>,
    ) -> Option<Vec<Range>> {
        marks.insert(node, Mark::Open);
        stack.push(node);
        if let Some(next) = edges.get(&node) {
            for &n in next {
                match marks.get(&n) {
                    Some(Mark::Open) => {
                        // Found: slice the stack from the first occurrence.
                        let pos = stack.iter().position(|&r| r == n).unwrap_or(0);
                        let mut cycle = stack[pos..].to_vec();
                        cycle.push(n);
                        return Some(cycle);
                    }
                    Some(Mark::Done) => {}
                    None => {
                        if let Some(c) = visit(n, edges, marks, stack) {
                            return Some(c);
                        }
                    }
                }
            }
        }
        stack.pop();
        marks.insert(node, Mark::Done);
        None
    }

    for &node in edges.keys() {
        if !marks.contains_key(&node) {
            if let Some(c) = visit(node, edges, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(owner: usize, start: u64, len: u64, slot: usize) -> LockEvent {
        LockEvent::Grant { owner, start, len, slot }
    }

    fn release(owner: usize, slot: usize) -> LockEvent {
        LockEvent::Release { owner, slot }
    }

    #[test]
    fn clean_trace_passes() {
        let trace = vec![
            grant(0, 0, 10, 0),
            release(0, 0),
            grant(1, 0, 10, 0),
            LockEvent::Conflict { owner: 2, holder: 1, start: 5, len: 1 },
            release(1, 0),
        ];
        let r = analyze_lock_trace(&trace);
        assert!(r.clean(), "{:?}", r.defects);
        assert_eq!(r.grants, 2);
        assert_eq!(r.conflicts, 1);
    }

    #[test]
    fn double_grant_detected() {
        let trace = vec![grant(0, 0, 10, 0), grant(1, 20, 10, 0), release(1, 0)];
        let r = analyze_lock_trace(&trace);
        assert!(r.defects.iter().any(|d| matches!(
            d,
            LockDefect::DoubleGrant { slot: 0, first_owner: 0, second_owner: 1 }
        )));
    }

    #[test]
    fn release_without_grant_detected() {
        let r = analyze_lock_trace(&[release(3, 9)]);
        assert_eq!(r.defects, vec![LockDefect::ReleaseWithoutGrant { owner: 3, slot: 9 }]);
    }

    #[test]
    fn leaked_group_detected() {
        let r = analyze_lock_trace(&[grant(2, 100, 5, 0)]);
        assert_eq!(r.defects, vec![LockDefect::LeakedGroup { owner: 2, start: 100, len: 5 }]);
    }

    /// The seeded deadlock: node 0 takes A then B (holding A), node 1
    /// takes B then A (holding B). Serialized it completes; the order
    /// graph still has the A->B->A cycle.
    #[test]
    fn cyclic_acquisition_order_detected() {
        let a = (0u64, 10u64);
        let b = (100u64, 10u64);
        let trace = vec![
            grant(0, a.0, a.1, 0),
            grant(0, b.0, b.1, 1), // 0 holds A, acquires B: edge A -> B
            release(0, 1),
            release(0, 0),
            grant(1, b.0, b.1, 0),
            grant(1, a.0, a.1, 1), // 1 holds B, acquires A: edge B -> A
            release(1, 1),
            release(1, 0),
        ];
        let r = analyze_lock_trace(&trace);
        assert_eq!(r.order_edges, 2);
        let cycle = r.defects.iter().find_map(|d| match d {
            LockDefect::OrderCycle { cycle } => Some(cycle.clone()),
            _ => None,
        });
        let cycle = cycle.expect("cycle not found");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.contains(&a) && cycle.contains(&b));
    }

    /// A 3-cycle across three clients: 0 holds A acquires B, 1 holds B
    /// acquires C, 2 holds C acquires A. No pair of clients conflicts
    /// directly — only the length-3 cycle reveals the deadlock.
    #[test]
    fn three_cycle_detected() {
        let a = (0u64, 10u64);
        let b = (100u64, 10u64);
        let c = (200u64, 10u64);
        let mut trace = Vec::new();
        for (owner, (first, second)) in [(0, (a, b)), (1, (b, c)), (2, (c, a))] {
            trace.push(grant(owner, first.0, first.1, 0));
            trace.push(grant(owner, second.0, second.1, 1));
            trace.push(release(owner, 1));
            trace.push(release(owner, 0));
        }
        let r = analyze_lock_trace(&trace);
        assert_eq!(r.order_edges, 3);
        let cycle = r
            .defects
            .iter()
            .find_map(|d| match d {
                LockDefect::OrderCycle { cycle } => Some(cycle.clone()),
                _ => None,
            })
            .expect("3-cycle not found");
        assert_eq!(cycle.first(), cycle.last());
        // The closed path visits all three ranges.
        assert!(cycle.contains(&a) && cycle.contains(&b) && cycle.contains(&c), "{cycle:?}");
        assert_eq!(cycle.len(), 4, "{cycle:?}");
    }

    /// A 4-cycle (A->B->C->D->A) spread over four clients.
    #[test]
    fn four_cycle_detected() {
        let ranges = [(0u64, 8u64), (50, 8), (100, 8), (150, 8)];
        let mut trace = Vec::new();
        for owner in 0..4usize {
            let first = ranges[owner];
            let second = ranges[(owner + 1) % 4];
            trace.push(grant(owner, first.0, first.1, 0));
            trace.push(grant(owner, second.0, second.1, 1));
            trace.push(release(owner, 1));
            trace.push(release(owner, 0));
        }
        let r = analyze_lock_trace(&trace);
        let cycle = r
            .defects
            .iter()
            .find_map(|d| match d {
                LockDefect::OrderCycle { cycle } => Some(cycle.clone()),
                _ => None,
            })
            .expect("4-cycle not found");
        assert_eq!(cycle.len(), 5, "{cycle:?}");
        for rg in ranges {
            assert!(cycle.contains(&rg), "{cycle:?} missing {rg:?}");
        }
    }

    /// Overlapping-but-distinct ranges are distinct graph nodes: opposite
    /// acquisition orders over them still form a cycle, even though the
    /// ranges share blocks.
    #[test]
    fn cycle_through_overlapping_ranges_detected() {
        let a = (0u64, 10u64); // [0, 10)
        let b = (5u64, 10u64); // [5, 15) — overlaps A
        let trace = vec![
            grant(0, a.0, a.1, 0),
            grant(0, b.0, b.1, 1), // same owner, overlap allowed: edge A -> B
            release(0, 1),
            release(0, 0),
            grant(1, b.0, b.1, 0),
            grant(1, a.0, a.1, 1), // edge B -> A
            release(1, 1),
            release(1, 0),
        ];
        let r = analyze_lock_trace(&trace);
        assert!(
            r.defects.iter().any(|d| matches!(d, LockDefect::OrderCycle { .. })),
            "{:?}",
            r.defects
        );
    }

    /// Interleaved grant/release of overlapping ranges with slot reuse:
    /// each client re-acquires a range overlapping one it just released,
    /// never holding two at once — no edges, no cycle, clean.
    #[test]
    fn interleaved_overlapping_grant_release_is_clean() {
        let trace = vec![
            grant(0, 0, 10, 0),
            release(0, 0),
            grant(1, 5, 10, 0), // reuses slot 0, overlaps the released range
            release(1, 0),
            grant(0, 8, 4, 0),
            release(0, 0),
            grant(1, 0, 16, 0),
            release(1, 0),
        ];
        let r = analyze_lock_trace(&trace);
        assert!(r.clean(), "{:?}", r.defects);
        assert_eq!(r.order_edges, 0);
        assert_eq!(r.grants, 4);
    }

    /// Same-owner overlapping holds (allowed by the table) generate
    /// order edges like any other pair, and a consistent global order
    /// over them stays clean.
    #[test]
    fn overlapping_holds_consistent_order_clean() {
        let trace = vec![
            grant(0, 0, 10, 0),
            grant(0, 5, 10, 1),
            release(0, 1),
            release(0, 0),
            grant(1, 0, 10, 0),
            grant(1, 5, 10, 1),
            release(1, 1),
            release(1, 0),
        ];
        let r = analyze_lock_trace(&trace);
        assert!(r.clean(), "{:?}", r.defects);
        assert_eq!(r.order_edges, 1);
    }

    /// Nested same-order acquisitions are fine: A then B everywhere.
    #[test]
    fn consistent_order_is_clean() {
        let trace = vec![
            grant(0, 0, 10, 0),
            grant(0, 100, 10, 1),
            release(0, 1),
            release(0, 0),
            grant(1, 0, 10, 0),
            grant(1, 100, 10, 1),
            release(1, 1),
            release(1, 0),
        ];
        let r = analyze_lock_trace(&trace);
        assert!(r.clean(), "{:?}", r.defects);
        assert_eq!(r.order_edges, 1);
    }

    /// End-to-end: the trace recorded by a real `IoSystem` is clean.
    #[test]
    fn real_iosystem_trace_is_clean() {
        use raidx_core::Arch;

        let (_engine, mut sys) = cdd::testkit::shape(4, 1, 4 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        sys.enable_lock_trace();
        let buf = vec![0x5A; bs];
        for client in 0..4 {
            for blk in 0..8u64 {
                sys.write(client, client as u64 * 8 + blk, &buf).expect("write");
            }
        }
        let trace = sys.take_lock_trace();
        assert!(!trace.is_empty());
        let r = analyze_lock_trace(&trace);
        assert!(r.clean(), "{:?}", r.defects);
        assert_eq!(r.grants as u64, sys.lock_grants());
    }
}
