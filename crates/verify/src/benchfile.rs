//! The `BENCH_engine.json` schema: writer and (minimal) reader.
//!
//! `BENCH_engine.json` at the repo root is the PR-over-PR engine
//! performance trajectory. Each scenario carries two kinds of numbers:
//!
//! * **advisory** wall-clock figures (`wall_ns`, `rate.per_sec`) —
//!   machine-dependent, informative only, never gated;
//! * **gateable** deterministic work counters (`work`) — functions of
//!   the simulated workload alone, which the `perf-smoke` verify pass
//!   compares against a fresh run within a tolerance band.
//!
//! The file deliberately carries no timestamp or host identifier, so
//! regenerating it on an unchanged engine yields an unchanged `work`
//! section (only the advisory numbers move). Both sides of the contract
//! live here — [`render`] (used by `bench::perfbench` to write the
//! baseline) and [`parse`] (used by the `perf-smoke` pass to read it) —
//! so the writer and the gate can never drift apart.

/// One benchmark scenario row of `BENCH_engine.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchScenario {
    /// Stable scenario identifier (e.g. `"parallel_write_raidx"`).
    pub name: String,
    /// Timed repetitions behind the wall-clock figures.
    pub samples: usize,
    /// Median host wall time of one run, nanoseconds (advisory).
    pub wall_median_ns: u64,
    /// Median absolute deviation of the samples, nanoseconds (advisory).
    pub wall_mad_ns: u64,
    /// Which work counter the throughput figure is derived from.
    pub rate_counter: String,
    /// `work[rate_counter] / median wall seconds` (advisory).
    pub rate_per_sec: f64,
    /// Deterministic work counters, in stable order (gateable).
    pub work: Vec<(String, u64)>,
}

/// Render the full `BENCH_engine.json` document.
pub fn render(scenarios: &[BenchScenario], overhead_pct: Option<f64>) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"schema\": \"raidx-bench-engine/v1\",\n");
    out.push_str(
        "  \"note\": \"wall_ns and rate are advisory (machine-dependent); \
         work counters are deterministic and gated by verify pass perf-smoke\",\n",
    );
    if let Some(pct) = overhead_pct {
        let _ = writeln!(out, "  \"profiler_overhead_pct\": {pct:.2},");
    }
    out.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", sim_core::export::json_escape(&sc.name));
        let _ = writeln!(out, "      \"samples\": {},", sc.samples);
        let _ = writeln!(
            out,
            "      \"wall_ns\": {{\"median\": {}, \"mad\": {}}},",
            sc.wall_median_ns, sc.wall_mad_ns
        );
        let _ = writeln!(
            out,
            "      \"rate\": {{\"counter\": \"{}\", \"per_sec\": {:.1}}},",
            sim_core::export::json_escape(&sc.rate_counter),
            sc.rate_per_sec
        );
        let pairs: Vec<String> = sc
            .work
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", sim_core::export::json_escape(k)))
            .collect();
        let _ = writeln!(out, "      \"work\": {{{}}}", pairs.join(", "));
        let _ = writeln!(out, "    }}{}", if i + 1 < scenarios.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn quoted_value(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn num_after(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    digits.parse().ok()
}

fn parse_work(line: &str) -> Vec<(String, u64)> {
    // `"work": {"events": 42, "heap_pushes": 99}` — split on the pairs.
    let Some(open) = line.find('{') else { return Vec::new() };
    let body = line[open + 1..].trim_end().trim_end_matches(['}', ',']);
    body.split(", ")
        .filter_map(|pair| {
            let (k, v) = pair.split_once(": ")?;
            Some((k.trim().trim_matches('"').to_string(), v.trim().parse().ok()?))
        })
        .collect()
}

/// Extract every scenario (name, advisory figures, work counters) from a
/// `BENCH_engine.json` document written by [`render`]. Lines that don't
/// match the schema are ignored, so the parser tolerates additions.
pub fn parse(text: &str) -> Vec<BenchScenario> {
    let mut out: Vec<BenchScenario> = Vec::new();
    for line in text.lines() {
        if let Some(name) = quoted_value(line, "name") {
            out.push(BenchScenario { name, ..Default::default() });
            continue;
        }
        let Some(cur) = out.last_mut() else { continue };
        if line.contains("\"samples\":") {
            cur.samples = num_after(line, "samples").unwrap_or(0.0) as usize;
        } else if line.contains("\"wall_ns\":") {
            cur.wall_median_ns = num_after(line, "median").unwrap_or(0.0) as u64;
            cur.wall_mad_ns = num_after(line, "mad").unwrap_or(0.0) as u64;
        } else if line.contains("\"rate\":") {
            cur.rate_counter = quoted_value(line, "counter").unwrap_or_default();
            cur.rate_per_sec = num_after(line, "per_sec").unwrap_or(0.0);
        } else if line.contains("\"work\":") {
            cur.work = parse_work(line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> BenchScenario {
        BenchScenario {
            name: "perf_smoke".into(),
            samples: 5,
            wall_median_ns: 1_234_567,
            wall_mad_ns: 890,
            rate_counter: "events".into(),
            rate_per_sec: 123456.7,
            work: vec![("events".into(), 4242), ("heap_pushes".into(), 9999)],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let scenarios = vec![demo(), BenchScenario { name: "other".into(), ..demo() }];
        let text = render(&scenarios, Some(1.9));
        assert!(sim_core::json_is_valid(&text), "{text}");
        let back = parse(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], scenarios[0]);
        assert_eq!(back[1].name, "other");
        assert!(text.contains("\"profiler_overhead_pct\": 1.90"));
    }

    #[test]
    fn render_without_overhead_is_valid() {
        let text = render(&[demo()], None);
        assert!(sim_core::json_is_valid(&text), "{text}");
        assert!(!text.contains("profiler_overhead_pct"));
    }

    #[test]
    fn parser_ignores_unknown_lines() {
        let text = "{\n  \"schema\": \"x\",\n  \"future_field\": 3,\n  \"scenarios\": []\n}\n";
        assert!(parse(text).is_empty());
    }
}
