//! Pass 9 — fault-injection sweep.
//!
//! Enumerates single-fault injection points across every architecture
//! and asserts the two properties the fault subsystem promises:
//!
//! * **Zero lost blocks** — a deterministic op script runs while one
//!   fault (permanent disk failure, transient outage, NIC partition,
//!   whole-node crash, or disk slowdown) fires mid-workload and is later
//!   repaired (transient resync, partition heal, node restart, or a full
//!   rebuild). Afterwards the array must be byte-identical to the
//!   script's shadow model, the scrub must find every redundancy
//!   relation consistent, and no parked blocks, offline disks or
//!   partitions may remain.
//! * **Determinism under faults** — each scenario runs twice with the
//!   [`EventLog`] tracer installed; the full observability event streams
//!   must fingerprint identically. Same seed + same [`FaultPlan`] ⇒ the
//!   same execution, which is what makes an injected failure debuggable.
//!
//! The sweep uses a 4-node × 1-disk array so every injected fault is a
//! *single* fault to each redundancy group — the regime all four
//! layouts are specified to survive.

use cdd::{FaultEvent, FaultInjector, IoSystem};
use raidx_core::Arch;
use sim_core::check::Gen;
use sim_core::trace::EventLog;
use sim_core::{FaultPlan, SimTime};
use workloads::op_script::{check_against_model, gen_script, run_script};

use crate::report::PassReport;
use crate::trace_determinism::stream_fingerprint;

/// The fault classes the sweep injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Permanent disk failure; repaired by a full rebuild after the
    /// script drains.
    Permanent,
    /// Transient disk outage; repaired mid-script by a parked-block
    /// resync.
    Transient,
    /// NIC partition of one node; healed mid-script.
    Partition,
    /// Whole-node crash; restarted mid-script.
    Crash,
    /// Disk slowdown (timing-only fault), injected on a *timed* trigger;
    /// restored mid-script.
    Slow,
    /// Membership reconfiguration: a spare is hot-added at the injection
    /// point and the target disk retired onto it a few ops later, so the
    /// script's tail runs against an in-flight migration. Drained after
    /// the script via the incremental rebalance.
    Reconfig,
    /// Whole-disk replace (`DiskAdd` + `DiskRemove` as one event) fired
    /// at the injection point; the migration drains after the script.
    Replace,
}

impl FaultKind {
    /// Every fault class, in sweep order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::Permanent,
        FaultKind::Transient,
        FaultKind::Partition,
        FaultKind::Crash,
        FaultKind::Slow,
        FaultKind::Reconfig,
        FaultKind::Replace,
    ];

    /// True for the membership-reconfiguration classes, which leave a
    /// migration in flight for the scenario to drain after the script.
    pub fn is_reconfig(self) -> bool {
        matches!(self, FaultKind::Reconfig | FaultKind::Replace)
    }
}

/// One cell of the sweep: an architecture, a fault class and the op
/// index the fault fires at.
#[derive(Debug, Clone, Copy)]
pub struct SweepScenario {
    /// Architecture under test.
    pub arch: Arch,
    /// Fault class injected.
    pub kind: FaultKind,
    /// Script op index the fault fires before.
    pub inject_at: usize,
    /// Run with the client block cache enabled. Cached cells additionally
    /// assert that no read served stale bytes at any point: the fault
    /// classes swept here (disk loss, node crash, reconfiguration) must
    /// be invisible through the cache's flush/invalidation hooks.
    pub cached: bool,
}

/// What one scenario run observed.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Fingerprint of the full traced event stream.
    pub fingerprint: u64,
    /// Events the tracer recorded.
    pub events: usize,
    /// Script ops that surfaced an error.
    pub failed_ops: usize,
    /// Everything that violated the recovery contract (empty = clean).
    pub problems: Vec<String>,
}

const TARGET_DISK: usize = 3;
const TARGET_NODE: usize = 3;
/// Node driving recovery traffic (also the read-back client).
const DRIVER: usize = 0;
const CLIENTS: usize = 2;
const NOPS: usize = 40;
const REGION_BLOCKS: u64 = 64;
const SCRIPT_SEED: u64 = 0x00fa_0157;
/// Ops between injection and the matching repair event.
const REPAIR_GAP: usize = 6;

/// The sweep grid: every architecture × every fault class × three
/// injection points (early, middle, late). `smoke` cuts it to two fault
/// classes at the middle point — the CI stage.
pub fn scenarios(smoke: bool) -> Vec<SweepScenario> {
    let kinds: &[FaultKind] = if smoke {
        &[FaultKind::Permanent, FaultKind::Crash, FaultKind::Reconfig]
    } else {
        &FaultKind::ALL
    };
    let points: &[usize] = if smoke { &[18] } else { &[2, 18, 32] };
    let mut out = Vec::new();
    for arch in Arch::ALL {
        for &kind in kinds {
            for &inject_at in points {
                out.push(SweepScenario { arch, kind, inject_at, cached: false });
            }
        }
    }
    // Cached cells: the fault classes whose flush/invalidation hooks the
    // cache must ride (media loss → rebuild, node crash → client flush,
    // membership epoch bump → global flush), at the middle point. Smoke
    // keeps RAID-x only; the full grid sweeps every architecture.
    let cache_kinds = [FaultKind::Permanent, FaultKind::Crash, FaultKind::Reconfig];
    let cache_archs: &[Arch] = if smoke { &[Arch::RaidX] } else { &Arch::ALL };
    for &arch in cache_archs {
        for kind in cache_kinds {
            out.push(SweepScenario { arch, kind, inject_at: 18, cached: true });
        }
    }
    out
}

fn build_plan(kind: FaultKind, inject_at: usize) -> FaultPlan<FaultEvent> {
    let inject = format!("op:{inject_at}");
    let repair = format!("op:{}", inject_at + REPAIR_GAP);
    let mut plan = FaultPlan::new();
    match kind {
        FaultKind::Permanent => {
            plan.at_point(inject, 1, FaultEvent::DiskFail { disk: TARGET_DISK });
        }
        FaultKind::Transient => {
            plan.at_point(inject, 1, FaultEvent::DiskTransient { disk: TARGET_DISK });
            plan.at_point(repair, 1, FaultEvent::DiskRecover { disk: TARGET_DISK, client: DRIVER });
        }
        FaultKind::Partition => {
            plan.at_point(inject, 1, FaultEvent::NicPartition { node: TARGET_NODE });
            plan.at_point(repair, 1, FaultEvent::NicHeal { node: TARGET_NODE, client: DRIVER });
        }
        FaultKind::Crash => {
            plan.at_point(inject, 1, FaultEvent::NodeCrash { node: TARGET_NODE });
            plan.at_point(repair, 1, FaultEvent::NodeRestart { node: TARGET_NODE, client: DRIVER });
        }
        FaultKind::Slow => {
            // Timed trigger: exercises the run_until-driven path.
            plan.at(SimTime(1_500_000), FaultEvent::DiskSlow { disk: TARGET_DISK, factor: 6 });
            plan.at_point(repair, 1, FaultEvent::DiskSlow { disk: TARGET_DISK, factor: 1 });
        }
        FaultKind::Reconfig => {
            plan.at_point(inject, 1, FaultEvent::DiskAdd { client: DRIVER });
            plan.at_point(repair, 1, FaultEvent::DiskRemove { disk: TARGET_DISK, client: DRIVER });
        }
        FaultKind::Replace => {
            plan.at_point(inject, 1, FaultEvent::DiskReplace { disk: TARGET_DISK, client: DRIVER });
        }
    }
    plan
}

fn post_recovery_problems(sys: &mut IoSystem, kind: FaultKind) -> Vec<String> {
    let mut problems = Vec::new();
    if kind != FaultKind::Slow {
        if sys.faults().iter().next().is_some() {
            problems.push("permanent faults remain after recovery".into());
        }
        if sys.offline_disks().iter().next().is_some() {
            problems.push("disks still offline after recovery".into());
        }
        if !sys.partitions().is_empty() {
            problems.push("partitions remain after recovery".into());
        }
        if sys.parked_total() != 0 {
            problems.push(format!("{} blocks still parked after recovery", sys.parked_total()));
        }
    }
    if kind.is_reconfig() {
        if sys.migration_pending() != 0 {
            problems.push(format!("{} blocks still pending migration", sys.migration_pending()));
        }
        if sys.cluster_map().slot_of(TARGET_DISK).is_some() {
            problems.push("retired disk still serves a slot".into());
        }
        if sys.epoch() < 2 {
            problems.push(format!("epoch {} after add+remove, expected >= 2", sys.epoch()));
        }
    }
    match sys.scrub() {
        Ok(_) => {}
        Err(e) => problems.push(format!("post-recovery scrub failed: {e}")),
    }
    problems
}

/// Run one scenario once: scripted ops with the fault plan attached,
/// repair (rebuild for the permanent class), then the full recovery
/// contract check.
pub fn run_scenario(sc: &SweepScenario) -> SweepOutcome {
    let cdd_cfg = cdd::CddConfig {
        cache: sc.cached.then_some(cdd::CacheConfig { capacity_blocks: 32 }),
        ..cdd::CddConfig::default()
    };
    let (mut engine, mut sys) = cdd::testkit::shape_with(4, 1, 8 << 20, sc.arch, cdd_cfg);
    let log = EventLog::new();
    engine.set_tracer(Box::new(log.clone()));
    let ops = gen_script(&mut Gen::new(SCRIPT_SEED), CLIENTS, REGION_BLOCKS, NOPS);
    let mut inj = FaultInjector::new(build_plan(sc.kind, sc.inject_at));

    let mut problems = Vec::new();
    let mut failed_ops = 0;
    match run_script(&mut engine, &mut sys, &ops, Some(&mut inj)) {
        Ok(out) => {
            failed_ops = out.failed;
            if inj.fired().is_empty() {
                problems.push("no fault fired".into());
            }
            // The permanent class repairs after the script: a full
            // rebuild under whatever background flushes are still live.
            if sc.kind == FaultKind::Permanent {
                match sys.rebuild_disk(DRIVER, TARGET_DISK) {
                    Ok((plan, _)) => {
                        engine.spawn_job("rebuild", plan);
                        engine.run().expect("rebuild deadlocked");
                    }
                    Err(e) => problems.push(format!("rebuild failed: {e}")),
                }
            }
            // The reconfiguration classes drain the in-flight migration
            // after the script, like an operator finishing a rebalance.
            if sc.kind.is_reconfig() {
                match sys.rebalance(DRIVER, None) {
                    Ok(o) => {
                        if !o.finished {
                            problems.push("rebalance did not drain the migration".into());
                        }
                        engine.spawn_job("rebalance", o.plan);
                        engine.run().expect("rebalance deadlocked");
                    }
                    Err(e) => problems.push(format!("rebalance failed: {e}")),
                }
            }
            if out.failed > 0 {
                problems.push(format!("{} ops failed under a single tolerated fault", out.failed));
            }
            if sc.cached {
                // The cached cells' extra contract: no read — before,
                // during or after the fault — may have served stale
                // bytes, and the cache must actually have been in play.
                if out.stale_reads > 0 {
                    problems.push(format!("{} stale reads through the cache", out.stale_reads));
                }
                match sys.cache_stats() {
                    Some(stats) if stats.hits + stats.misses > 0 => {}
                    Some(_) => problems.push("cache never consulted".into()),
                    None => problems.push("cached cell ran without a cache".into()),
                }
            }
            problems.extend(post_recovery_problems(&mut sys, sc.kind));
            match check_against_model(&mut sys, DRIVER, &out.model) {
                Ok(Ok(())) => {}
                Ok(Err(lb)) => problems.push(format!("block {lb} diverged from the shadow model")),
                Err(e) => problems.push(format!("model read-back failed: {e}")),
            }
        }
        Err(e) => problems.push(format!("script aborted: {e}")),
    }
    let events = log.events();
    SweepOutcome {
        fingerprint: stream_fingerprint(&events),
        events: events.len(),
        failed_ops,
        problems,
    }
}

/// Run the sweep: every scenario executes **twice**; both runs must be
/// clean and fingerprint-identical.
pub fn run_pass(smoke: bool) -> PassReport {
    let mut report = PassReport::new("fault-sweep");
    for sc in scenarios(smoke) {
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        let cached = if sc.cached { " cached" } else { "" };
        let name = format!("{:?} {:?} @op{}{cached}", sc.arch, sc.kind, sc.inject_at);
        let mut problems = a.problems.clone();
        if a.fingerprint != b.fingerprint {
            problems.push(format!(
                "nondeterministic under faults: {:016x} vs {:016x}",
                a.fingerprint, b.fingerprint
            ));
        }
        if a.events == 0 {
            problems.push("no events traced".into());
        }
        if problems.is_empty() {
            report.ok(
                name,
                format!(
                    "fingerprint {:016x}, {} events, replay identical, 0 lost blocks",
                    a.fingerprint, a.events
                ),
            );
        } else {
            report.fail(name, problems.join("; "));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::check::run_cases;

    #[test]
    fn smoke_sweep_is_green() {
        let report = run_pass(true);
        assert!(report.all_ok(), "{}", report.render());
    }

    #[test]
    fn full_grid_enumerates_all_cells() {
        // 4 arch × 7 kinds × 3 points, plus 4 arch × 3 cached cells.
        assert_eq!(scenarios(false).len(), 4 * 7 * 3 + 4 * 3);
        // 4 arch × 3 kinds at the middle point, plus 3 cached RAID-x cells.
        assert_eq!(scenarios(true).len(), 4 * 3 + 3);
        assert_eq!(scenarios(false).iter().filter(|s| s.cached).count(), 12);
        assert_eq!(scenarios(true).iter().filter(|s| s.cached).count(), 3);
    }

    #[test]
    fn every_fault_kind_recovers_cleanly_once() {
        // One full-depth scenario per fault kind (the full grid runs in
        // `verify_all`; this keeps the unit suite fast but total).
        for kind in FaultKind::ALL {
            let sc = SweepScenario { arch: Arch::RaidX, kind, inject_at: 10, cached: false };
            let out = run_scenario(&sc);
            assert!(out.problems.is_empty(), "{kind:?}: {:?}", out.problems);
        }
    }

    /// Satellite property: random op scripts with a random single fault
    /// injected at a random position, across every architecture and ≥8
    /// seeds each — post-recovery contents must be byte-identical to a
    /// fault-free reference run of the same script.
    #[test]
    fn random_single_fault_recovery_matches_fault_free_reference() {
        for arch in Arch::ALL {
            run_cases(&format!("fault-recovery-{arch:?}"), 8, |g| {
                let nops = g.usize_in(20..36);
                let inject_at = g.usize_in(1..nops - REPAIR_GAP - 1);
                let kind = [
                    FaultKind::Permanent,
                    FaultKind::Transient,
                    FaultKind::Partition,
                    FaultKind::Crash,
                ][g.usize_in(0..4)];
                let ops = gen_script(g, CLIENTS, REGION_BLOCKS, nops);

                // Faulted run.
                let (mut engine, mut sys) = cdd::testkit::shape(4, 1, 8 << 20, arch);
                let mut inj = FaultInjector::new(build_plan(kind, inject_at));
                let out = run_script(&mut engine, &mut sys, &ops, Some(&mut inj))
                    .expect("faulted script run");
                assert!(!inj.fired().is_empty(), "fault never fired");
                if kind == FaultKind::Permanent {
                    let (plan, _) = sys.rebuild_disk(DRIVER, TARGET_DISK).expect("rebuild");
                    engine.spawn_job("rebuild", plan);
                    engine.run().expect("rebuild run");
                }
                assert_eq!(out.failed, 0, "single fault must be tolerated");

                // Fault-free reference run of the same script.
                let (mut ref_engine, mut ref_sys) = cdd::testkit::shape(4, 1, 8 << 20, arch);
                let ref_out =
                    run_script(&mut ref_engine, &mut ref_sys, &ops, None).expect("reference run");
                assert_eq!(
                    out.model, ref_out.model,
                    "faulted run acknowledged a different write set"
                );
                assert_eq!(
                    check_against_model(&mut sys, DRIVER, &ref_out.model).expect("read-back"),
                    Ok(()),
                    "post-recovery contents diverge from the fault-free reference"
                );
                assert_eq!(sys.parked_total(), 0);
                sys.scrub().expect("post-recovery scrub");
            });
        }
    }
}
