//! Pass 3 — exhaustive layout conformance checking.
//!
//! Each checker takes the placement function under test as a closure, so
//! the unit tests can feed deliberately broken placements and prove the
//! checker catches them; the production sweep plugs in the real layout
//! methods. Checked rules:
//!
//! * **OSM (RAID-x)** — image never on the data disk, image within the
//!   same row sub-array, image region below the platter midline is
//!   disjoint from the data region, image addresses unique, a stripe's
//!   images on at most two disks, group members contiguous on one disk.
//! * **RAID-5** — left-symmetric rotation `parity(s) = n-1-(s mod n)`,
//!   every disk carries parity exactly once per `n` stripes, parity never
//!   collides with the stripe's data.
//! * **RAID-10** — mirror is the pair partner (`2i`/`2i+1`), same block
//!   row, pairwise disjoint.
//! * **Chained declustering** — image on the right ring neighbor
//!   `(d+1) mod N`, bottom half of the platter.

use raidx_core::{BlockAddr, ChainedDecluster, Layout, Raid10, Raid5, RaidX};

/// Verify the OSM placement rule with `image_of` as the image-placement
/// function under test. Returns human-readable violations (empty = pass).
pub fn check_osm_placement(l: &RaidX, image_of: &dyn Fn(&RaidX, u64) -> BlockAddr) -> Vec<String> {
    let mut violations = Vec::new();
    let (n, _) = l.shape();
    let cap = l.capacity_blocks();
    let mut seen: std::collections::BTreeSet<BlockAddr> = std::collections::BTreeSet::new();
    for lb in 0..cap {
        let d = l.locate_data(lb);
        let m = image_of(l, lb);
        if m.disk == d.disk {
            violations.push(format!("lb {lb}: image on its own data disk {}", d.disk));
        }
        if m.disk >= l.ndisks() {
            violations.push(format!("lb {lb}: image disk {} out of range", m.disk));
            continue;
        }
        if l.row_of_disk(m.disk) != l.row_of_disk(d.disk) {
            violations.push(format!("lb {lb}: image leaves row sub-array"));
        }
        if m.block < l.image_base() || m.block >= l.blocks_per_disk() {
            violations.push(format!("lb {lb}: image block {} outside image region", m.block));
        }
        if !seen.insert(m) {
            violations.push(format!("lb {lb}: image address {m} reused"));
        }
    }
    // Stripe images on at most two disks (Figure 1a's defining property).
    for s in 0..cap / n as u64 {
        let disks: std::collections::BTreeSet<usize> =
            l.stripe_blocks(s).iter().map(|&lb| image_of(l, lb).disk).collect();
        if disks.is_empty() || disks.len() > 2 {
            violations.push(format!("stripe {s}: images on {} disks", disks.len()));
        }
    }
    // Mirroring-group members contiguous on one disk (the clustered
    // sequential flush depends on it).
    let mut groups: std::collections::BTreeMap<(usize, u64), Vec<BlockAddr>> =
        std::collections::BTreeMap::new();
    for lb in 0..cap {
        groups.entry(l.image_group(lb)).or_default().push(image_of(l, lb));
    }
    for ((row, g), mut addrs) in groups {
        addrs.sort_unstable();
        let disk = addrs[0].disk;
        for (i, a) in addrs.iter().enumerate() {
            if a.disk != disk || a.block != addrs[0].block + i as u64 {
                violations.push(format!("group ({row},{g}): images not contiguous on one disk"));
                break;
            }
        }
    }
    violations
}

/// Verify the RAID-5 left-symmetric rotation with `parity_of` as the
/// parity-placement function under test.
pub fn check_raid5_rotation(l: &Raid5, parity_of: &dyn Fn(&Raid5, u64) -> usize) -> Vec<String> {
    let mut violations = Vec::new();
    let n = l.ndisks();
    let stripes = (l.capacity_blocks() / l.stripe_width() as u64).min(16 * n as u64);
    for s in 0..stripes {
        let p = parity_of(l, s);
        let expect = n - 1 - (s as usize % n);
        if p != expect {
            violations.push(format!("stripe {s}: parity on disk {p}, expected {expect}"));
        }
        for &lb in &l.stripe_members(s) {
            if l.locate_data(lb).disk == p {
                violations.push(format!("stripe {s}: data block {lb} collides with parity"));
            }
        }
    }
    // Every disk carries parity exactly once per window of n stripes.
    for window in 0..stripes / n as u64 {
        let mut count = vec![0usize; n];
        for s in window * n as u64..(window + 1) * n as u64 {
            count[parity_of(l, s)] += 1;
        }
        if count.iter().any(|&c| c != 1) {
            violations.push(format!("window {window}: parity rotation unbalanced {count:?}"));
        }
    }
    violations
}

/// Verify RAID-10 mirror disjointness with `image_of` under test.
pub fn check_raid10_mirrors(
    l: &Raid10,
    image_of: &dyn Fn(&Raid10, u64) -> BlockAddr,
) -> Vec<String> {
    let mut violations = Vec::new();
    for lb in 0..l.capacity_blocks() {
        let d = l.locate_data(lb);
        let m = image_of(l, lb);
        if m.disk == d.disk {
            violations.push(format!("lb {lb}: mirror shares disk {}", d.disk));
            continue;
        }
        if d.disk / 2 != m.disk / 2 {
            violations.push(format!(
                "lb {lb}: mirror on disk {} outside pair of disk {}",
                m.disk, d.disk
            ));
        }
        if m.block != d.block {
            violations.push(format!("lb {lb}: mirror row {} != data row {}", m.block, d.block));
        }
    }
    violations
}

/// Verify the chained-declustering neighbor rule with `image_of` under
/// test: the image of disk `d`'s data lives on disk `(d+1) mod N`, in the
/// bottom half of the platter.
pub fn check_chained_neighbors(
    l: &ChainedDecluster,
    image_of: &dyn Fn(&ChainedDecluster, u64) -> BlockAddr,
) -> Vec<String> {
    let mut violations = Vec::new();
    let n = l.ndisks();
    let half = l.capacity_blocks() / n as u64;
    for lb in 0..l.capacity_blocks() {
        let d = l.locate_data(lb);
        let m = image_of(l, lb);
        if m.disk != (d.disk + 1) % n {
            violations.push(format!(
                "lb {lb}: image on disk {}, expected right neighbor {}",
                m.disk,
                (d.disk + 1) % n
            ));
        }
        if m.block < half {
            violations.push(format!("lb {lb}: image block {} in the data half", m.block));
        }
    }
    violations
}

/// One row of the conformance sweep table.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Architecture name.
    pub arch: &'static str,
    /// `(n, k)` shape (RAID-x) or `(ndisks, 1)` for the flat layouts.
    pub shape: (usize, usize),
    /// Logical blocks exhaustively checked.
    pub checked: u64,
    /// Violations found.
    pub violations: Vec<String>,
}

impl SweepRow {
    /// Did this row pass?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The (n, k) shapes swept: the paper's 12-disk decompositions plus
/// off-square shapes that exercise group-boundary rounding.
pub const SWEEP_SHAPES: [(usize, usize); 8] =
    [(12, 1), (6, 2), (4, 3), (3, 4), (2, 6), (8, 2), (5, 3), (7, 1)];

/// Run every checker over every sweep shape with the real placement
/// functions. One row per (architecture, shape).
pub fn conformance_sweep() -> Vec<SweepRow> {
    let bpd = 240u64;
    let mut rows = Vec::new();
    let mut flat_done: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for (n, k) in SWEEP_SHAPES {
        let l = RaidX::new(n, k, bpd);
        rows.push(SweepRow {
            arch: "RAID-x",
            shape: (n, k),
            checked: l.capacity_blocks(),
            violations: check_osm_placement(&l, &RaidX::image_addr),
        });
        let ndisks = n * k;
        // The flat layouts only see the total disk count; check each
        // count once.
        if !flat_done.insert(ndisks) {
            continue;
        }
        if ndisks >= 3 {
            let l = Raid5::new(ndisks, bpd);
            rows.push(SweepRow {
                arch: "RAID-5",
                shape: (ndisks, 1),
                checked: l.capacity_blocks().min(16 * ndisks as u64 * (ndisks as u64 - 1)),
                violations: check_raid5_rotation(&l, &|l, s| l.parity_disk(s)),
            });
        }
        if ndisks.is_multiple_of(2) {
            let l = Raid10::new(ndisks, bpd);
            rows.push(SweepRow {
                arch: "RAID-10",
                shape: (ndisks, 1),
                checked: l.capacity_blocks(),
                violations: check_raid10_mirrors(&l, &|l, lb| l.locate_images(lb)[0]),
            });
        }
        let l = ChainedDecluster::new(ndisks, bpd);
        rows.push(SweepRow {
            arch: "Chained",
            shape: (ndisks, 1),
            checked: l.capacity_blocks(),
            violations: check_chained_neighbors(&l, &|l, lb| l.locate_images(lb)[0]),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_clean() {
        for row in conformance_sweep() {
            assert!(
                row.ok(),
                "{} {:?}: {} violations, first: {}",
                row.arch,
                row.shape,
                row.violations.len(),
                row.violations[0]
            );
            assert!(row.checked > 0);
        }
    }

    /// Seeded defect: an image placement that ignores orthogonality
    /// (image on the data disk) must be flagged.
    #[test]
    fn broken_osm_placement_caught() {
        let l = RaidX::new(4, 2, 240);
        let broken = |l: &RaidX, lb: u64| {
            let d = l.locate_data(lb);
            BlockAddr::new(d.disk, l.image_base() + d.block)
        };
        let v = check_osm_placement(&l, &broken);
        assert!(v.iter().any(|s| s.contains("own data disk")), "{v:?}");
    }

    /// Seeded defect: images scattered one-per-disk break the "at most
    /// two image disks per stripe" clustering rule.
    #[test]
    fn scattered_images_caught() {
        let l = RaidX::new(6, 1, 240);
        let scattered = |l: &RaidX, lb: u64| {
            let d = l.locate_data(lb);
            BlockAddr::new((d.disk + 1 + (lb as usize % 4)) % l.ndisks(), l.image_base() + d.block)
        };
        let v = check_osm_placement(&l, &scattered);
        assert!(!v.is_empty());
    }

    /// Seeded defect: fixed (non-rotating) parity is RAID-4, not RAID-5.
    #[test]
    fn fixed_parity_caught() {
        let l = Raid5::new(5, 240);
        let v = check_raid5_rotation(&l, &|_, _| 4);
        assert!(v.iter().any(|s| s.contains("expected")), "{v:?}");
        assert!(v.iter().any(|s| s.contains("unbalanced")), "{v:?}");
    }

    /// Seeded defect: mirroring outside the pair breaks RAID-10.
    #[test]
    fn cross_pair_mirror_caught() {
        let l = Raid10::new(8, 240);
        let broken = |l: &Raid10, lb: u64| {
            let d = l.locate_data(lb);
            BlockAddr::new((d.disk + 3) % l.ndisks(), d.block)
        };
        let v = check_raid10_mirrors(&l, &broken);
        assert!(v.iter().any(|s| s.contains("outside pair")), "{v:?}");
    }

    /// Seeded defect: mirroring to the *left* neighbor reverses the
    /// chain.
    #[test]
    fn wrong_neighbor_caught() {
        let l = ChainedDecluster::new(6, 240);
        let broken = |l: &ChainedDecluster, lb: u64| {
            let d = l.locate_data(lb);
            let half = l.capacity_blocks() / l.ndisks() as u64;
            BlockAddr::new((d.disk + l.ndisks() - 1) % l.ndisks(), half + d.block)
        };
        let v = check_chained_neighbors(&l, &broken);
        assert!(v.iter().any(|s| s.contains("right neighbor")), "{v:?}");
    }

    /// The 2-D n×k OSM invariants, property-tested through the
    /// conformance checker with generated shapes (the ISSUE's satellite).
    #[test]
    fn osm_invariants_hold_for_random_shapes() {
        sim_core::check::run_cases("osm-conformance-shapes", 48, |g| {
            let n = g.usize_in(2..13);
            let k = g.usize_in(1..5);
            let bpd = g.u64_in(64..513);
            let l = RaidX::new(n, k, bpd);
            let v = check_osm_placement(&l, &RaidX::image_addr);
            assert!(v.is_empty(), "n={n} k={k} bpd={bpd}: {:?}", &v[..v.len().min(3)]);
        });
    }
}
