#![warn(missing_docs)]
//! # raidx-verify — static analysis and invariant verification
//!
//! Four offline passes that check the reproduction's correctness
//! properties *before and between* simulations, independently of the unit
//! tests:
//!
//! 1. [`plan_lint`] — walks the [`sim_core::Plan`] DAGs that the real I/O
//!    engines emit and rejects shapes that would panic or deadlock the
//!    event loop (unknown resources, unregistered barriers, barriers
//!    inside detached subtrees) plus hygiene defects (empty combinators,
//!    zero-byte transfers).
//! 2. [`lock_order`] — replays a recorded [`cdd::LockEvent`] trace and
//!    reports double grants, releases without a matching grant, leaked
//!    lock groups, and cycles in the block-range acquisition order
//!    (potential distributed deadlock).
//! 3. [`layout_check`] — exhaustively verifies the OSM placement rule,
//!    the RAID-5 left-symmetric parity rotation, RAID-10 mirror
//!    disjointness and the chained-declustering neighbor rule across a
//!    sweep of (n, k) array shapes.
//! 4. [`determinism`] + [`source_scan`] — runs the same seeded cluster
//!    workload twice and fingerprints the event traces (they must be
//!    bit-identical), and greps the crate sources for nondeterminism
//!    hazards (wall clocks, OS randomness, unordered map iteration in
//!    simulation paths).
//!
//! Every pass is a library API first; `cargo run -p bench --bin
//! verify_all` drives all four and exits non-zero on any finding.

pub mod determinism;
pub mod layout_check;
pub mod lock_order;
pub mod plan_lint;
pub mod report;
pub mod source_scan;

pub use determinism::{audit_workload, engine_fingerprint, DeterminismReport};
pub use layout_check::{conformance_sweep, SweepRow};
pub use lock_order::{analyze_lock_trace, LockAuditReport, LockDefect};
pub use plan_lint::lint_io_paths;
pub use report::{Check, PassReport};
