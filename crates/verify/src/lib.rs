#![warn(missing_docs)]
//! # raidx-verify — static analysis and invariant verification
//!
//! Thirteen offline passes that check the reproduction's correctness
//! properties *before and between* simulations, independently of the unit
//! tests:
//!
//! 1. [`plan_lint`] — walks the [`sim_core::Plan`] DAGs that the real I/O
//!    engines emit and rejects shapes that would panic or deadlock the
//!    event loop (unknown resources, unregistered barriers, barriers
//!    inside detached subtrees) plus hygiene defects (empty combinators,
//!    zero-byte transfers).
//! 2. [`lock_order`] — replays a recorded [`cdd::LockEvent`] trace and
//!    reports double grants, releases without a matching grant, leaked
//!    lock groups, and cycles in the block-range acquisition order
//!    (potential distributed deadlock).
//! 3. [`layout_check`] — exhaustively verifies the OSM placement rule,
//!    the RAID-5 left-symmetric parity rotation, RAID-10 mirror
//!    disjointness and the chained-declustering neighbor rule across a
//!    sweep of (n, k) array shapes.
//! 4. [`determinism`] + [`source_scan`] — runs the same seeded cluster
//!    workload twice and fingerprints the event traces (they must be
//!    bit-identical), and greps the crate sources for nondeterminism
//!    hazards (wall clocks, OS randomness, unordered map iteration in
//!    simulation paths) plus stale hazard acknowledgements.
//! 5. [`model_check`] — the `raidx-model` checker: exhaustively
//!    interleaves small multi-client CDD scenarios under the
//!    [`sim_core::explore`] scheduler, asserting lock-group invariants
//!    (no double grant, covered writes, no lost wakeups) at every step.
//! 6. [`linearizability`] — Wing–Gong checks the SIOS read/write history
//!    of every explored schedule against a sequential block-store spec.
//! 7. [`crash_consistency`] — enumerates crash points inside OSM
//!    mirror flushes and two-level checkpoint commits and verifies both
//!    recovery paths always reconstruct a consistent image.
//! 8. [`trace_determinism`] — double-runs the seeded workload with the
//!    [`sim_core::trace::EventLog`] tracer installed and fingerprints
//!    the full observability event stream (every queue arrival, service
//!    start/finish and barrier opening must replay byte-identically),
//!    plus a perturbation canary that proves an injected event reorder
//!    is detected.
//! 9. [`fault_sweep`] — enumerates deterministic single-fault injection
//!    points (permanent disk failure, transient outage, NIC partition,
//!    node crash, disk slowdown) across every architecture mid-workload,
//!    asserting byte-for-byte survival after recovery (degraded writes
//!    resynced, rebuilds complete, scrub clean) and that every faulted
//!    scenario replays fingerprint-identically from the same seed and
//!    [`sim_core::FaultPlan`].
//! 10. [`race_detect`] — feeds the merged engine + protocol trace of a
//!     seeded scripted workload to the FastTrack-style vector-clock
//!     happens-before analyzer ([`sim_core::hb`]): conflicting cell
//!     accesses unordered by fork/join/barrier/lock edges, protocol
//!     writes outside any lock-group grant, and same-timestamp events
//!     with overlapping footprints (commutativity violations). Planted
//!     defects (a dropped grant, a skipped barrier, twinned same-tick
//!     disk services) prove each detector class catches real bugs, with
//!     ddmin-shrunk counterexample windows.
//! 11. [`static_analysis`] — the [`raidx_analyze`] parser-based
//!     whole-workspace analyzer: scope-aware determinism hazards
//!     (subsuming and replacing the old line-oriented pass 4b, which
//!     [`source_scan`] now re-exports), fault-trigger/trace-point
//!     conformance, a wildcard-arm ban on matches over safety-critical
//!     enums, cdd lock-grant discipline, and hygiene gates (module-size
//!     cap, `unwrap`/`expect` outside tests, missing pub docs), each
//!     proved live by a planted-defect canary.
//! 12. [`perf_smoke`] — the engine-performance regression gate: re-runs
//!     the small scenarios shared with `bench::perfbench` and compares
//!     the deterministic [`sim_core::EngineStats`] work counters against
//!     the committed `BENCH_engine.json` baseline ([`benchfile`] holds
//!     the schema) within a tolerance band, asserts a profiler-on run is
//!     result-identical to a profiler-off run, and proves the comparator
//!     live with a planted 3× counter drift. Wall-clock figures in the
//!     baseline are advisory and never gated.
//! 13. [`cache_coherence`] — the client block-cache gate: exhaustive
//!     model checking and linearizability of the `cache-coherence`
//!     scenario (with a planted skip-invalidation canary the checker
//!     must catch), cached-vs-uncached transparency of random op
//!     scripts on every architecture, and the Zipfian payoff gate (≥50%
//!     hit rate at s = 1.0, a >1× simulated-time speedup, zero stale
//!     reads). Shares the `zipf_cache` scenario with `bench::perfbench`.
//!
//! Every pass is a library API first; `cargo run -p bench --bin
//! verify_all` drives all thirteen (filterable with `--pass <name>`,
//! listable with `--list-passes`, exportable with `--json <path>`) and
//! exits non-zero on any finding.

pub mod benchfile;
pub mod cache_coherence;
pub mod crash_consistency;
pub mod determinism;
pub mod fault_sweep;
pub mod layout_check;
pub mod linearizability;
pub mod lock_order;
pub mod model_check;
pub mod perf_smoke;
pub mod plan_lint;
pub mod race_detect;
pub mod report;
pub mod source_scan;
pub mod static_analysis;
pub mod trace_determinism;

pub use benchfile::BenchScenario;
pub use determinism::{audit_workload, engine_fingerprint, DeterminismReport};
pub use fault_sweep::{FaultKind, SweepOutcome, SweepScenario};
pub use layout_check::{conformance_sweep, SweepRow};
pub use linearizability::check_history;
pub use lock_order::{analyze_lock_trace, LockAuditReport, LockDefect};
pub use plan_lint::lint_io_paths;
pub use report::{Check, PassReport};
pub use trace_determinism::{audit_trace, diff_streams, stream_fingerprint, TraceAudit};
