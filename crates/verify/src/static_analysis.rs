//! Pass 11 — parser-based whole-workspace static analysis.
//!
//! Drives [`raidx_analyze`] over every production source file under
//! `crates/` and reports each finding as a spanned check: acknowledged
//! findings pass (and carry `acknowledged: true` into the `--json`
//! output), unacknowledged findings fail the pass. Five rule families
//! run (see the analyzer crate docs): scope-aware determinism hazards,
//! fault-trigger/trace-point conformance, the wildcard-match ban on
//! safety-critical enums, cdd lock-grant discipline, and the hygiene
//! gates (module size, `unwrap`/`expect`, missing pub docs).
//!
//! In the house style of passes 2–10, the pass first proves each family
//! can still detect a planted defect: every canary snippet below is
//! analyzed in memory and must produce (or, for the clean twins, not
//! produce) its expected finding.

use crate::report::PassReport;
use raidx_analyze::{analyze_files, analyze_workspace, Finding, SourceFile};
use std::path::Path;

/// The rule families the pass summarizes, in report order.
const FAMILIES: [&str; 8] = [
    "determinism",
    "fault-trigger",
    "wildcard-match",
    "lock-discipline",
    "module-size",
    "no-unwrap",
    "missing-docs",
    "stale-ack",
];

/// One planted-defect canary: analyzing `files` must yield a finding of
/// `rule` exactly when `expect_hit`.
struct Canary {
    name: &'static str,
    rule: &'static str,
    expect_hit: bool,
    files: Vec<SourceFile>,
}

fn canaries() -> Vec<Canary> {
    let wall_clock = "fn f() -> u64 {\n    let t = Instant::now();\n    t.as_nanos()\n}\n";
    let ghost_trigger =
        "fn arm(plan: &mut Plan) {\n    plan.at_point(\"ghost-canary-point\", 1, fault());\n}\n";
    let live_trigger =
        "fn arm(plan: &mut Plan) {\n    plan.at_point(\"live-canary-point\", 1, fault());\n}\n";
    let announce = "fn tick(inj: &mut Inj) {\n    inj.hit_point(\"live-canary-point\");\n}\n";
    let wild = "fn f(e: IoError) -> u32 {\n    match e {\n        IoError::DataLoss { lb } => \
                lb as u32,\n        _ => 0,\n    }\n}\n";
    let leak = "fn leaky(&mut self) -> Result<(), IoError> {\n    let h = \
                self.locks.acquire(c, lb, n).map_err(IoError::Lock)?;\n    work(h.id());\n    \
                Ok(())\n}\n";
    let unwrap = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
    let oversized = "// filler\n".repeat(raidx_analyze::hygiene::MODULE_LINE_CAP + 1);
    let undocumented = "pub fn bare() {}\n";
    vec![
        Canary {
            name: "canary: determinism wall clock",
            rule: "determinism",
            expect_hit: true,
            files: vec![SourceFile::new("sim-core/src/canary.rs", wall_clock)],
        },
        Canary {
            name: "canary: unannounced fault trigger",
            rule: "fault-trigger",
            expect_hit: true,
            files: vec![SourceFile::new("verify/src/canary.rs", ghost_trigger)],
        },
        Canary {
            name: "canary: announced trigger is clean",
            rule: "fault-trigger",
            expect_hit: false,
            files: vec![
                SourceFile::new("verify/src/canary.rs", live_trigger),
                SourceFile::new("workloads/src/canary.rs", announce),
            ],
        },
        Canary {
            name: "canary: wildcard arm over IoError",
            rule: "wildcard-match",
            expect_hit: true,
            files: vec![SourceFile::new("cdd/src/canary.rs", wild)],
        },
        Canary {
            name: "canary: leaked lock grant",
            rule: "lock-discipline",
            expect_hit: true,
            files: vec![SourceFile::new("cdd/src/canary.rs", leak)],
        },
        Canary {
            name: "canary: unwrap outside tests",
            rule: "no-unwrap",
            expect_hit: true,
            files: vec![SourceFile::new("sim-core/src/canary.rs", unwrap)],
        },
        Canary {
            name: "canary: oversized module",
            rule: "module-size",
            expect_hit: true,
            files: vec![SourceFile::new("cdd/src/canary.rs", &oversized)],
        },
        Canary {
            name: "canary: undocumented pub item",
            rule: "missing-docs",
            expect_hit: true,
            files: vec![SourceFile::new("cdd/src/canary.rs", undocumented)],
        },
    ]
}

fn run_canaries(report: &mut PassReport) {
    for c in canaries() {
        let findings = analyze_files(&c.files);
        let hits = findings.iter().filter(|f| f.rule == c.rule && !f.acknowledged).count();
        let ok = (hits > 0) == c.expect_hit;
        let detail = if c.expect_hit {
            format!("planted defect detected by `{}` ({hits} findings)", c.rule)
        } else {
            format!("clean twin produced {hits} `{}` findings (want 0)", c.rule)
        };
        report.push(c.name, ok, detail);
    }
}

fn report_findings(report: &mut PassReport, findings: &[Finding]) {
    for family in FAMILIES {
        let total = findings.iter().filter(|f| f.rule == family).count();
        let acked = findings.iter().filter(|f| f.rule == family && f.acknowledged).count();
        report.ok(
            format!("family: {family}"),
            format!("{total} findings, {acked} acknowledged, {} open", total - acked),
        );
    }
    for f in findings {
        report.push_spanned(
            f.rule,
            f.acknowledged,
            format!("{}:{} {}", f.file, f.line, f.message),
            f.file.clone(),
            f.line,
            f.acknowledged,
        );
    }
}

/// Run the full pass over the workspace rooted at `crates_dir`.
pub fn run_pass(crates_dir: &Path) -> PassReport {
    let mut report = PassReport::new("static-analysis");
    run_canaries(&mut report);
    match analyze_workspace(crates_dir) {
        Ok(findings) => report_findings(&mut report, &findings),
        Err(e) => report.fail("workspace scan", format!("scan failed: {e}")),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_canaries_fire() {
        let mut report = PassReport::new("static-analysis");
        run_canaries(&mut report);
        assert!(report.all_ok(), "{}", report.render());
        // ≥5 rule families are exercised by the canary battery.
        let rules: std::collections::BTreeSet<_> = canaries().iter().map(|c| c.rule).collect();
        assert!(rules.len() >= 5, "{rules:?}");
    }

    #[test]
    fn clean_tree_passes_end_to_end() {
        let crates = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir");
        let report = run_pass(crates);
        assert!(report.all_ok(), "{}", report.render());
        // Acknowledged findings surface as passing spanned checks.
        assert!(report.checks.iter().any(|c| c.acknowledged && c.ok));
    }
}
