//! Pass 5 — `raidx-model`: exhaustive interleaving exploration of CDD
//! lock-protocol scenarios.
//!
//! Each scenario from [`cdd::proto`] is a small multi-client program over
//! the real [`cdd::LockGroupTable`]; the [`sim_core::explore`] scheduler
//! enumerates every thread interleaving (with sleep-set pruning),
//! checking after every step that
//!
//! * no two clients hold overlapping grants (exclusive write permission),
//! * every store write is covered by a grant the writer holds,
//! * no schedule deadlocks (a client blocked forever is a lost wakeup).
//!
//! The pass explores the clean scenarios (which must come back with zero
//! findings) and one *canary*: a deliberately defective scenario the
//! checker must flag — guarding against the checker itself rotting into
//! a pass-everything no-op.

use crate::report::PassReport;
use cdd::proto::{
    scenario_cache, scenario_contended, scenario_epoch, scenario_reader, scenario_three, CddModel,
    Scenario,
};
use cdd::Defect;
use sim_core::explore::Explorer;

/// Default schedule budget when the driver does not supply one.
pub const DEFAULT_BUDGET: u64 = 100_000;

fn explorer(budget: u64) -> Explorer {
    Explorer { max_schedules: budget.max(1), ..Explorer::default() }
}

/// Explore one scenario under `budget`, appending one check to `rep`.
/// The check fails on any invariant/step/deadlock finding *or* if the
/// budget truncated coverage (an unexplored schedule is an unverified
/// claim).
pub fn check_scenario(rep: &mut PassReport, sc: Scenario, budget: u64) {
    let name = sc.name;
    let m = CddModel::new(sc);
    let r = explorer(budget).explore(&m);
    match (&r.failure, r.truncated) {
        (Some(f), _) => rep.fail(name, f.to_string()),
        (None, true) => rep.fail(
            name,
            format!("budget exhausted after {} schedules ({} pruned)", r.schedules, r.pruned),
        ),
        (None, false) => rep.ok(
            name,
            format!(
                "{} schedules, {} steps, {} branches pruned, all invariants hold",
                r.schedules, r.steps, r.pruned
            ),
        ),
    }
}

/// Run the model-check pass: all clean scenarios plus the defect canary.
pub fn run_pass(budget: u64) -> PassReport {
    let mut rep = PassReport::new("model-check");
    check_scenario(&mut rep, scenario_contended(Defect::None), budget);
    check_scenario(&mut rep, scenario_reader(Defect::None), budget);
    check_scenario(&mut rep, scenario_three(Defect::None), budget);
    check_scenario(&mut rep, scenario_epoch(Defect::None), budget);
    check_scenario(&mut rep, scenario_cache(Defect::None), budget);
    // Canary: the checker must still catch a planted double grant.
    let canary = explorer(budget).explore(&CddModel::new(scenario_contended(Defect::DoubleGrant)));
    rep.push(
        "canary: planted double grant is caught",
        canary.failure.is_some(),
        match &canary.failure {
            Some(f) => format!("caught: {f}"),
            None => "checker missed a planted double grant".to_string(),
        },
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd::proto::scenario_contended;

    #[test]
    fn clean_pass_reports_zero_findings() {
        let rep = run_pass(DEFAULT_BUDGET);
        assert!(rep.all_ok(), "{}", rep.render());
        assert_eq!(rep.checks.len(), 6);
    }

    #[test]
    fn seeded_double_grant_fails_the_check() {
        let mut rep = PassReport::new("model-check");
        check_scenario(&mut rep, scenario_contended(Defect::DoubleGrant), DEFAULT_BUDGET);
        assert_eq!(rep.failures(), 1, "{}", rep.render());
        assert!(rep.checks[0].detail.contains("invariant"), "{}", rep.checks[0].detail);
    }

    #[test]
    fn seeded_lost_wakeup_fails_the_check() {
        let mut rep = PassReport::new("model-check");
        check_scenario(&mut rep, scenario_contended(Defect::SkipWakeup), DEFAULT_BUDGET);
        assert_eq!(rep.failures(), 1, "{}", rep.render());
        assert!(rep.checks[0].detail.contains("deadlock"), "{}", rep.checks[0].detail);
    }

    #[test]
    fn tiny_budget_reports_truncation() {
        let mut rep = PassReport::new("model-check");
        check_scenario(&mut rep, scenario_three(Defect::None), 2);
        assert_eq!(rep.failures(), 1, "{}", rep.render());
        assert!(rep.checks[0].detail.contains("budget"), "{}", rep.checks[0].detail);
    }
}
