//! Pass 4a — the determinism auditor.
//!
//! The whole reproduction rests on the simulator being a pure function of
//! its configuration: the property tests replay seeds, the experiment
//! harness compares architectures run in separate engines, and regressions
//! are diffed run-over-run. This pass runs the same seeded cluster
//! workload twice in two fresh engines and fingerprints everything
//! observable — job completion records and per-resource statistics — with
//! FNV-1a. Any divergence is reported with the first differing trace
//! line.

use raidx_core::Arch;
use sim_core::Engine;
use workloads::parallel_io::{run_parallel_io, IoPattern, ParallelIoConfig};

/// Outcome of a double-run audit for one architecture.
#[derive(Debug, Clone)]
pub struct DeterminismReport {
    /// Architecture audited.
    pub arch: Arch,
    /// Fingerprint of the first run.
    pub fingerprint_a: u64,
    /// Fingerprint of the second run.
    pub fingerprint_b: u64,
    /// Trace lines compared.
    pub lines: usize,
    /// First differing line, as `(index, run A line, run B line)`.
    pub divergence: Option<(usize, String, String)>,
}

impl DeterminismReport {
    /// True when both runs produced identical traces.
    pub fn deterministic(&self) -> bool {
        self.fingerprint_a == self.fingerprint_b && self.divergence.is_none()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Render every observable of a finished engine as one trace line per
/// job and per resource (stable, human-diffable).
pub fn trace_lines(engine: &Engine) -> Vec<String> {
    let mut lines = Vec::new();
    for (i, j) in engine.jobs().iter().enumerate() {
        let end = j.end.map_or(u64::MAX, |t| t.as_nanos());
        lines.push(format!("job {i} {} start={} end={end}", j.label, j.start.as_nanos()));
    }
    for (_, name, stats) in engine.resources() {
        lines.push(format!(
            "res {name} busy={} ops={} bytes={} wait={} maxq={}",
            stats.busy.as_nanos(),
            stats.ops,
            stats.bytes,
            stats.queue_wait.as_nanos(),
            stats.max_queue
        ));
    }
    lines
}

/// FNV-1a fingerprint over an engine's full observable trace.
pub fn engine_fingerprint(engine: &Engine) -> u64 {
    let mut h = FNV_OFFSET;
    for line in trace_lines(engine) {
        fnv1a(&mut h, line.as_bytes());
        fnv1a(&mut h, b"\n");
    }
    h
}

fn one_run(arch: Arch) -> (u64, Vec<String>) {
    let (mut engine, mut sys) = cdd::testkit::shape(4, 2, 8 << 20, arch);
    let cfg = ParallelIoConfig {
        clients: 4,
        pattern: IoPattern::LargeWrite,
        large_bytes: 256 << 10,
        repeats: 2,
        ..Default::default()
    };
    run_parallel_io(&mut engine, &mut sys, &cfg).expect("workload failed");
    (engine_fingerprint(&engine), trace_lines(&engine))
}

/// Run the Figure-5 style workload twice with the same seed and compare
/// the full traces.
pub fn audit_workload(arch: Arch) -> DeterminismReport {
    let (fa, la) = one_run(arch);
    let (fb, lb) = one_run(arch);
    let divergence = la
        .iter()
        .zip(lb.iter())
        .enumerate()
        .find(|(_, (a, b))| a != b)
        .map(|(i, (a, b))| (i, a.clone(), b.clone()))
        .or_else(|| {
            (la.len() != lb.len()).then(|| {
                (
                    la.len().min(lb.len()),
                    format!("{} lines", la.len()),
                    format!("{} lines", lb.len()),
                )
            })
        });
    DeterminismReport { arch, fingerprint_a: fa, fingerprint_b: fb, lines: la.len(), divergence }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_archs_deterministic() {
        for arch in Arch::ALL {
            let r = audit_workload(arch);
            assert!(
                r.deterministic(),
                "{arch:?} diverged at {:?} (fp {:x} vs {:x})",
                r.divergence,
                r.fingerprint_a,
                r.fingerprint_b
            );
            assert!(r.lines > 0);
        }
    }

    /// Seeded divergence: different workloads must produce different
    /// fingerprints (the hash actually observes the trace).
    #[test]
    fn fingerprint_distinguishes_runs() {
        let mut fps = Vec::new();
        for arch in [Arch::RaidX, Arch::Raid5] {
            fps.push(one_run(arch).0);
        }
        assert_ne!(fps[0], fps[1]);
    }

    #[test]
    fn fingerprint_sensitive_to_a_single_job() {
        let mut a = Engine::new();
        let mut b = Engine::new();
        for e in [&mut a, &mut b] {
            let d = e.add_resource("disk", Box::new(sim_core::FixedRate::rate(1 << 20)));
            e.spawn_job(
                "w",
                sim_core::plan::use_res(d, sim_core::Demand::DiskWrite { offset: 0, bytes: 4096 }),
            );
        }
        b.spawn_job("extra", sim_core::Plan::Delay(sim_core::SimDuration::from_micros(1)));
        a.run().expect("run a");
        b.run().expect("run b");
        assert_ne!(engine_fingerprint(&a), engine_fingerprint(&b));
    }
}
