//! Pass 1 — static linting of the plans the real I/O engines emit.
//!
//! The unit tests in `sim_core::validate` cover the linter against
//! hand-built plans; this pass closes the other half of the loop by
//! running it over the *actual* plan DAGs produced by [`cdd::IoSystem`]
//! for every architecture: healthy reads and writes (small and
//! full-stripe), degraded reads, and rebuild plans. Any defect here means
//! an I/O engine emits a plan the simulator could choke on.

use raidx_core::Arch;
use sim_core::Engine;

use crate::report::PassReport;

fn check_plan(report: &mut PassReport, engine: &Engine, name: String, plan: &sim_core::Plan) {
    match engine.validate(plan) {
        Ok(()) => report.ok(name, format!("{} leaves", plan.leaf_count())),
        Err(errs) => {
            let detail = errs.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ");
            report.fail(name, detail);
        }
    }
}

/// Lint the plans emitted by every architecture's read, write and rebuild
/// paths on a small cluster. Returns one check per (arch, operation).
pub fn lint_io_paths() -> PassReport {
    let mut report = PassReport::new("plan-lint");
    for arch in Arch::ALL {
        let (engine, mut sys) = cdd::testkit::shape(4, 2, 4 << 20, arch);
        let bs = sys.block_size() as usize;
        let name = sys.layout().name();
        let stripe = sys.layout().stripe_width();

        // Small write (one block) and full-stripe write.
        let one = vec![0xAB; bs];
        let full = vec![0xCD; bs * stripe];
        match sys.write(1, 0, &one) {
            Ok(p) => check_plan(&mut report, &engine, format!("{name} small write"), &p),
            Err(e) => report.fail(format!("{name} small write"), e.to_string()),
        }
        match sys.write(2, stripe as u64, &full) {
            Ok(p) => check_plan(&mut report, &engine, format!("{name} stripe write"), &p),
            Err(e) => report.fail(format!("{name} stripe write"), e.to_string()),
        }

        // Healthy read over everything written so far.
        let hw = sys.high_water();
        match sys.read(3, 0, hw) {
            Ok((_, p)) => check_plan(&mut report, &engine, format!("{name} read"), &p),
            Err(e) => report.fail(format!("{name} read"), e.to_string()),
        }

        // Deferred image flush (RAID-x only produces one).
        let flush = sys.flush_images();
        if !matches!(flush, sim_core::Plan::Noop) {
            check_plan(&mut report, &engine, format!("{name} image flush"), &flush);
        }

        // Degraded read + rebuild (skip RAID-0, which has no redundancy).
        if sys.layout().guaranteed_fault_tolerance() > 0 {
            sys.fail_disk(0);
            match sys.read(1, 0, hw) {
                Ok((_, p)) => check_plan(&mut report, &engine, format!("{name} degraded read"), &p),
                Err(e) => report.fail(format!("{name} degraded read"), e.to_string()),
            }
            match sys.rebuild_disk(1, 0) {
                Ok((p, _)) => check_plan(&mut report, &engine, format!("{name} rebuild"), &p),
                Err(e) => report.fail(format!("{name} rebuild"), e.to_string()),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::plan::{background, barrier, seq, use_res};
    use sim_core::{BarrierId, Demand, PlanError};

    #[test]
    fn real_io_paths_are_clean() {
        let report = lint_io_paths();
        assert!(report.all_ok(), "\n{}", report.render());
        // All four architectures actually got linted.
        assert!(report.checks.len() >= 4 * 4, "\n{}", report.render());
    }

    /// The seeded-defect direction: a barrier parked inside a detached
    /// subtree must be rejected by the engine-level validator.
    #[test]
    fn seeded_barrier_in_background_rejected() {
        let mut e = Engine::new();
        let disk = e.add_resource("disk0", Box::new(sim_core::FixedRate::rate(1 << 20)));
        e.register_barrier(BarrierId(7), 2);
        let bad = seq(vec![
            use_res(disk, Demand::DiskWrite { offset: 0, bytes: 512 }),
            background(seq(vec![barrier(BarrierId(7))])),
        ]);
        let errs = e.validate(&bad).unwrap_err();
        assert!(errs
            .iter()
            .any(|x| matches!(x, PlanError::BarrierInBackground { id: BarrierId(7) })));
    }

    #[test]
    fn seeded_unknown_resource_rejected() {
        // Borrow a ResourceId from a donor engine; it is out of range for
        // the fresh (resource-less) engine it is validated against.
        let mut donor = Engine::new();
        let foreign = donor.add_resource("disk", Box::new(sim_core::FixedRate::rate(1)));
        let e = Engine::new();
        let bad = use_res(foreign, Demand::DiskRead { offset: 0, bytes: 512 });
        assert!(e.validate(&bad).is_err());
    }
}
