//! Pass 7 — crash-consistency audit of the OSM/checkpoint write
//! protocols.
//!
//! Drives [`checkpoint::crash`]: enumerate a crash after **every prefix**
//! of the physical write schedules of (a) the double-buffered two-level
//! checkpoint commit and (b) the OSM write-behind mirror flush, and
//! verify that recovery — transient from the local image, permanent from
//! the striped copy, journal replay for the mirror — always reconstructs
//! a consistent image. The pass sweeps several region sizes and includes
//! a canary with a planted early-commit ordering bug the audit must
//! catch.

use crate::report::PassReport;
use checkpoint::crash::{audit_two_level, audit_write_behind, CrashAudit, CrashDefect};

/// Append a check for one audit result to `rep`.
fn push_audit(rep: &mut PassReport, name: String, a: &CrashAudit) {
    if a.clean() {
        rep.ok(
            name,
            format!(
                "{} crash points, {} cell checks, all recoveries consistent",
                a.crash_points, a.checks
            ),
        );
    } else {
        let first = &a.findings[0];
        rep.fail(name, format!("{} inconsistent recoveries; first: {first}", a.findings.len()));
    }
}

/// Audit both protocols at one region size with one (possibly planted)
/// defect, appending two checks to `rep`.
pub fn check_protocols(rep: &mut PassReport, blocks: usize, defect: CrashDefect) {
    push_audit(rep, format!("two-level commit, {blocks} blocks"), &audit_two_level(blocks, defect));
    push_audit(
        rep,
        format!("write-behind flush, {blocks} blocks"),
        &audit_write_behind(blocks, defect),
    );
}

/// Run the crash-consistency pass: clean sweeps over region sizes plus
/// the defect canary.
pub fn run_pass() -> PassReport {
    let mut rep = PassReport::new("crash-consistency");
    for blocks in 1..=4 {
        check_protocols(&mut rep, blocks, CrashDefect::None);
    }
    let canary = audit_two_level(3, CrashDefect::EarlyCommit);
    rep.push(
        "canary: planted early commit is caught",
        !canary.clean(),
        if canary.clean() {
            "audit missed a commit record written before the image flushes".to_string()
        } else {
            format!("caught {} inconsistent recoveries", canary.findings.len())
        },
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_pass_reports_zero_findings() {
        let rep = run_pass();
        assert!(rep.all_ok(), "{}", rep.render());
        assert_eq!(rep.checks.len(), 9);
    }

    #[test]
    fn seeded_early_commit_fails_the_check() {
        let mut rep = PassReport::new("crash-consistency");
        check_protocols(&mut rep, 3, CrashDefect::EarlyCommit);
        assert_eq!(rep.failures(), 1, "{}", rep.render());
        assert!(rep.checks[0].detail.contains("transient"), "{}", rep.checks[0].detail);
    }

    #[test]
    fn seeded_late_journal_fails_the_check() {
        let mut rep = PassReport::new("crash-consistency");
        check_protocols(&mut rep, 2, CrashDefect::LateJournal);
        assert_eq!(rep.failures(), 1, "{}", rep.render());
        assert!(rep.checks[1].detail.contains("mirror"), "{}", rep.checks[1].detail);
    }

    #[test]
    fn seeded_in_place_checkpoint_fails_the_check() {
        let mut rep = PassReport::new("crash-consistency");
        check_protocols(&mut rep, 2, CrashDefect::InPlaceCheckpoint);
        assert!(rep.failures() >= 1, "{}", rep.render());
    }
}
