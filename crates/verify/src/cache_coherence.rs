//! Pass 13 — `cache-coherence`: the client block cache's correctness
//! and payoff gate.
//!
//! The cache ([`cdd::cache`]) must be *invisible* to correctness and
//! *visible* to performance. This pass checks both directions:
//!
//! 1. **Model check** — exhaustively interleaves the `cache-coherence`
//!    scenario ([`cdd::proto::scenario_cache`]: a writer racing two
//!    caching readers) under the [`sim_core::explore`] scheduler; every
//!    schedule must satisfy the lock-group invariants and terminate.
//! 2. **Linearizability** — Wing–Gong checks every explored schedule's
//!    read/write history against the sequential store spec: a cached
//!    read may never return a value that cannot be linearized.
//! 3. **Canary** — the planted [`cdd::Defect::SkipInvalidate`] (a write
//!    that skips the invalidation its grant carries) must be caught as a
//!    stale, non-linearizable read — proving the oracle is alive.
//! 4. **Transparency** — the same random op script runs cached and
//!    uncached on every architecture; both runs must acknowledge the
//!    same writes and return byte-identical data for every read.
//! 5. **Payoff** — the shared Zipfian read workload must clear a ≥50%
//!    hit rate at skew s = 1.0 and actually shorten the measured phase
//!    in simulated time, with zero stale reads.
//!
//! The Zipf scenario definition lives here (not in `bench`) so the pass
//! and the `BENCH_engine.json` baseline writer can never drift apart:
//! `bench::perfbench` calls [`zipf_cache_work`] for the `zipf_cache` row.

use raidx_core::Arch;
use sim_core::check::Gen;
use sim_core::explore::Explorer;
use workloads::op_script::{check_against_model, gen_script, run_script, ScriptOutcome};
use workloads::zipf::{run_zipf, ZipfConfig, ZipfOutcome};

use cdd::proto::{scenario_cache, CddModel};
use cdd::{CacheConfig, CacheStats, CddConfig, Defect};

use crate::linearizability::check_history;
use crate::report::PassReport;

/// Scenario name of the Zipf cache row in `BENCH_engine.json`.
pub const ZIPF_NAME: &str = "zipf_cache";
/// Minimum acceptable hit rate (percent) of the gated Zipf scenario.
pub const MIN_HIT_RATE_PCT: u64 = 50;
/// Cache capacity of the gated Zipf scenario, in blocks (a quarter of
/// the region: the hit rate is earned by skew, not by fitting the
/// working set).
pub const ZIPF_CAPACITY: usize = 64;
/// Workload seed of the gated Zipf scenario.
pub const ZIPF_SEED: u64 = 0x0ca_c4ed;

/// The gated Zipf scenario's shape: 4 clients reading 256 blocks with
/// Zipf(1.0) skew, one invalidating write per 16 reads.
pub fn zipf_scenario_config() -> ZipfConfig {
    ZipfConfig { clients: 4, region_blocks: 256, reads: 4000, write_every: 16, skew_x100: 100 }
}

/// Run the shared Zipf scenario once, cached or uncached, returning the
/// workload outcome and (for cached runs) the cache counters.
pub fn zipf_cache_run(cached: bool) -> (ZipfOutcome, Option<CacheStats>) {
    let cache = cached.then_some(CacheConfig { capacity_blocks: ZIPF_CAPACITY });
    let cfg = CddConfig { cache, ..CddConfig::default() };
    let (mut engine, mut sys) = cdd::testkit::shape_with(4, 1, 32 << 20, Arch::RaidX, cfg);
    let out = run_zipf(&mut engine, &mut sys, &zipf_scenario_config(), ZIPF_SEED)
        .expect("zipf scenario must run fault-free");
    let stats = sys.cache_stats();
    (out, stats)
}

/// Deterministic work counters of the `zipf_cache` bench row: cached and
/// uncached runs of the same access stream, the hit rate, and the
/// simulated-time speedup the cache bought (×100, so 250 = 2.5×).
pub fn zipf_cache_work() -> Vec<(String, u64)> {
    let (cached, stats) = zipf_cache_run(true);
    let (plain, _) = zipf_cache_run(false);
    let stats = stats.expect("cached run exports stats");
    let hit_rate_pct = (stats.hits * 100).checked_div(stats.hits + stats.misses).unwrap_or(0);
    let speedup_x100 = (plain.read_time.0 * 100).checked_div(cached.read_time.0).unwrap_or(0);
    vec![
        ("reads".to_string(), cached.reads as u64),
        ("cache_hits".to_string(), stats.hits),
        ("cache_misses".to_string(), stats.misses),
        ("invalidations".to_string(), stats.invalidations),
        ("evictions".to_string(), stats.evictions),
        ("stale_reads".to_string(), cached.stale_reads as u64),
        ("hit_rate_pct".to_string(), hit_rate_pct),
        ("speedup_x100".to_string(), speedup_x100),
    ]
}

/// Run the same random op script cached and uncached on `arch` and
/// require identical outcomes: same acknowledged writes, zero stale
/// reads on both sides (every read byte-checked against the shared
/// shadow model), and a byte-identical final region. Returns a summary
/// on success, the divergence on failure.
pub fn transparency_check(
    arch: Arch,
    seed: u64,
    nops: usize,
    capacity_blocks: usize,
) -> Result<String, String> {
    type RunResult = Result<(ScriptOutcome, Result<(), u64>, Option<CacheStats>), String>;
    let run = |cache: Option<CacheConfig>| -> RunResult {
        let cfg = CddConfig { cache, ..CddConfig::default() };
        let (mut engine, mut sys) = cdd::testkit::shape_with(4, 1, 8 << 20, arch, cfg);
        let ops = gen_script(&mut Gen::new(seed), 4, 64, nops);
        let out = run_script(&mut engine, &mut sys, &ops, None)
            .map_err(|e| format!("{arch:?} seed {seed}: script aborted: {e}"))?;
        let readback = check_against_model(&mut sys, 0, &out.model)
            .map_err(|e| format!("{arch:?} seed {seed}: read-back failed: {e}"))?;
        Ok((out, readback, sys.cache_stats()))
    };
    let (plain, plain_back, _) = run(None)?;
    let (cached, cached_back, stats) = run(Some(CacheConfig { capacity_blocks }))?;
    let ctx = format!("{arch:?} seed {seed} cap {capacity_blocks}");
    if plain.failed != 0 || cached.failed != 0 {
        return Err(format!("{ctx}: fault-free ops failed ({}/{})", plain.failed, cached.failed));
    }
    if cached.stale_reads != 0 || plain.stale_reads != 0 {
        return Err(format!(
            "{ctx}: stale reads (cached {}, uncached {})",
            cached.stale_reads, plain.stale_reads
        ));
    }
    if plain.model != cached.model {
        return Err(format!("{ctx}: acknowledged write sets diverge"));
    }
    if plain_back != Ok(()) || cached_back != Ok(()) {
        return Err(format!("{ctx}: final region diverges from the model"));
    }
    let stats = stats.ok_or_else(|| format!("{ctx}: cached system reports no stats"))?;
    if stats.hits + stats.misses == 0 {
        return Err(format!("{ctx}: cache never consulted"));
    }
    Ok(format!(
        "{ctx}: {} ops byte-identical ({} hits, {} misses, {} invalidations)",
        plain.completed, stats.hits, stats.misses, stats.invalidations
    ))
}

/// Run the cache-coherence pass under the given exploration budget.
pub fn run_pass(budget: u64) -> PassReport {
    let mut rep = PassReport::new("cache-coherence");
    let ex = || Explorer { max_schedules: budget.max(1), ..Explorer::default() };

    // 1. Exhaustive interleaving of the coherence scenario.
    let r = ex().explore(&CddModel::new(scenario_cache(Defect::None)));
    match (&r.failure, r.truncated) {
        (Some(f), _) => rep.fail("model: cache scenario explores clean", f.to_string()),
        (None, true) => rep.fail(
            "model: cache scenario explores clean",
            format!("budget exhausted after {} schedules", r.schedules),
        ),
        (None, false) => rep.ok(
            "model: cache scenario explores clean",
            format!("{} schedules, {} steps, {} pruned", r.schedules, r.steps, r.pruned),
        ),
    }

    // 2. Every schedule's history linearizes.
    let sc = scenario_cache(Defect::None);
    let blocks = sc.blocks;
    let r = ex().explore_with(&CddModel::new(sc), |s| check_history(blocks, &s.history));
    rep.push(
        "linearizability: every cached-read history",
        r.failure.is_none() && !r.truncated,
        match &r.failure {
            Some(f) => f.to_string(),
            None if r.truncated => format!("budget exhausted after {} schedules", r.schedules),
            None => format!("{} schedules, every history linearizable", r.schedules),
        },
    );

    // 3. Canary: the planted skipped invalidation must be caught.
    let sc = scenario_cache(Defect::SkipInvalidate);
    let blocks = sc.blocks;
    let r = ex().explore_with(&CddModel::new(sc), |s| check_history(blocks, &s.history));
    rep.push(
        "canary: planted skip-invalidation is caught",
        r.failure.is_some(),
        match &r.failure {
            Some(f) => format!("caught: {f}"),
            None => "checker missed the planted skipped invalidation".to_string(),
        },
    );

    // 4. Transparency on every architecture (the 8-seed property sweep
    // runs in the unit suite; two seeds per arch keep the pass bounded).
    for arch in Arch::ALL {
        for seed in [11, 12] {
            let name = format!("transparency: {arch:?} seed {seed}");
            match transparency_check(arch, seed, 40, 32) {
                Ok(detail) => rep.ok(name, detail),
                Err(detail) => rep.fail(name, detail),
            }
        }
    }

    // 5. The Zipf payoff gate.
    let work = zipf_cache_work();
    let counter = |key: &str| work.iter().find(|(k, _)| k == key).map_or(0, |&(_, v)| v);
    let (hit_rate, speedup, stale) =
        (counter("hit_rate_pct"), counter("speedup_x100"), counter("stale_reads"));
    rep.push(
        "zipf: hit rate clears the gate",
        hit_rate >= MIN_HIT_RATE_PCT && stale == 0,
        format!(
            "hit rate {hit_rate}% (gate {MIN_HIT_RATE_PCT}%), {} hits / {} misses, {} stale",
            counter("cache_hits"),
            counter("cache_misses"),
            stale
        ),
    );
    rep.push(
        "zipf: cache shortens the measured phase",
        speedup > 100,
        format!("simulated-time speedup {}.{:02}x", speedup / 100, speedup % 100),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::check::run_cases;

    #[test]
    fn clean_pass_reports_zero_findings() {
        let rep = run_pass(crate::model_check::DEFAULT_BUDGET);
        assert!(rep.all_ok(), "{}", rep.render());
        assert_eq!(rep.checks.len(), 13);
    }

    #[test]
    fn zipf_work_counters_are_deterministic_and_clear_the_gates() {
        let work = zipf_cache_work();
        assert_eq!(work, zipf_cache_work(), "bench row counters must be reproducible");
        let counter = |key: &str| work.iter().find(|(k, _)| k == key).map_or(0, |&(_, v)| v);
        assert_eq!(counter("stale_reads"), 0, "{work:?}");
        assert!(counter("hit_rate_pct") >= MIN_HIT_RATE_PCT, "{work:?}");
        assert!(counter("speedup_x100") > 100, "{work:?}");
        assert!(counter("invalidations") > 0, "{work:?}");
    }

    /// Satellite property: random op scripts, every architecture, ≥8
    /// seeds each, random cache capacities — the cached array must be
    /// byte-for-byte indistinguishable from the uncached one.
    #[test]
    fn cache_is_transparent_for_random_scripts_on_every_arch() {
        for arch in Arch::ALL {
            run_cases(&format!("cache-transparency-{arch:?}"), 8, |g| {
                let nops = g.usize_in(25..45);
                let capacity = [1, 4, 16, 64, 256][g.usize_in(0..5)];
                let seed = g.u64_in(0..u64::MAX);
                transparency_check(arch, seed, nops, capacity)
                    .unwrap_or_else(|e| panic!("transparency violated: {e}"));
            });
        }
    }
}
