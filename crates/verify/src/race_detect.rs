//! Pass 10 — happens-before race detection and commutativity audit.
//!
//! The model checker (pass 5) proves ordering properties exhaustively on
//! tiny scenarios; this pass scales the same concern to full-size runs.
//! It records the merged engine + protocol trace of a seeded scripted
//! workload (one [`sim_core::EventLog`] clone installed in both the
//! [`sim_core::Engine`] and the [`cdd::IoSystem`]) and feeds it to the
//! FastTrack-style vector-clock analyzer in [`sim_core::hb`], which
//! flags:
//!
//! * conflicting SIOS cell accesses unordered by fork/join/barrier/lock
//!   happens-before edges (a protocol data race),
//! * protocol writes not covered by a live lock-group grant,
//! * same-timestamp events with overlapping footprints (a commutativity
//!   violation that would make same-instant dispatch order-sensitive).
//!
//! Structure of the pass:
//!
//! 1. **Clean sweep** — scripted multi-client workloads (fault-free and
//!    with a transient-outage fault plan) across all four architectures
//!    must analyze clean, with real accesses and sync edges observed.
//! 2. **Detector determinism** — a double run must produce
//!    bit-identical [`HbAnalysis`] fingerprints.
//! 3. **Observer neutrality** — a traced run must be result-identical
//!    (shadow model, op counts, final simulated time, engine event
//!    fingerprint) to an untraced run: the detector may not perturb what
//!    it watches.
//! 4. **Planted defects** — three seeded defect classes (a dropped
//!    lock grant, a skipped barrier, two same-tick disk services on one
//!    resource) must each be detected, and ddmin shrinking
//!    ([`sim_core::hb::shrink_window`]) must produce a strictly smaller
//!    trace window still exhibiting the same finding.

use std::collections::BTreeMap;

use cdd::{FaultEvent, FaultInjector};
use raidx_core::Arch;
use sim_core::check::Gen;
use sim_core::hb::{self, analyze, shrink_window};
use sim_core::trace::{AccessKind, EventLog, TimedEvent, TraceEvent};
use sim_core::{FaultPlan, HbAnalysis, HbOptions, SimTime, ViolationKind};
use workloads::op_script::{gen_script, run_script};

use crate::determinism::engine_fingerprint;
use crate::report::PassReport;

/// Script shape shared by every run of the pass.
const CLIENTS: usize = 4;
const REGION_BLOCKS: u64 = 64;
const SCRIPT_SEED: u64 = 0xC0FFEE;
/// Disk hit by the transient-outage fault plan.
const TARGET_DISK: usize = 1;
/// Client that drives recovery.
const DRIVER: usize = 0;

/// What one scripted run produced, for cross-run comparison.
struct RunResult {
    /// Merged engine + protocol event stream (empty when untraced).
    events: Vec<TimedEvent>,
    /// Shadow model of successful writes.
    model: BTreeMap<u64, u8>,
    completed: usize,
    failed: usize,
    stale_reads: usize,
    /// Simulated end time of the whole script.
    end: SimTime,
    /// Fingerprint of the engine's own job/latency trace.
    engine_fp: u64,
}

fn transient_plan(inject_at: usize, repair_at: usize) -> FaultPlan<FaultEvent> {
    let mut plan = FaultPlan::new();
    plan.at_point(format!("op:{inject_at}"), 1, FaultEvent::DiskTransient { disk: TARGET_DISK });
    plan.at_point(
        format!("op:{repair_at}"),
        1,
        FaultEvent::DiskRecover { disk: TARGET_DISK, client: DRIVER },
    );
    plan
}

/// One seeded scripted run: `traced` installs a shared [`EventLog`] in
/// both the engine and the I/O system; `faulted` attaches the transient
/// outage fault plan. Same arguments ⇒ same behavior (pass 8 property).
fn scripted_run(arch: Arch, nops: usize, traced: bool, faulted: bool) -> RunResult {
    let (mut engine, mut sys) = cdd::testkit::shape(4, 2, 8 << 20, arch);
    let log = EventLog::new();
    if traced {
        engine.set_tracer(Box::new(log.clone()));
        sys.set_tracer(Box::new(log.clone()));
    }
    let ops = gen_script(&mut Gen::new(SCRIPT_SEED), CLIENTS, REGION_BLOCKS, nops);
    let mut injector = if faulted {
        Some(FaultInjector::new(transient_plan(nops / 3, 2 * nops / 3)))
    } else {
        None
    };
    let out = run_script(&mut engine, &mut sys, &ops, injector.as_mut())
        .expect("scripted workload aborted");
    RunResult {
        events: log.events(),
        model: out.model,
        completed: out.completed,
        failed: out.failed,
        stale_reads: out.stale_reads,
        end: engine.now(),
        engine_fp: engine_fingerprint(&engine),
    }
}

/// Analyzer options for the pass: full fidelity, or the smoke budget
/// (bounded event count and cell subset).
fn pass_options(smoke: bool) -> HbOptions {
    if smoke {
        HbOptions { max_events: 40_000, cell_limit: 32, ..HbOptions::default() }
    } else {
        HbOptions::default()
    }
}

fn analysis_summary(a: &HbAnalysis) -> String {
    format!(
        "{} events ({} accesses), {} actors, {} sync edges, fingerprint {:016x}{}",
        a.events,
        a.accesses,
        a.actors,
        a.sync_edges,
        a.fingerprint(),
        if a.truncated { ", truncated by budget" } else { "" }
    )
}

/// Plant 1: strip one client op's lock grant (its `Acquire` and the
/// matching `Release`) out of a real stream. The op's SIOS write is then
/// uncovered — the covered-write discipline defect.
fn plant_dropped_grant(events: &[TimedEvent]) -> Option<(Vec<TimedEvent>, u64, u32)> {
    let (acq_idx, actor, cell, len) =
        events.iter().enumerate().find_map(|(i, te)| match te.event {
            TraceEvent::Access { task, cell, len, kind: AccessKind::Acquire }
                if task & hb::PROTOCOL_ACTOR_BASE != 0 =>
            {
                Some((i, task, cell, len))
            }
            _ => None,
        })?;
    let rel_idx =
        events.iter().enumerate().skip(acq_idx + 1).find_map(|(i, te)| match te.event {
            TraceEvent::Access { task, cell: c, len: l, kind: AccessKind::Release }
                if task == actor && c == cell && l == len =>
            {
                Some(i)
            }
            _ => None,
        })?;
    let planted = events
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != acq_idx && i != rel_idx)
        .map(|(_, te)| te.clone())
        .collect();
    Some((planted, cell, actor))
}

/// Plant 2: append a task pair whose writes to one fresh cell are
/// ordered by a barrier — then drop the barrier events. Appending to a
/// real stream proves the detector works inside full-size traces, not
/// just toy ones.
fn plant_skipped_barrier(events: &[TimedEvent], skip_barrier: bool) -> Vec<TimedEvent> {
    // Cell and task ids chosen outside anything the workload produces.
    let cell = hb::sios_cell(1 << 20);
    let (ta, tb) = (900_000u32, 900_001u32);
    let t0 = 1_000_000_000u64;
    let mut out = events.to_vec();
    let mut push = |at: u64, event: TraceEvent| out.push(TimedEvent { at: SimTime(at), event });
    push(t0, TraceEvent::TaskSpawned { task: ta, parent: None, detached: false });
    push(t0, TraceEvent::TaskSpawned { task: tb, parent: None, detached: false });
    push(t0 + 1, TraceEvent::Access { task: ta, cell, len: 1, kind: AccessKind::Write });
    if !skip_barrier {
        push(t0 + 2, TraceEvent::BarrierWaited { barrier: 7001, task: ta });
        push(t0 + 3, TraceEvent::BarrierOpened { barrier: 7001, task: tb, cycle: 1, released: 2 });
    }
    push(t0 + 4, TraceEvent::Access { task: tb, cell, len: 1, kind: AccessKind::Write });
    out
}

/// Plant 3: duplicate a real disk-write `ServiceStarted` under a foreign
/// task at the same timestamp on the same resource — the same-instant
/// dispatch commutativity defect.
fn plant_same_tick_service(events: &[TimedEvent]) -> Option<(Vec<TimedEvent>, u32, u32)> {
    let foreign_task = 900_002u32;
    let (idx, res, task) = events.iter().enumerate().find_map(|(i, te)| match te.event {
        TraceEvent::ServiceStarted { res, task, kind: sim_core::DemandKind::DiskWrite, .. } => {
            Some((i, res, task))
        }
        _ => None,
    })?;
    let mut planted = events.to_vec();
    let mut twin = planted[idx].clone();
    if let TraceEvent::ServiceStarted { task, .. } = &mut twin.event {
        *task = foreign_task;
    }
    planted.insert(idx + 1, twin);
    Some((planted, res, task))
}

/// Check one planted defect: it must be detected under `key_kind`, and
/// ddmin shrinking must yield a strictly smaller window still exhibiting
/// the same finding.
fn check_plant(
    report: &mut PassReport,
    name: &str,
    planted: &[TimedEvent],
    opts: &HbOptions,
    key_kind: ViolationKind,
    matches: impl Fn(&sim_core::HbViolation) -> bool,
) {
    let analysis = analyze(planted, opts);
    let Some(v) = analysis.violations.iter().find(|v| v.kind == key_kind && matches(v)) else {
        report.fail(
            name.to_string(),
            format!(
                "planted defect not detected; findings: {:?}",
                analysis.violations.iter().map(|v| v.kind).collect::<Vec<_>>()
            ),
        );
        return;
    };
    let window = shrink_window(planted, v.key(), opts);
    let still = analyze(&window, opts).violations.iter().any(|w| w.key() == v.key());
    let shrunk = window.len() < planted.len();
    report.push(
        name.to_string(),
        still && shrunk,
        format!(
            "detected `{}`; window shrunk {} → {} events{}",
            v,
            planted.len(),
            window.len(),
            if still { "" } else { " BUT the shrunk window lost the finding" }
        ),
    );
}

/// Run the full race-detection pass. `smoke` bounds the script length
/// and the analyzer budget (event cap + cell subset) for CI.
pub fn run_pass(smoke: bool) -> PassReport {
    let mut report = PassReport::new("race-detect");
    let nops = if smoke { 30 } else { 80 };
    let opts = pass_options(smoke);

    // 1. Clean sweep: every architecture, fault-free and faulted.
    let variants: &[bool] = if smoke { &[false] } else { &[false, true] };
    let mut canonical: Option<Vec<TimedEvent>> = None;
    for arch in Arch::ALL {
        for &faulted in variants {
            let run = scripted_run(arch, nops, true, faulted);
            let analysis = analyze(&run.events, &opts);
            let label =
                format!("{arch:?} {} workload", if faulted { "faulted" } else { "fault-free" });
            let substantive = analysis.accesses > 0 && analysis.sync_edges > 0;
            let detail = if analysis.clean() {
                analysis_summary(&analysis)
            } else {
                format!(
                    "{} violations, first: {}",
                    analysis.violations.len(),
                    analysis.violations[0]
                )
            };
            report.push(
                label,
                analysis.clean() && substantive,
                if substantive {
                    detail
                } else {
                    format!("stream not substantive: {}", analysis_summary(&analysis))
                },
            );
            if !faulted && canonical.is_none() {
                canonical = Some(run.events.clone());
            }
        }
    }

    // 2. Detector determinism: double run, identical analysis fingerprints.
    {
        let arch = Arch::RaidX;
        let a = analyze(&scripted_run(arch, nops, true, false).events, &opts);
        let b = analyze(&scripted_run(arch, nops, true, false).events, &opts);
        report.push(
            "double-run analysis fingerprint",
            a.fingerprint() == b.fingerprint(),
            format!("{:016x} vs {:016x}", a.fingerprint(), b.fingerprint()),
        );
    }

    // 3. Observer neutrality: tracing must not change results.
    for arch in Arch::ALL {
        let traced = scripted_run(arch, nops, true, false);
        let bare = scripted_run(arch, nops, false, false);
        let identical = traced.model == bare.model
            && traced.completed == bare.completed
            && traced.failed == bare.failed
            && traced.stale_reads == bare.stale_reads
            && traced.end == bare.end
            && traced.engine_fp == bare.engine_fp;
        report.push(
            format!("{arch:?} traced run result-identical to untraced"),
            identical,
            if identical {
                format!("model/ops/end-time/engine-fp all agree (end {})", traced.end)
            } else {
                format!(
                    "divergence: model {} vs {} blocks, ops {}/{} vs {}/{}, end {} vs {}, \
                     fp {:016x} vs {:016x}",
                    traced.model.len(),
                    bare.model.len(),
                    traced.completed,
                    traced.failed,
                    bare.completed,
                    bare.failed,
                    traced.end,
                    bare.end,
                    traced.engine_fp,
                    bare.engine_fp
                )
            },
        );
        if smoke {
            break;
        }
    }

    // 4. Planted defects over the canonical real stream.
    let canonical = canonical.expect("at least one traced run recorded");
    let plant_opts = HbOptions::default();
    match plant_dropped_grant(&canonical) {
        Some((planted, cell, actor)) => check_plant(
            &mut report,
            "planted defect: dropped lock grant",
            &planted,
            &plant_opts,
            ViolationKind::UncoveredWrite,
            |v| v.cell >= cell && v.actors.0 == actor,
        ),
        None => report.fail("planted defect: dropped lock grant", "stream has no lock grants"),
    }
    {
        let control = plant_skipped_barrier(&canonical, false);
        let planted = plant_skipped_barrier(&canonical, true);
        let control_clean = analyze(&control, &plant_opts).clean();
        if control_clean {
            check_plant(
                &mut report,
                "planted defect: skipped barrier",
                &planted,
                &plant_opts,
                ViolationKind::WriteWrite,
                |v| v.cell == hb::sios_cell(1 << 20),
            );
        } else {
            report.fail(
                "planted defect: skipped barrier",
                "control stream (barrier intact) was not clean",
            );
        }
    }
    match plant_same_tick_service(&canonical) {
        Some((planted, res, task)) => check_plant(
            &mut report,
            "planted defect: same-tick disk services",
            &planted,
            &plant_opts,
            ViolationKind::SameTickService,
            |v| v.cell == u64::from(res) && v.actors.0 == task,
        ),
        None => report.fail("planted defect: same-tick disk services", "stream has no disk writes"),
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pass_is_green() {
        let report = run_pass(true);
        assert!(report.all_ok(), "{}", report.render());
    }

    #[test]
    fn full_pass_is_green() {
        let report = run_pass(false);
        assert!(report.all_ok(), "{}", report.render());
    }

    #[test]
    fn traced_stream_carries_protocol_accesses() {
        let run = scripted_run(Arch::RaidX, 40, true, false);
        let accesses =
            run.events.iter().filter(|te| matches!(te.event, TraceEvent::Access { .. })).count();
        assert!(accesses > 0, "IoSystem tracer emitted no access events");
        // RAID-x write-behind must surrender images somewhere in 40 ops.
        let image_writes = run
            .events
            .iter()
            .filter(|te| match te.event {
                TraceEvent::Access { cell, kind: AccessKind::Write, .. } => {
                    hb::cell_ns(cell) == hb::IMAGE_NS
                }
                _ => false,
            })
            .count();
        assert!(image_writes > 0, "no image surrenders traced on RAID-x");
    }

    #[test]
    fn all_three_plants_have_material() {
        let run = scripted_run(Arch::RaidX, 40, true, false);
        assert!(plant_dropped_grant(&run.events).is_some(), "no grant to drop");
        assert!(plant_same_tick_service(&run.events).is_some(), "no disk write to twin");
    }
}
