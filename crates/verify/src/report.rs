//! Shared pass/fail reporting for the verification passes.

/// One named check inside a pass.
#[derive(Debug, Clone)]
pub struct Check {
    /// What was checked (e.g. `"RAID-x 4x3 write plan"`).
    pub name: String,
    /// Did it hold?
    pub ok: bool,
    /// Failure detail, or a short summary for passing checks.
    pub detail: String,
}

/// The outcome of one verification pass: a list of named checks.
#[derive(Debug, Clone, Default)]
pub struct PassReport {
    /// Pass name (e.g. `"plan-lint"`).
    pub pass: String,
    /// Individual checks, in execution order.
    pub checks: Vec<Check>,
}

impl PassReport {
    /// An empty report for the named pass.
    pub fn new(pass: impl Into<String>) -> Self {
        PassReport { pass: pass.into(), checks: Vec::new() }
    }

    /// Record a passing check.
    pub fn ok(&mut self, name: impl Into<String>, detail: impl Into<String>) {
        self.checks.push(Check { name: name.into(), ok: true, detail: detail.into() });
    }

    /// Record a failing check.
    pub fn fail(&mut self, name: impl Into<String>, detail: impl Into<String>) {
        self.checks.push(Check { name: name.into(), ok: false, detail: detail.into() });
    }

    /// Record a check whose outcome is already known.
    pub fn push(&mut self, name: impl Into<String>, ok: bool, detail: impl Into<String>) {
        self.checks.push(Check { name: name.into(), ok, detail: detail.into() });
    }

    /// True when every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// Number of failing checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.ok).count()
    }

    /// Render the pass as a fixed-width table for terminal output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let verdict = if self.all_ok() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "== {} [{verdict}] ({}/{} checks ok)",
            self.pass,
            self.checks.len() - self.failures(),
            self.checks.len()
        );
        let width = self.checks.iter().map(|c| c.name.len()).max().unwrap_or(0);
        for c in &self.checks {
            let mark = if c.ok { "ok  " } else { "FAIL" };
            let _ = writeln!(out, "  {mark} {:width$}  {}", c.name, c.detail);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_tracks_failures() {
        let mut r = PassReport::new("demo");
        r.ok("a", "fine");
        assert!(r.all_ok());
        r.fail("b", "broken");
        assert!(!r.all_ok());
        assert_eq!(r.failures(), 1);
        let text = r.render();
        assert!(text.contains("demo [FAIL]"));
        assert!(text.contains("FAIL b"));
    }
}
