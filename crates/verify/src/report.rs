//! Shared pass/fail reporting for the verification passes.

/// One named check inside a pass.
#[derive(Debug, Clone)]
pub struct Check {
    /// What was checked (e.g. `"RAID-x 4x3 write plan"`).
    pub name: String,
    /// Did it hold?
    pub ok: bool,
    /// Failure detail, or a short summary for passing checks.
    pub detail: String,
    /// Source file the check refers to, when it carries a span
    /// (static-analysis findings do; dynamic checks leave it empty).
    pub file: Option<String>,
    /// 1-based source line, when the check carries a span.
    pub line: Option<usize>,
    /// The finding behind this check was acknowledged in source.
    pub acknowledged: bool,
}

/// The outcome of one verification pass: a list of named checks.
#[derive(Debug, Clone, Default)]
pub struct PassReport {
    /// Pass name (e.g. `"plan-lint"`).
    pub pass: String,
    /// Individual checks, in execution order.
    pub checks: Vec<Check>,
    /// Wall-clock seconds the pass took, when the driver measured it
    /// (`verify_all` does; library callers may leave it `None`). Carried
    /// into the JSON report so CI can trend pass cost over PRs.
    pub secs: Option<f64>,
}

impl PassReport {
    /// An empty report for the named pass.
    pub fn new(pass: impl Into<String>) -> Self {
        PassReport { pass: pass.into(), checks: Vec::new(), secs: None }
    }

    /// Record a passing check.
    pub fn ok(&mut self, name: impl Into<String>, detail: impl Into<String>) {
        self.push(name, true, detail);
    }

    /// Record a failing check.
    pub fn fail(&mut self, name: impl Into<String>, detail: impl Into<String>) {
        self.push(name, false, detail);
    }

    /// Record a check whose outcome is already known.
    pub fn push(&mut self, name: impl Into<String>, ok: bool, detail: impl Into<String>) {
        self.checks.push(Check {
            name: name.into(),
            ok,
            detail: detail.into(),
            file: None,
            line: None,
            acknowledged: false,
        });
    }

    /// Record a check that carries a source span (static-analysis
    /// findings), with its acknowledgement state.
    pub fn push_spanned(
        &mut self,
        name: impl Into<String>,
        ok: bool,
        detail: impl Into<String>,
        file: impl Into<String>,
        line: usize,
        acknowledged: bool,
    ) {
        self.checks.push(Check {
            name: name.into(),
            ok,
            detail: detail.into(),
            file: Some(file.into()),
            line: Some(line),
            acknowledged,
        });
    }

    /// True when every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// Number of failing checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.ok).count()
    }

    /// Render the pass as a fixed-width table for terminal output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let verdict = if self.all_ok() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "== {} [{verdict}] ({}/{} checks ok)",
            self.pass,
            self.checks.len() - self.failures(),
            self.checks.len()
        );
        let width = self.checks.iter().map(|c| c.name.len()).max().unwrap_or(0);
        for c in &self.checks {
            let mark = if c.ok { "ok  " } else { "FAIL" };
            let _ = writeln!(out, "  {mark} {:width$}  {}", c.name, c.detail);
        }
        out
    }
}

use sim_core::export::json_escape;

/// Serialize a run's pass reports as machine-readable JSON
/// (`verify_all --json`). Stable schema: every pass object carries
/// `pass`, `ok`, `secs` (wall-clock cost, null when unmeasured — CI
/// trends this over PRs) and `checks`; every check is an object with
/// `pass`, `rule` (the check name), `file`/`line` (null for dynamic
/// checks), `message`, `acknowledged` and `ok`.
pub fn render_json(reports: &[PassReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"passes\": [\n");
    for (pi, r) in reports.iter().enumerate() {
        let secs = match r.secs {
            Some(s) => format!("{s:.3}"),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "    {{\"pass\": \"{}\", \"ok\": {}, \"secs\": {secs}, \"checks\": [",
            json_escape(&r.pass),
            r.all_ok()
        );
        for (ci, c) in r.checks.iter().enumerate() {
            let file = match &c.file {
                Some(f) => format!("\"{}\"", json_escape(f)),
                None => "null".to_string(),
            };
            let line = match c.line {
                Some(l) => l.to_string(),
                None => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "      {{\"pass\": \"{}\", \"rule\": \"{}\", \"file\": {file}, \
                 \"line\": {line}, \"message\": \"{}\", \"acknowledged\": {}, \"ok\": {}}}{}",
                json_escape(&r.pass),
                json_escape(&c.name),
                json_escape(&c.detail),
                c.acknowledged,
                c.ok,
                if ci + 1 < r.checks.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "    ]}}{}", if pi + 1 < reports.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_valid_and_spanned() {
        let mut r = PassReport::new("static-analysis");
        r.push_spanned("no-unwrap", true, "acked \"why\"", "cdd/src/x.rs", 12, true);
        r.fail("canary", "missing");
        r.secs = Some(1.2345);
        let json = render_json(&[r]);
        assert!(sim_core::export::json_is_valid(&json), "{json}");
        assert!(json.contains("\"file\": \"cdd/src/x.rs\""));
        assert!(json.contains("\"line\": 12"));
        assert!(json.contains("\"acknowledged\": true"));
        assert!(json.contains("\"file\": null"));
        assert!(json.contains("\"secs\": 1.234"), "{json}");
    }

    #[test]
    fn unmeasured_pass_serializes_null_secs() {
        let mut r = PassReport::new("demo");
        r.ok("a", "fine");
        let json = render_json(&[r]);
        assert!(sim_core::export::json_is_valid(&json), "{json}");
        assert!(json.contains("\"secs\": null"), "{json}");
    }

    #[test]
    fn verdict_tracks_failures() {
        let mut r = PassReport::new("demo");
        r.ok("a", "fine");
        assert!(r.all_ok());
        r.fail("b", "broken");
        assert!(!r.all_ok());
        assert_eq!(r.failures(), 1);
        let text = r.render();
        assert!(text.contains("demo [FAIL]"));
        assert!(text.contains("FAIL b"));
    }
}
