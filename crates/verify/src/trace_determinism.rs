//! Pass 8 — trace-stream determinism.
//!
//! The determinism pass (4a) fingerprints *end-of-run aggregates*; this
//! pass tightens the property to the full observability event stream:
//! with an [`EventLog`] tracer installed, a same-seed double run must
//! emit **byte-identical** event sequences — every job spawn, queue
//! arrival, service start/finish and barrier opening, in the same order
//! at the same simulated nanosecond. This is the property the
//! Perfetto/CSV exporters rely on (a trace you cannot reproduce is a
//! trace you cannot debug from), and it catches a strictly larger class
//! of defects than the aggregate audit: two runs can agree on totals
//! while interleaving events differently.
//!
//! Besides the per-architecture double runs, the pass runs a
//! *perturbation canary*: it injects a nondeterministic event ordering
//! (swapping one adjacent event pair) into a copy of the recorded
//! stream and asserts the comparator catches it — guarding against the
//! fingerprint silently degenerating into a constant.

use raidx_core::Arch;
use sim_core::trace::{render_event, EventLog, TimedEvent};
use workloads::parallel_io::{run_parallel_io, IoPattern, ParallelIoConfig};

use crate::report::PassReport;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a fingerprint over a rendered event stream.
pub fn stream_fingerprint(events: &[TimedEvent]) -> u64 {
    let mut h = FNV_OFFSET;
    for ev in events {
        for &b in render_event(ev).as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// First divergence between two event streams, as
/// `(index, run A line, run B line)`; length mismatches are reported at
/// the first missing index.
pub fn diff_streams(a: &[TimedEvent], b: &[TimedEvent]) -> Option<(usize, String, String)> {
    for (i, (ea, eb)) in a.iter().zip(b.iter()).enumerate() {
        if ea != eb {
            return Some((i, render_event(ea), render_event(eb)));
        }
    }
    if a.len() != b.len() {
        let i = a.len().min(b.len());
        return Some((i, format!("{} events", a.len()), format!("{} events", b.len())));
    }
    None
}

/// Outcome of a double-run trace audit for one architecture.
#[derive(Debug, Clone)]
pub struct TraceAudit {
    /// Architecture audited.
    pub arch: Arch,
    /// Fingerprint of the first run's event stream.
    pub fingerprint_a: u64,
    /// Fingerprint of the second run's event stream.
    pub fingerprint_b: u64,
    /// Events recorded by the first run.
    pub events: usize,
    /// First differing event, if any.
    pub divergence: Option<(usize, String, String)>,
}

impl TraceAudit {
    /// True when both runs emitted identical event streams.
    pub fn deterministic(&self) -> bool {
        self.fingerprint_a == self.fingerprint_b && self.divergence.is_none()
    }
}

fn one_traced_run(arch: Arch) -> Vec<TimedEvent> {
    let (mut engine, mut sys) = cdd::testkit::shape(4, 2, 8 << 20, arch);
    let log = EventLog::new();
    engine.set_tracer(Box::new(log.clone()));
    let cfg = ParallelIoConfig {
        clients: 4,
        pattern: IoPattern::LargeWrite,
        large_bytes: 256 << 10,
        repeats: 2,
        ..Default::default()
    };
    run_parallel_io(&mut engine, &mut sys, &cfg).expect("workload failed");
    log.events()
}

/// Run the Figure-5 style workload twice with tracing enabled and
/// compare the full event streams.
pub fn audit_trace(arch: Arch) -> TraceAudit {
    let a = one_traced_run(arch);
    let b = one_traced_run(arch);
    TraceAudit {
        arch,
        fingerprint_a: stream_fingerprint(&a),
        fingerprint_b: stream_fingerprint(&b),
        events: a.len(),
        divergence: diff_streams(&a, &b),
    }
}

/// Run the full trace-determinism pass: a double-run audit per
/// architecture plus the perturbation canary.
pub fn run_pass() -> PassReport {
    let mut report = PassReport::new("trace-determinism");
    let mut canary_stream: Vec<TimedEvent> = Vec::new();
    for arch in Arch::ALL {
        let audit = audit_trace(arch);
        let name = format!("{arch:?} traced double run");
        let detail = match &audit.divergence {
            None => format!(
                "fingerprint {:016x}, {} events, stream byte-identical",
                audit.fingerprint_a, audit.events
            ),
            Some((i, a, b)) => format!("diverged at event {i}: `{a}` vs `{b}`"),
        };
        report.push(name, audit.deterministic() && audit.events > 0, detail);
        if canary_stream.is_empty() {
            canary_stream = one_traced_run(arch);
        }
    }
    // Perturbation canary: an injected reorder must be caught.
    if canary_stream.len() >= 2 {
        let mut perturbed = canary_stream.clone();
        let mid = perturbed.len() / 2;
        perturbed.swap(mid - 1, mid);
        let caught = diff_streams(&canary_stream, &perturbed).is_some()
            && stream_fingerprint(&canary_stream) != stream_fingerprint(&perturbed);
        report.push(
            "perturbation canary",
            caught,
            if caught {
                "injected event reorder detected by diff and fingerprint".to_string()
            } else {
                "injected event reorder NOT detected".to_string()
            },
        );
    } else {
        report.fail("perturbation canary", "stream too short to perturb");
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::plan::use_res;
    use sim_core::trace::{TracePoint, Tracer};
    use sim_core::{Demand, Engine, FixedRate, SimTime};

    #[test]
    fn all_archs_trace_deterministic() {
        for arch in Arch::ALL {
            let audit = audit_trace(arch);
            assert!(audit.deterministic(), "{arch:?} trace diverged at {:?}", audit.divergence);
            assert!(audit.events > 0, "{arch:?} recorded no events");
        }
    }

    #[test]
    fn pass_is_green() {
        let report = run_pass();
        assert!(report.all_ok(), "{}", report.render());
    }

    /// A defective tracer that injects nondeterministic event ordering:
    /// it delays one event out of every seven by one slot, with the
    /// perturbation phase taken from a process-global counter, so two
    /// "identical" runs interleave their streams differently — exactly
    /// the defect class this pass exists to catch.
    struct JitterTracer {
        out: std::sync::Arc<std::sync::Mutex<Vec<TimedEvent>>>,
        held: Option<TimedEvent>,
        phase: usize,
        count: usize,
    }

    impl Tracer for JitterTracer {
        fn record(&mut self, at: SimTime, point: TracePoint<'_>) {
            let owned = TimedEvent { at, event: sim_core::TraceEvent::from_point(point) };
            self.count += 1;
            let mut out = self.out.lock().expect("jitter buffer");
            if let Some(held) = self.held.take() {
                // Emit the delayed event after the current one: a reorder.
                out.push(owned);
                out.push(held);
            } else if self.count % 7 == self.phase {
                self.held = Some(owned);
            } else {
                out.push(owned);
            }
        }
    }

    #[test]
    fn seeded_nondeterministic_ordering_is_caught() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Arc, Mutex};
        static PHASE: AtomicUsize = AtomicUsize::new(1);
        let run = || {
            let mut engine = Engine::new();
            let d = engine.add_resource("disk", Box::new(FixedRate::rate(8 << 20)));
            let buf = Arc::new(Mutex::new(Vec::new()));
            let jitter = JitterTracer {
                out: Arc::clone(&buf),
                held: None,
                phase: PHASE.fetch_add(1, Ordering::SeqCst) % 7,
                count: 0,
            };
            engine.set_tracer(Box::new(jitter));
            for i in 0..8u64 {
                engine.spawn_job(
                    format!("j{i}"),
                    use_res(d, Demand::DiskWrite { offset: i * 4096, bytes: 4096 }),
                );
            }
            engine.run().expect("run");
            let events = buf.lock().expect("jitter buffer").clone();
            events
        };
        let a = run();
        let b = run();
        assert!(
            diff_streams(&a, &b).is_some(),
            "injected nondeterministic ordering was not detected"
        );
        assert_ne!(stream_fingerprint(&a), stream_fingerprint(&b));
    }

    #[test]
    fn fingerprint_observes_event_content_and_order() {
        let mk = |bytes: u64| TimedEvent {
            at: SimTime(10),
            event: sim_core::TraceEvent::ServiceFinished {
                res: 0,
                task: 1,
                kind: sim_core::DemandKind::DiskWrite,
                bytes,
                detached: false,
            },
        };
        let a = vec![mk(1), mk(2)];
        let b = vec![mk(2), mk(1)];
        assert_ne!(stream_fingerprint(&a), stream_fingerprint(&b));
        assert!(diff_streams(&a, &b).is_some());
        assert_eq!(diff_streams(&a, &a.clone()), None);
    }
}
