//! Additional interconnect-model tests: preset sanity, segmentation
//! boundaries and overhead accounting.

use sim_core::{Engine, FixedRate};
use sim_net::{transfer_plan, NetPath, NetSpec};

fn two_nodes(spec: &NetSpec) -> (Engine, NetPath) {
    let mut e = Engine::new();
    let cpu_model = || FixedRate { per_op: spec.sw_per_message, bytes_per_sec: spec.sw_copy_rate };
    let nic_model = || FixedRate::rate(spec.link_rate);
    let cpu0 = e.add_resource("cpu0", Box::new(cpu_model()));
    let tx0 = e.add_resource("tx0", Box::new(nic_model()));
    let rx1 = e.add_resource("rx1", Box::new(nic_model()));
    let cpu1 = e.add_resource("cpu1", Box::new(cpu_model()));
    (e, NetPath::remote(cpu0, tx0, rx1, cpu1))
}

fn goodput(spec: &NetSpec, bytes: u64) -> f64 {
    let (mut e, path) = two_nodes(spec);
    e.spawn_job("x", transfer_plan(spec, &path, bytes));
    let rep = e.run().expect("sim run failed");
    bytes as f64 / rep.end.as_secs_f64()
}

#[test]
fn gigabit_is_roughly_ten_times_fast_ethernet() {
    let fe = goodput(&NetSpec::fast_ethernet(), 8 << 20);
    let ge = goodput(&NetSpec::gigabit(), 8 << 20);
    let ratio = ge / fe;
    assert!((8.0..12.0).contains(&ratio), "ratio {ratio:.2}");
}

#[test]
fn goodput_never_exceeds_link_rate() {
    for spec in [NetSpec::fast_ethernet(), NetSpec::gigabit()] {
        for bytes in [1u64, 1500, 32 << 10, 1 << 20, 16 << 20] {
            let g = goodput(&spec, bytes);
            assert!(
                g < spec.link_rate as f64,
                "goodput {g:.0} exceeds link {} for {bytes} bytes",
                spec.link_rate
            );
        }
    }
}

#[test]
fn exact_segment_boundary_uses_one_segment() {
    let spec = NetSpec::fast_ethernet();
    assert_eq!(spec.segments(spec.segment_bytes), 1);
    assert_eq!(spec.segments(spec.segment_bytes + 1), 2);
    // Timing: one-segment payload beats a two-segment payload by less
    // than a full per-message overhead (pipelining hides most of it).
    let one = goodput(&spec, spec.segment_bytes);
    let two = goodput(&spec, spec.segment_bytes + 1);
    assert!(one > 0.0 && two > 0.0);
}

#[test]
fn many_small_messages_cost_more_than_one_bulk() {
    let spec = NetSpec::fast_ethernet();
    let total = 1u64 << 20;
    // One 1 MB transfer.
    let (mut e, path) = two_nodes(&spec);
    e.spawn_job("bulk", transfer_plan(&spec, &path, total));
    let bulk = e.run().unwrap().end.as_secs_f64();
    // 256 x 4 KB transfers, sequential.
    let (mut e, path) = two_nodes(&spec);
    e.spawn_job(
        "small",
        sim_core::plan::seq((0..256).map(|_| transfer_plan(&spec, &path, total / 256)).collect()),
    );
    let small = e.run().unwrap().end.as_secs_f64();
    assert!(
        small > 1.5 * bulk,
        "per-message overhead should bite: small {small:.4}s vs bulk {bulk:.4}s"
    );
}

#[test]
fn base_latency_independent_of_link_for_tiny_messages() {
    let fe = NetSpec::fast_ethernet();
    let ge = NetSpec::gigabit();
    // Software costs dominate tiny messages, so gigabit helps little.
    let (mut e1, p1) = two_nodes(&fe);
    e1.spawn_job("x", transfer_plan(&fe, &p1, 64));
    let t_fe = e1.run().unwrap().end.as_secs_f64();
    let (mut e2, p2) = two_nodes(&ge);
    e2.spawn_job("x", transfer_plan(&ge, &p2, 64));
    let t_ge = e2.run().unwrap().end.as_secs_f64();
    assert!(t_ge < t_fe);
    assert!(t_fe / t_ge < 8.0, "tiny-message latency should not scale with bandwidth");
}

#[test]
fn duplex_ports_overlap_opposite_directions() {
    // a->b and b->a transfers at once: full duplex should take about as
    // long as one direction alone, not twice.
    let spec = NetSpec::fast_ethernet();
    let mut e = Engine::new();
    let cpu_model = || FixedRate { per_op: spec.sw_per_message, bytes_per_sec: spec.sw_copy_rate };
    let nic_model = || FixedRate::rate(spec.link_rate);
    let cpu_a = e.add_resource("cpu_a", Box::new(cpu_model()));
    let tx_a = e.add_resource("tx_a", Box::new(nic_model()));
    let rx_a = e.add_resource("rx_a", Box::new(nic_model()));
    let cpu_b = e.add_resource("cpu_b", Box::new(cpu_model()));
    let tx_b = e.add_resource("tx_b", Box::new(nic_model()));
    let rx_b = e.add_resource("rx_b", Box::new(nic_model()));
    let ab = NetPath::remote(cpu_a, tx_a, rx_b, cpu_b);
    let ba = NetPath::remote(cpu_b, tx_b, rx_a, cpu_a);
    let bytes = 4u64 << 20;
    e.spawn_job("ab", transfer_plan(&spec, &ab, bytes));
    e.spawn_job("ba", transfer_plan(&spec, &ba, bytes));
    let both = e.run().unwrap().end.as_secs_f64();
    let single = bytes as f64 / goodput(&spec, bytes);
    assert!(both < 1.4 * single, "duplex run {both:.3}s vs single-direction {single:.3}s");
}
