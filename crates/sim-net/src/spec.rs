//! Interconnect parameter sets.

use sim_core::SimDuration;

/// Parameters of the cluster interconnect and of the per-message software
/// path (syscalls, TCP/IP stack, copies) on the hosts.
#[derive(Debug, Clone)]
pub struct NetSpec {
    /// Link bandwidth per NIC port, bytes/second (full duplex: tx and rx
    /// each run at this rate).
    pub link_rate: u64,
    /// Per-frame/segment protocol header bytes added on the wire.
    pub header_bytes: u64,
    /// Store-and-forward switch + propagation latency per segment.
    pub switch_latency: SimDuration,
    /// Fixed host software cost per message or segment (syscall + stack).
    pub sw_per_message: SimDuration,
    /// Host memory-copy bandwidth for protocol processing, bytes/second.
    pub sw_copy_rate: u64,
    /// Segment size used to pipeline bulk transfers.
    pub segment_bytes: u64,
}

impl NetSpec {
    /// Switched 100 Mbps Fast Ethernet with 1999-class host overheads
    /// (the Trojans cluster interconnect).
    pub fn fast_ethernet() -> Self {
        NetSpec {
            link_rate: 12_500_000,
            header_bytes: 58, // Ethernet + IP + TCP per segment
            switch_latency: SimDuration::from_micros(20),
            sw_per_message: SimDuration::from_micros(80),
            sw_copy_rate: 120_000_000,
            segment_bytes: 32 << 10,
        }
    }

    /// Switched gigabit Ethernet with modern host overheads, for
    /// sensitivity studies.
    pub fn gigabit() -> Self {
        NetSpec {
            link_rate: 125_000_000,
            header_bytes: 58,
            switch_latency: SimDuration::from_micros(5),
            sw_per_message: SimDuration::from_micros(15),
            sw_copy_rate: 2_000_000_000,
            segment_bytes: 64 << 10,
        }
    }

    /// Wire time for a payload of `bytes` on one port (headers included,
    /// per-segment segmentation accounted).
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        let segments = self.segments(bytes).max(1);
        SimDuration::for_bytes(bytes + segments * self.header_bytes, self.link_rate)
    }

    /// Number of segments a payload of `bytes` is split into.
    pub fn segments(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.segment_bytes)
        }
    }

    /// One-way latency of a minimal message (no payload) between two idle
    /// nodes: software out + wire + switch + software in.
    pub fn base_latency(&self) -> SimDuration {
        self.sw_per_message * 2
            + SimDuration::for_bytes(self.header_bytes, self.link_rate) * 2
            + self.switch_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ethernet_is_12_5_mbs() {
        let s = NetSpec::fast_ethernet();
        let t = s.wire_time(12_500_000);
        // 1 second of payload plus header overhead (< 1% for 32 KB segments).
        assert!(t >= SimDuration::from_secs(1));
        assert!(t < SimDuration::from_millis(1_010));
    }

    #[test]
    fn segment_count() {
        let s = NetSpec::fast_ethernet();
        assert_eq!(s.segments(0), 0);
        assert_eq!(s.segments(1), 1);
        assert_eq!(s.segments(32 << 10), 1);
        assert_eq!(s.segments((32 << 10) + 1), 2);
        assert_eq!(s.segments(2 << 20), 64);
    }

    #[test]
    fn base_latency_sub_millisecond() {
        let s = NetSpec::fast_ethernet();
        let l = s.base_latency();
        assert!(l > SimDuration::from_micros(100));
        assert!(l < SimDuration::from_millis(1));
    }
}
