//! Network partitions: which nodes can currently reach each other.
//!
//! A [`PartitionMap`] is the interconnect-level fault state consulted by
//! the CDD client module before issuing a remote request. The model is
//! node-granular (a partitioned node's NIC is cut off from the switch,
//! severing both its tx and rx directions), which matches the Trojans
//! cluster's single switched Fast Ethernet port per node: there is no
//! path that avoids the port, so per-link partitions degenerate to
//! per-node ones. Local traffic (a node talking to its own disks over
//! the SCSI bus) never crosses the switch and is unaffected.

use std::collections::BTreeSet;

/// Which nodes are currently cut off from the switch.
///
/// Deterministic by construction (ordered set, no clocks); cloneable so
/// fault scenarios can snapshot and restore connectivity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionMap {
    cut: BTreeSet<usize>,
}

impl PartitionMap {
    /// Fully connected cluster.
    pub fn new() -> Self {
        PartitionMap { cut: BTreeSet::new() }
    }

    /// Cut `node` off from the switch. Idempotent.
    pub fn partition(&mut self, node: usize) {
        self.cut.insert(node);
    }

    /// Reconnect `node`. Idempotent.
    pub fn heal(&mut self, node: usize) {
        self.cut.remove(&node);
    }

    /// Reconnect every node.
    pub fn heal_all(&mut self) {
        self.cut.clear();
    }

    /// Is `node` currently cut off?
    pub fn is_partitioned(&self, node: usize) -> bool {
        self.cut.contains(&node)
    }

    /// Can `src` exchange messages with `dst` right now? A node always
    /// reaches itself (local I/O bypasses the switch); remote traffic
    /// needs both endpoints connected.
    pub fn reachable(&self, src: usize, dst: usize) -> bool {
        src == dst || (!self.is_partitioned(src) && !self.is_partitioned(dst))
    }

    /// Nodes currently partitioned, ascending.
    pub fn partitioned(&self) -> impl Iterator<Item = usize> + '_ {
        self.cut.iter().copied()
    }

    /// Number of partitioned nodes.
    pub fn len(&self) -> usize {
        self.cut.len()
    }

    /// True when the cluster is fully connected.
    pub fn is_empty(&self) -> bool {
        self.cut.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_by_default() {
        let p = PartitionMap::new();
        assert!(p.reachable(0, 1));
        assert!(p.reachable(2, 2));
        assert!(p.is_empty());
    }

    #[test]
    fn partition_severs_both_directions_but_not_local() {
        let mut p = PartitionMap::new();
        p.partition(1);
        assert!(!p.reachable(0, 1), "into the partitioned node");
        assert!(!p.reachable(1, 0), "out of the partitioned node");
        assert!(p.reachable(1, 1), "local I/O bypasses the switch");
        assert!(p.reachable(0, 2), "unrelated pairs unaffected");
        assert!(p.is_partitioned(1));
    }

    #[test]
    fn heal_restores_connectivity() {
        let mut p = PartitionMap::new();
        p.partition(0);
        p.partition(3);
        assert_eq!(p.partitioned().collect::<Vec<_>>(), vec![0, 3]);
        p.heal(0);
        assert!(p.reachable(0, 2));
        assert!(!p.reachable(0, 3));
        p.heal_all();
        assert!(p.is_empty());
        assert!(p.reachable(0, 3));
    }
}
