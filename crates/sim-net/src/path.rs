//! Plan builders for node-to-node transfers.

use sim_core::plan::{delay, par, seq, use_res};
use sim_core::{Demand, Plan, ResourceId};

use crate::spec::NetSpec;

/// The resources a message crosses from one node to another.
///
/// `src_cpu`/`dst_cpu` are the host CPU resources charged with protocol
/// processing; `src_tx`/`dst_rx` are the NIC port resources. For a
/// node-local "transfer" use [`NetPath::local`], which costs only a memory
/// copy on the one CPU.
#[derive(Debug, Clone, Copy)]
pub struct NetPath {
    /// Sender CPU, or `None` for a path that skips sender processing.
    pub src_cpu: Option<ResourceId>,
    /// Sender NIC tx port; `None` for node-local paths.
    pub src_tx: Option<ResourceId>,
    /// Receiver NIC rx port; `None` for node-local paths.
    pub dst_rx: Option<ResourceId>,
    /// Receiver CPU.
    pub dst_cpu: Option<ResourceId>,
}

impl NetPath {
    /// A remote path crossing both hosts and both ports.
    pub fn remote(
        src_cpu: ResourceId,
        src_tx: ResourceId,
        dst_rx: ResourceId,
        dst_cpu: ResourceId,
    ) -> Self {
        NetPath {
            src_cpu: Some(src_cpu),
            src_tx: Some(src_tx),
            dst_rx: Some(dst_rx),
            dst_cpu: Some(dst_cpu),
        }
    }

    /// A node-local path: data never touches the wire, only the local CPU.
    pub fn local(cpu: ResourceId) -> Self {
        NetPath { src_cpu: Some(cpu), src_tx: None, dst_rx: None, dst_cpu: None }
    }

    /// True if the path crosses the network.
    pub fn is_remote(&self) -> bool {
        self.src_tx.is_some()
    }
}

/// Build the plan for moving `bytes` along `path`.
///
/// Remote transfers are split into `spec.segment_bytes` segments issued
/// concurrently; each segment is a cpu→tx→switch→rx→cpu chain, and the FIFO
/// queues at each resource make consecutive segments pipeline (segment 2 is
/// on the wire while segment 1 is being received). Local transfers cost one
/// CPU copy.
pub fn transfer_plan(spec: &NetSpec, path: &NetPath, bytes: u64) -> Plan {
    if !path.is_remote() {
        return match path.src_cpu {
            Some(cpu) => use_res(cpu, Demand::CpuMsg { bytes }),
            None => Plan::Noop,
        };
    }
    let n_segments = spec.segments(bytes).max(1);
    let mut segments = Vec::with_capacity(n_segments as usize);
    let mut remaining = bytes;
    for _ in 0..n_segments {
        let seg = remaining.min(spec.segment_bytes);
        remaining -= seg;
        segments.push(segment_plan(spec, path, seg));
    }
    if segments.len() == 1 {
        segments.pop().expect("one segment")
    } else {
        par(segments)
    }
}

fn segment_plan(spec: &NetSpec, path: &NetPath, payload: u64) -> Plan {
    let wire = payload + spec.header_bytes;
    let mut chain = Vec::with_capacity(5);
    if let Some(cpu) = path.src_cpu {
        chain.push(use_res(cpu, Demand::CpuMsg { bytes: payload }));
    }
    if let Some(tx) = path.src_tx {
        chain.push(use_res(tx, Demand::NetXfer { bytes: wire }));
    }
    chain.push(delay(spec.switch_latency));
    if let Some(rx) = path.dst_rx {
        chain.push(use_res(rx, Demand::NetXfer { bytes: wire }));
    }
    if let Some(cpu) = path.dst_cpu {
        chain.push(use_res(cpu, Demand::CpuMsg { bytes: payload }));
    }
    seq(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{Engine, FixedRate, SimDuration};

    struct Net {
        e: Engine,
        spec: NetSpec,
        path: NetPath,
    }

    fn two_nodes() -> Net {
        let spec = NetSpec::fast_ethernet();
        let mut e = Engine::new();
        let cpu_model =
            || FixedRate { per_op: spec.sw_per_message, bytes_per_sec: spec.sw_copy_rate };
        let nic_model = || FixedRate::rate(spec.link_rate);
        let cpu0 = e.add_resource("cpu0", Box::new(cpu_model()));
        let tx0 = e.add_resource("tx0", Box::new(nic_model()));
        let rx1 = e.add_resource("rx1", Box::new(nic_model()));
        let cpu1 = e.add_resource("cpu1", Box::new(cpu_model()));
        let path = NetPath::remote(cpu0, tx0, rx1, cpu1);
        Net { e, spec, path }
    }

    #[test]
    fn small_message_latency_near_base() {
        let mut n = two_nodes();
        let plan = transfer_plan(&n.spec, &n.path, 128);
        n.e.spawn_job("msg", plan);
        let rep = n.e.run().unwrap();
        let t = rep.end.as_secs_f64();
        // Order of the base latency: hundreds of microseconds, < 1 ms.
        assert!(t > 150e-6 && t < 1e-3, "t={t}");
    }

    #[test]
    fn bulk_transfer_pipelines_near_link_rate() {
        let mut n = two_nodes();
        let bytes = 4 << 20; // 4 MB
        let plan = transfer_plan(&n.spec, &n.path, bytes);
        n.e.spawn_job("bulk", plan);
        let rep = n.e.run().unwrap();
        let goodput = bytes as f64 / rep.end.as_secs_f64();
        // Pipelining should reach >85% of the 12.5 MB/s link.
        assert!(goodput > 0.85 * 12.5e6, "goodput={:.2} MB/s", goodput / 1e6);
        // ... but can never exceed it.
        assert!(goodput < 12.5e6);
    }

    #[test]
    fn bulk_transfer_serializes_on_one_wire() {
        // Two concurrent 2 MB transfers over the same tx port take twice as
        // long as one.
        let mut n = two_nodes();
        let one = transfer_plan(&n.spec, &n.path, 2 << 20);
        let two = transfer_plan(&n.spec, &n.path, 2 << 20);
        n.e.spawn_job("a", one);
        n.e.spawn_job("b", two);
        let rep = n.e.run().unwrap();
        let total = rep.end.as_secs_f64();
        assert!(total > 0.3, "expected ~0.34s for 4MB at 12.5MB/s, got {total}");
    }

    #[test]
    fn local_path_costs_only_cpu() {
        let spec = NetSpec::fast_ethernet();
        let mut e = Engine::new();
        let cpu = e.add_resource(
            "cpu",
            Box::new(FixedRate { per_op: spec.sw_per_message, bytes_per_sec: spec.sw_copy_rate }),
        );
        let plan = transfer_plan(&spec, &NetPath::local(cpu), 1 << 20);
        e.spawn_job("local", plan);
        let rep = e.run().unwrap();
        let expect = spec.sw_per_message + SimDuration::for_bytes(1 << 20, spec.sw_copy_rate);
        assert_eq!(rep.end.since(sim_core::SimTime::ZERO), expect);
    }

    #[test]
    fn zero_byte_transfer_is_a_control_message() {
        let mut n = two_nodes();
        let plan = transfer_plan(&n.spec, &n.path, 0);
        n.e.spawn_job("ctl", plan);
        let rep = n.e.run().unwrap();
        assert!(rep.end.as_nanos() > 0);
    }
}
