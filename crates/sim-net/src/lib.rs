#![warn(missing_docs)]
//! # sim-net — cluster interconnect models
//!
//! Models the switched Fast Ethernet of the Trojans cluster: full-duplex
//! per-node NIC ports (independent tx and rx resources), a store-and-forward
//! switch latency, and the late-1990s software protocol cost charged to the
//! host CPUs on both ends. Bulk transfers are segmented so that consecutive
//! segments pipeline through the cpu→tx→rx→cpu stages, matching how TCP
//! streams behave on a switched LAN.
//!
//! The network matters enormously to the paper's results: a 100 Mbps port
//! moves only 12.5 MB/s, so NFS saturates at its single server port while the
//! distributed RAIDs aggregate one port per node.

pub mod partition;
pub mod path;
pub mod spec;

pub use partition::PartitionMap;
pub use path::{transfer_plan, NetPath};
pub use spec::NetSpec;
