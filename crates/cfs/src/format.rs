//! On-disk structures of the cluster file system.
//!
//! Deliberately small and 1990s-shaped: a superblock, a fixed inode table,
//! extent-based files and flat directories of fixed-size entries. Every
//! structure really serializes to bytes — metadata corruption would be
//! caught by the integrity tests, exactly like data corruption.

/// Magic number identifying a formatted volume.
pub const MAGIC: u64 = 0x5241_4944_5846_5321; // "RAIDXFS!"

/// Bytes per inode slot in the table.
pub const INODE_SIZE: usize = 256;

/// Maximum extents per inode.
pub const MAX_EXTENTS: usize = 12;

/// Bytes per directory entry.
pub const DIRENT_SIZE: usize = 64;

/// Maximum file-name bytes per entry.
pub const MAX_NAME: usize = 54;

/// What an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeKind {
    /// Unallocated slot.
    Free,
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

impl InodeKind {
    fn to_byte(self) -> u8 {
        match self {
            InodeKind::Free => 0,
            InodeKind::File => 1,
            InodeKind::Dir => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(InodeKind::Free),
            1 => Some(InodeKind::File),
            2 => Some(InodeKind::Dir),
            _ => None,
        }
    }
}

/// A contiguous run of logical blocks backing part of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Extent {
    /// First logical block.
    pub start: u64,
    /// Number of blocks (0 = unused slot).
    pub len: u64,
}

/// An inode: type, byte size and up to [`MAX_EXTENTS`] extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// File or directory (or free).
    pub kind: InodeKind,
    /// Logical size in bytes.
    pub size: u64,
    /// Backing extents, in file order.
    pub extents: [Extent; MAX_EXTENTS],
}

impl Inode {
    /// An unallocated inode.
    pub fn free() -> Self {
        Inode { kind: InodeKind::Free, size: 0, extents: [Extent::default(); MAX_EXTENTS] }
    }

    /// A fresh empty inode of `kind`.
    pub fn empty(kind: InodeKind) -> Self {
        Inode { kind, size: 0, extents: [Extent::default(); MAX_EXTENTS] }
    }

    /// Total blocks across extents.
    pub fn blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Serialize into an [`INODE_SIZE`] region.
    pub fn encode(&self, out: &mut [u8]) {
        assert!(out.len() >= INODE_SIZE);
        out[..INODE_SIZE].fill(0);
        out[0] = self.kind.to_byte();
        out[8..16].copy_from_slice(&self.size.to_le_bytes());
        for (i, e) in self.extents.iter().enumerate() {
            let off = 16 + i * 16;
            out[off..off + 8].copy_from_slice(&e.start.to_le_bytes());
            out[off + 8..off + 16].copy_from_slice(&e.len.to_le_bytes());
        }
    }

    /// Deserialize from an [`INODE_SIZE`] region.
    pub fn decode(raw: &[u8]) -> Option<Self> {
        let kind = InodeKind::from_byte(raw[0])?;
        let size = u64::from_le_bytes(raw[8..16].try_into().ok()?);
        let mut extents = [Extent::default(); MAX_EXTENTS];
        for (i, e) in extents.iter_mut().enumerate() {
            let off = 16 + i * 16;
            e.start = u64::from_le_bytes(raw[off..off + 8].try_into().ok()?);
            e.len = u64::from_le_bytes(raw[off + 8..off + 16].try_into().ok()?);
        }
        Some(Inode { kind, size, extents })
    }
}

/// A directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (≤ [`MAX_NAME`] bytes).
    pub name: String,
    /// Target inode number.
    pub inode: u32,
    /// Target kind (cached for scan efficiency, like ext2's file_type).
    pub kind: InodeKind,
}

impl DirEntry {
    /// Serialize into a [`DIRENT_SIZE`] region.
    pub fn encode(&self, out: &mut [u8]) {
        assert!(out.len() >= DIRENT_SIZE);
        assert!(self.name.len() <= MAX_NAME, "name too long");
        out[..DIRENT_SIZE].fill(0);
        out[0] = self.name.len() as u8;
        out[1] = self.kind.to_byte();
        out[2..6].copy_from_slice(&self.inode.to_le_bytes());
        out[8..8 + self.name.len()].copy_from_slice(self.name.as_bytes());
    }

    /// Deserialize; `None` for an empty slot.
    pub fn decode(raw: &[u8]) -> Option<Self> {
        let len = raw[0] as usize;
        if len == 0 || len > MAX_NAME {
            return None;
        }
        let kind = InodeKind::from_byte(raw[1])?;
        let inode = u32::from_le_bytes(raw[2..6].try_into().ok()?);
        let name = std::str::from_utf8(&raw[8..8 + len]).ok()?.to_string();
        Some(DirEntry { name, inode, kind })
    }
}

/// Volume geometry, stored in block 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperBlock {
    /// Must equal [`MAGIC`].
    pub magic: u64,
    /// Number of inode slots.
    pub n_inodes: u32,
    /// First block of the inode table.
    pub itable_start: u64,
    /// First block of the data area.
    pub data_start: u64,
}

impl SuperBlock {
    /// Serialize into a block-sized buffer.
    pub fn encode(&self, out: &mut [u8]) {
        out.fill(0);
        out[0..8].copy_from_slice(&self.magic.to_le_bytes());
        out[8..12].copy_from_slice(&self.n_inodes.to_le_bytes());
        out[16..24].copy_from_slice(&self.itable_start.to_le_bytes());
        out[24..32].copy_from_slice(&self.data_start.to_le_bytes());
    }

    /// Deserialize, checking the magic.
    pub fn decode(raw: &[u8]) -> Option<Self> {
        let magic = u64::from_le_bytes(raw[0..8].try_into().ok()?);
        if magic != MAGIC {
            return None;
        }
        Some(SuperBlock {
            magic,
            n_inodes: u32::from_le_bytes(raw[8..12].try_into().ok()?),
            itable_start: u64::from_le_bytes(raw[16..24].try_into().ok()?),
            data_start: u64::from_le_bytes(raw[24..32].try_into().ok()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inode_roundtrip() {
        let mut ino = Inode::empty(InodeKind::File);
        ino.size = 123_456;
        ino.extents[0] = Extent { start: 77, len: 4 };
        ino.extents[3] = Extent { start: 1000, len: 1 };
        let mut buf = [0u8; INODE_SIZE];
        ino.encode(&mut buf);
        assert_eq!(Inode::decode(&buf).unwrap(), ino);
        assert_eq!(ino.blocks(), 5);
    }

    #[test]
    fn free_inode_roundtrip() {
        let mut buf = [0u8; INODE_SIZE];
        Inode::free().encode(&mut buf);
        assert_eq!(Inode::decode(&buf).unwrap().kind, InodeKind::Free);
    }

    #[test]
    fn dirent_roundtrip() {
        let e = DirEntry { name: "Makefile".into(), inode: 42, kind: InodeKind::File };
        let mut buf = [0u8; DIRENT_SIZE];
        e.encode(&mut buf);
        assert_eq!(DirEntry::decode(&buf).unwrap(), e);
    }

    #[test]
    fn empty_dirent_is_none() {
        assert!(DirEntry::decode(&[0u8; DIRENT_SIZE]).is_none());
    }

    #[test]
    fn superblock_roundtrip_and_magic_check() {
        let sb = SuperBlock { magic: MAGIC, n_inodes: 2048, itable_start: 1, data_start: 17 };
        let mut buf = vec![0u8; 4096];
        sb.encode(&mut buf);
        assert_eq!(SuperBlock::decode(&buf).unwrap(), sb);
        buf[0] ^= 0xFF;
        assert!(SuperBlock::decode(&buf).is_none());
    }

    #[test]
    #[should_panic(expected = "name too long")]
    fn oversized_name_rejected() {
        let e = DirEntry { name: "x".repeat(60), inode: 1, kind: InodeKind::File };
        e.encode(&mut [0u8; DIRENT_SIZE]);
    }
}
