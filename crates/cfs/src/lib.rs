#![warn(missing_docs)]
//! # cfs — a minimal cluster file system over the single I/O space
//!
//! The substrate for the Andrew benchmark (the paper's Figure 6): a small
//! extent-based file system — superblock, fixed inode table, flat
//! directories — that runs unchanged over any [`cdd::BlockStore`]: the
//! serverless CDD array with any RAID layout, or the centralized NFS
//! baseline. All metadata really serializes to blocks, so the same
//! integrity guarantees that protect file data protect the file system
//! itself through disk failures and rebuilds.

pub mod format;
pub mod fs;

pub use format::{DirEntry, Extent, Inode, InodeKind, SuperBlock};
pub use fs::{Fs, FsError, ROOT_INO};
