//! File-system operations over any [`BlockStore`].
//!
//! Every operation is executed functionally (metadata and data really
//! serialize to blocks of the store) and returns a [`Plan`] with its
//! simulated cost. Metadata blocks are cached per client with
//! write-invalidate semantics — the same discipline the CDD consistency
//! module enforces — while file data always hits the array (the paper's
//! benchmarks run on uncached files).

use std::collections::{HashMap, HashSet};

use cdd::{BlockStore, IoError};
use sim_core::plan::{delay, seq};
use sim_core::{Plan, SimDuration};

use crate::format::{
    DirEntry, Extent, Inode, InodeKind, SuperBlock, DIRENT_SIZE, INODE_SIZE, MAGIC, MAX_NAME,
};

/// File-system errors.
#[derive(Debug)]
pub enum FsError {
    /// Underlying block store failed.
    Io(IoError),
    /// Path component missing.
    NotFound(String),
    /// Creating something that already exists.
    Exists(String),
    /// Path component is not a directory.
    NotDir(String),
    /// Operation needs a file but found a directory.
    IsDir(String),
    /// Data area exhausted.
    NoSpace,
    /// Inode table exhausted.
    NoInodes,
    /// File needs more than [`crate::format::MAX_EXTENTS`] extents.
    TooManyExtents,
    /// Name empty or longer than [`MAX_NAME`].
    InvalidName(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Io(e) => write!(f, "I/O error: {e}"),
            FsError::NotFound(p) => write!(f, "not found: {p}"),
            FsError::Exists(p) => write!(f, "already exists: {p}"),
            FsError::NotDir(p) => write!(f, "not a directory: {p}"),
            FsError::IsDir(p) => write!(f, "is a directory: {p}"),
            FsError::NoSpace => write!(f, "out of space"),
            FsError::NoInodes => write!(f, "out of inodes"),
            FsError::TooManyExtents => write!(f, "file too fragmented"),
            FsError::InvalidName(n) => write!(f, "invalid name: {n:?}"),
        }
    }
}
impl std::error::Error for FsError {}

impl From<IoError> for FsError {
    fn from(e: IoError) -> Self {
        FsError::Io(e)
    }
}

/// Simulated cost of serving a metadata block from the node's buffer
/// cache instead of the array.
const CACHE_HIT_COST: SimDuration = SimDuration::from_micros(4);

/// The root directory's inode number.
pub const ROOT_INO: u32 = 0;

/// A mounted cluster file system.
pub struct Fs<S: BlockStore> {
    store: S,
    sb: SuperBlock,
    inode_used: Vec<bool>,
    /// Bump allocator over the data area plus a free list from unlinks.
    alloc_next: u64,
    free_extents: Vec<Extent>,
    /// Per-block set of clients holding it in their metadata cache.
    cache: HashMap<u64, HashSet<usize>>,
    cache_hits: u64,
    cache_misses: u64,
}

impl<S: BlockStore> Fs<S> {
    /// Format `store` with `n_inodes` inode slots and mount it. Returns
    /// the mounted fs and the plan of the format I/O.
    pub fn format(mut store: S, n_inodes: u32, client: usize) -> Result<(Self, Plan), FsError> {
        let bs = store.block_size() as usize;
        assert!(bs >= 512, "block size too small for the fs format");
        let inodes_per_block = (bs / INODE_SIZE) as u64;
        let itable_blocks = (n_inodes as u64).div_ceil(inodes_per_block);
        let sb =
            SuperBlock { magic: MAGIC, n_inodes, itable_start: 1, data_start: 1 + itable_blocks };
        assert!(sb.data_start < store.capacity_blocks(), "volume too small");

        let mut plans = Vec::new();
        let mut buf = vec![0u8; bs];
        sb.encode(&mut buf);
        plans.push(store.write(client, 0, &buf)?);
        // Zero the inode table, installing the root directory in slot 0.
        let zero = vec![0u8; bs];
        for b in 0..itable_blocks {
            if b == 0 {
                let mut first = zero.clone();
                Inode::empty(InodeKind::Dir).encode(&mut first[..INODE_SIZE]);
                plans.push(store.write(client, sb.itable_start + b, &first)?);
            } else {
                plans.push(store.write(client, sb.itable_start + b, &zero)?);
            }
        }
        let mut inode_used = vec![false; n_inodes as usize];
        inode_used[ROOT_INO as usize] = true;
        let alloc_next = sb.data_start;
        let fs = Fs {
            store,
            sb,
            inode_used,
            alloc_next,
            free_extents: Vec::new(),
            cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        };
        Ok((fs, seq(plans)))
    }

    /// Mount an already formatted store (reads the superblock).
    pub fn mount(mut store: S, client: usize) -> Result<(Self, Plan), FsError> {
        let (raw, p0) = store.read(client, 0, 1)?;
        let sb = SuperBlock::decode(&raw).ok_or(FsError::NotFound("superblock".into()))?;
        // Recover the inode bitmap and allocation frontier by scanning the
        // table (small: tens of blocks).
        let bs = store.block_size() as usize;
        let ipb = bs / INODE_SIZE;
        let itable_blocks = (sb.n_inodes as u64).div_ceil(ipb as u64);
        let mut inode_used = vec![false; sb.n_inodes as usize];
        let mut alloc_next = sb.data_start;
        let mut plans = vec![p0];
        for b in 0..itable_blocks {
            let (raw, p) = store.read(client, sb.itable_start + b, 1)?;
            plans.push(p);
            for i in 0..ipb {
                let ino = b as usize * ipb + i;
                if ino >= sb.n_inodes as usize {
                    break;
                }
                if let Some(inode) = Inode::decode(&raw[i * INODE_SIZE..(i + 1) * INODE_SIZE]) {
                    if inode.kind != InodeKind::Free {
                        inode_used[ino] = true;
                        for e in inode.extents.iter().filter(|e| e.len > 0) {
                            alloc_next = alloc_next.max(e.start + e.len);
                        }
                    }
                }
            }
        }
        let fs = Fs {
            store,
            sb,
            inode_used,
            alloc_next,
            free_extents: Vec::new(),
            cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        };
        Ok((fs, seq(plans)))
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the underlying store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Unmount, returning the underlying store (for remount tests and
    /// reconfiguration).
    pub fn into_store(self) -> S {
        self.store
    }

    /// `(hits, misses)` of the metadata cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    fn bs(&self) -> usize {
        self.store.block_size() as usize
    }

    // ---- block layer with per-client metadata caching ----

    fn read_meta(&mut self, client: usize, lb: u64) -> Result<(Vec<u8>, Plan), FsError> {
        let cached = self.store.caches_metadata()
            && self.cache.get(&lb).is_some_and(|s| s.contains(&client));
        let (bytes, plan) = self.store.read(client, lb, 1)?;
        if cached {
            self.cache_hits += 1;
            Ok((bytes, delay(CACHE_HIT_COST)))
        } else {
            self.cache_misses += 1;
            self.cache.entry(lb).or_default().insert(client);
            Ok((bytes, plan))
        }
    }

    fn write_meta(&mut self, client: usize, lb: u64, data: &[u8]) -> Result<Plan, FsError> {
        // Write-invalidate: peers drop their copies; the writer keeps its
        // own fresh copy.
        let mut mine = HashSet::new();
        mine.insert(client);
        self.cache.insert(lb, mine);
        Ok(self.store.write(client, lb, data)?)
    }

    // ---- inode layer ----

    fn inode_pos(&self, ino: u32) -> (u64, usize) {
        let ipb = self.bs() / INODE_SIZE;
        (self.sb.itable_start + (ino as usize / ipb) as u64, (ino as usize % ipb) * INODE_SIZE)
    }

    fn read_inode(&mut self, client: usize, ino: u32) -> Result<(Inode, Plan), FsError> {
        let (lb, off) = self.inode_pos(ino);
        let (raw, plan) = self.read_meta(client, lb)?;
        let inode = Inode::decode(&raw[off..off + INODE_SIZE])
            .ok_or_else(|| FsError::NotFound(format!("inode {ino}")))?;
        Ok((inode, plan))
    }

    fn write_inode(&mut self, client: usize, ino: u32, inode: &Inode) -> Result<Plan, FsError> {
        let (lb, off) = self.inode_pos(ino);
        let (mut raw, rp) = self.read_meta(client, lb)?;
        inode.encode(&mut raw[off..off + INODE_SIZE]);
        let wp = self.write_meta(client, lb, &raw)?;
        Ok(seq(vec![rp, wp]))
    }

    fn alloc_inode(&mut self) -> Result<u32, FsError> {
        for (i, used) in self.inode_used.iter_mut().enumerate() {
            if !*used {
                *used = true;
                return Ok(i as u32);
            }
        }
        Err(FsError::NoInodes)
    }

    // ---- extent allocator ----

    fn alloc_blocks(&mut self, n: u64) -> Result<Extent, FsError> {
        if n == 0 {
            return Ok(Extent::default());
        }
        // Exact-fit from the free list first.
        if let Some(pos) = self.free_extents.iter().position(|e| e.len >= n) {
            let e = self.free_extents[pos];
            if e.len == n {
                self.free_extents.swap_remove(pos);
                return Ok(e);
            }
            self.free_extents[pos] = Extent { start: e.start + n, len: e.len - n };
            return Ok(Extent { start: e.start, len: n });
        }
        let cap = self.store.capacity_blocks();
        if self.alloc_next + n > cap {
            return Err(FsError::NoSpace);
        }
        let e = Extent { start: self.alloc_next, len: n };
        self.alloc_next += n;
        Ok(e)
    }

    fn free_blocks(&mut self, e: Extent) {
        if e.len > 0 {
            self.free_extents.push(e);
        }
    }

    // ---- directories ----

    fn dir_blocks(&self, inode: &Inode) -> Vec<u64> {
        inode.extents.iter().filter(|e| e.len > 0).flat_map(|e| e.start..e.start + e.len).collect()
    }

    fn dir_entries(
        &mut self,
        client: usize,
        inode: &Inode,
    ) -> Result<(Vec<DirEntry>, Plan), FsError> {
        let blocks: Vec<u64> = self.dir_blocks(inode);
        let mut entries = Vec::new();
        let mut plans = Vec::new();
        let per = self.bs() / DIRENT_SIZE;
        for lb in blocks {
            let (raw, p) = self.read_meta(client, lb)?;
            plans.push(p);
            for i in 0..per {
                if let Some(e) = DirEntry::decode(&raw[i * DIRENT_SIZE..(i + 1) * DIRENT_SIZE]) {
                    entries.push(e);
                }
            }
        }
        Ok((entries, seq(plans)))
    }

    fn dir_find(
        &mut self,
        client: usize,
        inode: &Inode,
        name: &str,
    ) -> Result<(Option<DirEntry>, Plan), FsError> {
        let (entries, plan) = self.dir_entries(client, inode)?;
        Ok((entries.into_iter().find(|e| e.name == name), plan))
    }

    fn dir_add(
        &mut self,
        client: usize,
        dir_ino: u32,
        dir: &mut Inode,
        entry: &DirEntry,
    ) -> Result<Plan, FsError> {
        let per = self.bs() / DIRENT_SIZE;
        let blocks: Vec<u64> = self.dir_blocks(dir);
        let mut plans = Vec::new();
        // Find a free slot in existing blocks.
        for lb in blocks {
            let (mut raw, rp) = self.read_meta(client, lb)?;
            for i in 0..per {
                let slot = &mut raw[i * DIRENT_SIZE..(i + 1) * DIRENT_SIZE];
                if DirEntry::decode(slot).is_none() {
                    entry.encode(slot);
                    let wp = self.write_meta(client, lb, &raw)?;
                    dir.size += DIRENT_SIZE as u64;
                    plans.push(rp);
                    plans.push(wp);
                    plans.push(self.write_inode(client, dir_ino, dir)?);
                    return Ok(seq(plans));
                }
            }
            plans.push(rp);
        }
        // Grow the directory by one block.
        let ext = self.alloc_blocks(1)?;
        let slot = dir.extents.iter_mut().find(|e| e.len == 0).ok_or(FsError::TooManyExtents)?;
        *slot = ext;
        let mut raw = vec![0u8; self.bs()];
        entry.encode(&mut raw[..DIRENT_SIZE]);
        dir.size += DIRENT_SIZE as u64;
        plans.push(self.write_meta(client, ext.start, &raw)?);
        plans.push(self.write_inode(client, dir_ino, dir)?);
        Ok(seq(plans))
    }

    fn dir_remove(
        &mut self,
        client: usize,
        inode: &Inode,
        name: &str,
    ) -> Result<(Option<DirEntry>, Plan), FsError> {
        let per = self.bs() / DIRENT_SIZE;
        let blocks: Vec<u64> = self.dir_blocks(inode);
        let mut plans = Vec::new();
        for lb in blocks {
            let (mut raw, rp) = self.read_meta(client, lb)?;
            plans.push(rp);
            for i in 0..per {
                let slot = &mut raw[i * DIRENT_SIZE..(i + 1) * DIRENT_SIZE];
                if let Some(e) = DirEntry::decode(slot) {
                    if e.name == name {
                        slot.fill(0);
                        plans.push(self.write_meta(client, lb, &raw)?);
                        return Ok((Some(e), seq(plans)));
                    }
                }
            }
        }
        Ok((None, seq(plans)))
    }

    // ---- path resolution ----

    fn split_path(path: &str) -> Result<Vec<&str>, FsError> {
        if !path.starts_with('/') {
            return Err(FsError::InvalidName(path.to_string()));
        }
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        for p in &parts {
            if p.len() > MAX_NAME {
                return Err(FsError::InvalidName((*p).to_string()));
            }
        }
        Ok(parts)
    }

    fn resolve(&mut self, client: usize, path: &str) -> Result<(u32, Inode, Plan), FsError> {
        let parts = Self::split_path(path)?;
        let mut ino = ROOT_INO;
        let (mut inode, mut plan_acc) = self.read_inode(client, ino)?;
        let mut plans = vec![std::mem::replace(&mut plan_acc, Plan::Noop)];
        for part in parts {
            if inode.kind != InodeKind::Dir {
                return Err(FsError::NotDir(path.to_string()));
            }
            let (hit, p) = self.dir_find(client, &inode, part)?;
            plans.push(p);
            let entry = hit.ok_or_else(|| FsError::NotFound(path.to_string()))?;
            ino = entry.inode;
            let (next, p) = self.read_inode(client, ino)?;
            plans.push(p);
            inode = next;
        }
        Ok((ino, inode, seq(plans)))
    }

    /// Resolve the parent directory of `path`, returning
    /// `(parent ino, parent inode, leaf name, plan)`.
    fn resolve_parent<'p>(
        &mut self,
        client: usize,
        path: &'p str,
    ) -> Result<(u32, Inode, &'p str, Plan), FsError> {
        let parts = Self::split_path(path)?;
        let leaf = *parts.last().ok_or_else(|| FsError::InvalidName(path.to_string()))?;
        let parent_path = if parts.len() == 1 {
            "/".to_string()
        } else {
            format!("/{}", parts[..parts.len() - 1].join("/"))
        };
        let (ino, inode, plan) = self.resolve(client, &parent_path)?;
        if inode.kind != InodeKind::Dir {
            return Err(FsError::NotDir(parent_path));
        }
        Ok((ino, inode, leaf, plan))
    }

    // ---- public operations ----

    /// Create a directory.
    pub fn mkdir(&mut self, client: usize, path: &str) -> Result<Plan, FsError> {
        let (pino, mut parent, leaf, p0) = self.resolve_parent(client, path)?;
        let (existing, p1) = self.dir_find(client, &parent, leaf)?;
        if existing.is_some() {
            return Err(FsError::Exists(path.to_string()));
        }
        let ino = self.alloc_inode()?;
        let inode = Inode::empty(InodeKind::Dir);
        let p2 = self.write_inode(client, ino, &inode)?;
        let entry = DirEntry { name: leaf.to_string(), inode: ino, kind: InodeKind::Dir };
        let p3 = self.dir_add(client, pino, &mut parent, &entry)?;
        Ok(seq(vec![p0, p1, p2, p3]))
    }

    /// Create an empty file.
    pub fn create(&mut self, client: usize, path: &str) -> Result<Plan, FsError> {
        let (pino, mut parent, leaf, p0) = self.resolve_parent(client, path)?;
        let (existing, p1) = self.dir_find(client, &parent, leaf)?;
        if existing.is_some() {
            return Err(FsError::Exists(path.to_string()));
        }
        let ino = self.alloc_inode()?;
        let inode = Inode::empty(InodeKind::File);
        let p2 = self.write_inode(client, ino, &inode)?;
        let entry = DirEntry { name: leaf.to_string(), inode: ino, kind: InodeKind::File };
        let p3 = self.dir_add(client, pino, &mut parent, &entry)?;
        Ok(seq(vec![p0, p1, p2, p3]))
    }

    /// Replace a file's contents (creating it if missing).
    pub fn write_file(&mut self, client: usize, path: &str, data: &[u8]) -> Result<Plan, FsError> {
        let mut plans = Vec::new();
        let ino = match self.resolve(client, path) {
            Ok((ino, inode, p)) => {
                if inode.kind != InodeKind::File {
                    return Err(FsError::IsDir(path.to_string()));
                }
                plans.push(p);
                // Free old extents (truncate).
                for e in inode.extents.iter().filter(|e| e.len > 0) {
                    self.free_blocks(*e);
                }
                ino
            }
            Err(FsError::NotFound(_)) => {
                plans.push(self.create(client, path)?);
                let (ino, _, p) = self.resolve(client, path)?;
                plans.push(p);
                ino
            }
            Err(e) => return Err(e),
        };
        let bs = self.bs();
        let nblocks = (data.len() as u64).div_ceil(bs as u64);
        let mut inode = Inode::empty(InodeKind::File);
        inode.size = data.len() as u64;
        if nblocks > 0 {
            let ext = self.alloc_blocks(nblocks)?;
            inode.extents[0] = ext;
            let mut padded = vec![0u8; (nblocks as usize) * bs];
            padded[..data.len()].copy_from_slice(data);
            plans.push(self.store.write(client, ext.start, &padded)?);
        }
        plans.push(self.write_inode(client, ino, &inode)?);
        Ok(seq(plans))
    }

    /// Read a whole file.
    pub fn read_file(&mut self, client: usize, path: &str) -> Result<(Vec<u8>, Plan), FsError> {
        let (_, inode, p0) = self.resolve(client, path)?;
        if inode.kind != InodeKind::File {
            return Err(FsError::IsDir(path.to_string()));
        }
        let mut plans = vec![p0];
        let mut out = Vec::with_capacity(inode.size as usize);
        for e in inode.extents.iter().filter(|e| e.len > 0) {
            let (bytes, p) = self.store.read(client, e.start, e.len)?;
            plans.push(p);
            out.extend_from_slice(&bytes);
        }
        out.truncate(inode.size as usize);
        Ok((out, seq(plans)))
    }

    /// List a directory.
    pub fn readdir(&mut self, client: usize, path: &str) -> Result<(Vec<DirEntry>, Plan), FsError> {
        let (_, inode, p0) = self.resolve(client, path)?;
        if inode.kind != InodeKind::Dir {
            return Err(FsError::NotDir(path.to_string()));
        }
        let (entries, p1) = self.dir_entries(client, &inode)?;
        Ok((entries, seq(vec![p0, p1])))
    }

    /// Stat a path.
    pub fn stat(&mut self, client: usize, path: &str) -> Result<(Inode, Plan), FsError> {
        let (_, inode, p) = self.resolve(client, path)?;
        Ok((inode, p))
    }

    /// Remove a file (directories must be empty are not checked — the
    /// Andrew workload only unlinks files).
    pub fn unlink(&mut self, client: usize, path: &str) -> Result<Plan, FsError> {
        let (_pino, parent, leaf, p0) = self.resolve_parent(client, path)?;
        let (removed, p1) = self.dir_remove(client, &parent, leaf)?;
        let entry = removed.ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let (inode, p2) = self.read_inode(client, entry.inode)?;
        for e in inode.extents.iter().filter(|e| e.len > 0) {
            self.free_blocks(*e);
        }
        let p3 = self.write_inode(client, entry.inode, &Inode::free())?;
        self.inode_used[entry.inode as usize] = false;
        Ok(seq(vec![p0, p1, p2, p3]))
    }

    /// Append `data` to a file (creating it if missing). The tail block
    /// is read-modified-written; whole new blocks extend the last extent
    /// when physically possible, else start a new one.
    pub fn append(&mut self, client: usize, path: &str, data: &[u8]) -> Result<Plan, FsError> {
        if data.is_empty() {
            return Ok(Plan::Noop);
        }
        let bs = self.bs();
        let mut plans = Vec::new();
        let (ino, mut inode) = match self.resolve(client, path) {
            Ok((ino, inode, p)) => {
                if inode.kind != InodeKind::File {
                    return Err(FsError::IsDir(path.to_string()));
                }
                plans.push(p);
                (ino, inode)
            }
            Err(FsError::NotFound(_)) => {
                plans.push(self.create(client, path)?);
                let (ino, inode, p) = self.resolve(client, path)?;
                plans.push(p);
                (ino, inode)
            }
            Err(e) => return Err(e),
        };

        let old_size = inode.size as usize;
        let mut remaining = data;
        // 1. Fill the partial tail block, if any.
        let tail = old_size % bs;
        if tail != 0 {
            let last_block = block_at(&inode, (old_size / bs) as u64).expect("tail exists");
            let (mut raw, rp) = {
                let (bytes, p) = self.store.read(client, last_block, 1)?;
                (bytes, p)
            };
            let take = remaining.len().min(bs - tail);
            raw[tail..tail + take].copy_from_slice(&remaining[..take]);
            let wp = self.store.write(client, last_block, &raw)?;
            plans.push(seq(vec![rp, wp]));
            remaining = &remaining[take..];
        }
        // 2. Allocate and write whole new blocks.
        if !remaining.is_empty() {
            let nblocks = (remaining.len() as u64).div_ceil(bs as u64);
            let ext = self.alloc_blocks(nblocks)?;
            // Merge with the last extent when physically adjacent.
            let merged = inode
                .extents
                .iter_mut()
                .rev()
                .find(|e| e.len > 0)
                .filter(|e| e.start + e.len == ext.start)
                .map(|e| e.len += ext.len)
                .is_some();
            if !merged {
                let slot =
                    inode.extents.iter_mut().find(|e| e.len == 0).ok_or(FsError::TooManyExtents)?;
                *slot = ext;
            }
            let mut padded = vec![0u8; (nblocks as usize) * bs];
            padded[..remaining.len()].copy_from_slice(remaining);
            plans.push(self.store.write(client, ext.start, &padded)?);
        }
        inode.size = (old_size + data.len()) as u64;
        plans.push(self.write_inode(client, ino, &inode)?);
        Ok(seq(plans))
    }

    /// Rename a file or directory within the tree (POSIX-style: replaces
    /// nothing — the destination must not exist).
    pub fn rename(&mut self, client: usize, from: &str, to: &str) -> Result<Plan, FsError> {
        let (_, from_parent, from_leaf, p0) = self.resolve_parent(client, from)?;
        let (removed_probe, p1) = self.dir_find(client, &from_parent, from_leaf)?;
        let entry = removed_probe.ok_or_else(|| FsError::NotFound(from.to_string()))?;
        let (to_pino, mut to_parent, to_leaf, p2) = self.resolve_parent(client, to)?;
        let (existing, p3) = self.dir_find(client, &to_parent, to_leaf)?;
        if existing.is_some() {
            return Err(FsError::Exists(to.to_string()));
        }
        // Remove the old entry, then insert the new one. The destination
        // parent inode is re-read afterwards in case both paths share a
        // directory whose blocks just changed.
        let (removed, p4) = self.dir_remove(client, &from_parent, from_leaf)?;
        debug_assert!(removed.is_some());
        let to_parts: Vec<&str> = to.split('/').filter(|p| !p.is_empty()).collect();
        let to_parent_path = if to_parts.len() <= 1 {
            "/".to_string()
        } else {
            format!("/{}", to_parts[..to_parts.len() - 1].join("/"))
        };
        let (pino_fresh, parent_fresh, p5) = self.resolve(client, &to_parent_path)?;
        to_parent = parent_fresh;
        let new_entry =
            DirEntry { name: to_leaf.to_string(), inode: entry.inode, kind: entry.kind };
        let p6 = self.dir_add(client, pino_fresh, &mut to_parent, &new_entry)?;
        let _ = to_pino;
        Ok(seq(vec![p0, p1, p2, p3, p4, p5, p6]))
    }
}

/// Physical block holding logical file block `idx` of `inode`.
fn block_at(inode: &Inode, idx: u64) -> Option<u64> {
    let mut remaining = idx;
    for e in inode.extents.iter().filter(|e| e.len > 0) {
        if remaining < e.len {
            return Some(e.start + remaining);
        }
        remaining -= e.len;
    }
    None
}
