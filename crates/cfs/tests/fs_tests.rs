//! Functional tests of the cluster file system over real block stores.

use cdd::{BlockStore, IoSystem};
use cfs::{Fs, FsError, InodeKind};
use cluster::ClusterConfig;
use nfs_sim::{NfsConfig, NfsSystem};
use raidx_core::Arch;
use sim_core::Engine;

fn raidx_store() -> (Engine, IoSystem) {
    cdd::testkit::shape(4, 1, 64 << 20, Arch::RaidX)
}

fn make_fs() -> (Engine, Fs<IoSystem>) {
    let (e, s) = raidx_store();
    let (fs, _plan) = Fs::format(s, 512, 0).expect("format failed");
    (e, fs)
}

#[test]
fn format_and_stat_root() {
    let (_e, mut fs) = make_fs();
    let (root, _) = fs.stat(0, "/").unwrap();
    assert_eq!(root.kind, InodeKind::Dir);
}

#[test]
fn mkdir_create_readdir() {
    let (_e, mut fs) = make_fs();
    fs.mkdir(0, "/src").unwrap();
    fs.mkdir(0, "/src/lib").unwrap();
    fs.create(0, "/src/main.rs").unwrap();
    fs.create(0, "/src/lib/util.rs").unwrap();
    let (entries, _) = fs.readdir(0, "/src").unwrap();
    let mut names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
    names.sort();
    assert_eq!(names, vec!["lib", "main.rs"]);
    let lib = entries.iter().find(|e| e.name == "lib").unwrap();
    assert_eq!(lib.kind, InodeKind::Dir);
}

#[test]
fn file_roundtrip_and_sizes() {
    let (_e, mut fs) = make_fs();
    fs.mkdir(0, "/data").unwrap();
    // Sizes exercising zero, sub-block, exact-block and multi-block files.
    let bs = fs.store().block_size() as usize;
    for (i, size) in [0usize, 10, 1000, bs, bs + 1, 3 * bs + 17].into_iter().enumerate() {
        let path = format!("/data/f{i}");
        let data: Vec<u8> = (0..size).map(|j| ((i * 31 + j * 7) % 256) as u8).collect();
        fs.write_file(0, &path, &data).unwrap();
        let (got, _) = fs.read_file(0, &path).unwrap();
        assert_eq!(got, data, "size {size} corrupted");
        let (st, _) = fs.stat(0, &path).unwrap();
        assert_eq!(st.size, size as u64);
    }
}

#[test]
fn overwrite_replaces_content() {
    let (_e, mut fs) = make_fs();
    fs.write_file(0, "/f", b"first version, long enough to span").unwrap();
    fs.write_file(0, "/f", b"v2").unwrap();
    let (got, _) = fs.read_file(0, "/f").unwrap();
    assert_eq!(got, b"v2");
}

#[test]
fn unlink_removes_and_frees() {
    let (_e, mut fs) = make_fs();
    let bs = fs.store().block_size() as usize;
    fs.write_file(0, "/big", &vec![9u8; 4 * bs]).unwrap();
    fs.unlink(0, "/big").unwrap();
    assert!(matches!(fs.read_file(0, "/big"), Err(FsError::NotFound(_))));
    // Freed blocks are reused: writing the same amount again succeeds and
    // readdir shows only the new file.
    fs.write_file(0, "/big2", &vec![8u8; 4 * bs]).unwrap();
    let (entries, _) = fs.readdir(0, "/").unwrap();
    assert_eq!(entries.len(), 1);
}

#[test]
fn errors_are_specific() {
    let (_e, mut fs) = make_fs();
    fs.mkdir(0, "/d").unwrap();
    fs.create(0, "/d/f").unwrap();
    assert!(matches!(fs.mkdir(0, "/d"), Err(FsError::Exists(_))));
    assert!(matches!(fs.create(0, "/d/f"), Err(FsError::Exists(_))));
    assert!(matches!(fs.read_file(0, "/nope"), Err(FsError::NotFound(_))));
    assert!(matches!(fs.read_file(0, "/d"), Err(FsError::IsDir(_))));
    assert!(matches!(fs.readdir(0, "/d/f"), Err(FsError::NotDir(_))));
    assert!(matches!(fs.mkdir(0, "relative"), Err(FsError::InvalidName(_))));
    let long = format!("/{}", "x".repeat(100));
    assert!(matches!(fs.create(0, &long), Err(FsError::InvalidName(_))));
}

#[test]
fn plans_execute_on_engine() {
    let (mut e, s) = raidx_store();
    let (mut fs, fmt_plan) = Fs::format(s, 512, 0).unwrap();
    let p1 = fs.mkdir(0, "/w").unwrap();
    let p2 = fs.write_file(1, "/w/file", &vec![1u8; 100_000]).unwrap();
    let (_, p3) = fs.read_file(2, "/w/file").unwrap();
    e.spawn_job("fmt", fmt_plan);
    e.spawn_job("mkdir", p1);
    e.spawn_job("write", p2);
    e.spawn_job("read", p3);
    let rep = e.run().unwrap();
    assert!(rep.end.as_secs_f64() > 0.0);
}

#[test]
fn metadata_cache_hits_on_repeat_resolution() {
    let (_e, mut fs) = make_fs();
    fs.mkdir(0, "/proj").unwrap();
    for i in 0..10 {
        fs.create(0, &format!("/proj/f{i}")).unwrap();
    }
    let (h0, _) = fs.cache_stats();
    for i in 0..10 {
        fs.stat(0, &format!("/proj/f{i}")).unwrap();
    }
    let (h1, _) = fs.cache_stats();
    assert!(h1 > h0, "repeat path resolution should hit the cache");
    // A different client has a cold cache.
    let (_, m0) = fs.cache_stats();
    fs.stat(3, "/proj/f0").unwrap();
    let (_, m1) = fs.cache_stats();
    assert!(m1 > m0, "client 3 should miss on first access");
}

#[test]
fn cache_invalidated_on_peer_write() {
    let (_e, mut fs) = make_fs();
    fs.mkdir(0, "/shared").unwrap();
    fs.readdir(1, "/shared").unwrap(); // client 1 caches the dir
    fs.create(0, "/shared/new").unwrap(); // client 0 modifies it
    let (entries, _) = fs.readdir(1, "/shared").unwrap();
    assert_eq!(entries.len(), 1, "client 1 must see the new entry");
}

#[test]
fn survives_disk_failure_under_raidx() {
    let (_e, mut fs) = make_fs();
    fs.mkdir(0, "/safe").unwrap();
    let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
    fs.write_file(0, "/safe/f", &data).unwrap();
    fs.store_mut().fail_disk(2);
    // The whole tree — superblock, inodes, directories, data — must
    // remain readable through the mirrors.
    let (got, _) = fs.read_file(1, "/safe/f").unwrap();
    assert_eq!(got, data);
    let (entries, _) = fs.readdir(1, "/safe").unwrap();
    assert_eq!(entries.len(), 1);
}

#[test]
fn mount_recovers_state() {
    let (_e, s) = raidx_store();
    let (mut fs, _) = Fs::format(s, 256, 0).unwrap();
    fs.mkdir(0, "/persist").unwrap();
    fs.write_file(0, "/persist/f", b"durable bytes").unwrap();
    // Take the store back and remount it fresh (state must come from the
    // blocks, not from the old in-memory Fs).
    let (mut fs2, _) = Fs::mount(fs.into_store(), 1).unwrap();
    let (got, _) = fs2.read_file(1, "/persist/f").unwrap();
    assert_eq!(got, b"durable bytes");
    // New allocations must not clobber existing data.
    fs2.write_file(1, "/persist/g", b"more").unwrap();
    let (got, _) = fs2.read_file(0, "/persist/f").unwrap();
    assert_eq!(got, b"durable bytes");
}

#[test]
fn works_over_nfs_store() {
    let mut cfg = ClusterConfig::shape(4, 1);
    cfg.disk.capacity = 64 << 20;
    let mut e = Engine::new();
    let s = NfsSystem::new(&mut e, cfg, NfsConfig::default());
    let (mut fs, _) = Fs::format(s, 256, 0).unwrap();
    fs.mkdir(1, "/n").unwrap();
    fs.write_file(2, "/n/f", b"over nfs").unwrap();
    let (got, _) = fs.read_file(3, "/n/f").unwrap();
    assert_eq!(got, b"over nfs");
    assert_eq!(fs.store().arch_name(), "NFS");
}

#[test]
fn append_grows_files_correctly() {
    let (_e, mut fs) = make_fs();
    let bs = fs.store().block_size() as usize;
    // Append to a missing file creates it.
    fs.append(0, "/log", b"hello ").unwrap();
    fs.append(0, "/log", b"world").unwrap();
    let (got, _) = fs.read_file(0, "/log").unwrap();
    assert_eq!(got, b"hello world");
    // Appends spanning block boundaries.
    let chunk: Vec<u8> = (0..bs + 100).map(|i| (i % 251) as u8).collect();
    fs.append(1, "/log", &chunk).unwrap();
    let (got, _) = fs.read_file(2, "/log").unwrap();
    assert_eq!(got.len(), 11 + bs + 100);
    assert_eq!(&got[..11], b"hello world");
    assert_eq!(&got[11..], &chunk[..]);
    // Many small appends accumulate exactly.
    let mut want = got;
    for i in 0..20u8 {
        fs.append(0, "/log", &[i; 37]).unwrap();
        want.extend_from_slice(&[i; 37]);
    }
    let (got, _) = fs.read_file(3, "/log").unwrap();
    assert_eq!(got, want);
}

#[test]
fn append_to_directory_fails() {
    let (_e, mut fs) = make_fs();
    fs.mkdir(0, "/d").unwrap();
    assert!(matches!(fs.append(0, "/d", b"x"), Err(FsError::IsDir(_))));
}

#[test]
fn rename_moves_files_and_dirs() {
    let (_e, mut fs) = make_fs();
    fs.mkdir(0, "/a").unwrap();
    fs.mkdir(0, "/b").unwrap();
    fs.write_file(0, "/a/f", b"payload").unwrap();
    // Across directories.
    fs.rename(0, "/a/f", "/b/g").unwrap();
    assert!(matches!(fs.read_file(0, "/a/f"), Err(FsError::NotFound(_))));
    let (got, _) = fs.read_file(0, "/b/g").unwrap();
    assert_eq!(got, b"payload");
    // Within one directory.
    fs.rename(1, "/b/g", "/b/h").unwrap();
    let (got, _) = fs.read_file(2, "/b/h").unwrap();
    assert_eq!(got, b"payload");
    // Renaming a directory carries its contents.
    fs.rename(0, "/b", "/c").unwrap();
    let (got, _) = fs.read_file(0, "/c/h").unwrap();
    assert_eq!(got, b"payload");
    let (entries, _) = fs.readdir(0, "/").unwrap();
    let mut names: Vec<String> = entries.into_iter().map(|e| e.name).collect();
    names.sort();
    assert_eq!(names, vec!["a", "c"]);
}

#[test]
fn rename_refuses_clobber_and_missing() {
    let (_e, mut fs) = make_fs();
    fs.write_file(0, "/x", b"1").unwrap();
    fs.write_file(0, "/y", b"2").unwrap();
    assert!(matches!(fs.rename(0, "/x", "/y"), Err(FsError::Exists(_))));
    assert!(matches!(fs.rename(0, "/nope", "/z"), Err(FsError::NotFound(_))));
    // Both files untouched.
    assert_eq!(fs.read_file(0, "/x").unwrap().0, b"1");
    assert_eq!(fs.read_file(0, "/y").unwrap().0, b"2");
}
