//! Model-based property testing of the cluster file system: random
//! operation sequences over a bounded namespace are applied to the real
//! fs (over a RAID-x single I/O space) and to a trivial in-memory model;
//! results — contents and errors alike — must agree.

use std::collections::{HashMap, HashSet};

use cdd::{CddConfig, IoSystem};
use cfs::{Fs, FsError};
use cluster::ClusterConfig;
use proptest::prelude::*;
use raidx_core::Arch;
use sim_core::Engine;

#[derive(Debug, Clone)]
enum Op {
    Mkdir { d: u8 },
    Create { d: u8, f: u8 },
    WriteFile { d: u8, f: u8, size: u16, tag: u8 },
    ReadFile { d: u8, f: u8 },
    Unlink { d: u8, f: u8 },
    Readdir { d: u8 },
    Append { d: u8, f: u8, size: u16, tag: u8 },
    Rename { d: u8, f: u8, d2: u8, f2: u8 },
}

fn ops() -> impl Strategy<Value = Op> {
    let d = 0u8..3;
    let f = 0u8..3;
    prop_oneof![
        1 => d.clone().prop_map(|d| Op::Mkdir { d }),
        2 => (d.clone(), f.clone()).prop_map(|(d, f)| Op::Create { d, f }),
        4 => (d.clone(), f.clone(), any::<u16>(), any::<u8>())
            .prop_map(|(d, f, size, tag)| Op::WriteFile { d, f, size, tag }),
        4 => (d.clone(), f.clone()).prop_map(|(d, f)| Op::ReadFile { d, f }),
        1 => (d.clone(), f.clone()).prop_map(|(d, f)| Op::Unlink { d, f }),
        2 => d.clone().prop_map(|d| Op::Readdir { d }),
        3 => (d.clone(), f.clone(), 0u16..4096, any::<u8>())
            .prop_map(|(d, f, size, tag)| Op::Append { d, f, size, tag }),
        1 => (d.clone(), f.clone(), d, f)
            .prop_map(|(d, f, d2, f2)| Op::Rename { d, f, d2, f2 }),
    ]
}

fn dir_path(d: u8) -> String {
    format!("/d{d}")
}

fn file_path(d: u8, f: u8) -> String {
    format!("/d{d}/f{f}")
}

fn payload(size: u16, tag: u8) -> Vec<u8> {
    (0..size as usize).map(|i| tag.wrapping_add((i % 191) as u8)).collect()
}

/// In-memory reference: which dirs exist, and file path -> contents.
#[derive(Default)]
struct Model {
    dirs: HashSet<u8>,
    files: HashMap<(u8, u8), Vec<u8>>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fs_agrees_with_model(script in proptest::collection::vec(ops(), 1..60)) {
        let mut cc = ClusterConfig::shape(4, 1);
        cc.disk.capacity = 64 << 20;
        let mut engine = Engine::new();
        let store = IoSystem::new(&mut engine, cc, Arch::RaidX, CddConfig::default());
        let (mut fs, _) = Fs::format(store, 256, 0).unwrap();
        let mut model = Model::default();

        for (i, op) in script.into_iter().enumerate() {
            let client = i % 4;
            match op {
                Op::Mkdir { d } => {
                    let real = fs.mkdir(client, &dir_path(d));
                    if model.dirs.insert(d) {
                        prop_assert!(real.is_ok(), "mkdir should succeed");
                    } else {
                        prop_assert!(matches!(real, Err(FsError::Exists(_))));
                    }
                }
                Op::Create { d, f } => {
                    let real = fs.create(client, &file_path(d, f));
                    if !model.dirs.contains(&d) {
                        prop_assert!(matches!(real, Err(FsError::NotFound(_))));
                    } else if let std::collections::hash_map::Entry::Vacant(e) =
                        model.files.entry((d, f))
                    {
                        prop_assert!(real.is_ok());
                        e.insert(Vec::new());
                    } else {
                        prop_assert!(matches!(real, Err(FsError::Exists(_))));
                    }
                }
                Op::WriteFile { d, f, size, tag } => {
                    let data = payload(size, tag);
                    let real = fs.write_file(client, &file_path(d, f), &data);
                    if !model.dirs.contains(&d) {
                        prop_assert!(matches!(real, Err(FsError::NotFound(_))));
                    } else {
                        prop_assert!(real.is_ok(), "write_file failed: {:?}", real.err());
                        model.files.insert((d, f), data);
                    }
                }
                Op::ReadFile { d, f } => {
                    let real = fs.read_file(client, &file_path(d, f));
                    match model.files.get(&(d, f)) {
                        Some(want) => {
                            let (got, _) = real.expect("read of existing file");
                            prop_assert_eq!(&got, want);
                        }
                        None => prop_assert!(matches!(real, Err(FsError::NotFound(_)))),
                    }
                }
                Op::Unlink { d, f } => {
                    let real = fs.unlink(client, &file_path(d, f));
                    if model.files.remove(&(d, f)).is_some() {
                        prop_assert!(real.is_ok());
                    } else {
                        prop_assert!(matches!(real, Err(FsError::NotFound(_))));
                    }
                }
                Op::Append { d, f, size, tag } => {
                    let data = payload(size, tag);
                    let real = fs.append(client, &file_path(d, f), &data);
                    if !model.dirs.contains(&d) {
                        if data.is_empty() {
                            prop_assert!(real.is_ok(), "empty append is a no-op");
                        } else {
                            prop_assert!(matches!(real, Err(FsError::NotFound(_))));
                        }
                    } else {
                        prop_assert!(real.is_ok(), "append failed: {:?}", real.err());
                        if !data.is_empty() || model.files.contains_key(&(d, f)) {
                            model.files.entry((d, f)).or_default().extend_from_slice(&data);
                        }
                    }
                }
                Op::Rename { d, f, d2, f2 } => {
                    let real = fs.rename(client, &file_path(d, f), &file_path(d2, f2));
                    let src_exists = model.files.contains_key(&(d, f));
                    let dst_exists = model.files.contains_key(&(d2, f2))
                        || (d, f) == (d2, f2);
                    let dst_dir = model.dirs.contains(&d2);
                    if !src_exists {
                        prop_assert!(matches!(real, Err(FsError::NotFound(_))));
                    } else if !dst_dir {
                        prop_assert!(matches!(real, Err(FsError::NotFound(_))));
                    } else if dst_exists {
                        prop_assert!(matches!(real, Err(FsError::Exists(_))));
                    } else {
                        prop_assert!(real.is_ok(), "rename failed: {:?}", real.err());
                        let contents = model.files.remove(&(d, f)).expect("src exists");
                        model.files.insert((d2, f2), contents);
                    }
                }
                Op::Readdir { d } => {
                    let real = fs.readdir(client, &dir_path(d));
                    if model.dirs.contains(&d) {
                        let (entries, _) = real.expect("readdir of existing dir");
                        let mut got: Vec<String> =
                            entries.into_iter().map(|e| e.name).collect();
                        got.sort();
                        let mut want: Vec<String> = model
                            .files
                            .keys()
                            .filter(|(dd, _)| *dd == d)
                            .map(|(_, ff)| format!("f{ff}"))
                            .collect();
                        want.sort();
                        prop_assert_eq!(got, want);
                    } else {
                        prop_assert!(matches!(real, Err(FsError::NotFound(_))));
                    }
                }
            }
        }
        // Final sweep: every surviving file reads back exactly.
        for ((d, f), want) in &model.files {
            let (got, _) = fs.read_file(0, &file_path(*d, *f)).expect("final read");
            prop_assert_eq!(&got, want);
        }
    }
}
