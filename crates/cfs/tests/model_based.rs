//! Model-based property testing of the cluster file system: random
//! operation sequences over a bounded namespace are applied to the real
//! fs (over a RAID-x single I/O space) and to a trivial in-memory model;
//! results — contents and errors alike — must agree.

use std::collections::{HashMap, HashSet};

use cfs::{Fs, FsError};
use raidx_core::Arch;
use sim_core::check::{run_cases, Gen};

#[derive(Debug, Clone)]
enum Op {
    Mkdir { d: u8 },
    Create { d: u8, f: u8 },
    WriteFile { d: u8, f: u8, size: u16, tag: u8 },
    ReadFile { d: u8, f: u8 },
    Unlink { d: u8, f: u8 },
    Readdir { d: u8 },
    Append { d: u8, f: u8, size: u16, tag: u8 },
    Rename { d: u8, f: u8, d2: u8, f2: u8 },
}

fn draw_op(g: &mut Gen) -> Op {
    let d = |g: &mut Gen| (g.u64_in(0..3) & 0xFF) as u8;
    let f = |g: &mut Gen| (g.u64_in(0..3) & 0xFF) as u8;
    match g.weighted(&[1, 2, 4, 4, 1, 2, 3, 1]) {
        0 => Op::Mkdir { d: d(g) },
        1 => Op::Create { d: d(g), f: f(g) },
        2 => Op::WriteFile { d: d(g), f: f(g), size: g.u16(), tag: g.u8() },
        3 => Op::ReadFile { d: d(g), f: f(g) },
        4 => Op::Unlink { d: d(g), f: f(g) },
        5 => Op::Readdir { d: d(g) },
        6 => {
            Op::Append { d: d(g), f: f(g), size: (g.u64_in(0..4096) & 0xFFFF) as u16, tag: g.u8() }
        }
        _ => Op::Rename { d: d(g), f: f(g), d2: d(g), f2: f(g) },
    }
}

fn dir_path(d: u8) -> String {
    format!("/d{d}")
}

fn file_path(d: u8, f: u8) -> String {
    format!("/d{d}/f{f}")
}

fn payload(size: u16, tag: u8) -> Vec<u8> {
    (0..size as usize).map(|i| tag.wrapping_add((i % 191) as u8)).collect()
}

/// In-memory reference: which dirs exist, and file path -> contents.
#[derive(Default)]
struct Model {
    dirs: HashSet<u8>,
    files: HashMap<(u8, u8), Vec<u8>>,
}

#[test]
fn fs_agrees_with_model() {
    run_cases("fs_agrees_with_model", 32, |g| {
        let script = g.vec_of(1..60, draw_op);
        let (_engine, store) = cdd::testkit::shape(4, 1, 64 << 20, Arch::RaidX);
        let (mut fs, _) = Fs::format(store, 256, 0).unwrap();
        let mut model = Model::default();

        for (i, op) in script.into_iter().enumerate() {
            let client = i % 4;
            match op {
                Op::Mkdir { d } => {
                    let real = fs.mkdir(client, &dir_path(d));
                    if model.dirs.insert(d) {
                        assert!(real.is_ok(), "mkdir should succeed");
                    } else {
                        assert!(matches!(real, Err(FsError::Exists(_))));
                    }
                }
                Op::Create { d, f } => {
                    let real = fs.create(client, &file_path(d, f));
                    if !model.dirs.contains(&d) {
                        assert!(matches!(real, Err(FsError::NotFound(_))));
                    } else if let std::collections::hash_map::Entry::Vacant(e) =
                        model.files.entry((d, f))
                    {
                        assert!(real.is_ok());
                        e.insert(Vec::new());
                    } else {
                        assert!(matches!(real, Err(FsError::Exists(_))));
                    }
                }
                Op::WriteFile { d, f, size, tag } => {
                    let data = payload(size, tag);
                    let real = fs.write_file(client, &file_path(d, f), &data);
                    if !model.dirs.contains(&d) {
                        assert!(matches!(real, Err(FsError::NotFound(_))));
                    } else {
                        assert!(real.is_ok(), "write_file failed: {:?}", real.err());
                        model.files.insert((d, f), data);
                    }
                }
                Op::ReadFile { d, f } => {
                    let real = fs.read_file(client, &file_path(d, f));
                    match model.files.get(&(d, f)) {
                        Some(want) => {
                            let (got, _) = real.expect("read of existing file");
                            assert_eq!(&got, want);
                        }
                        None => assert!(matches!(real, Err(FsError::NotFound(_)))),
                    }
                }
                Op::Unlink { d, f } => {
                    let real = fs.unlink(client, &file_path(d, f));
                    if model.files.remove(&(d, f)).is_some() {
                        assert!(real.is_ok());
                    } else {
                        assert!(matches!(real, Err(FsError::NotFound(_))));
                    }
                }
                Op::Append { d, f, size, tag } => {
                    let data = payload(size, tag);
                    let real = fs.append(client, &file_path(d, f), &data);
                    if !model.dirs.contains(&d) {
                        if data.is_empty() {
                            assert!(real.is_ok(), "empty append is a no-op");
                        } else {
                            assert!(matches!(real, Err(FsError::NotFound(_))));
                        }
                    } else {
                        assert!(real.is_ok(), "append failed: {:?}", real.err());
                        if !data.is_empty() || model.files.contains_key(&(d, f)) {
                            model.files.entry((d, f)).or_default().extend_from_slice(&data);
                        }
                    }
                }
                Op::Rename { d, f, d2, f2 } => {
                    let real = fs.rename(client, &file_path(d, f), &file_path(d2, f2));
                    let src_exists = model.files.contains_key(&(d, f));
                    let dst_exists = model.files.contains_key(&(d2, f2)) || (d, f) == (d2, f2);
                    let dst_dir = model.dirs.contains(&d2);
                    if !src_exists || !dst_dir {
                        assert!(matches!(real, Err(FsError::NotFound(_))));
                    } else if dst_exists {
                        assert!(matches!(real, Err(FsError::Exists(_))));
                    } else {
                        assert!(real.is_ok(), "rename failed: {:?}", real.err());
                        let contents = model.files.remove(&(d, f)).expect("src exists");
                        model.files.insert((d2, f2), contents);
                    }
                }
                Op::Readdir { d } => {
                    let real = fs.readdir(client, &dir_path(d));
                    if model.dirs.contains(&d) {
                        let (entries, _) = real.expect("readdir of existing dir");
                        let mut got: Vec<String> = entries.into_iter().map(|e| e.name).collect();
                        got.sort();
                        let mut want: Vec<String> = model
                            .files
                            .keys()
                            .filter(|(dd, _)| *dd == d)
                            .map(|(_, ff)| format!("f{ff}"))
                            .collect();
                        want.sort();
                        assert_eq!(got, want);
                    } else {
                        assert!(matches!(real, Err(FsError::NotFound(_))));
                    }
                }
            }
        }
        // Final sweep: every surviving file reads back exactly.
        for ((d, f), want) in &model.files {
            let (got, _) = fs.read_file(0, &file_path(*d, *f)).expect("final read");
            assert_eq!(&got, want);
        }
    });
}
