//! Model-based property testing of the single I/O space: random
//! sequences of writes, reads, disk failures and rebuilds are applied
//! both to the real system and to a trivial in-memory reference model;
//! every read must agree byte-for-byte as long as the failure pattern is
//! one the layout tolerates.

use raidx_core::{Arch, FaultSet};
use sim_core::check::{run_cases, Gen};

#[derive(Debug, Clone)]
enum Op {
    /// Write `nblocks` tagged blocks at a position derived from `pos`.
    Write { pos: u64, nblocks: u64, tag: u8 },
    /// Read `nblocks` at a position derived from `pos`.
    Read { pos: u64, nblocks: u64 },
    /// Fail the disk derived from `pick` (skipped if it would exceed the
    /// layout's tolerance).
    Fail { pick: usize },
    /// Rebuild the lowest-numbered failed disk, if any.
    Rebuild,
}

fn draw_op(g: &mut Gen) -> Op {
    match g.weighted(&[4, 4, 1, 1]) {
        0 => Op::Write { pos: g.u64_in(0..10_000), nblocks: g.u64_in(1..8), tag: g.u8() },
        1 => Op::Read { pos: g.u64_in(0..10_000), nblocks: g.u64_in(1..8) },
        2 => Op::Fail { pick: g.usize_in(0..64) },
        _ => Op::Rebuild,
    }
}

/// Reference model: one tag byte per logical block (0 = never written).
struct Model {
    tags: Vec<u8>,
}

impl Model {
    fn new(cap: u64) -> Self {
        Model { tags: vec![0; cap as usize] }
    }
}

fn run_scenario(arch: Arch, ops: Vec<Op>) {
    // Tiny disks keep the plane small.
    let (_engine, mut sys) = cdd::testkit::shape(4, 2, 8 << 20, arch);
    let bs = sys.block_size() as usize;
    let cap = sys.capacity_blocks();
    let mut model = Model::new(cap);
    let mut faults = FaultSet::none();

    for op in ops {
        match op {
            Op::Write { pos, nblocks, tag } => {
                let lb0 = pos % (cap - nblocks);
                let data: Vec<u8> = (0..nblocks as usize)
                    .flat_map(|i| vec![tag.wrapping_add(i as u8); bs])
                    .collect();
                sys.write(0, lb0, &data)
                    .unwrap_or_else(|e| panic!("write failed under tolerated faults: {e}"));
                for i in 0..nblocks {
                    model.tags[(lb0 + i) as usize] = tag.wrapping_add(i as u8);
                }
            }
            Op::Read { pos, nblocks } => {
                let lb0 = pos % (cap - nblocks);
                let (got, _) = sys
                    .read(1, lb0, nblocks)
                    .unwrap_or_else(|e| panic!("read failed under tolerated faults: {e}"));
                for i in 0..nblocks as usize {
                    let want = model.tags[lb0 as usize + i];
                    let block = &got[i * bs..(i + 1) * bs];
                    assert!(
                        block.iter().all(|&b| b == want),
                        "{arch:?}: block {} read tag {} want {want} (faults: {:?})",
                        lb0 + i as u64,
                        block[0],
                        faults.iter().collect::<Vec<_>>()
                    );
                }
            }
            Op::Fail { pick } => {
                let disk = pick % sys.layout().ndisks();
                if faults.contains(disk) {
                    continue;
                }
                let mut candidate = faults.clone();
                candidate.insert(disk);
                if sys.layout().tolerates(&candidate) {
                    sys.fail_disk(disk);
                    faults = candidate;
                }
            }
            Op::Rebuild => {
                let first = faults.iter().next();
                if let Some(disk) = first {
                    sys.rebuild_disk(0, disk).expect("rebuild of tolerated failure");
                    faults.remove(disk);
                }
            }
        }
    }
    // Final invariant: all surviving redundancy must be self-consistent.
    sys.scrub().unwrap_or_else(|e| panic!("{arch:?}: scrub failed after scenario: {e}"));
}

fn agree_with_model(name: &str, arch: Arch) {
    run_cases(name, 24, |g| {
        let ops = g.vec_of(1..40, draw_op);
        run_scenario(arch, ops);
    });
}

#[test]
fn raidx_agrees_with_model() {
    agree_with_model("raidx_agrees_with_model", Arch::RaidX);
}

#[test]
fn raid10_agrees_with_model() {
    agree_with_model("raid10_agrees_with_model", Arch::Raid10);
}

#[test]
fn chained_agrees_with_model() {
    agree_with_model("chained_agrees_with_model", Arch::Chained);
}

#[test]
fn raid5_agrees_with_model() {
    agree_with_model("raid5_agrees_with_model", Arch::Raid5);
}
