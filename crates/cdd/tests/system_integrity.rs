//! End-to-end data-integrity tests of the single I/O space: bytes written
//! through any architecture must read back identically — through the
//! healthy path, the degraded path, and after rebuild.

use cdd::{IoError, IoSystem};
use raidx_core::Arch;
use sim_core::Engine;

/// A small cluster so tests stay fast: 4 nodes x 1 disk, tiny disks
/// (4 MB -> 128 blocks).
fn sys(arch: Arch) -> (Engine, IoSystem) {
    cdd::testkit::shape(4, 1, 4 << 20, arch)
}

/// Deterministic test pattern: each block filled with bytes derived from
/// its logical number.
fn pattern(lb0: u64, nblocks: u64, bs: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(nblocks as usize * bs);
    for lb in lb0..lb0 + nblocks {
        for i in 0..bs {
            v.push(((lb * 131 + i as u64 * 7) % 251) as u8);
        }
    }
    v
}

#[test]
fn roundtrip_every_architecture() {
    for arch in Arch::ALL {
        let (mut e, mut s) = sys(arch);
        let bs = s.block_size() as usize;
        let data = pattern(3, 10, bs);
        let wp = s.write(0, 3, &data).unwrap();
        let (got, rp) = s.read(1, 3, 10).unwrap();
        assert_eq!(got, data, "{arch:?} roundtrip corrupted");
        // Both plans execute cleanly on the engine.
        e.spawn_job("w", wp);
        e.spawn_job("r", rp);
        e.run().unwrap();
    }
}

#[test]
fn roundtrip_raid0() {
    let (_e, mut s) = sys(Arch::RaidX);
    let bs = s.block_size() as usize;
    // Unaligned multi-stripe write then partial reads.
    let data = pattern(5, 7, bs);
    s.write(2, 5, &data).unwrap();
    let (got, _) = s.read(0, 6, 3).unwrap();
    assert_eq!(got, pattern(6, 3, bs));
}

#[test]
fn single_disk_failure_every_redundant_architecture() {
    for arch in [Arch::Raid5, Arch::Chained, Arch::Raid10, Arch::RaidX] {
        let (_e, mut s) = sys(arch);
        let bs = s.block_size() as usize;
        let data = pattern(0, 24, bs);
        s.write(0, 0, &data).unwrap();
        // Fail each disk in turn (fresh system each time would be slow;
        // rebuild restores before the next failure).
        for d in 0..4 {
            s.fail_disk(d);
            let (got, _) = s.read(1, 0, 24).unwrap();
            assert_eq!(got, data, "{arch:?}: data wrong with disk {d} failed");
            let (_plan, steps) = s.rebuild_disk(0, d).unwrap();
            assert!(steps > 0, "{arch:?}: rebuild of {d} restored nothing");
            let (got, _) = s.read(2, 0, 24).unwrap();
            assert_eq!(got, data, "{arch:?}: data wrong after rebuilding {d}");
        }
    }
}

#[test]
fn raidx_tolerates_one_failure_per_row() {
    // 4x3 array, 4 MB disks.
    let (_e, mut s) = cdd::testkit::shape(4, 3, 4 << 20, Arch::RaidX);
    let bs = s.block_size() as usize;
    let data = pattern(0, 36, bs);
    s.write(0, 0, &data).unwrap();
    // One failure in each of the three rows (disks 0..3 row 0, 4..7 row 1,
    // 8..11 row 2) — the paper's up-to-3-failures claim for the 4x3 array.
    s.fail_disk(1);
    s.fail_disk(6);
    s.fail_disk(11);
    let (got, _) = s.read(2, 0, 36).unwrap();
    assert_eq!(got, data);
    // A second failure in row 0 destroys data.
    s.fail_disk(2);
    let err = s.read(2, 0, 36);
    assert!(matches!(err, Err(IoError::DataLoss { .. })));
}

#[test]
fn raid5_reconstruction_is_real_xor() {
    let (_e, mut s) = sys(Arch::Raid5);
    let bs = s.block_size() as usize;
    let data = pattern(0, 9, bs); // three full 3-wide stripes
    s.write(0, 0, &data).unwrap();
    // Overwrite one block via the RMW path, then fail its disk: the
    // reconstruction must reflect the *new* contents.
    let newblk = vec![0x5A; bs];
    s.write(1, 4, &newblk).unwrap();
    let dead = s.layout().locate_data(4).disk;
    s.fail_disk(dead);
    let (got, _) = s.read(2, 4, 1).unwrap();
    assert_eq!(got, newblk);
}

#[test]
fn writes_update_images_functionally() {
    let (_e, mut s) = sys(Arch::RaidX);
    let bs = s.block_size() as usize;
    let data = pattern(0, 8, bs);
    s.write(0, 0, &data).unwrap();
    // Overwrite block 2; the background image must track it (the plane is
    // updated synchronously even though the timing is deferred).
    let newblk = vec![0x77; bs];
    s.write(0, 2, &newblk).unwrap();
    let dead = s.layout().locate_data(2).disk;
    s.fail_disk(dead);
    let (got, _) = s.read(1, 2, 1).unwrap();
    assert_eq!(got, newblk, "image out of date after overwrite");
}

#[test]
fn out_of_range_and_bad_length_rejected() {
    let (_e, mut s) = sys(Arch::RaidX);
    let cap = s.capacity_blocks();
    let bs = s.block_size() as usize;
    assert!(matches!(s.read(0, cap, 1), Err(IoError::OutOfRange { .. })));
    assert!(matches!(s.write(0, cap - 1, &vec![0u8; 2 * bs]), Err(IoError::OutOfRange { .. })));
    assert!(matches!(s.write(0, 0, &vec![0u8; bs / 2]), Err(IoError::BadLength { .. })));
    assert!(matches!(s.write(0, 0, &[]), Err(IoError::BadLength { .. })));
}

#[test]
fn degraded_raid5_writes_reconstruct_through_parity() {
    let (_e, mut s) = sys(Arch::Raid5);
    let bs = s.block_size() as usize;
    s.write(0, 0, &pattern(0, 6, bs)).unwrap();
    // Fail the disk holding block 0, then overwrite block 0: the new
    // contents exist only through parity, and a degraded read must
    // reconstruct them.
    let dead = s.layout().locate_data(0).disk;
    s.fail_disk(dead);
    let newblk = vec![0x3Fu8; bs];
    s.write(0, 0, &newblk).unwrap();
    let (got, _) = s.read(1, 0, 1).unwrap();
    assert_eq!(got, newblk, "reconstruct-write lost the update");
    // Writes whose parity disk died also succeed (data-only path), and
    // the data block remains directly readable.
    let p_dead = s.layout().locate_parity(9).unwrap().disk;
    if p_dead != dead {
        // Restore redundancy first so a second failure is tolerated.
        s.rebuild_disk(0, dead).unwrap();
        s.fail_disk(p_dead);
        let blk = vec![0x77u8; bs];
        s.write(0, 9, &blk).unwrap();
        let (got, _) = s.read(2, 9, 1).unwrap();
        assert_eq!(got, blk);
    }
    // After rebuilding everything, all data is intact and redundant again.
}

#[test]
fn degraded_mirror_write_keeps_surviving_copy_durable() {
    for arch in [Arch::Raid10, Arch::Chained, Arch::RaidX] {
        let (_e, mut s) = sys(arch);
        let bs = s.block_size() as usize;
        s.write(0, 0, &pattern(0, 8, bs)).unwrap();
        let dead = s.layout().locate_data(3).disk;
        s.fail_disk(dead);
        let newblk = vec![0x42; bs];
        s.write(0, 3, &newblk).unwrap();
        let (got, _) = s.read(1, 3, 1).unwrap();
        assert_eq!(got, newblk, "{arch:?}: degraded write lost");
        // And after rebuilding the dead disk, both copies agree.
        s.rebuild_disk(0, dead).unwrap();
        let (got, _) = s.read(1, 3, 1).unwrap();
        assert_eq!(got, newblk);
    }
}

#[test]
fn rebuild_restores_parity_too() {
    let (_e, mut s) = sys(Arch::Raid5);
    let bs = s.block_size() as usize;
    let data = pattern(0, 12, bs);
    s.write(0, 0, &data).unwrap();
    // Fail + rebuild a disk, then fail a *different* disk: reads must
    // still reconstruct, proving parity was restored on the spare.
    s.fail_disk(0);
    s.rebuild_disk(0, 0).unwrap();
    s.fail_disk(2);
    let (got, _) = s.read(1, 0, 12).unwrap();
    assert_eq!(got, data);
}

#[test]
fn lock_grants_counted_per_write() {
    let (_e, mut s) = sys(Arch::RaidX);
    let bs = s.block_size() as usize;
    s.write(0, 0, &pattern(0, 4, bs)).unwrap();
    s.write(1, 8, &pattern(8, 4, bs)).unwrap();
    assert_eq!(s.lock_grants(), 2);
    assert_eq!(s.high_water(), 12);
}

#[test]
fn unwritten_blocks_read_zero() {
    let (_e, mut s) = sys(Arch::Raid10);
    let bs = s.block_size() as usize;
    let (got, _) = s.read(0, 20, 2).unwrap();
    assert_eq!(got, vec![0u8; 2 * bs]);
}

#[test]
fn scrub_passes_after_arbitrary_activity() {
    for arch in [Arch::Raid5, Arch::Chained, Arch::Raid10, Arch::RaidX] {
        let (_e, mut s) = sys(arch);
        let bs = s.block_size() as usize;
        // Writes of various shapes, overwrites, a failure + rebuild cycle.
        s.write(0, 0, &pattern(0, 24, bs)).unwrap();
        s.write(1, 5, &pattern(100, 3, bs)).unwrap();
        s.write(2, 10, &vec![0xCC; bs]).unwrap();
        let audited = s.scrub().unwrap_or_else(|e| panic!("{arch:?} scrub: {e}"));
        assert!(audited > 0, "{arch:?}: nothing audited");
        s.fail_disk(1);
        s.rebuild_disk(0, 1).unwrap();
        let audited = s.scrub().unwrap_or_else(|e| panic!("{arch:?} post-rebuild scrub: {e}"));
        assert!(audited > 0);
    }
}

#[test]
fn scrub_detects_planted_corruption() {
    let (_e, mut s) = sys(Arch::RaidX);
    let bs = s.block_size() as usize;
    s.write(0, 0, &pattern(0, 8, bs)).unwrap();
    assert!(s.scrub().is_ok());
    // Corrupt one image block directly on the plane (bit rot).
    let img = s.layout().locate_images(3)[0];
    let mut raw = s.plane_mut().read_owned(img.disk, img.block).unwrap();
    raw[17] ^= 0xFF;
    s.plane_mut().write(img.disk, img.block, &raw).unwrap();
    assert!(matches!(s.scrub(), Err(IoError::DataLoss { lb: 3 })));
}

#[test]
fn scrub_detects_stale_parity() {
    let (_e, mut s) = sys(Arch::Raid5);
    let bs = s.block_size() as usize;
    s.write(0, 0, &pattern(0, 9, bs)).unwrap();
    assert!(s.scrub().is_ok());
    let p = s.layout().locate_parity(0).unwrap();
    let junk = vec![0xEE; bs];
    s.plane_mut().write(p.disk, p.block, &junk).unwrap();
    assert!(s.scrub().is_err());
}
